// Example: a disk-failure drill under energy management.
//
//   ./failure_drill [hours]
//
// Runs the OLTP workload under Hibernator, kills a disk a third of the way
// in, replaces it an hour later, and reports the degraded-mode and rebuild
// statistics alongside the usual energy/latency numbers — demonstrating that
// the energy machinery and RAID recovery coexist.
#include <cstdio>
#include <cstdlib>

#include "src/array/array.h"
#include "src/hibernator/hibernator_policy.h"
#include "src/sim/simulator.h"
#include "src/trace/synthetic.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  double hours = argc > 1 ? std::atof(argv[1]) : 6.0;

  hib::Simulator sim;
  hib::ArrayParams ap;
  ap.num_disks = 8;
  ap.group_width = 4;
  ap.disk = hib::MakeUltrastar36Z15MultiSpeed(5);
  ap.data_fraction = 0.2;
  hib::ArrayController array(&sim, ap);

  hib::HibernatorParams hp;
  hp.goal_ms = hib::Ms(20.0);
  hp.epoch_ms = hib::Hours(1.0);
  hib::HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  hib::OltpWorkloadParams wp;
  wp.address_space_sectors = ap.DataSectors();
  wp.duration_ms = hib::Hours(hours);
  wp.peak_iops = 80.0;
  wp.trough_iops = 40.0;
  hib::OltpWorkload workload(wp);

  // Pull-driven replay.
  std::function<void()> next = [&] {
    hib::TraceRecord rec;
    if (workload.Next(&rec)) {
      sim.ScheduleAt(rec.time, [&array, rec, &next] {
        array.Submit(rec);
        next();
      });
    }
  };
  next();

  // The drill: fail disk 2 at t = hours/3, replace one hour later.
  const int kVictim = 2;
  hib::SimTime fail_at = hib::Hours(hours / 3.0);
  hib::SimTime rebuilt_at = hib::Ms(-1.0);
  sim.ScheduleAt(fail_at, [&] {
    std::printf("[%.2fh] disk %d FAILED (group %d now degraded)\n",
                sim.Now() / hib::Hours(1.0), kVictim, kVictim / ap.group_width);
    array.FailDisk(kVictim);
  });
  sim.ScheduleAt(fail_at + hib::Hours(1.0), [&] {
    std::printf("[%.2fh] replacement installed, rebuild started\n",
                sim.Now() / hib::Hours(1.0));
    array.ReplaceDisk(kVictim, [&] {
      rebuilt_at = sim.Now();
      std::printf("[%.2fh] rebuild complete, disk %d back in service\n",
                  sim.Now() / hib::Hours(1.0), kVictim);
    });
  });

  sim.RunUntil(hib::Hours(hours) + hib::Seconds(30.0));
  policy.Finish();

  const hib::ArrayStats& st = array.stats();
  hib::Table table({"metric", "value"});
  table.NewRow().Add("requests").Add(st.total_responses);
  table.NewRow().Add("mean response (ms)").Add(st.response_ms.mean(), 2);
  table.NewRow().Add("goal met").Add(
      hib::Ms(st.response_ms.mean()) <= hp.goal_ms * 1.05 ? "yes" : "NO");
  table.NewRow().Add("degraded reads").Add(st.degraded_reads);
  table.NewRow().Add("parity-only writes").Add(st.parity_only_writes);
  table.NewRow().Add("lost accesses").Add(st.lost_accesses);
  table.NewRow().Add("extents rebuilt").Add(st.rebuilt_extents);
  table.NewRow().Add("rebuild duration (h)").Add(
      rebuilt_at > hib::SimTime{}
          ? (rebuilt_at - fail_at - hib::Hours(1.0)) / hib::Hours(1.0)
          : -1.0,
      2);
  table.NewRow().Add("energy (kJ)").Add(array.TotalEnergy().Total() / 1000.0, 1);
  table.NewRow().Add("epochs / boosts").Add(std::to_string(policy.epochs_completed()) + " / " +
                                            std::to_string(policy.boosts()));
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
