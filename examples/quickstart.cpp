// Quickstart: simulate a small disk array for four hours under the Base
// (always-full-speed) policy and under Hibernator, and compare energy and
// response time.
//
//   ./quickstart [hours]
//
// Walks through the whole public API: build an array description, generate a
// workload, pick a policy, run, read the metrics.
#include <cstdio>
#include <cstdlib>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  double hours = argc > 1 ? std::atof(argv[1]) : 4.0;

  // 1. Describe the array: 8 five-speed disks in width-4 RAID5 groups.
  hib::ArrayParams array;
  array.num_disks = 8;
  array.group_width = 4;
  array.disk = hib::MakeUltrastar36Z15MultiSpeed(5);

  // 2. Generate a workload over the array's logical space: a steady stream
  //    with a day/night swing, Zipf-skewed like an OLTP tenant.
  hib::OltpWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = hib::Hours(hours);
  wp.peak_iops = 120.0;
  wp.trough_iops = 40.0;
  hib::OltpWorkload workload(wp);

  // 3. Baseline run: everything at 15k RPM.
  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  workload.Reset();
  hib::ExperimentResult base =
      hib::RunExperiment(workload, *base_policy, hib::ArrayFor(base_cfg, array));

  // 4. Hibernator run: goal = 2.5x the measured baseline response time.
  hib::SchemeConfig hib_cfg;
  hib_cfg.scheme = hib::Scheme::kHibernator;
  hib_cfg.goal_ms = 2.5 * base.mean_response_ms;
  hib_cfg.epoch_ms = hib::Hours(1.0);
  auto hib_policy = hib::MakePolicy(hib_cfg);
  workload.Reset();
  hib::ExperimentResult hib_result =
      hib::RunExperiment(workload, *hib_policy, hib::ArrayFor(hib_cfg, array));

  // 5. Report.
  hib::Table table({"scheme", "energy (kJ)", "savings", "avg resp (ms)", "p95 (ms)",
                    "RPM changes", "requests"});
  for (const hib::ExperimentResult* r : {&base, &hib_result}) {
    table.NewRow()
        .Add(r->policy_name)
        .Add(r->energy_total / 1000.0, 1)
        .AddPercent(r->SavingsVs(base))
        .Add(r->mean_response_ms, 2)
        .Add(r->p95_response_ms, 2)
        .Add(r->rpm_changes)
        .Add(r->requests);
  }
  std::printf("Quickstart: %d disks, %.1f simulated hours, goal %.1f ms\n\n%s\n",
              array.num_disks, hours, hib_cfg.goal_ms.value(), table.ToString().c_str());
  std::printf("Hibernator saved %.1f%% energy; response-time goal %s.\n",
              100.0 * hib_result.SavingsVs(base),
              hib_result.mean_response_ms <= hib_cfg.goal_ms ? "met" : "MISSED");
  return 0;
}
