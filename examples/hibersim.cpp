// hibersim: config-file-driven simulator front end.
//
//   ./hibersim [<config-file>] [--trace-out <file>] [--metrics-out <file>]
//   ./hibersim --print-default-config
//
// Everything the harness can do — array shape, disk speed levels, workload
// (synthetic or trace file), scheme, goal, epochs, series output — from one
// declarative key=value file, so experiments can be versioned and shared
// without recompiling.  See --print-default-config for the full key list.
// With no config file, the defaults run as-is.
//
// --trace-out writes a Chrome/Perfetto trace_event JSON timeline of the run
// (open it at https://ui.perfetto.dev); --metrics-out writes the metrics
// registry snapshot as JSON.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/spc_reader.h"
#include "src/trace/synthetic.h"
#include "src/util/config.h"
#include "src/util/table.h"

namespace {

constexpr const char* kDefaultConfig = R"(# hibersim configuration (defaults shown)

# --- array ---------------------------------------------------------------
array.disks = 16            # number of data disks
array.group_width = 4       # stripe-group width (1 = no striping/parity)
array.speed_levels = 5      # RPM levels between 3k and 15k (1 = fixed 15k)
array.cache_mb = 128        # controller read cache
array.data_fraction = 0.6   # logical data size / raw capacity

# --- workload ------------------------------------------------------------
workload.kind = oltp        # oltp | cello | constant | spc
workload.hours = 24
workload.peak_iops = 200
workload.trough_iops = 60
workload.seed = 42
workload.trace_path =       # required when kind = spc

# --- scheme --------------------------------------------------------------
scheme.name = Hibernator    # Base | TPM | TPM-Adaptive | DRPM | PDC | MAID |
                            # Hibernator | Hibernator-NoMig | Hibernator-NoBoost
scheme.goal_multiplier = 2.5  # x the measured Base mean response
scheme.goal_ms = 0            # absolute goal (overrides multiplier when > 0)
scheme.epoch_hours = 2
scheme.migration_budget_extents = 4096

# --- output --------------------------------------------------------------
output.series = false       # hourly response/speed-mix table
output.csv = false          # emit CSV instead of aligned tables
)";

hib::Scheme SchemeByName(const std::string& name) {
  struct Entry {
    const char* name;
    hib::Scheme scheme;
  };
  constexpr Entry kEntries[] = {
      {"Base", hib::Scheme::kBase},
      {"TPM", hib::Scheme::kTpm},
      {"TPM-Adaptive", hib::Scheme::kTpmAdaptive},
      {"DRPM", hib::Scheme::kDrpm},
      {"PDC", hib::Scheme::kPdc},
      {"MAID", hib::Scheme::kMaid},
      {"Hibernator", hib::Scheme::kHibernator},
      {"Hibernator-NoMig", hib::Scheme::kHibernatorNoMigration},
      {"Hibernator-NoBoost", hib::Scheme::kHibernatorNoBoost},
      {"Hibernator-UT", hib::Scheme::kHibernatorUtilThreshold},
  };
  for (const Entry& e : kEntries) {
    if (name == e.name) {
      return e.scheme;
    }
  }
  std::fprintf(stderr, "unknown scheme '%s'; using Hibernator\n", name.c_str());
  return hib::Scheme::kHibernator;
}

std::unique_ptr<hib::WorkloadSource> MakeWorkload(hib::Config& config,
                                                  const hib::ArrayParams& array) {
  std::string kind = config.GetString("workload.kind", "oltp");
  std::string trace_path = config.GetString("workload.trace_path");  // touch: used for spc
  double hours = config.GetDouble("workload.hours", 24.0);
  auto seed = static_cast<std::uint64_t>(config.GetInt("workload.seed", 42));
  if (kind == "oltp") {
    hib::OltpWorkloadParams wp;
    wp.address_space_sectors = array.DataSectors();
    wp.duration_ms = hib::Hours(hours);
    wp.peak_iops = config.GetDouble("workload.peak_iops", 200.0);
    wp.trough_iops = config.GetDouble("workload.trough_iops", 60.0);
    wp.seed = seed;
    return std::make_unique<hib::OltpWorkload>(wp);
  }
  if (kind == "cello") {
    hib::CelloWorkloadParams wp;
    wp.address_space_sectors = array.DataSectors();
    wp.duration_ms = hib::Hours(hours);
    wp.peak_iops = config.GetDouble("workload.peak_iops", 90.0);
    wp.trough_iops = config.GetDouble("workload.trough_iops", 4.0);
    wp.seed = seed;
    return std::make_unique<hib::CelloWorkload>(wp);
  }
  if (kind == "constant") {
    hib::ConstantWorkloadParams wp;
    wp.address_space_sectors = array.DataSectors();
    wp.duration_ms = hib::Hours(hours);
    wp.iops = config.GetDouble("workload.peak_iops", 50.0);
    wp.seed = seed;
    return std::make_unique<hib::ConstantWorkload>(wp);
  }
  if (kind == "spc") {
    const std::string& path = trace_path;
    if (path.empty()) {
      std::fprintf(stderr, "workload.kind = spc requires workload.trace_path\n");
      return nullptr;
    }
    return std::make_unique<hib::SpcTraceReader>(path, array.DataSectors());
  }
  std::fprintf(stderr, "unknown workload.kind '%s'\n", kind.c_str());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string metrics_out;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--print-default-config") == 0) {
      std::printf("%s", kDefaultConfig);
      return 0;
    }
    std::string* sink = nullptr;
    if (std::strcmp(arg, "--trace-out") == 0) {
      sink = &trace_out;
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      sink = &metrics_out;
    }
    if (sink != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file argument\n", arg);
        return 1;
      }
      *sink = argv[++i];
      continue;
    }
    positional.push_back(arg);
  }
  if (positional.size() > 1) {
    std::fprintf(stderr,
                 "usage: %s [<config-file>] [--trace-out <file>] [--metrics-out <file>]\n"
                 "       %s --print-default-config\n",
                 argv[0], argv[0]);
    return 1;
  }

  hib::Config config;
  if (!positional.empty() && !config.ParseFile(positional[0])) {
    for (const std::string& err : config.errors()) {
      std::fprintf(stderr, "config: %s\n", err.c_str());
    }
    return 1;
  }

  hib::ArrayParams array;
  array.num_disks = static_cast<int>(config.GetInt("array.disks", 16));
  array.group_width = static_cast<int>(config.GetInt("array.group_width", 4));
  array.disk = hib::MakeUltrastar36Z15MultiSpeed(
      static_cast<int>(config.GetInt("array.speed_levels", 5)));
  array.cache_lines = static_cast<std::size_t>(config.GetInt("array.cache_mb", 128)) * 16;
  array.data_fraction = config.GetDouble("array.data_fraction", 0.6);

  hib::SchemeConfig scheme;
  scheme.scheme = SchemeByName(config.GetString("scheme.name", "Hibernator"));
  scheme.epoch_ms = hib::Hours(config.GetDouble("scheme.epoch_hours", 2.0));
  scheme.migration_budget_extents = config.GetInt("scheme.migration_budget_extents", 4096);
  array = hib::ArrayFor(scheme, array);

  auto workload = MakeWorkload(config, array);
  if (!workload) {
    return 1;
  }

  hib::Duration goal_ms = hib::Ms(config.GetDouble("scheme.goal_ms", 0.0));
  double multiplier = config.GetDouble("scheme.goal_multiplier", 2.5);
  if (goal_ms <= hib::Duration{}) {
    goal_ms = multiplier * hib::MeasureBaseResponseMs(*workload, array, hib::Hours(2.0));
    workload->Reset();
  }
  scheme.goal_ms = goal_ms;

  bool want_series = config.GetBool("output.series", false);
  bool want_csv = config.GetBool("output.csv", false);

  for (const std::string& err : config.errors()) {
    std::fprintf(stderr, "config: %s\n", err.c_str());
  }
  for (const std::string& key : config.UnusedKeys()) {
    std::fprintf(stderr, "config: unused key '%s' (typo?)\n", key.c_str());
  }

  auto policy = hib::MakePolicy(scheme);
  hib::ExperimentOptions options;
  options.collect_series = want_series;
  options.sample_period_ms = hib::Hours(1.0);
  options.trace_out = trace_out;
  options.metrics_out = metrics_out;
  hib::ExperimentResult r = hib::RunExperiment(*workload, *policy, array, options);

  hib::Table summary({"metric", "value"});
  summary.NewRow().Add("policy").Add(r.policy_desc);
  summary.NewRow().Add("goal (ms)").Add(goal_ms, 2);
  summary.NewRow().Add("requests").Add(r.requests);
  summary.NewRow().Add("energy (kJ)").Add(r.energy_total / 1000.0, 1);
  summary.NewRow().Add("mean power (W)").Add(r.MeanPower(), 1);
  summary.NewRow().Add("mean response (ms)").Add(r.mean_response_ms, 2);
  summary.NewRow().Add("p95 / p99 (ms)").Add(
      hib::FormatDouble(r.p95_response_ms.value(), 2) + " / " +
      hib::FormatDouble(r.p99_response_ms.value(), 2));
  summary.NewRow().Add("cache hit rate").AddPercent(r.cache_hit_rate);
  summary.NewRow().Add("RPM changes / spin-downs").Add(
      std::to_string(r.rpm_changes) + " / " + std::to_string(r.spin_downs));
  summary.NewRow().Add("migrated (GB)").Add(
      static_cast<double>(r.migrated_sectors) * hib::kSectorBytes / (1 << 30), 2);
  std::printf("%s", want_csv ? summary.ToCsv().c_str() : summary.ToString().c_str());

  if (want_series) {
    hib::Table series({"hour", "window resp (ms)", "energy so far (kJ)", "standby disks"});
    for (const hib::SeriesPoint& p : r.series) {
      series.NewRow()
          .Add(p.t / hib::Hours(1.0), 1)
          .Add(p.window_mean_response_ms, 2)
          .Add(p.energy_so_far / 1000.0, 1)
          .Add(p.disks_standby);
    }
    std::printf("\n%s", want_csv ? series.ToCsv().c_str() : series.ToString().c_str());
  }
  if (!trace_out.empty()) {
    std::printf("\n[trace: %s — open at https://ui.perfetto.dev]\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("[metrics: %s]\n", metrics_out.c_str());
  }
  return 0;
}
