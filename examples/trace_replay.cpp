// Example: replay a real block trace under any scheme.
//
//   ./trace_replay [<trace.spc>] [scheme] [goal_ms] [num_disks]
//                  [--trace-out <file>] [--metrics-out <file>]
//
// The trace is SPC-1-style ASCII: "asu,lba,size_bytes,opcode,timestamp"
// (see src/trace/spc_reader.h).  With no arguments, a small demonstration
// trace is generated in memory so the example is runnable out of the box.
// --trace-out writes a Chrome/Perfetto timeline of the replay itself.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/spc_reader.h"
#include "src/util/random.h"
#include "src/util/table.h"

namespace {

hib::Scheme ParseScheme(const char* name) {
  for (hib::Scheme s :
       {hib::Scheme::kBase, hib::Scheme::kTpm, hib::Scheme::kDrpm, hib::Scheme::kPdc,
        hib::Scheme::kMaid, hib::Scheme::kHibernator}) {
    if (std::strcmp(hib::SchemeName(s), name) == 0) {
      return s;
    }
  }
  std::fprintf(stderr, "unknown scheme '%s', using Hibernator\n", name);
  return hib::Scheme::kHibernator;
}

// A 30-minute demo trace: two busy ASUs, one cold one.
std::string MakeDemoTrace() {
  hib::Pcg32 rng(99);
  std::ostringstream out;
  double t = 0.0;
  while (t < 1800.0) {
    t += rng.NextExponential(0.05);  // ~20 iops
    int asu = rng.NextDouble() < 0.9 ? static_cast<int>(rng.NextBounded(2)) : 2;
    long long lba = rng.NextInRange(0, 1 << 22);
    const char* op = rng.NextDouble() < 0.6 ? "r" : "w";
    out << asu << "," << lba << ",4096," << op << "," << t << "\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the output flags out first; what remains is positional.
  std::string trace_out;
  std::string metrics_out;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    std::string* sink = nullptr;
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      sink = &trace_out;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      sink = &metrics_out;
    }
    if (sink != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file argument\n", argv[i]);
        return 1;
      }
      *sink = argv[++i];
      continue;
    }
    positional.push_back(argv[i]);
  }
  const char* path = positional.size() > 0 ? positional[0] : nullptr;
  hib::Scheme scheme =
      positional.size() > 1 ? ParseScheme(positional[1]) : hib::Scheme::kHibernator;
  hib::Duration goal_ms = hib::Ms(positional.size() > 2 ? std::atof(positional[2]) : 0.0);
  int num_disks = positional.size() > 3 ? std::atoi(positional[3]) : 8;

  hib::ArrayParams array;
  array.num_disks = num_disks;
  array.group_width = num_disks % 4 == 0 ? 4 : 1;
  array.disk = hib::MakeUltrastar36Z15MultiSpeed(5);

  hib::SchemeConfig cfg;
  cfg.scheme = scheme;
  array = hib::ArrayFor(cfg, array);

  std::unique_ptr<hib::SpcTraceReader> reader;
  if (path != nullptr) {
    reader = std::make_unique<hib::SpcTraceReader>(path, array.DataSectors());
    std::printf("replaying %s", path);
  } else {
    reader = hib::SpcTraceReader::FromString(MakeDemoTrace(), array.DataSectors());
    std::printf("no trace given; replaying a generated 30-minute demo trace");
  }
  std::printf(" under %s on %d disks\n", hib::SchemeName(scheme), num_disks);

  if (goal_ms <= hib::Duration{}) {
    reader->Reset();
    goal_ms = 2.5 * hib::MeasureBaseResponseMs(*reader, array, hib::Ms(-1.0));
    std::printf("goal: %.2f ms (2.5x measured base response)\n", goal_ms.value());
  }
  cfg.goal_ms = goal_ms;
  cfg.epoch_ms = hib::Hours(0.25);

  auto policy = hib::MakePolicy(cfg);
  reader->Reset();
  hib::ExperimentOptions options;
  options.trace_out = trace_out;
  options.metrics_out = metrics_out;
  hib::ExperimentResult r = hib::RunExperiment(*reader, *policy, array, options);

  hib::Table table({"metric", "value"});
  table.NewRow().Add("policy").Add(r.policy_desc);
  table.NewRow().Add("requests").Add(r.requests);
  table.NewRow().Add("parse errors").Add(reader->parse_errors());
  table.NewRow().Add("simulated time (h)").Add(r.sim_duration_ms / hib::Hours(1.0), 2);
  table.NewRow().Add("energy (kJ)").Add(r.energy_total / 1000.0, 2);
  table.NewRow().Add("mean power (W)").Add(r.MeanPower(), 1);
  table.NewRow().Add("mean response (ms)").Add(r.mean_response_ms, 2);
  table.NewRow().Add("p95 response (ms)").Add(r.p95_response_ms, 2);
  table.NewRow().Add("p99 response (ms)").Add(r.p99_response_ms, 2);
  table.NewRow().Add("cache hit rate").AddPercent(r.cache_hit_rate);
  table.NewRow().Add("RPM changes").Add(r.rpm_changes);
  table.NewRow().Add("spin-downs").Add(r.spin_downs);
  table.NewRow().Add("extents migrated").Add(r.migrations);
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
