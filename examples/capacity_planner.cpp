// Example: use the CR optimizer offline as a capacity/energy planner.
//
//   ./capacity_planner [disks] [goal_ms]
//
// Instead of simulating, this drives Hibernator's analytic core directly:
// for a sweep of aggregate request rates it asks CR for the energy-optimal
// speed assignment that meets the response-time goal, printing the resulting
// power draw and speed mix.  This is the "what would Hibernator do to my
// array at this load?" question an operator asks before deploying.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/hibernator/cr_algorithm.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  int num_disks = argc > 1 ? std::atoi(argv[1]) : 20;
  hib::Duration goal_ms = hib::Ms(argc > 2 ? std::atof(argv[2]) : 15.0);
  const int kGroupWidth = 4;
  int num_groups = num_disks / kGroupWidth;
  if (num_groups < 1) {
    std::fprintf(stderr, "need at least %d disks\n", kGroupWidth);
    return 1;
  }

  hib::DiskParams disk = hib::MakeUltrastar36Z15MultiSpeed(5);
  hib::SpeedServiceModel service = hib::SpeedServiceModel::FromDisk(disk, 12.0, 0.35);

  std::printf("capacity planner: %d disks (%d groups of %d), goal %.1f ms per sub-op\n",
              num_disks, num_groups, kGroupWidth, goal_ms.value());
  std::printf("full-power draw: %.1f W\n\n",
              (num_disks * disk.speeds.back().idle_power).value());

  hib::Table table({"agg. sub-ops/s", "per-disk util @15k", "power (W)", "vs full power",
                    "pred. resp (ms)", "speed mix (3k/6k/9k/12k/15k groups)", "feasible"});

  for (double aggregate_ops : {50.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    // Zipf-ish load split across groups: hottest group gets ~40%.
    std::vector<hib::Frequency> lambdas(static_cast<std::size_t>(num_groups));
    double weight_sum = 0.0;
    for (int g = 0; g < num_groups; ++g) {
      weight_sum += 1.0 / static_cast<double>(g + 1);
    }
    for (int g = 0; g < num_groups; ++g) {
      double share = (1.0 / static_cast<double>(g + 1)) / weight_sum;
      lambdas[static_cast<std::size_t>(g)] =
          hib::PerSecond(aggregate_ops * share / kGroupWidth);
    }

    hib::CrInput input;
    input.service = service;
    input.group_lambda = lambdas;
    input.group_width = kGroupWidth;
    input.goal_ms = goal_ms;
    input.epoch_ms = hib::Hours(2.0);
    input.disk = &disk;
    hib::CrResult r = hib::SolveCr(input);

    std::vector<int> mix(5, 0);
    for (int level : r.levels) {
      ++mix[static_cast<std::size_t>(level)];
    }
    std::string mix_str;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      mix_str += (i ? "/" : "") + std::to_string(mix[i]);
    }
    double util = aggregate_ops / num_disks * hib::ToSeconds(service.Level(4).mean_ms);
    table.NewRow()
        .Add(aggregate_ops, 0)
        .AddPercent(util)
        .Add(r.predicted_power, 1)
        .AddPercent(r.predicted_power / (num_disks * disk.speeds.back().idle_power))
        .Add(r.predicted_response_ms, 2)
        .Add(mix_str)
        .Add(r.feasible ? "yes" : "NO (full speed)");
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: at low load most groups crawl at 3k RPM for a fraction of the\n"
              "power; as load approaches the array's full-speed capacity, CR walks the\n"
              "mix back up to 15k and the energy saving window closes.\n");
  return 0;
}
