// Example: a day in an OLTP data center.
//
// Reconstructs the paper's motivating scenario end to end: a 20-disk RAID5
// array serving a TPC-C-like stream with a day/night cycle, compared across
// all six schemes from the paper's evaluation, with an hour-by-hour view of
// what Hibernator does with the disks.
//
//   ./oltp_datacenter [hours] [goal_multiplier]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  double hours = argc > 1 ? std::atof(argv[1]) : 12.0;
  double goal_multiplier = argc > 2 ? std::atof(argv[2]) : 2.5;

  hib::OltpSetup setup = hib::MakeOltpSetup();
  setup.duration_ms = hib::Hours(hours);

  auto make_workload = [&](const hib::ArrayParams& array) {
    hib::OltpWorkloadParams wp;
    wp.address_space_sectors = array.DataSectors();
    wp.duration_ms = setup.duration_ms;
    wp.peak_iops = setup.peak_iops;
    wp.trough_iops = setup.trough_iops;
    return std::make_unique<hib::OltpWorkload>(wp);
  };

  // Measure the Base response to express the goal the way an operator would:
  // "at most 2.5x slower than running everything flat out".
  hib::Duration base_resp;
  {
    auto workload = make_workload(setup.array);
    base_resp = hib::MeasureBaseResponseMs(*workload, setup.array, hib::Hours(2.0));
  }
  hib::Duration goal_ms = goal_multiplier * base_resp;
  std::printf("OLTP data center: %d disks, %.0f simulated hours, goal %.2f ms (%.1fx base)\n\n",
              setup.array.num_disks, hours, goal_ms.value(), goal_multiplier);

  hib::ExperimentOptions options;
  options.collect_series = true;
  options.sample_period_ms = hib::Hours(1.0);

  hib::Table table({"scheme", "energy (kJ)", "savings", "mean resp (ms)", "p95 (ms)",
                    "goal met"});
  std::vector<hib::SeriesPoint> hibernator_series;
  hib::Joules base_energy;
  for (hib::Scheme scheme : hib::MainComparisonSchemes()) {
    hib::SchemeConfig cfg;
    cfg.scheme = scheme;
    cfg.goal_ms = goal_ms;
    hib::ArrayParams array = hib::ArrayFor(cfg, setup.array);
    auto policy = hib::MakePolicy(cfg);
    auto workload = make_workload(array);
    hib::ExperimentResult r = hib::RunExperiment(*workload, *policy, array, options);
    if (scheme == hib::Scheme::kBase) {
      base_energy = r.energy_total;
    }
    if (scheme == hib::Scheme::kHibernator) {
      hibernator_series = r.series;
    }
    bool hib_family = r.policy_name.rfind("Hibernator", 0) == 0;
    table.NewRow()
        .Add(r.policy_name)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(base_energy > hib::Joules{} ? 1.0 - r.energy_total / base_energy : 0.0)
        .Add(r.mean_response_ms, 2)
        .Add(r.p95_response_ms, 2)
        .Add(hib_family ? (r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO") : "n/a");
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Hibernator, hour by hour (disks per RPM level):\n");
  hib::Table hourly({"hour", "window resp (ms)", "3k", "6k", "9k", "12k", "15k"});
  for (const hib::SeriesPoint& p : hibernator_series) {
    hourly.NewRow().Add(p.t / hib::Hours(1.0), 0).Add(p.window_mean_response_ms, 2);
    for (int n : p.disks_at_level) {
      hourly.Add(n);
    }
  }
  std::printf("%s", hourly.ToString().c_str());
  return 0;
}
