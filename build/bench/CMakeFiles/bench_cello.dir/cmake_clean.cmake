file(REMOVE_RECURSE
  "CMakeFiles/bench_cello.dir/bench_cello.cc.o"
  "CMakeFiles/bench_cello.dir/bench_cello.cc.o.d"
  "bench_cello"
  "bench_cello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
