# Empty dependencies file for bench_cello.
# This may be replaced when dependencies are built.
