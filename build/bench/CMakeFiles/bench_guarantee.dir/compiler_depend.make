# Empty compiler generated dependencies file for bench_guarantee.
# This may be replaced when dependencies are built.
