file(REMOVE_RECURSE
  "CMakeFiles/bench_guarantee.dir/bench_guarantee.cc.o"
  "CMakeFiles/bench_guarantee.dir/bench_guarantee.cc.o.d"
  "bench_guarantee"
  "bench_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
