file(REMOVE_RECURSE
  "CMakeFiles/bench_oltp.dir/bench_oltp.cc.o"
  "CMakeFiles/bench_oltp.dir/bench_oltp.cc.o.d"
  "bench_oltp"
  "bench_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
