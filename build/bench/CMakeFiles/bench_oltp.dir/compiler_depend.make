# Empty compiler generated dependencies file for bench_oltp.
# This may be replaced when dependencies are built.
