file(REMOVE_RECURSE
  "CMakeFiles/bench_cr_ablation.dir/bench_cr_ablation.cc.o"
  "CMakeFiles/bench_cr_ablation.dir/bench_cr_ablation.cc.o.d"
  "bench_cr_ablation"
  "bench_cr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
