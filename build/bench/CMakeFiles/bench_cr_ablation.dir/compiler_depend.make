# Empty compiler generated dependencies file for bench_cr_ablation.
# This may be replaced when dependencies are built.
