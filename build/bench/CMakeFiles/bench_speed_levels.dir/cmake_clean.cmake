file(REMOVE_RECURSE
  "CMakeFiles/bench_speed_levels.dir/bench_speed_levels.cc.o"
  "CMakeFiles/bench_speed_levels.dir/bench_speed_levels.cc.o.d"
  "bench_speed_levels"
  "bench_speed_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
