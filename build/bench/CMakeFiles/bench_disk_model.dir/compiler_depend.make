# Empty compiler generated dependencies file for bench_disk_model.
# This may be replaced when dependencies are built.
