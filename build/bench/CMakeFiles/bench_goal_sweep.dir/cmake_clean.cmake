file(REMOVE_RECURSE
  "CMakeFiles/bench_goal_sweep.dir/bench_goal_sweep.cc.o"
  "CMakeFiles/bench_goal_sweep.dir/bench_goal_sweep.cc.o.d"
  "bench_goal_sweep"
  "bench_goal_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_goal_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
