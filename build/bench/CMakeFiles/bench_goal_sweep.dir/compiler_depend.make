# Empty compiler generated dependencies file for bench_goal_sweep.
# This may be replaced when dependencies are built.
