
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/disk_test.cc" "tests/CMakeFiles/disk_test.dir/disk_test.cc.o" "gcc" "tests/CMakeFiles/disk_test.dir/disk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hib_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/hibernator/CMakeFiles/hib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/hib_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hib_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/hib_array.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hib_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
