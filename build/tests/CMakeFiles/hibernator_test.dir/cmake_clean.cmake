file(REMOVE_RECURSE
  "CMakeFiles/hibernator_test.dir/hibernator_test.cc.o"
  "CMakeFiles/hibernator_test.dir/hibernator_test.cc.o.d"
  "hibernator_test"
  "hibernator_test.pdb"
  "hibernator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hibernator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
