# Empty compiler generated dependencies file for hibernator_test.
# This may be replaced when dependencies are built.
