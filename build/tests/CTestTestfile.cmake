# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/cr_test[1]_include.cmake")
include("/root/repo/build/tests/guarantee_test[1]_include.cmake")
include("/root/repo/build/tests/hibernator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
