# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "0.5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_oltp_datacenter "/root/repo/build/examples/oltp_datacenter" "1" "2.5")
set_tests_properties(example_oltp_datacenter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "8" "20")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill" "1.5")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hibersim_default_config "/root/repo/build/examples/hibersim" "--print-default-config")
set_tests_properties(example_hibersim_default_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hibersim_run "/root/repo/build/examples/hibersim" "/root/repo/examples/smoke.conf.example")
set_tests_properties(example_hibersim_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
