# Empty compiler generated dependencies file for oltp_datacenter.
# This may be replaced when dependencies are built.
