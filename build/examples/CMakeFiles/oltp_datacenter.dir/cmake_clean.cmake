file(REMOVE_RECURSE
  "CMakeFiles/oltp_datacenter.dir/oltp_datacenter.cpp.o"
  "CMakeFiles/oltp_datacenter.dir/oltp_datacenter.cpp.o.d"
  "oltp_datacenter"
  "oltp_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
