# Empty compiler generated dependencies file for hibersim.
# This may be replaced when dependencies are built.
