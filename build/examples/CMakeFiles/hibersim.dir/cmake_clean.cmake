file(REMOVE_RECURSE
  "CMakeFiles/hibersim.dir/hibersim.cpp.o"
  "CMakeFiles/hibersim.dir/hibersim.cpp.o.d"
  "hibersim"
  "hibersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hibersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
