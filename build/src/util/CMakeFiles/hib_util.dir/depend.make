# Empty dependencies file for hib_util.
# This may be replaced when dependencies are built.
