file(REMOVE_RECURSE
  "CMakeFiles/hib_util.dir/config.cc.o"
  "CMakeFiles/hib_util.dir/config.cc.o.d"
  "CMakeFiles/hib_util.dir/log.cc.o"
  "CMakeFiles/hib_util.dir/log.cc.o.d"
  "CMakeFiles/hib_util.dir/random.cc.o"
  "CMakeFiles/hib_util.dir/random.cc.o.d"
  "CMakeFiles/hib_util.dir/stats.cc.o"
  "CMakeFiles/hib_util.dir/stats.cc.o.d"
  "CMakeFiles/hib_util.dir/table.cc.o"
  "CMakeFiles/hib_util.dir/table.cc.o.d"
  "libhib_util.a"
  "libhib_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
