file(REMOVE_RECURSE
  "libhib_util.a"
)
