file(REMOVE_RECURSE
  "libhib_harness.a"
)
