file(REMOVE_RECURSE
  "CMakeFiles/hib_harness.dir/experiment.cc.o"
  "CMakeFiles/hib_harness.dir/experiment.cc.o.d"
  "CMakeFiles/hib_harness.dir/schemes.cc.o"
  "CMakeFiles/hib_harness.dir/schemes.cc.o.d"
  "libhib_harness.a"
  "libhib_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
