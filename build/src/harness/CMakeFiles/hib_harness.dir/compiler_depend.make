# Empty compiler generated dependencies file for hib_harness.
# This may be replaced when dependencies are built.
