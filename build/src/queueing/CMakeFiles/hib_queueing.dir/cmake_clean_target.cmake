file(REMOVE_RECURSE
  "libhib_queueing.a"
)
