# Empty compiler generated dependencies file for hib_queueing.
# This may be replaced when dependencies are built.
