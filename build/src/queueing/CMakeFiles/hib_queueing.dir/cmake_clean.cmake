file(REMOVE_RECURSE
  "CMakeFiles/hib_queueing.dir/mg1.cc.o"
  "CMakeFiles/hib_queueing.dir/mg1.cc.o.d"
  "libhib_queueing.a"
  "libhib_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
