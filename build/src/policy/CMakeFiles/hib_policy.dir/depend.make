# Empty dependencies file for hib_policy.
# This may be replaced when dependencies are built.
