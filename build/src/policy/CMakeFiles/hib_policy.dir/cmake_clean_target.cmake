file(REMOVE_RECURSE
  "libhib_policy.a"
)
