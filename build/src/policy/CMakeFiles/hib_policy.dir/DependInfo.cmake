
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/drpm.cc" "src/policy/CMakeFiles/hib_policy.dir/drpm.cc.o" "gcc" "src/policy/CMakeFiles/hib_policy.dir/drpm.cc.o.d"
  "/root/repo/src/policy/maid.cc" "src/policy/CMakeFiles/hib_policy.dir/maid.cc.o" "gcc" "src/policy/CMakeFiles/hib_policy.dir/maid.cc.o.d"
  "/root/repo/src/policy/pdc.cc" "src/policy/CMakeFiles/hib_policy.dir/pdc.cc.o" "gcc" "src/policy/CMakeFiles/hib_policy.dir/pdc.cc.o.d"
  "/root/repo/src/policy/tpm.cc" "src/policy/CMakeFiles/hib_policy.dir/tpm.cc.o" "gcc" "src/policy/CMakeFiles/hib_policy.dir/tpm.cc.o.d"
  "/root/repo/src/policy/tpm_adaptive.cc" "src/policy/CMakeFiles/hib_policy.dir/tpm_adaptive.cc.o" "gcc" "src/policy/CMakeFiles/hib_policy.dir/tpm_adaptive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/hib_array.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hib_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hib_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
