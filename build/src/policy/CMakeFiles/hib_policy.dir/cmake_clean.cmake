file(REMOVE_RECURSE
  "CMakeFiles/hib_policy.dir/drpm.cc.o"
  "CMakeFiles/hib_policy.dir/drpm.cc.o.d"
  "CMakeFiles/hib_policy.dir/maid.cc.o"
  "CMakeFiles/hib_policy.dir/maid.cc.o.d"
  "CMakeFiles/hib_policy.dir/pdc.cc.o"
  "CMakeFiles/hib_policy.dir/pdc.cc.o.d"
  "CMakeFiles/hib_policy.dir/tpm.cc.o"
  "CMakeFiles/hib_policy.dir/tpm.cc.o.d"
  "CMakeFiles/hib_policy.dir/tpm_adaptive.cc.o"
  "CMakeFiles/hib_policy.dir/tpm_adaptive.cc.o.d"
  "libhib_policy.a"
  "libhib_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
