# Empty compiler generated dependencies file for hib_disk.
# This may be replaced when dependencies are built.
