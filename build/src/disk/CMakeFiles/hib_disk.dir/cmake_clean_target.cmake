file(REMOVE_RECURSE
  "libhib_disk.a"
)
