file(REMOVE_RECURSE
  "CMakeFiles/hib_disk.dir/disk.cc.o"
  "CMakeFiles/hib_disk.dir/disk.cc.o.d"
  "CMakeFiles/hib_disk.dir/disk_params.cc.o"
  "CMakeFiles/hib_disk.dir/disk_params.cc.o.d"
  "libhib_disk.a"
  "libhib_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
