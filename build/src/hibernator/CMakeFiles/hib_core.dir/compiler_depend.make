# Empty compiler generated dependencies file for hib_core.
# This may be replaced when dependencies are built.
