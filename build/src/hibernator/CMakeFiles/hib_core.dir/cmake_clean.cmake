file(REMOVE_RECURSE
  "CMakeFiles/hib_core.dir/cr_algorithm.cc.o"
  "CMakeFiles/hib_core.dir/cr_algorithm.cc.o.d"
  "CMakeFiles/hib_core.dir/hibernator_policy.cc.o"
  "CMakeFiles/hib_core.dir/hibernator_policy.cc.o.d"
  "CMakeFiles/hib_core.dir/perf_guarantee.cc.o"
  "CMakeFiles/hib_core.dir/perf_guarantee.cc.o.d"
  "libhib_core.a"
  "libhib_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
