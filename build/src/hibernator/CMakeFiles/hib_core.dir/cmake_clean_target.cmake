file(REMOVE_RECURSE
  "libhib_core.a"
)
