# Empty dependencies file for hib_trace.
# This may be replaced when dependencies are built.
