file(REMOVE_RECURSE
  "libhib_trace.a"
)
