file(REMOVE_RECURSE
  "CMakeFiles/hib_trace.dir/spc_reader.cc.o"
  "CMakeFiles/hib_trace.dir/spc_reader.cc.o.d"
  "CMakeFiles/hib_trace.dir/spc_writer.cc.o"
  "CMakeFiles/hib_trace.dir/spc_writer.cc.o.d"
  "CMakeFiles/hib_trace.dir/synthetic.cc.o"
  "CMakeFiles/hib_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/hib_trace.dir/trace.cc.o"
  "CMakeFiles/hib_trace.dir/trace.cc.o.d"
  "libhib_trace.a"
  "libhib_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
