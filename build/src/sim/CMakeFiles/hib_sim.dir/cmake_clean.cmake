file(REMOVE_RECURSE
  "CMakeFiles/hib_sim.dir/event_queue.cc.o"
  "CMakeFiles/hib_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hib_sim.dir/simulator.cc.o"
  "CMakeFiles/hib_sim.dir/simulator.cc.o.d"
  "libhib_sim.a"
  "libhib_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
