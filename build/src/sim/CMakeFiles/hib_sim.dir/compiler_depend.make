# Empty compiler generated dependencies file for hib_sim.
# This may be replaced when dependencies are built.
