file(REMOVE_RECURSE
  "libhib_sim.a"
)
