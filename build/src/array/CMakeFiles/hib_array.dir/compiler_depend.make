# Empty compiler generated dependencies file for hib_array.
# This may be replaced when dependencies are built.
