file(REMOVE_RECURSE
  "CMakeFiles/hib_array.dir/array.cc.o"
  "CMakeFiles/hib_array.dir/array.cc.o.d"
  "CMakeFiles/hib_array.dir/cache.cc.o"
  "CMakeFiles/hib_array.dir/cache.cc.o.d"
  "CMakeFiles/hib_array.dir/layout.cc.o"
  "CMakeFiles/hib_array.dir/layout.cc.o.d"
  "libhib_array.a"
  "libhib_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hib_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
