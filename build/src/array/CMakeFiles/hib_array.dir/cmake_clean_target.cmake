file(REMOVE_RECURSE
  "libhib_array.a"
)
