
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/array.cc" "src/array/CMakeFiles/hib_array.dir/array.cc.o" "gcc" "src/array/CMakeFiles/hib_array.dir/array.cc.o.d"
  "/root/repo/src/array/cache.cc" "src/array/CMakeFiles/hib_array.dir/cache.cc.o" "gcc" "src/array/CMakeFiles/hib_array.dir/cache.cc.o.d"
  "/root/repo/src/array/layout.cc" "src/array/CMakeFiles/hib_array.dir/layout.cc.o" "gcc" "src/array/CMakeFiles/hib_array.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/hib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hib_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
