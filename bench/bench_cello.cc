// E5 — reproduces the paper's Cello99 figures: energy and response time per
// scheme on the bursty, diurnal file-server workload.  Cello's deep night
// valleys give every scheme more room than OLTP; the paper's shape has
// Hibernator reaching its largest savings here (up to ~65%) while still
// meeting the response-time goal.
//
// All schemes run concurrently (one simulation per core, see
// src/harness/parallel.h); results are identical to a sequential run.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main() {
  hib::PrintHeader("E5 (paper Figs: Cello99 energy & response time)",
                   "Scheme comparison on the 24h Cello-like workload");

  hib::CelloSetup setup = hib::MakeCelloSetup();
  setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  std::printf("array: %d disks, width-%d groups, 5-speed disks; epoch 2h\n",
              setup.array.num_disks, setup.array.group_width);

  double goal_multiplier = 2.5;
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::CelloWorkload>(hib::CelloParamsFor(setup, array));
  };
  hib::WallTimer timer;
  hib::Duration goal_ms;
  std::vector<hib::ComparisonRow> rows =
      hib::RunComparison(hib::MainComparisonSchemes(), setup.array, make_workload,
                         goal_multiplier, hib::Hours(2.0), {}, &goal_ms);
  hib::PrintEnergyAndResponseTables(rows, goal_ms);
  hib::WriteComparisonJson("cello", timer.Seconds(), rows, goal_ms);
  return 0;
}
