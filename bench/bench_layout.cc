// E9 — reproduces the paper's data-layout comparison: Hibernator's multi-tier
// layout (temperature-sorted extents over RAID groups, migrated in the
// background) against (a) no migration at all (speeds only) and (b) a
// PDC-style concentration that sacrifices striping.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main() {
  hib::PrintHeader("E9 (paper Fig: data layout / migration strategies)",
                   "Layout strategies under Hibernator-style speed control, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();

  hib::Table table({"skew", "layout", "energy (kJ)", "savings", "mean resp (ms)", "p95 (ms)",
                    "goal met", "migrated (GB)"});

  struct Variant {
    const char* name;
    hib::Scheme scheme;
  };
  // Spatial skew stresses the layouts differently: concentration squeezes
  // the hot data onto fewer spindles, so the hotter the workload the more
  // the concentrated layouts pay in lost parallelism.
  for (double theta : {0.86, 1.2}) {
    auto make_workload = [&](const hib::ArrayParams& array) {
      hib::OltpWorkloadParams wp = hib::OltpParamsFor(setup, array);
      wp.zipf_theta = theta;
      return std::make_unique<hib::OltpWorkload>(wp);
    };
    hib::SchemeConfig base_cfg;
    base_cfg.scheme = hib::Scheme::kBase;
    auto base_policy = hib::MakePolicy(base_cfg);
    auto base_workload = make_workload(setup.array);
    hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
    hib::Duration goal_ms = 2.5 * base.mean_response_ms;
    std::printf("theta=%.2f: goal %.2f ms (2.5x Base %.2f ms, %.1f kJ)\n", theta,
                goal_ms.value(), base.mean_response_ms.value(),
                base.energy_total.value() / 1000.0);

    for (const Variant& v :
         {Variant{"multi-tier + migration (Hibernator)", hib::Scheme::kHibernator},
          Variant{"speeds only, no migration", hib::Scheme::kHibernatorNoMigration},
          Variant{"PDC-style concentration (width 1)", hib::Scheme::kPdc}}) {
      hib::SchemeConfig cfg;
      cfg.scheme = v.scheme;
      cfg.goal_ms = goal_ms;
      hib::ArrayParams array = hib::ArrayFor(cfg, setup.array);
      auto policy = hib::MakePolicy(cfg);
      auto workload = make_workload(array);
      hib::ExperimentResult r = hib::RunExperiment(*workload, *policy, array);
      table.NewRow()
          .Add(theta, 2)
          .Add(v.name)
          .Add(r.energy_total / 1000.0, 1)
          .AddPercent(r.SavingsVs(base))
          .Add(r.mean_response_ms, 2)
          .Add(r.p95_response_ms, 2)
          .Add(v.scheme == hib::Scheme::kPdc
                   ? "n/a"
                   : (r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO"))
          .Add(static_cast<double>(r.migrated_sectors) * hib::kSectorBytes / (1 << 30), 2);
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("shape check: the paper's layout claim — concentrate heat while PRESERVING\n"
              "striping — shows up as the multi-tier rows meeting the goal at every skew\n"
              "while width-1 PDC concentration pays an escalating parallelism tax (p95\n"
              "explodes at high skew: the hot disk saturates).  Migration's *energy* edge\n"
              "over speeds-only does not materialize here because the hash-scrambled\n"
              "synthetic layout starts perfectly heat-balanced (an honest negative; see\n"
              "EXPERIMENTS.md).\n");
  return 0;
}
