// E11 — ablation: CR's constrained optimization vs the naive per-group
// utilization-threshold speed setter (same epochs, same migration, same
// boost).  The threshold setter has no response-time model, so it either
// over-slows (goal violations absorbed by boosts, costing energy) or
// under-slows (wasted savings), depending on the threshold.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E11 (ablation: CR vs utilization-threshold speed setting)",
                   "Speed-setting policies under identical epochs/migration, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("goal: %.2f ms\n\n", goal_ms);

  hib::Table table({"speed setter", "energy (kJ)", "savings", "mean resp (ms)", "goal met",
                    "boosts", "boosted (h)"});

  struct Variant {
    std::string name;
    bool use_cr;
    double threshold;
  };
  for (const Variant& v : {Variant{"CR (response-time model)", true, 0.0},
                           Variant{"util threshold 0.3", false, 0.3},
                           Variant{"util threshold 0.5", false, 0.5},
                           Variant{"util threshold 0.7", false, 0.7}}) {
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hp.use_cr = v.use_cr;
    if (!v.use_cr) {
      hp.threshold_target_utilization = v.threshold;
    }
    hib::HibernatorPolicy policy(hp);
    auto workload = make_workload(setup.array);
    hib::ExperimentResult r = hib::RunExperiment(*workload, policy, setup.array);
    table.NewRow()
        .Add(v.name)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(policy.boosts())
        .Add(policy.boosted_ms() / hib::kMsPerHour, 2);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: CR tracks the goal directly; fixed thresholds either leave\n"
              "savings on the table or lean on boosts to repair violations.\n");
  return 0;
}
