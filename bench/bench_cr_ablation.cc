// E11 — ablation: CR's constrained optimization vs the naive per-group
// utilization-threshold speed setter (same epochs, same migration, same
// boost).  The threshold setter has no response-time model, so it either
// over-slows (goal violations absorbed by boosts, costing energy) or
// under-slows (wasted savings), depending on the threshold.
//
// The Base run anchors the goal, then all variants run concurrently via
// RunAll (src/harness/parallel.h); results match a sequential run exactly.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E11 (ablation: CR vs utilization-threshold speed setting)",
                   "Speed-setting policies under identical epochs/migration, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::WallTimer timer;

  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("goal: %.2f ms\n\n", goal_ms.value());

  struct Variant {
    std::string name;
    bool use_cr;
    double threshold;
  };
  const std::vector<Variant> variants = {{"CR (response-time model)", true, 0.0},
                                         {"util threshold 0.3", false, 0.3},
                                         {"util threshold 0.5", false, 0.5},
                                         {"util threshold 0.7", false, 0.7}};
  struct PolicyCounters {
    std::int64_t boosts = 0;
    hib::Duration boosted_ms;
  };
  std::vector<hib::ExperimentSpec> specs;
  std::vector<PolicyCounters> counters(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hp.use_cr = v.use_cr;
    if (!v.use_cr) {
      hp.threshold_target_utilization = v.threshold;
    }
    hib::ExperimentSpec spec;
    spec.name = v.name;
    spec.array = setup.array;
    spec.make_policy = [hp] { return std::make_unique<hib::HibernatorPolicy>(hp); };
    spec.make_workload = make_workload;
    spec.post_run = [&counters, i](const hib::PowerPolicy& policy,
                                   const hib::ExperimentResult&) {
      const auto& hib_policy = static_cast<const hib::HibernatorPolicy&>(policy);
      counters[i].boosts = hib_policy.boosts();
      counters[i].boosted_ms = hib_policy.boosted_ms();
    };
    specs.push_back(std::move(spec));
  }
  std::vector<hib::ExperimentResult> results = hib::RunAll(specs);

  hib::Table table({"speed setter", "energy (kJ)", "savings", "mean resp (ms)", "goal met",
                    "boosts", "boosted (h)"});
  hib::JsonArray runs;
  std::uint64_t total_events = base.events;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const hib::ExperimentResult& r = results[i];
    table.NewRow()
        .Add(variants[i].name)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(counters[i].boosts)
        .Add(counters[i].boosted_ms.value() / hib::kMsPerHour, 2);
    hib::JsonObject run = hib::ResultJson(variants[i].name, r);
    run.Set("use_cr", hib::JsonValue::Bool(variants[i].use_cr))
        .Set("threshold", variants[i].threshold)
        .Set("goal_ms", goal_ms.value())
        .Set("savings_vs_base", r.SavingsVs(base))
        .Set("boosts", hib::JsonValue::Int(counters[i].boosts))
        .Set("boosted_ms", counters[i].boosted_ms.value());
    runs.Push(hib::JsonValue::Raw(run.Dump()));
    total_events += r.events;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: CR tracks the goal directly; fixed thresholds either leave\n"
              "savings on the table or lean on boosts to repair violations.\n");

  hib::JsonObject payload = hib::BenchPayload("cr_ablation", timer.Seconds(), total_events);
  payload.Set("base", hib::ResultJson("Base", base)).Set("runs", runs);
  hib::WriteBenchJson("cr_ablation", payload);
  return 0;
}
