// E10 — reproduces the paper's performance-guarantee dynamics figure: the
// response-time timeline under a midday load surge, with and without the
// automatic full-speed boost.  With the boost, the credit account detects the
// violation risk and spins everything up; without it the array stays slow and
// the average response blows through the goal.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E10 (paper Fig: performance-guarantee dynamics)",
                   "Response timeline under a 2x load surge at 12h-14h, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  auto make_workload = [&](const hib::ArrayParams& array) {
    hib::OltpWorkloadParams wp = hib::OltpParamsFor(setup, array);
    wp.surge_start_ms = hib::Hours(12.0);
    wp.surge_end_ms = hib::Hours(14.0);
    wp.surge_factor = 2.0;
    return std::make_unique<hib::OltpWorkload>(wp);
  };

  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("goal: %.2f ms; surge: 2x arrival rate in [12h, 14h)\n\n", goal_ms.value());

  hib::ExperimentOptions options;
  options.collect_series = true;
  options.sample_period_ms = hib::Hours(1.0);

  struct Run {
    const char* name;
    bool boost;
    hib::ExperimentResult result;
    int boosts = 0;
    hib::Duration boosted_ms;
  };
  Run runs[] = {{"with boost", true, {}, 0, {}}, {"without boost", false, {}, 0, {}}};
  for (Run& run : runs) {
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hp.enable_boost = run.boost;
    // Migration is disabled to isolate the guarantee mechanism: a
    // heat-concentrated layout turns the surge into a capacity problem no
    // speed setting can fix (see E9), which would swamp the boost dynamics
    // this figure is about.
    hp.enable_migration = false;
    hib::HibernatorPolicy policy(hp);
    auto workload = make_workload(setup.array);
    run.result = hib::RunExperiment(*workload, policy, setup.array, options);
    run.boosts = policy.boosts();
    run.boosted_ms = policy.boosted_ms();
  }

  hib::Table series({"hour", "resp w/ boost (ms)", "fast disks w/", "resp w/o boost (ms)",
                     "fast disks w/o"});
  std::size_t points = std::min(runs[0].result.series.size(), runs[1].result.series.size());
  for (std::size_t i = 0; i < points; ++i) {
    const hib::SeriesPoint& a = runs[0].result.series[i];
    const hib::SeriesPoint& b = runs[1].result.series[i];
    series.NewRow()
        .Add(a.t.value() / hib::kMsPerHour, 1)
        .Add(a.window_mean_response_ms, 2)
        .Add(a.disks_at_level.empty() ? 0 : a.disks_at_level.back())
        .Add(b.window_mean_response_ms, 2)
        .Add(b.disks_at_level.empty() ? 0 : b.disks_at_level.back());
  }
  std::printf("%s\n", series.ToString().c_str());

  hib::Table summary(
      {"variant", "mean resp (ms)", "goal met", "energy (kJ)", "boosts", "boosted (h)"});
  for (const Run& run : runs) {
    summary.NewRow()
        .Add(run.name)
        .Add(run.result.mean_response_ms, 2)
        .Add(run.result.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(run.result.energy_total / 1000.0, 1)
        .Add(run.boosts)
        .Add(run.boosted_ms.value() / hib::kMsPerHour, 2);
  }
  std::printf("%s\n", summary.ToString().c_str());
  std::printf("paper shape check: the boost variant spins disks up around the surge (fast\n"
              "disks jump to the full array) and keeps the mean within the goal; the\n"
              "no-boost variant rides the surge slow and misses it.\n");
  return 0;
}
