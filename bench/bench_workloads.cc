// E2 — reproduces the paper's workload-characteristics table for the two
// synthetic traces standing in for the OLTP (TPC-C) and Cello99 traces.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main() {
  hib::PrintHeader("E2 (paper Table: trace characteristics)",
                   "Synthetic OLTP and Cello workload summaries (24 simulated hours)");

  hib::OltpSetup oltp = hib::MakeOltpSetup();
  hib::CelloSetup cello = hib::MakeCelloSetup();

  hib::OltpWorkload oltp_w(hib::OltpParamsFor(oltp, oltp.array));
  hib::CelloWorkload cello_w(hib::CelloParamsFor(cello, cello.array));

  hib::Table table({"trace", "disks", "requests", "avg iops", "read frac", "avg size (KB)",
                    "interarrival mean (ms)", "interarrival scv", "space (GB)"});
  struct Entry {
    const char* name;
    int disks;
    hib::WorkloadSource* source;
    hib::SectorAddr space;
  };
  Entry entries[] = {
      {"OLTP (TPC-C-like)", oltp.array.num_disks, &oltp_w, oltp.array.DataSectors()},
      {"Cello (file server)", cello.array.num_disks, &cello_w, cello.array.DataSectors()},
  };
  for (const Entry& e : entries) {
    hib::TraceSummary s = hib::Summarize(*e.source);
    double mean = s.interarrival_ms.mean();
    double scv = mean > 0 ? s.interarrival_ms.variance() / (mean * mean) : 0.0;
    table.NewRow()
        .Add(e.name)
        .Add(e.disks)
        .Add(s.records)
        .Add(s.Iops(), 1)
        .Add(s.read_fraction, 3)
        .Add(s.MeanSizeKb(), 1)
        .Add(mean, 2)
        .Add(scv, 2)
        .Add(static_cast<double>(e.space) * hib::kSectorBytes / 1e9, 1);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: Cello is burstier (interarrival SCV >> 1) and has deeper\n"
              "night valleys than OLTP; both are skewed, giving migration something to do.\n");
  return 0;
}
