// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every binary prints one experiment from DESIGN.md's index: a header naming
// the paper artifact it regenerates, then the table/series in the same shape
// the paper reports (schemes x {energy, response time}, or a parameter sweep).
//
// In addition to the human-readable tables, every bench emits a
// machine-readable BENCH_<name>.json (wall-clock, simulator events/sec and
// per-run metrics) via WriteBenchJson.  CI archives these as artifacts, so
// the files form the performance trajectory future changes regress against.
// Set HIB_BENCH_JSON_DIR to redirect the output directory (default: cwd),
// and HIB_BENCH_HOURS to shrink the simulated horizon for smoke runs.
#ifndef HIBERNATOR_BENCH_BENCH_COMMON_H_
#define HIBERNATOR_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/parallel.h"
#include "src/harness/schemes.h"
#include "src/obs/export.h"
#include "src/trace/synthetic.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace hib {

inline void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==============================================================================\n");
}

// --- machine-readable bench output (BENCH_<name>.json) ---------------------
// The JSON builder lives in src/util/json.h (shared with src/obs exporters).

// Per-run metrics block shared by every bench's JSON output.
inline JsonObject ResultJson(const std::string& name, const ExperimentResult& r) {
  JsonObject o;
  o.Set("name", name)
      .Set("energy_j", r.energy_total.value())
      .Set("mean_response_ms", r.mean_response_ms.value())
      .Set("p95_response_ms", r.p95_response_ms.value())
      .Set("p99_response_ms", r.p99_response_ms.value())
      .Set("max_response_ms", r.max_response_ms.value())
      .Set("requests", JsonValue::Int(r.requests))
      .Set("events", JsonValue::UInt(r.events))
      .Set("sim_duration_ms", r.sim_duration_ms.value())
      .Set("mean_power_w", r.MeanPower().value())
      .Set("cache_hit_rate", r.cache_hit_rate)
      .Set("spin_ups", JsonValue::Int(r.spin_ups))
      .Set("spin_downs", JsonValue::Int(r.spin_downs))
      .Set("rpm_changes", JsonValue::Int(r.rpm_changes))
      .Set("migrations", JsonValue::Int(r.migrations))
      .Set("migrated_sectors", JsonValue::Int(r.migrated_sectors))
      .Set("metrics", MetricsSnapshotJson(r.metrics));
  return o;
}

// Wall-clock timer for the bench JSON ("how long did the evaluation take").
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Writes BENCH_<bench_name>.json into $HIB_BENCH_JSON_DIR (default: cwd).
// `payload` should carry at least wall_seconds / events / events_per_sec plus
// a "runs" array of ResultJson blocks; benches may add sweep-specific fields.
inline void WriteBenchJson(const std::string& bench_name, const JsonObject& payload) {
  std::string dir = ".";
  if (const char* env = std::getenv("HIB_BENCH_JSON_DIR")) {
    if (*env) {
      dir = env;
    }
  }
  std::string path = dir + "/BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << payload.Dump() << "\n";
  std::printf("[bench json: %s]\n", path.c_str());
}

// Standard top-level payload: identity, wall clock, aggregate event rate.
inline JsonObject BenchPayload(const std::string& bench_name, double wall_seconds,
                               std::uint64_t total_events) {
  JsonObject payload;
  payload.Set("bench", bench_name)
      .Set("wall_seconds", wall_seconds)
      .Set("events", JsonValue::UInt(total_events))
      .Set("events_per_sec", wall_seconds > 0.0
                                 ? static_cast<double>(total_events) / wall_seconds
                                 : 0.0)
      .Set("threads", JsonValue::Int(DefaultParallelism()));
  return payload;
}

// Simulated-horizon override for smoke runs: HIB_BENCH_HOURS, when set to a
// positive number, replaces a bench's default (usually 24h) duration.
inline Duration BenchDurationMs(Duration default_ms) {
  if (const char* env = std::getenv("HIB_BENCH_HOURS")) {
    double hours = std::atof(env);
    if (hours > 0.0) {
      return Hours(hours);
    }
  }
  return default_ms;
}

// --- scheme-comparison driver ----------------------------------------------

inline OltpWorkloadParams OltpParamsFor(const OltpSetup& setup, const ArrayParams& array) {
  OltpWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = setup.duration_ms;
  wp.peak_iops = setup.peak_iops;
  wp.trough_iops = setup.trough_iops;
  return wp;
}

inline CelloWorkloadParams CelloParamsFor(const CelloSetup& setup, const ArrayParams& array) {
  CelloWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = setup.duration_ms;
  wp.peak_iops = setup.peak_iops;
  wp.trough_iops = setup.trough_iops;
  return wp;
}

struct ComparisonRow {
  Scheme scheme;
  ExperimentResult result;
};

// Runs `schemes` against a workload factory; the goal for Hibernator variants
// is `goal_multiplier` x the Base run's mean response time (measured first).
// The workload factory must return an identical fresh stream each call (the
// address space may differ per scheme because PDC/MAID reshape the array);
// it is invoked from worker threads, so it must not touch shared mutable
// state.  All schemes run concurrently via RunAll; results are bit-identical
// to the former sequential loop.
template <typename WorkloadFactory>
std::vector<ComparisonRow> RunComparison(const std::vector<Scheme>& schemes,
                                         const ArrayParams& base_array,
                                         WorkloadFactory make_workload, double goal_multiplier,
                                         Duration epoch_ms = Hours(2.0),
                                         const ExperimentOptions& options = {},
                                         Duration* out_goal_ms = nullptr) {
  // Calibrate the goal from a Base probe (2 simulated hours).
  Duration base_resp;
  {
    auto workload = make_workload(base_array);
    base_resp = MeasureBaseResponseMs(*workload, base_array, Hours(2.0));
  }
  Duration goal_ms = goal_multiplier * base_resp;
  if (out_goal_ms != nullptr) {
    *out_goal_ms = goal_ms;
  }

  std::vector<ExperimentSpec> specs;
  specs.reserve(schemes.size());
  for (Scheme scheme : schemes) {
    SchemeConfig cfg;
    cfg.scheme = scheme;
    cfg.goal_ms = goal_ms;
    cfg.epoch_ms = epoch_ms;
    specs.push_back(SpecForScheme(cfg, base_array, make_workload, options));
  }
  std::vector<ExperimentResult> results = RunAll(specs);

  std::vector<ComparisonRow> rows;
  rows.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    rows.push_back({schemes[i], std::move(results[i])});
  }
  std::printf("goal: %.2f ms (%.1fx the Base mean response of %.2f ms)\n\n", goal_ms.value(),
              goal_multiplier, base_resp.value());
  return rows;
}

// The paper's two headline charts: energy per scheme and response per scheme.
inline void PrintEnergyAndResponseTables(const std::vector<ComparisonRow>& rows,
                                         Duration goal_ms) {
  const ExperimentResult* base = nullptr;
  for (const auto& row : rows) {
    if (row.scheme == Scheme::kBase) {
      base = &row.result;
    }
  }
  Table energy({"scheme", "energy (kJ)", "normalized", "savings", "active (kJ)", "idle (kJ)",
                "standby (kJ)", "transition (kJ)"});
  for (const auto& row : rows) {
    const ExperimentResult& r = row.result;
    energy.NewRow()
        .Add(r.policy_name)
        .Add(r.energy_total / 1000.0, 1)
        .Add(base ? r.energy_total / base->energy_total : 1.0, 3)
        .AddPercent(base ? r.SavingsVs(*base) : 0.0)
        .Add(r.energy.active / 1000.0, 1)
        .Add(r.energy.idle / 1000.0, 1)
        .Add(r.energy.standby / 1000.0, 1)
        .Add(r.energy.transition / 1000.0, 1);
  }
  std::printf("Energy consumption by scheme:\n%s\n", energy.ToString().c_str());

  Table resp({"scheme", "mean resp (ms)", "p95 (ms)", "p99 (ms)", "goal met", "RPM changes",
              "spin-downs", "migrated (GB)"});
  for (const auto& row : rows) {
    const ExperimentResult& r = row.result;
    bool hibernator_family = r.policy_name.rfind("Hibernator", 0) == 0;
    std::string met = !hibernator_family ? "n/a"
                      : (r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO");
    resp.NewRow()
        .Add(r.policy_name)
        .Add(r.mean_response_ms, 2)
        .Add(r.p95_response_ms, 2)
        .Add(r.p99_response_ms, 2)
        .Add(met)
        .Add(r.rpm_changes)
        .Add(r.spin_downs)
        .Add(static_cast<double>(r.migrated_sectors) * kSectorBytes / (1 << 30), 2);
  }
  std::printf("Response time by scheme:\n%s\n", resp.ToString().c_str());
}

// JSON payload for a scheme-comparison bench (oltp, cello).
inline void WriteComparisonJson(const std::string& bench_name, double wall_seconds,
                                const std::vector<ComparisonRow>& rows, Duration goal_ms) {
  std::uint64_t total_events = 0;
  for (const auto& row : rows) {
    total_events += row.result.events;
  }
  JsonObject payload = BenchPayload(bench_name, wall_seconds, total_events);
  payload.Set("goal_ms", goal_ms.value());
  JsonArray runs;
  MetricsSnapshot merged;
  for (const auto& row : rows) {
    JsonObject run = ResultJson(row.result.policy_name, row.result);
    run.Set("scheme", std::string(SchemeName(row.scheme)));
    runs.Push(JsonValue::Raw(run.Dump()));
    merged.MergeFrom(row.result.metrics);
  }
  payload.Set("runs", runs);
  payload.Set("metrics", MetricsSnapshotJson(merged));
  WriteBenchJson(bench_name, payload);
}

}  // namespace hib

#endif  // HIBERNATOR_BENCH_BENCH_COMMON_H_
