// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every binary prints one experiment from DESIGN.md's index: a header naming
// the paper artifact it regenerates, then the table/series in the same shape
// the paper reports (schemes x {energy, response time}, or a parameter sweep).
#ifndef HIBERNATOR_BENCH_BENCH_COMMON_H_
#define HIBERNATOR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"
#include "src/util/table.h"

namespace hib {

inline void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==============================================================================\n");
}

inline OltpWorkloadParams OltpParamsFor(const OltpSetup& setup, const ArrayParams& array) {
  OltpWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = setup.duration_ms;
  wp.peak_iops = setup.peak_iops;
  wp.trough_iops = setup.trough_iops;
  return wp;
}

inline CelloWorkloadParams CelloParamsFor(const CelloSetup& setup, const ArrayParams& array) {
  CelloWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = setup.duration_ms;
  wp.peak_iops = setup.peak_iops;
  wp.trough_iops = setup.trough_iops;
  return wp;
}

struct ComparisonRow {
  Scheme scheme;
  ExperimentResult result;
};

// Runs `schemes` against a workload factory; the goal for Hibernator variants
// is `goal_multiplier` x the Base run's mean response time (measured first).
// The workload factory must return an identical fresh stream each call (the
// address space may differ per scheme because PDC/MAID reshape the array).
template <typename WorkloadFactory>
std::vector<ComparisonRow> RunComparison(const std::vector<Scheme>& schemes,
                                         const ArrayParams& base_array,
                                         WorkloadFactory make_workload, double goal_multiplier,
                                         Duration epoch_ms = HoursToMs(2.0),
                                         const ExperimentOptions& options = {},
                                         double* out_goal_ms = nullptr) {
  // Calibrate the goal from a Base probe (2 simulated hours).
  double base_resp;
  {
    auto workload = make_workload(base_array);
    base_resp = MeasureBaseResponseMs(*workload, base_array, HoursToMs(2.0));
  }
  Duration goal_ms = goal_multiplier * base_resp;
  if (out_goal_ms != nullptr) {
    *out_goal_ms = goal_ms;
  }

  std::vector<ComparisonRow> rows;
  for (Scheme scheme : schemes) {
    SchemeConfig cfg;
    cfg.scheme = scheme;
    cfg.goal_ms = goal_ms;
    cfg.epoch_ms = epoch_ms;
    ArrayParams array = ArrayFor(cfg, base_array);
    auto policy = MakePolicy(cfg);
    auto workload = make_workload(array);
    rows.push_back({scheme, RunExperiment(*workload, *policy, array, options)});
  }
  std::printf("goal: %.2f ms (%.1fx the Base mean response of %.2f ms)\n\n", goal_ms,
              goal_multiplier, base_resp);
  return rows;
}

// The paper's two headline charts: energy per scheme and response per scheme.
inline void PrintEnergyAndResponseTables(const std::vector<ComparisonRow>& rows,
                                         Duration goal_ms) {
  const ExperimentResult* base = nullptr;
  for (const auto& row : rows) {
    if (row.scheme == Scheme::kBase) {
      base = &row.result;
    }
  }
  Table energy({"scheme", "energy (kJ)", "normalized", "savings", "active (kJ)", "idle (kJ)",
                "standby (kJ)", "transition (kJ)"});
  for (const auto& row : rows) {
    const ExperimentResult& r = row.result;
    energy.NewRow()
        .Add(r.policy_name)
        .Add(r.energy_total / 1000.0, 1)
        .Add(base ? r.energy_total / base->energy_total : 1.0, 3)
        .AddPercent(base ? r.SavingsVs(*base) : 0.0)
        .Add(r.energy.active / 1000.0, 1)
        .Add(r.energy.idle / 1000.0, 1)
        .Add(r.energy.standby / 1000.0, 1)
        .Add(r.energy.transition / 1000.0, 1);
  }
  std::printf("Energy consumption by scheme:\n%s\n", energy.ToString().c_str());

  Table resp({"scheme", "mean resp (ms)", "p95 (ms)", "p99 (ms)", "goal met", "RPM changes",
              "spin-downs", "migrated (GB)"});
  for (const auto& row : rows) {
    const ExperimentResult& r = row.result;
    bool hibernator_family = r.policy_name.rfind("Hibernator", 0) == 0;
    std::string met = !hibernator_family ? "n/a"
                      : (r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO");
    resp.NewRow()
        .Add(r.policy_name)
        .Add(r.mean_response_ms, 2)
        .Add(r.p95_response_ms, 2)
        .Add(r.p99_response_ms, 2)
        .Add(met)
        .Add(r.rpm_changes)
        .Add(r.spin_downs)
        .Add(static_cast<double>(r.migrated_sectors) * kSectorBytes / (1 << 30), 2);
  }
  std::printf("Response time by scheme:\n%s\n", resp.ToString().c_str());
}

}  // namespace hib

#endif  // HIBERNATOR_BENCH_BENCH_COMMON_H_
