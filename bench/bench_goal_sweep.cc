// E6 — reproduces the paper's sensitivity figure: Hibernator's energy savings
// as the response-time goal loosens (expressed as a multiple of the Base mean
// response time).  Expected shape: savings grow monotonically-ish with the
// goal — a tight goal leaves no room to slow disks, a loose goal lets most of
// the array crawl.
//
// The Base run anchors the goals, then all sweep points run concurrently via
// RunAll (src/harness/parallel.h); results match a sequential sweep exactly.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E6 (paper Fig: sensitivity to the response-time goal)",
                   "Hibernator energy savings vs goal multiplier, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::WallTimer timer;

  // Base run once for the savings denominator (and the goal anchor).
  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  std::printf("Base: %.1f kJ, mean response %.2f ms\n\n", base.energy_total.value() / 1000.0,
              base.mean_response_ms.value());

  const std::vector<double> multipliers = {1.1, 1.5, 2.0, 2.5, 3.0, 4.0};
  std::vector<hib::ExperimentSpec> specs;
  std::vector<hib::Duration> boosted_ms(multipliers.size());
  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    hib::Duration goal_ms = multipliers[i] * base.mean_response_ms;
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hib::ExperimentSpec spec;
    spec.name = "goal_" + std::to_string(multipliers[i]);
    spec.array = setup.array;
    spec.make_policy = [hp] { return std::make_unique<hib::HibernatorPolicy>(hp); };
    spec.make_workload = make_workload;
    spec.post_run = [&boosted_ms, i](const hib::PowerPolicy& policy,
                                     const hib::ExperimentResult&) {
      boosted_ms[i] = static_cast<const hib::HibernatorPolicy&>(policy).boosted_ms();
    };
    specs.push_back(std::move(spec));
  }
  std::vector<hib::ExperimentResult> results = hib::RunAll(specs);

  hib::Table table({"goal multiplier", "goal (ms)", "energy (kJ)", "savings", "mean resp (ms)",
                    "goal met", "boost time (h)"});
  hib::JsonArray runs;
  std::uint64_t total_events = base.events;
  for (std::size_t i = 0; i < multipliers.size(); ++i) {
    const hib::ExperimentResult& r = results[i];
    hib::Duration goal_ms = multipliers[i] * base.mean_response_ms;
    table.NewRow()
        .Add(multipliers[i], 1)
        .Add(goal_ms, 2)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(boosted_ms[i].value() / hib::kMsPerHour, 2);
    hib::JsonObject run = hib::ResultJson(specs[i].name, r);
    run.Set("goal_multiplier", multipliers[i])
        .Set("goal_ms", goal_ms.value())
        .Set("savings_vs_base", r.SavingsVs(base))
        .Set("boosted_ms", boosted_ms[i].value());
    runs.Push(hib::JsonValue::Raw(run.Dump()));
    total_events += r.events;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: savings rise with the goal and the goal is met at every\n"
              "setting (tight goals trade energy for latency headroom, not violations).\n");

  hib::JsonObject payload = hib::BenchPayload("goal_sweep", timer.Seconds(), total_events);
  payload.Set("base", hib::ResultJson("Base", base)).Set("runs", runs);
  hib::WriteBenchJson("goal_sweep", payload);
  return 0;
}
