// E6 — reproduces the paper's sensitivity figure: Hibernator's energy savings
// as the response-time goal loosens (expressed as a multiple of the Base mean
// response time).  Expected shape: savings grow monotonically-ish with the
// goal — a tight goal leaves no room to slow disks, a loose goal lets most of
// the array crawl.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E6 (paper Fig: sensitivity to the response-time goal)",
                   "Hibernator energy savings vs goal multiplier, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  // Base run once for the savings denominator.
  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  std::printf("Base: %.1f kJ, mean response %.2f ms\n\n", base.energy_total / 1000.0,
              base.mean_response_ms);

  hib::Table table({"goal multiplier", "goal (ms)", "energy (kJ)", "savings", "mean resp (ms)",
                    "goal met", "boost time (h)"});
  for (double multiplier : {1.1, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    hib::Duration goal_ms = multiplier * base.mean_response_ms;
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hib::HibernatorPolicy policy(hp);
    auto workload = make_workload(setup.array);
    hib::ExperimentResult r = hib::RunExperiment(*workload, policy, setup.array);
    table.NewRow()
        .Add(multiplier, 1)
        .Add(goal_ms, 2)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(policy.boosted_ms() / hib::kMsPerHour, 2);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: savings rise with the goal and the goal is met at every\n"
              "setting (tight goals trade energy for latency headroom, not violations).\n");
  return 0;
}
