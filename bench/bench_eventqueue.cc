// P1 — event-core microbenchmark: the rewritten EventQueue (slot arena +
// generation counters + inline callbacks) against the original design
// (std::function callbacks + two unordered_sets for pending/cancelled
// bookkeeping), which is reproduced verbatim below as LegacyEventQueue.
//
// Three mixes cover the simulator's real access patterns:
//   steady_state    schedule+pop at a fixed queue depth (the injector/disk
//                   completion loop — the dominant pattern in experiments)
//   timer_churn     schedule two, cancel one, pop one (TPM/DRPM-style timers
//                   that are usually re-armed before firing)
//   burst_drain     schedule a large batch, then drain it (epoch
//                   reconfiguration bursts)
//
// Callbacks capture an 80-byte payload — the size of the hot disk
// service-completion lambda (this + completion time + a DiskRequest) — far
// beyond std::function's 16-byte inline buffer, so the legacy queue pays its
// real-world per-event allocation.
//
// Emits BENCH_eventqueue.json; the "speedup" fields are the numbers future
// perf work regresses against.  Usage: bench_eventqueue [--quick]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/event_queue.h"
#include "src/util/random.h"

namespace hib {
namespace {

// --- the pre-rewrite queue, kept as the comparison baseline ----------------

// The original queue compiled out-of-line in src/sim/event_queue.cc (no LTO),
// so callers never inlined through Schedule/Cancel/PopNext.  noinline keeps
// this reproduction honest: without it the bench TU inlines the whole legacy
// hot path, which the shipped binary never did.  The rewritten queue is
// header-inline by design, so it gets no such annotation.
#define HIB_BENCH_NOINLINE __attribute__((noinline))

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;
  using Id = std::uint64_t;

  HIB_BENCH_NOINLINE Id Schedule(SimTime when, Callback cb) {
    Id id = next_id_++;
    heap_.push_back(Entry{when, id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    pending_.insert(id);
    ++live_count_;
    return id;
  }

  HIB_BENCH_NOINLINE bool Cancel(Id id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return false;
    }
    pending_.erase(it);
    cancelled_.insert(id);
    --live_count_;
    return true;
  }

  bool empty() const { return live_count_ == 0; }

  struct Fired {
    SimTime time;
    Id id;
    Callback callback;
  };
  HIB_BENCH_NOINLINE Fired PopNext() {
    DropCancelledHead();
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(e.id);
    --live_count_;
    return Fired{e.time, e.id, std::move(e.callback)};
  }

 private:
  struct Entry {
    SimTime time;
    Id id;
    Callback callback;
  };
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.id > b.id;
  }
  void DropCancelledHead() {
    while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
      cancelled_.erase(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<Id> pending_;
  std::unordered_set<Id> cancelled_;
  Id next_id_ = 0;
  std::size_t live_count_ = 0;
};

// 80-byte capture: this + a DiskRequest-sized chunk of state, the shape of
// the simulator's hottest lambdas.
struct Payload {
  double a;
  double b;
  std::int64_t c;
  std::int64_t d;
  std::int64_t e;
  std::int64_t f;
  std::int64_t g;
  std::int64_t h;
  std::int64_t i;
  std::int64_t j;
};

// The rewritten queue can pre-size its arena (a capability the legacy queue
// never had); experiment.cc does the same via ExperimentOptions.
template <typename Queue>
void MaybeReserve(Queue& q, std::size_t events) {
  if constexpr (requires { q.Reserve(events); }) {
    q.Reserve(events);
  }
}

// Dispatch one event the way the Simulator run loop does: FireNext (in-place
// callback execution) where the queue provides it, pop-then-invoke otherwise.
template <typename Queue>
void PopAndFire(Queue& q, SimTime* now) {
  if constexpr (requires { q.FireNext(now); }) {
    q.FireNext(now);
  } else {
    auto fired = q.PopNext();
    *now = fired.time;
    fired.callback();
  }
}

// Pre-generated uniform [0,1) deltas, consumed round-robin inside the timed
// loops so the harness isn't measuring the PRNG along with the queue.  64k
// entries stay L2-resident and repeat far less often than either queue could
// exploit.
class DeltaRing {
 public:
  explicit DeltaRing(std::uint32_t seed) : vals_(kSize) {
    Pcg32 rng(seed);
    for (double& v : vals_) {
      v = rng.NextDouble();
    }
  }
  double Next() {
    double v = vals_[i_];
    i_ = (i_ + 1) & (kSize - 1);
    return v;
  }

 private:
  static constexpr std::size_t kSize = 1u << 16;
  std::vector<double> vals_;
  std::size_t i_ = 0;
};

struct MixResult {
  std::string name;
  std::uint64_t ops = 0;
  double legacy_seconds = 0.0;
  double new_seconds = 0.0;

  double LegacyRate() const { return static_cast<double>(ops) / legacy_seconds; }
  double NewRate() const { return static_cast<double>(ops) / new_seconds; }
  double Speedup() const { return legacy_seconds / new_seconds; }
};

// Steady state: keep `depth` events pending; each iteration pops the earliest
// and schedules a replacement a random delta later.  Ops = 1 pop + 1 schedule.
template <typename Queue>
double RunSteadyState(std::uint64_t iterations, std::size_t depth, double* sink) {
  Queue q;
  MaybeReserve(q, depth);
  DeltaRing rng(42);
  double acc = 0.0;
  SimTime now;
  WallTimer timer;
  for (std::size_t i = 0; i < depth; ++i) {
    Payload p{rng.Next(), 1.0, 1, 2, 3, 4, 5, 6, 7, 8};
    q.Schedule(Ms(rng.Next() * 100.0), [p, &acc] { acc += p.a + p.b; });
  }
  for (std::uint64_t i = 0; i < iterations; ++i) {
    PopAndFire(q, &now);
    Payload p{rng.Next(), static_cast<double>(i), 1, 2, 3, 4, 5, 6, 7, 8};
    q.Schedule(now + Ms(rng.Next() * 100.0), [p, &acc] { acc += p.a - p.b; });
  }
  double seconds = timer.Seconds();
  *sink += acc;
  return seconds;
}

// Timer churn: schedule a near event and a far "timeout", cancel the timeout,
// pop the near one.  Ops = 2 schedules + 1 cancel + 1 pop.
template <typename Queue>
double RunTimerChurn(std::uint64_t iterations, double* sink) {
  Queue q;
  MaybeReserve(q, 64);
  DeltaRing rng(43);
  double acc = 0.0;
  SimTime now;
  WallTimer timer;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    Payload p{rng.Next(), 2.0, 1, 2, 3, 4, 5, 6, 7, 8};
    q.Schedule(now + Ms(rng.Next()), [p, &acc] { acc += p.a; });
    auto timeout = q.Schedule(now + Ms(1000.0 + rng.Next()), [p, &acc] { acc -= p.a; });
    q.Cancel(timeout);
    PopAndFire(q, &now);
  }
  double seconds = timer.Seconds();
  *sink += acc;
  return seconds;
}

// Burst: schedule `batch` events, drain them all; repeat.  Ops = 1 schedule +
// 1 pop per event.
template <typename Queue>
double RunBurstDrain(std::uint64_t iterations, std::size_t batch, double* sink) {
  Queue q;
  MaybeReserve(q, batch);
  DeltaRing rng(44);
  double acc = 0.0;
  SimTime now;
  WallTimer timer;
  for (std::uint64_t round = 0; round * batch < iterations; ++round) {
    for (std::size_t i = 0; i < batch; ++i) {
      Payload p{rng.Next(), 3.0, 1, 2, 3, 4, 5, 6, 7, 8};
      q.Schedule(now + Ms(rng.Next() * 10.0), [p, &acc] { acc += p.a * p.b; });
    }
    while (!q.empty()) {
      PopAndFire(q, &now);
    }
  }
  double seconds = timer.Seconds();
  *sink += acc;
  return seconds;
}

}  // namespace
}  // namespace hib

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  hib::PrintHeader("P1 (perf: event core)",
                   "EventQueue slot-arena rewrite vs std::function + hash-set baseline");

  const std::uint64_t iters = quick ? 300'000 : 3'000'000;
  const std::size_t kDepth = 64;
  const std::size_t kBatch = 1024;
  double sink = 0.0;  // defeats dead-code elimination of the callbacks

  std::vector<hib::MixResult> mixes;
  {
    hib::MixResult m;
    m.name = "steady_state";
    m.ops = iters * 2;
    m.legacy_seconds =
        hib::RunSteadyState<hib::LegacyEventQueue>(iters, kDepth, &sink);
    m.new_seconds = hib::RunSteadyState<hib::EventQueue>(iters, kDepth, &sink);
    mixes.push_back(m);
  }
  {
    hib::MixResult m;
    m.name = "timer_churn";
    m.ops = iters * 4;
    m.legacy_seconds = hib::RunTimerChurn<hib::LegacyEventQueue>(iters, &sink);
    m.new_seconds = hib::RunTimerChurn<hib::EventQueue>(iters, &sink);
    mixes.push_back(m);
  }
  {
    hib::MixResult m;
    m.name = "burst_drain";
    m.ops = iters * 2;
    m.legacy_seconds = hib::RunBurstDrain<hib::LegacyEventQueue>(iters, kBatch, &sink);
    m.new_seconds = hib::RunBurstDrain<hib::EventQueue>(iters, kBatch, &sink);
    mixes.push_back(m);
  }

  hib::Table table({"mix", "ops", "legacy Mops/s", "new Mops/s", "speedup"});
  hib::JsonArray runs;
  double min_speedup = 1e300;
  std::uint64_t total_ops = 0;
  double total_legacy_seconds = 0.0;
  double total_new_seconds = 0.0;
  for (const hib::MixResult& m : mixes) {
    table.NewRow()
        .Add(m.name)
        .Add(static_cast<std::int64_t>(m.ops))
        .Add(m.LegacyRate() / 1e6, 2)
        .Add(m.NewRate() / 1e6, 2)
        .Add(m.Speedup(), 2);
    hib::JsonObject run;
    run.Set("name", m.name)
        .Set("ops", hib::JsonValue::UInt(m.ops))
        .Set("legacy_events_per_sec", m.LegacyRate())
        .Set("events_per_sec", m.NewRate())
        .Set("speedup", m.Speedup());
    runs.Push(hib::JsonValue::Raw(run.Dump()));
    min_speedup = std::min(min_speedup, m.Speedup());
    total_ops += m.ops;
    total_legacy_seconds += m.legacy_seconds;
    total_new_seconds += m.new_seconds;
  }
  // The headline number: events/sec over the whole suite of mixes, i.e. total
  // work divided by total wall time per queue.  Per-mix speedups above show
  // where it comes from.
  double aggregate_legacy = static_cast<double>(total_ops) / total_legacy_seconds;
  double aggregate_new = static_cast<double>(total_ops) / total_new_seconds;
  double aggregate_speedup = total_legacy_seconds / total_new_seconds;
  table.NewRow()
      .Add("aggregate")
      .Add(static_cast<std::int64_t>(total_ops))
      .Add(aggregate_legacy / 1e6, 2)
      .Add(aggregate_new / 1e6, 2)
      .Add(aggregate_speedup, 2);
  std::printf("%s\n", table.ToString().c_str());
  std::printf("aggregate speedup %.2fx, min per-mix speedup %.2fx (checksum %.3f)\n",
              aggregate_speedup, min_speedup, sink);

  hib::JsonObject payload;
  payload.Set("bench", std::string("eventqueue"))
      .Set("quick", hib::JsonValue::Bool(quick))
      .Set("aggregate_legacy_events_per_sec", aggregate_legacy)
      .Set("aggregate_events_per_sec", aggregate_new)
      .Set("aggregate_speedup", aggregate_speedup)
      .Set("min_speedup", min_speedup)
      .Set("runs", runs);
  hib::WriteBenchJson("eventqueue", payload);
  return 0;
}
