// E3 + E4 — reproduces the paper's headline OLTP figures: energy consumption
// and average response time for Base/TPM/DRPM/PDC/MAID/Hibernator on the
// 24-hour OLTP workload, with Hibernator's goal set to 2.5x the Base mean
// response time.
//
// Expected shape (paper): TPM ~ Base (no idle gaps long enough); DRPM saves
// some energy but hurts latency with constant transitions; PDC and MAID save
// energy only by wrecking response time (lost parallelism / cache misses);
// Hibernator saves the most energy among goal-meeting schemes and stays
// within the response-time goal.
//
// All schemes run concurrently (one simulation per core, see
// src/harness/parallel.h); results are identical to a sequential run.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main() {
  hib::PrintHeader("E3+E4 (paper Figs: OLTP energy & response time)",
                   "Scheme comparison on the 24h OLTP workload");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  std::printf("array: %d disks, width-%d RAID5 groups, 5-speed disks; epoch 2h\n",
              setup.array.num_disks, setup.array.group_width);

  double goal_multiplier = 2.5;
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };
  hib::WallTimer timer;
  hib::Duration goal_ms;
  std::vector<hib::ComparisonRow> rows =
      hib::RunComparison(hib::MainComparisonSchemes(), setup.array, make_workload,
                         goal_multiplier, hib::Hours(2.0), {}, &goal_ms);
  hib::PrintEnergyAndResponseTables(rows, goal_ms);
  hib::WriteComparisonJson("oltp", timer.Seconds(), rows, goal_ms);
  return 0;
}
