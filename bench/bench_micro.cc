// E12 — microbenchmarks (google-benchmark): the cost of the simulator's hot
// paths and of the CR solver itself.  These bound how much wall-clock time
// the trace-driven experiments need and show CR is cheap enough to run every
// epoch on a real controller.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/array/array.h"
#include "src/hibernator/cr_algorithm.h"
#include "src/sim/simulator.h"
#include "src/trace/synthetic.h"
#include "src/util/random.h"

namespace hib {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  Simulator sim;
  SimTime t;
  for (auto _ : state) {
    t += Ms(1.0);
    sim.ScheduleAt(t, [] {});
    sim.Step();
  }
  benchmark::DoNotOptimize(sim.events_fired());
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(state.range(0), 0.86);
  Pcg32 rng(1);
  std::int64_t sum = 0;
  for (auto _ : state) {
    sum += zipf.Next(rng);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22);

void BM_DiskServiceOneRequest(benchmark::State& state) {
  Simulator sim;
  Disk disk(&sim, MakeUltrastar36Z15MultiSpeed(5), 0, 1);
  std::int64_t sector = 0;
  for (auto _ : state) {
    DiskRequest req;
    req.sector = sector = (sector + 9973 * 512) % disk.params().TotalSectors();
    req.count = 8;
    disk.Submit(std::move(req));
    sim.RunUntil(sim.Now() + Ms(1000.0));
  }
  benchmark::DoNotOptimize(disk.stats().requests_completed);
}
BENCHMARK(BM_DiskServiceOneRequest);

void BM_ArraySubmitRead(benchmark::State& state) {
  Simulator sim;
  ArrayParams params;
  params.num_disks = 8;
  params.group_width = 4;
  params.data_fraction = 0.1;
  params.cache_lines = 0;
  ArrayController array(&sim, params);
  Pcg32 rng(2);
  SectorAddr space = params.DataSectors();
  for (auto _ : state) {
    TraceRecord rec;
    rec.lba = rng.NextInRange(0, space / 8 - 2) * 8;
    rec.count = 8;
    rec.is_write = false;
    array.Submit(rec);
    sim.RunUntil(sim.Now() + Ms(50.0));
  }
  benchmark::DoNotOptimize(array.stats().total_responses);
}
BENCHMARK(BM_ArraySubmitRead);

void BM_ArraySubmitRaid5Write(benchmark::State& state) {
  Simulator sim;
  ArrayParams params;
  params.num_disks = 8;
  params.group_width = 4;
  params.data_fraction = 0.1;
  params.cache_lines = 0;
  ArrayController array(&sim, params);
  Pcg32 rng(3);
  SectorAddr space = params.DataSectors();
  for (auto _ : state) {
    TraceRecord rec;
    rec.lba = rng.NextInRange(0, space / 8 - 2) * 8;
    rec.count = 8;
    rec.is_write = true;
    array.Submit(rec);
    sim.RunUntil(sim.Now() + Ms(50.0));
  }
  benchmark::DoNotOptimize(array.stats().total_responses);
}
BENCHMARK(BM_ArraySubmitRaid5Write);

void BM_CrSolver(benchmark::State& state) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel service = SpeedServiceModel::FromDisk(disk, 12.0, 0.3);
  int groups = static_cast<int>(state.range(0));
  Pcg32 rng(4);
  CrInput input;
  input.service = service;
  input.group_lambda.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    input.group_lambda.push_back(PerMs(rng.NextDouble() * 0.05));
  }
  input.group_width = 4;
  input.goal_ms = Ms(15.0);
  input.epoch_ms = Hours(2.0);
  input.disk = &disk;
  std::int64_t evaluated = 0;
  for (auto _ : state) {
    CrResult r = SolveCr(input);
    evaluated += r.candidates_evaluated;
    benchmark::DoNotOptimize(r.predicted_power);
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(evaluated), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CrSolver)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_OltpGeneratorNext(benchmark::State& state) {
  OltpWorkloadParams wp;
  wp.address_space_sectors = 1 << 26;
  wp.duration_ms = Hours(24.0 * 365.0);
  wp.peak_iops = 1000.0;
  wp.trough_iops = 1000.0;
  OltpWorkload workload(wp);
  TraceRecord rec;
  for (auto _ : state) {
    bool ok = workload.Next(&rec);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(rec.lba);
  }
}
BENCHMARK(BM_OltpGeneratorNext);

// End-to-end simulator throughput: simulated requests per wall second.
void BM_EndToEndMiniSim(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    ArrayParams params;
    params.num_disks = 8;
    params.group_width = 4;
    params.data_fraction = 0.1;
    params.cache_lines = 256;
    ArrayController array(&sim, params);
    ConstantWorkloadParams wp;
    wp.address_space_sectors = params.DataSectors();
    wp.duration_ms = Seconds(600.0);
    wp.iops = 100.0;
    ConstantWorkload workload(wp);
    TraceRecord rec;
    std::function<void()> next = [&] {
      TraceRecord r;
      if (workload.Next(&r)) {
        sim.ScheduleAt(r.time, [&, r] {
          array.Submit(r);
          next();
        });
      }
    };
    next();
    sim.RunUntil(Seconds(700.0));
    benchmark::DoNotOptimize(array.stats().total_responses);
  }
  state.SetItemsProcessed(state.iterations() * 60000);
}
BENCHMARK(BM_EndToEndMiniSim);

}  // namespace
}  // namespace hib

BENCHMARK_MAIN();
