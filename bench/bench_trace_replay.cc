// Trace pipeline throughput: ASCII parse vs compiled-binary replay.
//
// The trace compiler exists so fleet-scale replays stop paying strtod on
// every record (ROADMAP item 2).  This bench pins that claim with numbers:
//
//   1. generate an OLTP slice and export it as SPC ASCII,
//   2. compile the ASCII to the HIBT binary format   -> compile MB/s,
//   3. replay the ASCII through SpcTraceReader       -> ascii events/s,
//   4. replay the binary through CompiledTraceReader -> events/s (gated).
//
// BENCH_trace_replay.json's events_per_sec is the *binary* replay rate; the
// CI baseline (tools/bench_baselines/) gates it at 10% like the fleet and
// OLTP benches.  replay_speedup_vs_ascii is the headline ratio — the
// acceptance floor for the trace-compiler PR was 10x.
#include <sstream>

#include "bench/bench_common.h"
#include "src/trace/format.h"
#include "src/trace/spc_reader.h"
#include "src/trace/spc_writer.h"

namespace hib {
namespace {

constexpr SectorAddr kSpaceSectors = SectorAddr{1} << 24;  // 8 GiB

std::int64_t Drain(WorkloadSource& source) {
  TraceRecord r;
  std::int64_t n = 0;
  while (source.Next(&r)) {
    ++n;
  }
  return n;
}

int Run() {
  PrintHeader("TRACE-REPLAY", "trace compiler throughput: ASCII parse vs compiled replay");

  OltpWorkloadParams wp;
  wp.address_space_sectors = kSpaceSectors;
  wp.duration_ms = BenchDurationMs(Hours(6.0));
  wp.peak_iops = 400.0;
  wp.trough_iops = 150.0;
  wp.seed = 20260808;
  OltpWorkload generated(wp);

  std::ostringstream ascii_out;
  const std::int64_t records = ExportSpcTrace(generated, ascii_out);
  const std::string ascii = ascii_out.str();
  const double ascii_mb = static_cast<double>(ascii.size()) / 1e6;
  std::printf("workload: %lld records, %.1f MB ASCII (%.1f simulated hours)\n",
              static_cast<long long>(records), ascii_mb, ToSeconds(wp.duration_ms) / 3600.0);

  WallTimer total;

  // --- compile ---------------------------------------------------------------
  std::string binary;
  double compile_seconds = 0.0;
  {
    // max_asus=1 keeps the reader's ASU slicing an identity map, so the
    // compiled trace carries exactly the records the ASCII reader yields.
    auto reader = SpcTraceReader::FromString(ascii, kSpaceSectors, 1, TimeOrderPolicy::kAccept);
    TraceCompileOptions options;
    options.address_space_sectors = kSpaceSectors;
    WallTimer t;
    TraceCompileResult result = CompileTrace(*reader, &binary, options);
    compile_seconds = t.Seconds();
    if (!result.ok) {
      std::fprintf(stderr, "trace compile failed: %s\n", result.error.c_str());
      return 1;
    }
  }
  const double compile_mb_per_sec = compile_seconds > 0.0 ? ascii_mb / compile_seconds : 0.0;
  std::printf("compile:  %.2f s  (%.1f MB/s ASCII in, %.1f MB binary out)\n", compile_seconds,
              compile_mb_per_sec, static_cast<double>(binary.size()) / 1e6);

  // --- ASCII replay ----------------------------------------------------------
  std::int64_t ascii_records = 0;
  double ascii_seconds = 0.0;
  {
    auto reader = SpcTraceReader::FromString(ascii, kSpaceSectors, 1);
    WallTimer t;
    ascii_records = Drain(*reader);
    ascii_seconds = t.Seconds();
  }
  const double ascii_events_per_sec =
      ascii_seconds > 0.0 ? static_cast<double>(ascii_records) / ascii_seconds : 0.0;
  std::printf("ascii:    %.2f s  (%.2fM events/s)\n", ascii_seconds, ascii_events_per_sec / 1e6);

  // --- binary replay ---------------------------------------------------------
  // Repeat until the measurement is long enough to trust (the binary cursor
  // is memory-speed, so one pass over a smoke-sized trace is microseconds).
  const std::int64_t binary_bytes = static_cast<std::int64_t>(binary.size());
  auto compiled = CompiledTraceReader::FromBuffer(std::move(binary));
  if (!compiled->ok()) {
    std::fprintf(stderr, "compiled trace rejected: %s\n", compiled->error().c_str());
    return 1;
  }
  std::int64_t replayed = 0;
  int passes = 0;
  WallTimer replay_timer;
  do {
    compiled->Reset();
    replayed += Drain(*compiled);
    ++passes;
  } while (replay_timer.Seconds() < 0.5 || passes < 3);
  const double replay_seconds = replay_timer.Seconds();
  const double events_per_sec =
      replay_seconds > 0.0 ? static_cast<double>(replayed) / replay_seconds : 0.0;
  const double speedup = ascii_events_per_sec > 0.0 ? events_per_sec / ascii_events_per_sec : 0.0;
  std::printf("binary:   %.2f s over %d passes  (%.2fM events/s, %.1fx ASCII)\n", replay_seconds,
              passes, events_per_sec / 1e6, speedup);

  JsonObject payload = BenchPayload("trace_replay", total.Seconds(),
                                    static_cast<std::uint64_t>(replayed));
  payload.Set("events_per_sec", events_per_sec)
      .Set("records", JsonValue::Int(records))
      .Set("replay_passes", JsonValue::Int(passes))
      .Set("ascii_bytes", JsonValue::Int(static_cast<std::int64_t>(ascii.size())))
      .Set("binary_bytes", JsonValue::Int(binary_bytes))
      .Set("compile_mb_per_sec", compile_mb_per_sec)
      .Set("ascii_events_per_sec", ascii_events_per_sec)
      .Set("replay_speedup_vs_ascii", speedup);
  WriteBenchJson("trace_replay", payload);
  return 0;
}

}  // namespace
}  // namespace hib

int main() { return hib::Run(); }
