// E7 — reproduces the paper's epoch-length sensitivity figure and ablates the
// coarse-grained design decision itself: with short epochs the (time and
// energy) cost of RPM transitions cannot be amortized, so CR refuses to slow
// down (or pays dearly); with multi-hour epochs transitions are noise.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E7 (paper Fig: sensitivity to epoch length)",
                   "Hibernator energy/response vs adaptation epoch, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("goal: %.2f ms (2.5x Base)\n\n", goal_ms);

  hib::Table table({"epoch (h)", "energy (kJ)", "savings", "mean resp (ms)", "goal met",
                    "RPM changes", "boosts"});
  for (double hours : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hp.epoch_ms = hib::HoursToMs(hours);
    hib::HibernatorPolicy policy(hp);
    auto workload = make_workload(setup.array);
    hib::ExperimentResult r = hib::RunExperiment(*workload, policy, setup.array);
    table.NewRow()
        .Add(hours, 1)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(r.rpm_changes)
        .Add(policy.boosts());
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: the trade-off the paper's coarse-epoch design targets is visible\n"
              "in the transition column (fine epochs change speed 3-4x more often) and in the\n"
              "day-scale rows, where sluggish adaptation forfeits savings.  Because this CR\n"
              "charges transitions their response-time cost explicitly, sub-hour epochs stay\n"
              "safe (goal met) instead of thrashing, and the sweet spot sits near 1-2 hours.\n");
  return 0;
}
