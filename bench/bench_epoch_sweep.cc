// E7 — reproduces the paper's epoch-length sensitivity figure and ablates the
// coarse-grained design decision itself: with short epochs the (time and
// energy) cost of RPM transitions cannot be amortized, so CR refuses to slow
// down (or pays dearly); with multi-hour epochs transitions are noise.
//
// The Base run anchors the goal, then all epoch settings run concurrently via
// RunAll (src/harness/parallel.h); results match a sequential sweep exactly.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E7 (paper Fig: sensitivity to epoch length)",
                   "Hibernator energy/response vs adaptation epoch, 24h OLTP");

  hib::OltpSetup setup = hib::MakeOltpSetup();
  setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  auto make_workload = [&](const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::WallTimer timer;

  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(setup.array);
  hib::ExperimentResult base = hib::RunExperiment(*base_workload, *base_policy, setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("goal: %.2f ms (2.5x Base)\n\n", goal_ms.value());

  const std::vector<double> epochs_h = {0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<hib::ExperimentSpec> specs;
  std::vector<std::int64_t> boosts(epochs_h.size(), 0);
  for (std::size_t i = 0; i < epochs_h.size(); ++i) {
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hp.epoch_ms = hib::Hours(epochs_h[i]);
    hib::ExperimentSpec spec;
    spec.name = "epoch_" + std::to_string(epochs_h[i]) + "h";
    spec.array = setup.array;
    spec.make_policy = [hp] { return std::make_unique<hib::HibernatorPolicy>(hp); };
    spec.make_workload = make_workload;
    spec.post_run = [&boosts, i](const hib::PowerPolicy& policy, const hib::ExperimentResult&) {
      boosts[i] = static_cast<const hib::HibernatorPolicy&>(policy).boosts();
    };
    specs.push_back(std::move(spec));
  }
  std::vector<hib::ExperimentResult> results = hib::RunAll(specs);

  hib::Table table({"epoch (h)", "energy (kJ)", "savings", "mean resp (ms)", "goal met",
                    "RPM changes", "boosts"});
  hib::JsonArray runs;
  std::uint64_t total_events = base.events;
  for (std::size_t i = 0; i < epochs_h.size(); ++i) {
    const hib::ExperimentResult& r = results[i];
    table.NewRow()
        .Add(epochs_h[i], 1)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO")
        .Add(r.rpm_changes)
        .Add(boosts[i]);
    hib::JsonObject run = hib::ResultJson(specs[i].name, r);
    run.Set("epoch_hours", epochs_h[i])
        .Set("goal_ms", goal_ms.value())
        .Set("savings_vs_base", r.SavingsVs(base))
        .Set("boosts", hib::JsonValue::Int(boosts[i]));
    runs.Push(hib::JsonValue::Raw(run.Dump()));
    total_events += r.events;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: the trade-off the paper's coarse-epoch design targets is visible\n"
              "in the transition column (fine epochs change speed 3-4x more often) and in the\n"
              "day-scale rows, where sluggish adaptation forfeits savings.  Because this CR\n"
              "charges transitions their response-time cost explicitly, sub-hour epochs stay\n"
              "safe (goal met) instead of thrashing, and the sweet spot sits near 1-2 hours.\n");

  hib::JsonObject payload = hib::BenchPayload("epoch_sweep", timer.Seconds(), total_events);
  payload.Set("base", hib::ResultJson("Base", base)).Set("runs", runs);
  hib::WriteBenchJson("epoch_sweep", payload);
  return 0;
}
