// F1 — fleet-scale simulation throughput: N arrays (default 52 x 20 disks =
// 1,040 disks) run as independent shards over the parallel harness, each
// under the Hibernator policy on a phase-staggered, rate-varied OLTP stream.
//
// This is the scale ROADMAP item 1 asks for (thousands of disks on one
// machine) and the capacity baseline for fleet-coordination work: the
// aggregate events/s number in BENCH_fleet.json is regression-gated in CI
// (tools/check_bench_regression.py vs tools/bench_baselines/).
//
// Knobs: HIB_FLEET_ARRAYS (shard count, default 52), HIB_BENCH_HOURS
// (simulated horizon), HIB_JOBS (thread cap).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/harness/fleet.h"

int main() {
  hib::PrintHeader("F1 (fleet capacity baseline)",
                   "Sharded multi-array fleet on phase-staggered OLTP");

  hib::FleetSpec spec;
  spec.num_arrays = 52;
  if (const char* env = std::getenv("HIB_FLEET_ARRAYS")) {
    int n = std::atoi(env);
    if (n > 0) {
      spec.num_arrays = n;
    }
  }
  hib::OltpSetup setup = hib::MakeOltpSetup();
  spec.base_array = setup.array;
  spec.scheme.scheme = hib::Scheme::kHibernator;
  spec.scheme.goal_ms = hib::Ms(20.0);
  spec.peak_iops = setup.peak_iops;
  spec.trough_iops = setup.trough_iops;
  spec.duration_ms = hib::BenchDurationMs(setup.duration_ms);
  // A geo-distributed fleet: rates vary ±25% per array, diurnal valleys
  // staggered across the full day so they never line up fleet-wide.
  spec.rate_spread = 0.5;
  spec.phase_spread_ms = hib::Hours(24.0);

  std::printf("fleet: %d arrays x %d disks = %d disks, %.1f sim hours, %d threads\n",
              spec.num_arrays, spec.DisksPerArray(), spec.TotalDisks(),
              spec.duration_ms.value() / 3600000.0, hib::DefaultParallelism());

  hib::WallTimer timer;
  hib::FleetSimulator fleet(spec);
  hib::FleetResult result = fleet.Run();
  double wall = timer.Seconds();

  std::printf("\naggregate: %" PRIu64 " events, %" PRId64 " requests, %.1f kJ\n",
              result.events, result.requests, result.energy_total.value() / 1000.0);
  std::printf("mean response %.2f ms (worst per-array p99 %.2f ms)\n",
              result.mean_response_ms.value(), result.worst_p99_response_ms.value());
  std::printf("wall %.2f s -> %.0f events/s aggregate\n", wall,
              wall > 0.0 ? static_cast<double>(result.events) / wall : 0.0);

  hib::JsonObject payload = hib::BenchPayload("fleet", wall, result.events);
  payload.Set("arrays", hib::JsonValue::Int(result.arrays))
      .Set("disks", hib::JsonValue::Int(result.disks))
      .Set("requests", hib::JsonValue::Int(result.requests))
      .Set("energy_j", result.energy_total.value())
      .Set("mean_response_ms", result.mean_response_ms.value())
      .Set("worst_p99_response_ms", result.worst_p99_response_ms.value());
  hib::JsonArray per_array;
  for (std::size_t i = 0; i < result.per_array.size(); ++i) {
    const hib::ExperimentResult& r = result.per_array[i];
    hib::JsonObject row;
    row.Set("name", fleet.specs()[i].name)
        .Set("events", hib::JsonValue::UInt(r.events))
        .Set("requests", hib::JsonValue::Int(r.requests))
        .Set("energy_j", r.energy_total.value())
        .Set("mean_response_ms", r.mean_response_ms.value())
        .Set("p99_response_ms", r.p99_response_ms.value());
    per_array.Push(hib::JsonValue::Raw(row.Dump()));
  }
  payload.Set("per_array", per_array);
  payload.Set("metrics", hib::MetricsSnapshotJson(result.metrics));
  hib::WriteBenchJson("fleet", payload);
  return 0;
}
