// E8 — reproduces the paper's "how many RPM levels do multi-speed disks
// need?" figure.  2-speed disks already capture much of the benefit; more
// levels add finer-grained operating points with diminishing returns.
//
// The single-speed Base run anchors the goal, then every ladder runs
// concurrently via RunAll (src/harness/parallel.h).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E8 (paper Fig: number of speed levels)",
                   "Hibernator savings vs number of RPM levels, 24h OLTP");

  hib::Table table({"levels", "RPM ladder", "energy (kJ)", "savings vs 1-speed Base",
                    "mean resp (ms)", "goal met"});

  auto make_workload = [](const hib::OltpSetup& setup, const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };

  hib::WallTimer timer;

  // The Base denominator uses the conventional single-speed (15k) disk.
  hib::OltpSetup base_setup = hib::MakeOltpSetup(/*speed_levels=*/1);
  base_setup.duration_ms = hib::BenchDurationMs(base_setup.duration_ms);
  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(base_setup, base_setup.array);
  hib::ExperimentResult base =
      hib::RunExperiment(*base_workload, *base_policy, base_setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("Base (single-speed): %.1f kJ, goal %.2f ms\n\n",
              base.energy_total.value() / 1000.0, goal_ms.value());

  const std::vector<int> levels = {2, 3, 5, 13};
  std::vector<hib::ExperimentSpec> specs;
  std::vector<std::string> ladders(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    hib::OltpSetup setup = hib::MakeOltpSetup(levels[i]);
    setup.duration_ms = hib::BenchDurationMs(setup.duration_ms);
    for (const auto& s : setup.array.disk.speeds) {
      ladders[i] += (ladders[i].empty() ? "" : "/") + std::to_string(s.rpm / 1000) + "k";
    }
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hib::ExperimentSpec spec;
    spec.name = "levels_" + std::to_string(levels[i]);
    spec.array = setup.array;
    spec.make_policy = [hp] { return std::make_unique<hib::HibernatorPolicy>(hp); };
    spec.make_workload = [setup, make_workload](const hib::ArrayParams& array) {
      return make_workload(setup, array);
    };
    specs.push_back(std::move(spec));
  }
  std::vector<hib::ExperimentResult> results = hib::RunAll(specs);

  hib::JsonArray runs;
  std::uint64_t total_events = base.events;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const hib::ExperimentResult& r = results[i];
    table.NewRow()
        .Add(levels[i])
        .Add(ladders[i])
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO");
    hib::JsonObject run = hib::ResultJson(specs[i].name, r);
    run.Set("speed_levels", hib::JsonValue::Int(levels[i]))
        .Set("rpm_ladder", ladders[i])
        .Set("goal_ms", goal_ms.value())
        .Set("savings_vs_base", r.SavingsVs(base));
    runs.Push(hib::JsonValue::Raw(run.Dump()));
    total_events += r.events;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: even 2 speeds capture most of the benefit; extra levels\n"
              "refine the energy/latency trade with diminishing returns.\n");

  hib::JsonObject payload = hib::BenchPayload("speed_levels", timer.Seconds(), total_events);
  payload.Set("base", hib::ResultJson("Base-1speed", base)).Set("runs", runs);
  hib::WriteBenchJson("speed_levels", payload);
  return 0;
}
