// E8 — reproduces the paper's "how many RPM levels do multi-speed disks
// need?" figure.  2-speed disks already capture much of the benefit; more
// levels add finer-grained operating points with diminishing returns.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/hibernator/hibernator_policy.h"

int main() {
  hib::PrintHeader("E8 (paper Fig: number of speed levels)",
                   "Hibernator savings vs number of RPM levels, 24h OLTP");

  hib::Table table({"levels", "RPM ladder", "energy (kJ)", "savings vs 1-speed Base",
                    "mean resp (ms)", "goal met"});

  // The Base denominator uses the conventional single-speed (15k) disk.
  hib::OltpSetup base_setup = hib::MakeOltpSetup(/*speed_levels=*/1);
  auto make_workload = [](const hib::OltpSetup& setup, const hib::ArrayParams& array) {
    return std::make_unique<hib::OltpWorkload>(hib::OltpParamsFor(setup, array));
  };
  hib::SchemeConfig base_cfg;
  base_cfg.scheme = hib::Scheme::kBase;
  auto base_policy = hib::MakePolicy(base_cfg);
  auto base_workload = make_workload(base_setup, base_setup.array);
  hib::ExperimentResult base =
      hib::RunExperiment(*base_workload, *base_policy, base_setup.array);
  hib::Duration goal_ms = 2.5 * base.mean_response_ms;
  std::printf("Base (single-speed): %.1f kJ, goal %.2f ms\n\n", base.energy_total / 1000.0,
              goal_ms);

  for (int levels : {2, 3, 5, 13}) {
    hib::OltpSetup setup = hib::MakeOltpSetup(levels);
    hib::HibernatorParams hp;
    hp.goal_ms = goal_ms;
    hib::HibernatorPolicy policy(hp);
    auto workload = make_workload(setup, setup.array);
    hib::ExperimentResult r = hib::RunExperiment(*workload, policy, setup.array);

    std::string ladder;
    for (const auto& s : setup.array.disk.speeds) {
      ladder += (ladder.empty() ? "" : "/") + std::to_string(s.rpm / 1000) + "k";
    }
    table.NewRow()
        .Add(levels)
        .Add(ladder)
        .Add(r.energy_total / 1000.0, 1)
        .AddPercent(r.SavingsVs(base))
        .Add(r.mean_response_ms, 2)
        .Add(r.mean_response_ms <= goal_ms * 1.05 ? "yes" : "NO");
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: even 2 speeds capture most of the benefit; extra levels\n"
              "refine the energy/latency trade with diminishing returns.\n");
  return 0;
}
