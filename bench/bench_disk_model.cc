// E1 — reproduces the paper's multi-speed disk model table (the IBM
// Ultrastar 36Z15 extrapolated to five RPM levels per the DRPM power law).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/disk/disk_params.h"

int main() {
  hib::PrintHeader("E1 (paper Table: disk model)",
                   "Multi-speed disk parameters, IBM Ultrastar 36Z15 extrapolation");

  hib::DiskParams disk = hib::MakeUltrastar36Z15MultiSpeed(5);
  std::printf("model: %s\n", disk.model_name.c_str());
  std::printf("geometry: %lld cylinders x %d tracks x %d sectors = %.1f GB\n",
              static_cast<long long>(disk.num_cylinders), disk.tracks_per_cylinder,
              disk.sectors_per_track,
              static_cast<double>(disk.TotalSectors()) * hib::kSectorBytes / 1e9);
  std::printf("seek: %.2f / %.2f / %.2f ms (single / average / full stroke)\n",
              disk.seek.single_cyl_ms.value(), disk.seek.average_ms.value(),
              disk.seek.full_stroke_ms.value());
  std::printf("standby: %.2f W; spin-down %.1f s / %.0f J; spin-up %.1f s / %.0f J\n\n",
              disk.standby_power.value(), hib::ToSeconds(disk.spin_down_ms),
              disk.spin_down_energy.value(), hib::ToSeconds(disk.spin_up_full_ms),
              disk.spin_up_full_energy.value());

  hib::Table table({"RPM", "idle power (W)", "active power (W)", "revolution (ms)",
                    "avg rot latency (ms)", "media rate (MB/s)", "4KB service (ms)",
                    "transition from 15k (s)", "transition energy (J)"});
  for (const hib::SpeedLevel& level : disk.speeds) {
    hib::Duration rev = level.RevolutionMs();
    double media_rate = disk.sectors_per_track * hib::kSectorBytes /
                        hib::ToSeconds(rev) / 1e6;
    hib::Duration service =
        disk.seek.average_ms + 0.5 * rev + disk.TransferTime(8, level.rpm);
    table.NewRow()
        .Add(level.rpm)
        .Add(level.idle_power, 2)
        .Add(level.active_power, 2)
        .Add(rev, 2)
        .Add(0.5 * rev, 2)
        .Add(media_rate, 1)
        .Add(service, 2)
        .Add(hib::ToSeconds(disk.RpmTransitionTime(15000, level.rpm)), 2)
        .Add(disk.RpmTransitionEnergy(15000, level.rpm), 1);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper shape check: idle power spans ~4x between 3k and 15k RPM (%.2f W vs"
              " %.2f W), which is the headroom every speed-lowering scheme exploits.\n",
              disk.speeds.front().idle_power.value(), disk.speeds.back().idle_power.value());
  return 0;
}
