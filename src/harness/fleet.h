// Fleet-scale simulation: N independent arrays, one policy each, sharded
// across the machine's cores.
//
// The paper evaluates one array at a time; datacenter questions (correlated
// diurnal valleys across timezones, fleet-wide power capping) need thousands
// of disks.  Every array is its own deterministic Simulator universe, so a
// fleet run is exactly a RunAll() over per-array ExperimentSpecs: each shard
// runs on the parallel harness's thread pool and results land in spec order,
// which makes the whole fleet bit-identical regardless of thread count
// (tests/fleet_test.cc pins this).
//
// The fleet workload spec varies arrays deterministically: request rates are
// scaled by a per-array factor drawn from a seeded RNG *at spec-build time*
// (index order, so thread scheduling can't perturb it), and diurnal phases
// are staggered evenly across `phase_spread_ms` to model a geo-distributed
// fleet whose valleys don't line up.
#ifndef HIBERNATOR_SRC_HARNESS_FLEET_H_
#define HIBERNATOR_SRC_HARNESS_FLEET_H_

#include <cstdint>
#include <vector>

#include "src/harness/parallel.h"
#include "src/util/thread_annotations.h"

namespace hib {

struct FleetSpec {
  int num_arrays = 50;

  // Per-array template.  The scheme decides layout + policy (ArrayFor /
  // MakePolicy); the array seed is re-derived per index so no two arrays
  // share disk RNG streams.
  SchemeConfig scheme;
  ArrayParams base_array;

  // kMlTraining and kBackupScan come from the zoo (src/trace/zoo.h):
  // peak_iops maps to the dataloader read rate / in-window scan rate, and
  // trough_iops to the backup generator's out-of-window verify rate.
  enum class Workload { kOltp, kCello, kMlTraining, kBackupScan };
  Workload workload = Workload::kOltp;
  double peak_iops = 300.0;
  double trough_iops = 90.0;
  Duration duration_ms = Hours(24.0);

  // Per-array variation.  rate_spread = 0.5 scales each array's rates by a
  // factor uniform in [0.75, 1.25]; phase_spread_ms staggers diurnal phases
  // evenly (array i gets i/N of the window).  Both default to a homogeneous,
  // in-phase fleet.
  double rate_spread = 0.0;
  Duration phase_spread_ms = Ms(0.0);

  std::uint64_t seed = 9001;

  int DisksPerArray() const { return base_array.num_disks + base_array.num_cache_disks; }
  int TotalDisks() const { return num_arrays * DisksPerArray(); }
};

struct FleetResult {
  int arrays = 0;
  int disks = 0;
  std::uint64_t events = 0;        // simulator events across all shards
  std::int64_t requests = 0;
  Joules energy_total;
  Duration mean_response_ms;       // request-weighted across arrays
  Duration worst_p99_response_ms;  // max per-array p99
  std::vector<ExperimentResult> per_array;  // spec order
  MetricsSnapshot metrics;         // deterministic spec-order merge
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetSpec spec);

  // The per-array shards, in fleet order.  Exposed so tests can inspect the
  // deterministic variation (seeds, rates, phases).
  const std::vector<ExperimentSpec>& specs() const { return specs_; }

  // Runs every shard (max_threads <= 0: DefaultParallelism) and aggregates.
  // Bit-identical for any thread count.  Merge-side: must not run inside a
  // shard (no nested fleets within a shard universe).
  FleetResult Run(int max_threads = 0) const HIB_EXCLUDES_CONTEXT(kShardContext);

 private:
  FleetSpec spec_;
  // Built once in the constructor, read-only afterwards: shards receive
  // const references into this vector, so mutating it during Run() would be
  // a cross-shard data race.
  std::vector<ExperimentSpec> specs_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_HARNESS_FLEET_H_
