#include "src/harness/experiment.h"

#include <algorithm>

#include "src/obs/export.h"
#include "src/policy/full_power.h"
#include "src/trace/synthetic.h"

namespace hib {

namespace {

// Pull-driven injector: schedules one arrival at a time so multi-million
// request traces never sit in the event queue at once.
class TraceInjector {
 public:
  TraceInjector(Simulator* sim, ArrayController* array, WorkloadSource* workload)
      : sim_(sim), array_(array), workload_(workload) {}

  void Start() { ScheduleNext(); }

 private:
  void ScheduleNext() {
    TraceRecord rec;
    if (!workload_->Next(&rec)) {
      return;
    }
    sim_->ScheduleAt(rec.time, [this, rec] {
      array_->Submit(rec);
      ScheduleNext();
    });
  }

  Simulator* sim_;
  ArrayController* array_;
  WorkloadSource* workload_;
};

}  // namespace

std::size_t EventCapacityHintFor(const ArrayParams& array_params, double peak_iops) {
  // Pending (not total) events: one injector arrival, at most a handful of
  // timers per disk (service completion, spin/speed transitions), policy
  // timers, and one cache-hit completion per in-flight request — the latter
  // scales with the arrival rate.  The floor keeps the hint no smaller than
  // the old fixed default, so existing runs can only gain headroom.
  int disks = array_params.num_disks + array_params.num_cache_disks;
  std::size_t hint = static_cast<std::size_t>(64 * disks) +
                     static_cast<std::size_t>(4.0 * (peak_iops > 0.0 ? peak_iops : 0.0));
  return hint < 4096 ? 4096 : hint;
}

ExperimentResult RunExperiment(WorkloadSource& workload, PowerPolicy& policy,
                               const ArrayParams& array_params,
                               const ExperimentOptions& options) {
  Simulator sim;
  sim.ReserveEvents(options.event_capacity_hint > 0
                        ? options.event_capacity_hint
                        : EventCapacityHintFor(array_params, workload.PeakIopsHint()));
  if (options.trace_events > 0 || !options.trace_out.empty()) {
    sim.obs().tracer.Enable(options.trace_events > 0 ? options.trace_events
                                                     : Tracer::kDefaultCapacity);
  }
  ArrayController array(&sim, array_params);
  policy.Attach(&sim, &array);

  TraceInjector injector(&sim, &array, &workload);
  injector.Start();

  ExperimentResult result;
  result.policy_name = policy.Name();
  result.policy_desc = policy.Describe();
  if (options.collect_series) {
    Duration hint_ms = workload.DurationHint();
    if (hint_ms > Duration{} && options.sample_period_ms > Duration{}) {
      result.series.reserve(static_cast<std::size_t>(hint_ms / options.sample_period_ms) + 2);
    }
  }

  // Time-series sampler (driven off cumulative counters so it never
  // interferes with the policies' own measurement windows).
  Duration sampled_sum;
  std::int64_t sampled_count = 0;
  if (options.collect_series) {
    sim.SchedulePeriodic(options.sample_period_ms, options.sample_period_ms, [&] {
      const ArrayStats& st = array.stats();
      SeriesPoint p;
      p.t = sim.Now();
      Duration dsum = st.total_response_sum_ms - sampled_sum;
      std::int64_t dcount = st.total_responses - sampled_count;
      sampled_sum = st.total_response_sum_ms;
      sampled_count = st.total_responses;
      p.window_mean_response_ms = dcount > 0 ? dsum / static_cast<double>(dcount) : Duration{};
      p.energy_so_far = array.TotalEnergy().Total();
      p.disks_at_level.assign(static_cast<std::size_t>(array_params.disk.num_speeds()), 0);
      for (int i = 0; i < array.num_data_disks(); ++i) {
        const Disk& d = array.disk(i);
        switch (d.state()) {
          case DiskPowerState::kStandby:
          case DiskPowerState::kSpinningDown:
          case DiskPowerState::kSpinningUp:
            ++p.disks_standby;
            break;
          default:
            ++p.disks_at_level[static_cast<std::size_t>(d.current_level())];
            break;
        }
      }
      result.series.push_back(std::move(p));
    });
  }

  // Replay horizon: the trace duration (when the source knows it) plus a
  // drain allowance so in-flight sub-ops finish.  Policies keep periodic
  // timers armed forever, so the run must be bounded externally.  Sources
  // with unknown length (file readers) are discovered in one-hour slices —
  // the run ends after the first slice that completes no new requests.
  Duration hint = workload.DurationHint();
  if (hint > Duration{}) {
    sim.RunUntil(hint + options.drain_ms);
  } else {
    std::int64_t last_completed = -1;
    SimTime horizon;
    while (true) {
      horizon += Hours(1.0);
      sim.RunUntil(horizon);
      std::int64_t completed = array.stats().total_responses;
      if (completed == last_completed) {
        break;
      }
      last_completed = completed;
    }
    sim.RunUntil(sim.Now() + options.drain_ms);
  }
  policy.Finish();
  array.FlushObs();  // close every disk's open power-state span

  result.sim_duration_ms = sim.Now();
  result.events = sim.events_fired();
  DiskEnergy energy = array.TotalEnergy();
  result.energy = energy;
  result.energy_total = energy.Total();

  ArrayStats& st = array.stats();
  result.requests = st.total_responses;
  result.mean_response_ms = Ms(st.response_ms.mean());
  result.p95_response_ms = Ms(st.response_pct.Percentile(95.0));
  result.p99_response_ms = Ms(st.response_pct.Percentile(99.0));
  result.max_response_ms = Ms(st.response_ms.max());
  result.cache_hit_rate = array.cache().HitRate();
  result.migrations = st.migrations_completed;
  result.migrated_sectors = st.migrated_sectors;
  for (int i = 0; i < array.num_disks_total(); ++i) {
    const DiskStats& ds = array.disk(i).stats();
    result.spin_ups += ds.spin_ups;
    result.spin_downs += ds.spin_downs;
    result.rpm_changes += ds.rpm_changes;
  }
  result.metrics = sim.obs().metrics.Snapshot();
  if (!options.trace_out.empty()) {
    WriteChromeTraceFile(options.trace_out, sim.obs().tracer);
  }
  if (!options.metrics_out.empty()) {
    WriteMetricsJsonFile(options.metrics_out, result.metrics);
  }
  return result;
}

OltpSetup MakeOltpSetup(int speed_levels) {
  OltpSetup setup;
  setup.array.num_disks = 20;
  setup.array.group_width = 4;
  setup.array.disk = MakeUltrastar36Z15MultiSpeed(speed_levels);
  setup.array.cache_lines = 2048;
  setup.array.seed = 1001;
  return setup;
}

CelloSetup MakeCelloSetup(int speed_levels) {
  CelloSetup setup;
  setup.array.num_disks = 12;
  setup.array.group_width = 4;
  setup.array.disk = MakeUltrastar36Z15MultiSpeed(speed_levels);
  setup.array.cache_lines = 2048;
  setup.array.seed = 2002;
  return setup;
}

Duration MeasureBaseResponseMs(WorkloadSource& workload, const ArrayParams& array_params,
                             Duration probe_ms) {
  Simulator sim;
  ArrayController array(&sim, array_params);
  FullPowerPolicy base;
  base.Attach(&sim, &array);
  workload.Reset();
  TraceRecord rec;
  // Inject pull-driven as in RunExperiment but bounded by probe_ms.
  std::function<void()> schedule_next = [&]() {
    TraceRecord r;
    if (!workload.Next(&r)) {
      return;
    }
    if (probe_ms > Duration{} && r.time > probe_ms) {
      return;
    }
    // Pull-driven injection: sim/array/schedule_next live in this frame, and
    // RunUntil below drains the queue before the frame returns, so the by-ref
    // captures outlive every event.  schedule_next must be by-ref (it names
    // itself); r is copied.
    sim.ScheduleAt(r.time, [&, r] {  // NOLINT(HIB023)
      array.Submit(r);
      schedule_next();
    });
  };
  schedule_next();
  SimTime bound = probe_ms > Duration{} ? probe_ms : Hours(24.0 * 365.0);
  sim.RunUntil(bound + Seconds(30.0));
  workload.Reset();
  return Ms(array.stats().response_ms.mean());
}

}  // namespace hib
