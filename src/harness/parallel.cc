#include "src/harness/parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/util/check.h"

namespace hib {

namespace {

// Runs one claimed spec inside the shard context: the universe constructed
// here (policy, workload, Simulator) is shard-owned — its address must never
// escape the worker (simlint HIB022), and clang's capability analysis checks
// that only shard-context code is called from here.
ExperimentResult RunOneShard(const ExperimentSpec& spec)
    HIB_THREAD_CONTEXT(kShardContext) {
  HIB_CHECK(static_cast<bool>(spec.make_policy))
      << "ExperimentSpec '" << spec.name << "' has no policy factory";
  HIB_CHECK(static_cast<bool>(spec.make_workload))
      << "ExperimentSpec '" << spec.name << "' has no workload factory";
  std::unique_ptr<PowerPolicy> policy = spec.make_policy();
  std::unique_ptr<WorkloadSource> workload = spec.make_workload(spec.array);
  ExperimentResult result = RunExperiment(*workload, *policy, spec.array, spec.options);
  if (spec.post_run) {
    spec.post_run(*policy, result);
  }
  return result;
}

}  // namespace

int DefaultParallelism() {
  if (const char* env = std::getenv("HIB_JOBS")) {
    int jobs = std::atoi(env);
    if (jobs > 0) {
      return jobs;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<ExperimentResult> RunAll(const std::vector<ExperimentSpec>& specs,
                                     int max_threads) HIB_EXCLUDES_CONTEXT(kShardContext) {
  std::vector<ExperimentResult> results(specs.size());
  if (specs.empty()) {
    return results;
  }
  int threads = max_threads > 0 ? max_threads : DefaultParallelism();
  if (static_cast<std::size_t>(threads) > specs.size()) {
    threads = static_cast<int>(specs.size());
  }

  // Work-stealing-free claim counter: each worker grabs the next unclaimed
  // spec index.  Results land in spec order no matter which thread ran what.
  std::atomic<std::size_t> next{0};
  auto worker = [&specs, &results, &next] {
    // Every worker thread runs shards back to back; the context scope marks
    // the whole claim loop as shard-side for the capability analysis.
    ThreadContextScope shard_scope(kShardContext);
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) {
        return;
      }
      results[i] = RunOneShard(specs[i]);
    }
  };

  if (threads <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

MetricsSnapshot MergeMetrics(const std::vector<ExperimentResult>& results)
    HIB_EXCLUDES_CONTEXT(kShardContext) {
  MetricsSnapshot merged;
  for (const ExperimentResult& result : results) {
    merged.MergeFrom(result.metrics);
  }
  return merged;
}

ExperimentSpec SpecForScheme(const SchemeConfig& config, const ArrayParams& base_array,
                             std::function<std::unique_ptr<WorkloadSource>(const ArrayParams&)>
                                 make_workload,
                             const ExperimentOptions& options) {
  ExperimentSpec spec;
  spec.name = SchemeName(config.scheme);
  spec.array = ArrayFor(config, base_array);
  spec.make_policy = [config] { return MakePolicy(config); };
  spec.make_workload = std::move(make_workload);
  spec.options = options;
  if (spec.options.event_capacity_hint == 0 && spec.make_workload) {
    // Size the event queue from the workload's own peak-rate estimate so the
    // run never grows it mid-flight (generators are cheap to instantiate; the
    // probe is discarded immediately).
    std::unique_ptr<WorkloadSource> probe = spec.make_workload(spec.array);
    spec.options.event_capacity_hint =
        EventCapacityHintFor(spec.array, probe ? probe->PeakIopsHint() : 0.0);
  }
  return spec;
}

}  // namespace hib
