#include "src/harness/schemes.h"

#include "src/hibernator/hibernator_policy.h"
#include "src/policy/drpm.h"
#include "src/policy/full_power.h"
#include "src/policy/maid.h"
#include "src/policy/pdc.h"
#include "src/policy/tpm.h"
#include "src/policy/tpm_adaptive.h"

namespace hib {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBase:
      return "Base";
    case Scheme::kTpm:
      return "TPM";
    case Scheme::kTpmAdaptive:
      return "TPM-Adaptive";
    case Scheme::kDrpm:
      return "DRPM";
    case Scheme::kPdc:
      return "PDC";
    case Scheme::kMaid:
      return "MAID";
    case Scheme::kHibernator:
      return "Hibernator";
    case Scheme::kHibernatorNoMigration:
      return "Hibernator-NoMig";
    case Scheme::kHibernatorNoBoost:
      return "Hibernator-NoBoost";
    case Scheme::kHibernatorUtilThreshold:
      return "Hibernator-UT";
  }
  return "?";
}

std::vector<Scheme> MainComparisonSchemes() {
  return {Scheme::kBase, Scheme::kTpm,  Scheme::kDrpm,
          Scheme::kPdc,  Scheme::kMaid, Scheme::kHibernator};
}

ArrayParams ArrayFor(const SchemeConfig& config, ArrayParams base) {
  switch (config.scheme) {
    case Scheme::kPdc:
      base.group_width = 1;
      break;
    case Scheme::kMaid:
      base.group_width = 1;
      base.num_cache_disks = config.maid_cache_disks;
      break;
    default:
      break;
  }
  return base;
}

std::unique_ptr<PowerPolicy> MakePolicy(const SchemeConfig& config) {
  switch (config.scheme) {
    case Scheme::kBase:
      return std::make_unique<FullPowerPolicy>();
    case Scheme::kTpm:
      return std::make_unique<TpmPolicy>();
    case Scheme::kTpmAdaptive:
      return std::make_unique<AdaptiveTpmPolicy>();
    case Scheme::kDrpm:
      return std::make_unique<DrpmPolicy>();
    case Scheme::kPdc:
      return std::make_unique<PdcPolicy>();
    case Scheme::kMaid:
      return std::make_unique<MaidPolicy>();
    case Scheme::kHibernator:
    case Scheme::kHibernatorNoMigration:
    case Scheme::kHibernatorNoBoost:
    case Scheme::kHibernatorUtilThreshold: {
      HibernatorParams hp;
      hp.goal_ms = config.goal_ms;
      hp.epoch_ms = config.epoch_ms;
      hp.migration_budget_extents = config.migration_budget_extents;
      hp.enable_migration = config.scheme != Scheme::kHibernatorNoMigration;
      hp.enable_boost = config.scheme != Scheme::kHibernatorNoBoost;
      hp.use_cr = config.scheme != Scheme::kHibernatorUtilThreshold;
      return std::make_unique<HibernatorPolicy>(hp);
    }
  }
  return std::make_unique<FullPowerPolicy>();
}

}  // namespace hib
