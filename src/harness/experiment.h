// Experiment harness: replays a workload against an array under a policy and
// collects the paper's metrics (energy by component, response-time
// distribution, transitions, migration volume, and a time series for the
// dynamics figures).
#ifndef HIBERNATOR_SRC_HARNESS_EXPERIMENT_H_
#define HIBERNATOR_SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/array/array.h"
#include "src/policy/policy.h"
#include "src/trace/trace.h"

namespace hib {

// One sample of the run's dynamics (taken every sample_period_ms).
struct SeriesPoint {
  SimTime t;
  Duration window_mean_response_ms;  // mean over the sample window
  Joules energy_so_far;
  std::vector<int> disks_at_level;  // data disks per RPM level
  int disks_standby = 0;            // data disks in/entering standby
};

struct ExperimentResult {
  std::string policy_name;
  std::string policy_desc;
  Duration sim_duration_ms;

  Joules energy_total;
  DiskEnergy energy;  // component breakdown

  std::int64_t requests = 0;
  std::uint64_t events = 0;  // simulator events dispatched during the run
  Duration mean_response_ms;
  Duration p95_response_ms;
  Duration p99_response_ms;
  Duration max_response_ms;
  double cache_hit_rate = 0.0;

  std::int64_t spin_ups = 0;
  std::int64_t spin_downs = 0;
  std::int64_t rpm_changes = 0;
  std::int64_t migrations = 0;
  std::int64_t migrated_sectors = 0;

  std::vector<SeriesPoint> series;

  // Snapshot of the run's metrics registry (counters/gauges/histograms from
  // src/obs).  Always populated; empty when HIB_OBS=0 compiled the
  // instrumentation out.
  MetricsSnapshot metrics;

  // Mean power over the run; Joules / Duration is a Watts.
  Watts MeanPower() const {
    return sim_duration_ms > Duration{} ? energy_total / sim_duration_ms : Watts{};
  }
  // Fractional energy saved relative to a baseline run (positive = saved).
  double SavingsVs(const ExperimentResult& base) const {
    return base.energy_total > Joules{} ? 1.0 - energy_total / base.energy_total : 0.0;
  }
};

struct ExperimentOptions {
  Duration drain_ms = Seconds(30.0);
  Duration sample_period_ms = Hours(0.25);
  bool collect_series = false;
  // Capacity hint for the event queue (concurrently *pending* events, not
  // total events fired): covers per-disk in-flight service completions,
  // policy timers and the injector's next arrival, so multi-million-event
  // runs never reallocate the heap or the slot arena mid-run.  0 = auto:
  // derived from the array size and the workload's PeakIopsHint() (see
  // EventCapacityHintFor), never below the old fixed default of 4096.
  std::size_t event_capacity_hint = 0;

  // Tracing: a nonzero `trace_events` (ring capacity) or a nonempty
  // `trace_out` enables the tracer for the run.  `trace_out` writes a
  // Chrome/Perfetto trace_event JSON file at the end; `metrics_out` writes
  // the metrics snapshot as JSON.
  std::size_t trace_events = 0;
  std::string trace_out;
  std::string metrics_out;
};

// Event-queue capacity to reserve for an array of this size under a workload
// with the given peak arrival rate (requests/second; 0 = unknown).  Used when
// ExperimentOptions::event_capacity_hint is 0.
std::size_t EventCapacityHintFor(const ArrayParams& array_params, double peak_iops);

// Replays `workload` (from its current position; call Reset() first for a
// fresh pass) through a new array configured by `array_params`, managed by
// `policy`.  Deterministic: identical inputs give identical results.
ExperimentResult RunExperiment(WorkloadSource& workload, PowerPolicy& policy,
                               const ArrayParams& array_params,
                               const ExperimentOptions& options = {});

// --- Standard configurations shared by benches, examples and tests --------

// The OLTP setup: 20 data disks in width-4 RAID5 groups, 5-speed disks,
// 24-hour synthetic TPC-C-like stream.
struct OltpSetup {
  ArrayParams array;
  // Workload parameters (pass to OltpWorkload).
  double peak_iops = 300.0;
  double trough_iops = 90.0;
  Duration duration_ms = Hours(24.0);
};
OltpSetup MakeOltpSetup(int speed_levels = 5);

// The Cello setup: 12 data disks, bursty diurnal file-server stream.
struct CelloSetup {
  ArrayParams array;
  double peak_iops = 90.0;
  double trough_iops = 4.0;
  Duration duration_ms = Hours(24.0);
};
CelloSetup MakeCelloSetup(int speed_levels = 5);

// Measures the Base (full-power) mean response time for a setup; the
// performance goals of all other schemes are expressed as multiples of this.
// Uses a shortened probe run for speed; pass probe_ms <= 0 for a full run.
Duration MeasureBaseResponseMs(WorkloadSource& workload, const ArrayParams& array_params,
                             Duration probe_ms);

}  // namespace hib

#endif  // HIBERNATOR_SRC_HARNESS_EXPERIMENT_H_
