#include "src/harness/fleet.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/trace/morph.h"
#include "src/trace/synthetic.h"
#include "src/trace/zoo.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace hib {

FleetSimulator::FleetSimulator(FleetSpec spec) : spec_(spec) {
  HIB_CHECK_GT(spec_.num_arrays, 0) << "fleet needs at least one array";
  HIB_CHECK_GE(spec_.rate_spread, 0.0);
  // All per-array randomness is drawn here, in index order, so the shard
  // specs — and therefore the whole fleet run — are a pure function of the
  // FleetSpec, independent of thread count and scheduling.
  Pcg32 rng(spec_.seed);
  specs_.reserve(static_cast<std::size_t>(spec_.num_arrays));
  for (int i = 0; i < spec_.num_arrays; ++i) {
    double u = rng.NextDouble();
    double scale = 1.0 + spec_.rate_spread * (u - 0.5);
    Duration phase =
        spec_.phase_spread_ms * (static_cast<double>(i) / static_cast<double>(spec_.num_arrays));
    double peak = spec_.peak_iops * scale;
    double trough = spec_.trough_iops * scale;
    // Distinct seeds per array: disks and workload draw from unrelated
    // streams even across neighbouring shards.
    std::uint64_t array_seed =
        spec_.base_array.seed + 1000003ULL * static_cast<std::uint64_t>(i + 1);
    std::uint64_t workload_seed =
        spec_.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));

    ExperimentSpec es;
    es.name = "array-" + std::to_string(i);
    ArrayParams base = spec_.base_array;
    base.seed = array_seed;
    es.array = ArrayFor(spec_.scheme, base);
    SchemeConfig cfg = spec_.scheme;
    es.make_policy = [cfg] { return MakePolicy(cfg); };
    Duration duration = spec_.duration_ms;
    switch (spec_.workload) {
      case FleetSpec::Workload::kOltp:
        es.make_workload = [peak, trough, duration, phase, workload_seed](
                               const ArrayParams& p) -> std::unique_ptr<WorkloadSource> {
          OltpWorkloadParams wp;
          wp.address_space_sectors = p.DataSectors();
          wp.duration_ms = duration;
          wp.peak_iops = peak;
          wp.trough_iops = trough;
          wp.phase_ms = phase;
          wp.seed = workload_seed;
          return std::make_unique<OltpWorkload>(wp);
        };
        break;
      case FleetSpec::Workload::kCello:
        es.make_workload = [peak, trough, duration, phase, workload_seed](
                               const ArrayParams& p) -> std::unique_ptr<WorkloadSource> {
          CelloWorkloadParams wp;
          wp.address_space_sectors = p.DataSectors();
          wp.duration_ms = duration;
          wp.peak_iops = peak;
          wp.trough_iops = trough;
          wp.phase_ms = phase;
          wp.seed = workload_seed;
          return std::make_unique<CelloWorkload>(wp);
        };
        break;
      case FleetSpec::Workload::kMlTraining:
        // The zoo generators have no built-in diurnal phase knob; the fleet
        // staggers them with a PhaseSpliceMorph instead, which is exactly
        // what the morpher is for.
        es.make_workload = [peak, duration, phase, workload_seed](
                               const ArrayParams& p) -> std::unique_ptr<WorkloadSource> {
          MlTrainingWorkloadParams wp;
          wp.address_space_sectors = p.DataSectors();
          wp.duration_ms = duration;
          wp.read_iops = peak;
          wp.seed = workload_seed;
          auto source = std::make_unique<MlTrainingWorkload>(wp);
          if (phase > Duration{}) {
            return std::make_unique<PhaseSpliceMorph>(std::move(source), phase, duration);
          }
          return source;
        };
        break;
      case FleetSpec::Workload::kBackupScan:
        es.make_workload = [peak, trough, duration, phase, workload_seed](
                               const ArrayParams& p) -> std::unique_ptr<WorkloadSource> {
          BackupScanWorkloadParams wp;
          wp.address_space_sectors = p.DataSectors();
          wp.duration_ms = duration;
          wp.scan_iops = peak;
          wp.background_iops = trough;
          wp.seed = workload_seed;
          auto source = std::make_unique<BackupScanWorkload>(wp);
          if (phase > Duration{}) {
            return std::make_unique<PhaseSpliceMorph>(std::move(source), phase, duration);
          }
          return source;
        };
        break;
    }
    // Pre-size each shard's event queue from its own peak rate so no shard
    // grows the queue mid-run.
    es.options.event_capacity_hint = EventCapacityHintFor(es.array, peak);
    specs_.push_back(std::move(es));
  }
}

FleetResult FleetSimulator::Run(int max_threads) const
    HIB_EXCLUDES_CONTEXT(kShardContext) {
  FleetResult fleet;
  fleet.arrays = spec_.num_arrays;
  fleet.disks = spec_.TotalDisks();
  std::vector<ExperimentResult> results = RunAll(specs_, max_threads);

  Duration weighted_sum;
  for (const ExperimentResult& r : results) {
    fleet.events += r.events;
    fleet.requests += r.requests;
    fleet.energy_total += r.energy_total;
    weighted_sum += r.mean_response_ms * static_cast<double>(r.requests);
    fleet.worst_p99_response_ms = std::max(fleet.worst_p99_response_ms, r.p99_response_ms);
  }
  if (fleet.requests > 0) {
    fleet.mean_response_ms = weighted_sum / static_cast<double>(fleet.requests);
  }
  fleet.metrics = MergeMetrics(results);
  fleet.per_array = std::move(results);
  return fleet;
}

}  // namespace hib
