// Multi-core experiment runner.
//
// Every RunExperiment call is an isolated universe: the Simulator, the array,
// the policy and the workload source are all constructed inside the run and
// share no mutable state with any other run (src/util/random.h RNGs are
// per-object; the logger's threshold is atomic and its sink writes whole
// lines).  That makes the evaluation embarrassingly parallel, and — because
// each run is deterministic in its inputs alone — the results are *bit
// identical* to running the same specs sequentially, regardless of thread
// count or scheduling (tests/parallel_test.cc pins this).
#ifndef HIBERNATOR_SRC_HARNESS_PARALLEL_H_
#define HIBERNATOR_SRC_HARNESS_PARALLEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/util/thread_annotations.h"

namespace hib {

// One experiment to run.  Factories (not instances) because each worker
// thread must build its own policy and workload; they are invoked
// concurrently and must not touch shared mutable state.
struct ExperimentSpec {
  std::string name;
  ArrayParams array;
  std::function<std::unique_ptr<PowerPolicy>()> make_policy;
  std::function<std::unique_ptr<WorkloadSource>(const ArrayParams&)> make_workload;
  ExperimentOptions options = {};
  // Optional hook, invoked in the worker thread right after the run with the
  // policy still alive — for policy-specific counters (boost time, ...).
  // It must only write state owned by this spec (e.g. its own slot in a
  // caller-side vector).
  std::function<void(const PowerPolicy&, const ExperimentResult&)> post_run;
};

// Threads RunAll uses when `max_threads` <= 0: the HIB_JOBS environment
// variable if set, else std::thread::hardware_concurrency().
int DefaultParallelism();

// Runs every spec (each in its own thread, up to the thread cap) and returns
// results in spec order.  Bit-identical to calling RunExperiment sequentially.
// Excludes the shard context: shard universes must not nest (a spec's
// callbacks launching another RunAll would break the bit-identical merge).
std::vector<ExperimentResult> RunAll(const std::vector<ExperimentSpec>& specs,
                                     int max_threads = 0)
    HIB_EXCLUDES_CONTEXT(kShardContext);

// Folds every shard's metrics snapshot into one, in spec order.  Because
// RunAll's results are bit-identical to a sequential run and land in spec
// order, this merge is deterministic regardless of thread count or
// scheduling (tests/obs_test.cc pins this).  Merge-side only: it must run
// after every shard has joined, never inside one.
MetricsSnapshot MergeMetrics(const std::vector<ExperimentResult>& results)
    HIB_EXCLUDES_CONTEXT(kShardContext);

// Convenience: the scheme-comparison spec used by the paper benches.
ExperimentSpec SpecForScheme(const SchemeConfig& config, const ArrayParams& base_array,
                             std::function<std::unique_ptr<WorkloadSource>(const ArrayParams&)>
                                 make_workload,
                             const ExperimentOptions& options = {});

}  // namespace hib

#endif  // HIBERNATOR_SRC_HARNESS_PARALLEL_H_
