// Scheme registry: builds each evaluated policy with its matching array
// layout, so every bench and example constructs schemes the same way.
//
// Layout per scheme follows the original systems: Base/TPM/DRPM/Hibernator
// run on the striped (width-4 RAID5) array; PDC and MAID assume unstriped
// disks (width 1), and MAID adds always-on cache disks (which are charged to
// its energy bill, as in the paper).
#ifndef HIBERNATOR_SRC_HARNESS_SCHEMES_H_
#define HIBERNATOR_SRC_HARNESS_SCHEMES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/array/array.h"
#include "src/policy/policy.h"

namespace hib {

enum class Scheme {
  kBase,
  kTpm,
  kTpmAdaptive,
  kDrpm,
  kPdc,
  kMaid,
  kHibernator,
  kHibernatorNoMigration,  // ablation: speeds only, data stays put
  kHibernatorNoBoost,      // ablation: no performance guarantee
  kHibernatorUtilThreshold,  // ablation: naive speed setter instead of CR
};

const char* SchemeName(Scheme scheme);

// All schemes in the paper's main comparison figures, in display order.
std::vector<Scheme> MainComparisonSchemes();

struct SchemeConfig {
  Scheme scheme = Scheme::kBase;
  // Response-time goal for Hibernator variants (ms, absolute).
  Duration goal_ms = Ms(20.0);
  Duration epoch_ms = Hours(2.0);
  std::int64_t migration_budget_extents = 4096;
  int maid_cache_disks = 2;
};

// Returns `base` adjusted to the layout the scheme requires.
ArrayParams ArrayFor(const SchemeConfig& config, ArrayParams base);

// Builds the policy object.
std::unique_ptr<PowerPolicy> MakePolicy(const SchemeConfig& config);

}  // namespace hib

#endif  // HIBERNATOR_SRC_HARNESS_SCHEMES_H_
