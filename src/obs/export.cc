#include "src/obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace hib {

namespace {

// Lane layout inside the single trace "process": shared lanes first, then two
// lanes per disk (power-state residency above the disk's I/O activity).
constexpr int kTidArray = 1;
constexpr int kTidPolicy = 2;
constexpr int kTidDiskBase = 10;

int LaneOf(const TraceEvent& event) {
  if (event.track == kTrackArray) {
    return kTidArray;
  }
  if (event.track == kTrackPolicy) {
    return kTidPolicy;
  }
  int power_lane = kTidDiskBase + 2 * event.track;
  return event.kind == SpanKind::kPowerState ? power_lane : power_lane + 1;
}

std::string LaneName(const TraceEvent& event, int tid) {
  if (tid == kTidArray) {
    return "array";
  }
  if (tid == kTidPolicy) {
    return "policy";
  }
  std::string label = "disk " + std::to_string(event.track);
  label += event.kind == SpanKind::kPowerState ? " power" : " io";
  return label;
}

// Chrome trace_event timestamps are microseconds; sim time is milliseconds.
double ToMicros(Duration d) { return d.value() * 1000.0; }

bool IsAsyncKind(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait:
    case SpanKind::kRequest:
    case SpanKind::kRebuild:
    case SpanKind::kMigration:
      return true;
    default:
      return false;
  }
}

JsonObject EventCommon(const TraceEvent& event, int tid) {
  JsonObject o;
  o.Set("name", JsonValue::Str(event.name));
  o.Set("cat", JsonValue::Str(SpanKindName(event.kind)));
  o.Set("pid", JsonValue::Int(0));
  o.Set("tid", JsonValue::Int(tid));
  return o;
}

JsonObject EventArgs(const TraceEvent& event) {
  JsonObject args;
  args.Set("arg", event.arg);
  return args;
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const Tracer& tracer) {
  std::vector<TraceEvent> events = tracer.Events();

  // Discover the lanes in play so the viewer shows named, stably ordered rows.
  std::map<int, std::string> lanes;
  for (const TraceEvent& event : events) {
    int tid = LaneOf(event);
    lanes.emplace(tid, LaneName(event, tid));
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const JsonObject& o) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << o.Dump();
  };

  for (const auto& [tid, label] : lanes) {
    JsonObject name_meta;
    name_meta.Set("ph", std::string("M"));
    name_meta.Set("name", std::string("thread_name"));
    name_meta.Set("pid", JsonValue::Int(0));
    name_meta.Set("tid", JsonValue::Int(tid));
    name_meta.Set("args", JsonObject().Set("name", label));
    emit(name_meta);
    JsonObject sort_meta;
    sort_meta.Set("ph", std::string("M"));
    sort_meta.Set("name", std::string("thread_sort_index"));
    sort_meta.Set("pid", JsonValue::Int(0));
    sort_meta.Set("tid", JsonValue::Int(tid));
    sort_meta.Set("args", JsonObject().Set("sort_index", JsonValue::Int(tid)));
    emit(sort_meta);
  }

  for (const TraceEvent& event : events) {
    int tid = LaneOf(event);
    if (event.instant) {
      JsonObject o = EventCommon(event, tid);
      o.Set("ph", std::string("i"));
      o.Set("s", std::string("t"));
      o.Set("ts", ToMicros(event.start));
      o.Set("args", EventArgs(event));
      emit(o);
    } else if (IsAsyncKind(event.kind)) {
      // Async begin/end pairs (matched by cat+id) let overlapping intervals —
      // queued sub-ops, in-flight logical requests — nest instead of
      // corrupting a single lane's stack.
      JsonObject begin = EventCommon(event, tid);
      begin.Set("ph", std::string("b"));
      begin.Set("id", JsonValue::Int(event.id));
      begin.Set("ts", ToMicros(event.start));
      begin.Set("args", EventArgs(event));
      emit(begin);
      JsonObject end = EventCommon(event, tid);
      end.Set("ph", std::string("e"));
      end.Set("id", JsonValue::Int(event.id));
      end.Set("ts", ToMicros(event.start + event.dur));
      emit(end);
    } else {
      JsonObject o = EventCommon(event, tid);
      o.Set("ph", std::string("X"));
      o.Set("ts", ToMicros(event.start));
      o.Set("dur", ToMicros(event.dur));
      o.Set("args", EventArgs(event));
      emit(o);
    }
  }
  os << "]}\n";
}

void WriteChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream os(path);
  HIB_CHECK(os.good()) << "cannot open trace output '" << path << "'";
  WriteChromeTrace(os, tracer);
  os.flush();
  HIB_CHECK(os.good()) << "failed writing trace output '" << path << "'";
}

JsonObject MetricsSnapshotJson(const MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const auto& point : snapshot.counters) {
    counters.Set(point.name, JsonValue::Int(point.count));
  }
  JsonObject gauges;
  for (const auto& point : snapshot.gauges) {
    gauges.Set(point.name, point.current);
  }
  JsonObject histograms;
  for (const auto& point : snapshot.histograms) {
    // An empty histogram of the same shape resolves bucket bounds/quantiles
    // for the snapshot's dense counts.
    LogLinearHistogram shape(point.options);
    JsonObject h;
    h.Set("count", JsonValue::Int(point.count));
    h.Set("sum", point.sum);
    h.Set("min", point.min_seen);
    h.Set("max", point.max_seen);
    h.Set("mean", point.count > 0 ? point.sum / static_cast<double>(point.count) : 0.0);
    auto quantile = [&](double q) {
      if (point.count == 0) {
        return 0.0;
      }
      auto target = std::max<std::int64_t>(
          static_cast<std::int64_t>(std::ceil(q * static_cast<double>(point.count))), 1);
      std::int64_t seen = 0;
      for (std::size_t i = 0; i < point.buckets.size(); ++i) {
        seen += point.buckets[i];
        if (seen >= target) {
          return shape.BucketLowerBound(static_cast<int>(i));
        }
      }
      return shape.BucketLowerBound(point.options.NumBuckets() - 1);
    };
    h.Set("p50", quantile(0.50));
    h.Set("p95", quantile(0.95));
    h.Set("p99", quantile(0.99));
    JsonArray buckets;
    for (std::size_t i = 0; i < point.buckets.size(); ++i) {
      if (point.buckets[i] != 0) {
        JsonArray pair;
        pair.Push(JsonValue::Int(static_cast<std::int64_t>(i)));
        pair.Push(JsonValue::Int(point.buckets[i]));
        buckets.Push(JsonValue::Raw(pair.Dump()));
      }
    }
    h.Set("buckets", buckets);
    histograms.Set(point.name, h);
  }
  JsonObject out;
  out.Set("counters", counters);
  out.Set("gauges", gauges);
  out.Set("histograms", histograms);
  return out;
}

void WriteMetricsJsonFile(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream os(path);
  HIB_CHECK(os.good()) << "cannot open metrics output '" << path << "'";
  JsonObject root;
  root.Set("metrics", MetricsSnapshotJson(snapshot));
  os << root.Dump() << "\n";
  os.flush();
  HIB_CHECK(os.good()) << "failed writing metrics output '" << path << "'";
}

}  // namespace hib
