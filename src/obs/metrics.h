// Metrics registry: named counters, gauges and log-linear histograms.
//
// Every Simulator owns one registry (via hib::Observability); components
// resolve their instruments once at construction (GetCounter et al. return
// stable references) and bump them through the HIB_COUNTER_* / HIB_HIST_*
// macros from src/obs/obs.h, which compile out entirely when HIB_OBS=0 —
// the same discipline HIB_DCHECK uses.
//
// A registry is single-simulation state: no locks, no globals (HIB006).
// Cross-run aggregation happens on immutable MetricsSnapshot values, merged
// deterministically in spec order by the parallel harness.
#ifndef HIBERNATOR_SRC_OBS_METRICS_H_
#define HIBERNATOR_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace hib {

class Counter {
 public:
  void Add(std::int64_t n) { count_ += n; }
  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
};

class Gauge {
 public:
  void Set(double v) {
    current_ = v;
    set_ = true;
  }
  double current() const { return current_; }
  bool set() const { return set_; }

 private:
  double current_ = 0.0;
  bool set_ = false;
};

// Shape of a log-linear histogram: values in [min_bound * 2^o, min_bound *
// 2^(o+1)) for octave o in [0, octaves) are split into `sub_buckets` linear
// sub-buckets.  Bucket 0 catches v < min_bound (and non-finite values); the
// last bucket catches v >= min_bound * 2^octaves.  With sub_buckets a power
// of two the boundaries are exact binary doubles, so boundary values land in
// deterministic buckets on every platform (tests/obs_test.cc pins this).
struct HistogramOptions {
  double min_bound = 1.0 / 128.0;  // ~8 microseconds when recording ms
  int octaves = 32;                // covers up to ~33.5 million x min_bound
  int sub_buckets = 8;             // linear sub-buckets per octave (power of 2)

  int NumBuckets() const { return octaves * sub_buckets + 2; }
  bool operator==(const HistogramOptions&) const = default;
};

class LogLinearHistogram {
 public:
  explicit LogLinearHistogram(HistogramOptions options = {});

  void Record(double v);

  // Index of the bucket `v` falls into, in [0, options().NumBuckets()).
  int BucketIndex(double v) const;
  // Inclusive lower bound of a bucket (0 for the underflow bucket).
  double BucketLowerBound(int index) const;

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min_seen() const { return min_seen_; }
  double max_seen() const { return max_seen_; }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }
  const HistogramOptions& options() const { return options_; }

  // Approximate quantile (q in [0,1]): lower bound of the bucket holding the
  // ceil(q * count)-th sample.  Zero when empty.
  double Quantile(double q) const;

 private:
  HistogramOptions options_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

// Immutable, order-independent view of a registry, suitable for merging
// across experiment shards and for JSON export.  All three series are sorted
// by name.
struct MetricsSnapshot {
  struct CounterPoint {
    std::string name;
    std::int64_t count = 0;
  };
  struct GaugePoint {
    std::string name;
    double current = 0.0;
  };
  struct HistogramPoint {
    std::string name;
    HistogramOptions options;
    std::int64_t count = 0;
    double sum = 0.0;
    double min_seen = 0.0;
    double max_seen = 0.0;
    std::vector<std::int64_t> buckets;  // dense, options.NumBuckets() long
  };

  std::vector<CounterPoint> counters;
  std::vector<GaugePoint> gauges;
  std::vector<HistogramPoint> histograms;

  // Deterministic merge: counters and histogram buckets add; a gauge present
  // in `other` replaces this snapshot's value (last shard in merge order
  // wins).  Histograms with the same name must share a shape.  The parallel
  // harness merges shards in spec order, so the result is independent of
  // thread scheduling.  Merge-side only: never called from inside a shard.
  void MergeFrom(const MetricsSnapshot& other) HIB_EXCLUDES_CONTEXT(kShardContext);
};

// Shard-local: one registry per Simulator; instruments it hands out are
// bumped only by that shard's components.
class HIB_SHARD_LOCAL MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned references stay valid for the registry's life.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LogLinearHistogram& GetHistogram(const std::string& name, HistogramOptions options = {});

  MetricsSnapshot Snapshot() const;

 private:
  // std::map: stable node addresses and name-sorted iteration for snapshots.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogLinearHistogram> histograms_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_OBS_METRICS_H_
