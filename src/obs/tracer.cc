#include "src/obs/tracer.h"

#include <algorithm>

#include "src/util/check.h"

namespace hib {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPowerState:
      return "power";
    case SpanKind::kQueueWait:
      return "queue";
    case SpanKind::kService:
      return "io";
    case SpanKind::kSeek:
      return "io";
    case SpanKind::kTransfer:
      return "io";
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kEpoch:
      return "epoch";
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kBoost:
      return "boost";
    case SpanKind::kRebuild:
      return "rebuild";
    case SpanKind::kMigration:
      return "migration";
  }
  return "?";
}

void Tracer::Enable(std::size_t capacity) {
  HIB_CHECK(capacity > 0) << "tracer capacity must be positive";
  if (capacity != capacity_) {
    ring_.assign(capacity, TraceEvent{});
    capacity_ = capacity;
    head_ = 0;
    recorded_ = 0;
  }
  enabled_ = true;
}

void Tracer::Disable() { enabled_ = false; }

std::size_t Tracer::size() const { return std::min<std::uint64_t>(recorded_, capacity_); }

void Tracer::Push(const TraceEvent& event) {
  if (!enabled_) {
    return;
  }
  ring_[head_] = event;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  ++recorded_;
}

void Tracer::Span(SpanKind kind, std::int32_t track, const char* name, SimTime start,
                  SimTime end, std::int64_t id, double arg) {
  HIB_CHECK_GE(end, start) << "span '" << name << "' ends before it starts";
  TraceEvent event;
  event.start = start;
  event.dur = end - start;
  event.id = id;
  event.arg = arg;
  event.track = track;
  event.kind = kind;
  event.instant = false;
  event.name = name;
  Push(event);
}

void Tracer::Instant(SpanKind kind, std::int32_t track, const char* name, SimTime at,
                     std::int64_t id, double arg) {
  TraceEvent event;
  event.start = at;
  event.id = id;
  event.arg = arg;
  event.track = track;
  event.kind = kind;
  event.instant = true;
  event.name = name;
  Push(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  std::size_t n = size();
  out.reserve(n);
  // When the ring has wrapped, the oldest retained event sits at head_.
  std::size_t begin = recorded_ > capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pos = begin + i;
    if (pos >= capacity_) {
      pos -= capacity_;
    }
    out.push_back(ring_[pos]);
  }
  return out;
}

}  // namespace hib
