#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace hib {

LogLinearHistogram::LogLinearHistogram(HistogramOptions options) : options_(options) {
  HIB_CHECK(options_.min_bound > 0.0) << "histogram min_bound must be positive";
  HIB_CHECK(options_.octaves > 0 && options_.sub_buckets > 0) << "degenerate histogram shape";
  HIB_CHECK_EQ(options_.sub_buckets & (options_.sub_buckets - 1), 0)
      << "sub_buckets must be a power of two for exact boundaries";
  buckets_.assign(static_cast<std::size_t>(options_.NumBuckets()), 0);
}

int LogLinearHistogram::BucketIndex(double v) const {
  if (!(v >= options_.min_bound)) {  // also catches NaN
    return 0;
  }
  // v / min_bound = m * 2^e with m in [0.5, 1): the octave is e - 1 and the
  // linear sub-bucket is floor((2m - 1) * sub_buckets).  For boundary values
  // min_bound * 2^o * (1 + s / sub_buckets) every step is exact in binary
  // (sub_buckets is a power of two), so boundaries never straddle buckets.
  int exp = 0;
  double mantissa = std::frexp(v / options_.min_bound, &exp);
  int octave = exp - 1;
  if (octave >= options_.octaves) {
    return options_.NumBuckets() - 1;
  }
  int sub = static_cast<int>((mantissa * 2.0 - 1.0) * options_.sub_buckets);
  sub = std::clamp(sub, 0, options_.sub_buckets - 1);
  return 1 + octave * options_.sub_buckets + sub;
}

double LogLinearHistogram::BucketLowerBound(int index) const {
  if (index <= 0) {
    return 0.0;
  }
  if (index >= options_.NumBuckets() - 1) {
    return std::ldexp(options_.min_bound, options_.octaves);
  }
  int octave = (index - 1) / options_.sub_buckets;
  int sub = (index - 1) % options_.sub_buckets;
  double base = 1.0 + static_cast<double>(sub) / static_cast<double>(options_.sub_buckets);
  return std::ldexp(options_.min_bound * base, octave);
}

void LogLinearHistogram::Record(double v) {
  if (count_ == 0) {
    min_seen_ = v;
    max_seen_ = v;
  } else {
    min_seen_ = std::min(min_seen_, v);
    max_seen_ = std::max(max_seen_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[static_cast<std::size_t>(BucketIndex(v))];
}

double LogLinearHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_)));
  target = std::max<std::int64_t>(target, 1);
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return BucketLowerBound(static_cast<int>(i));
    }
  }
  return BucketLowerBound(options_.NumBuckets() - 1);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::GetGauge(const std::string& name) { return gauges_[name]; }

LogLinearHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                  HistogramOptions options) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, LogLinearHistogram(options)).first;
  } else {
    HIB_CHECK(it->second.options() == options)
        << "histogram '" << name << "' registered twice with different shapes";
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter.count()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    if (gauge.set()) {
      snap.gauges.push_back({name, gauge.current()});
    }
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramPoint point;
    point.name = name;
    point.options = hist.options();
    point.count = hist.count();
    point.sum = hist.sum();
    point.min_seen = hist.min_seen();
    point.max_seen = hist.max_seen();
    point.buckets = hist.buckets();
    snap.histograms.push_back(std::move(point));
  }
  return snap;
}

namespace {

// Merge walk over two name-sorted series.  `combine(mine, theirs)` runs for
// names present on both sides; unmatched entries from `other` are inserted
// in order.
template <typename Point, typename Combine>
void MergeSeries(std::vector<Point>* mine, const std::vector<Point>& other, Combine combine) {
  std::vector<Point> merged;
  merged.reserve(mine->size() + other.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < mine->size() && j < other.size()) {
    if ((*mine)[i].name < other[j].name) {
      merged.push_back(std::move((*mine)[i++]));
    } else if (other[j].name < (*mine)[i].name) {
      merged.push_back(other[j++]);
    } else {
      Point combined = std::move((*mine)[i++]);
      combine(&combined, other[j++]);
      merged.push_back(std::move(combined));
    }
  }
  for (; i < mine->size(); ++i) {
    merged.push_back(std::move((*mine)[i]));
  }
  for (; j < other.size(); ++j) {
    merged.push_back(other[j]);
  }
  *mine = std::move(merged);
}

}  // namespace

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other)
    HIB_EXCLUDES_CONTEXT(kShardContext) {
  MergeSeries(&counters, other.counters,
              [](CounterPoint* mine, const CounterPoint& theirs) { mine->count += theirs.count; });
  MergeSeries(&gauges, other.gauges, [](GaugePoint* mine, const GaugePoint& theirs) {
    mine->current = theirs.current;  // last merged shard wins
  });
  MergeSeries(&histograms, other.histograms,
              [](HistogramPoint* mine, const HistogramPoint& theirs) {
                HIB_CHECK(mine->options == theirs.options)
                    << "merging histograms '" << mine->name << "' with different shapes";
                if (theirs.count > 0) {
                  if (mine->count == 0) {
                    mine->min_seen = theirs.min_seen;
                    mine->max_seen = theirs.max_seen;
                  } else {
                    mine->min_seen = std::min(mine->min_seen, theirs.min_seen);
                    mine->max_seen = std::max(mine->max_seen, theirs.max_seen);
                  }
                }
                mine->count += theirs.count;
                mine->sum += theirs.sum;
                for (std::size_t b = 0; b < mine->buckets.size(); ++b) {
                  mine->buckets[b] += theirs.buckets[b];
                }
              });
}

}  // namespace hib
