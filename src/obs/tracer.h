// Power-state / request-lifecycle tracer: typed spans and instant events in a
// per-simulator ring buffer.
//
// Recording is opt-in at runtime (Enable(capacity)); when disabled, the
// HIB_TRACE_* macros in src/obs/obs.h reduce to one predicted-false branch —
// and to nothing at all when HIB_OBS=0.  The ring drops the *oldest* events
// on overflow so the tail of a long run (the part a trace viewer usually
// needs) survives; `dropped()` reports how much history was lost.
//
// Span taxonomy (see DESIGN.md "Observability" for the full map):
//   kPowerState  one span per power-state residency, per disk
//   kQueueWait   sub-op wait from disk arrival to service start
//   kService     mechanical service of one sub-op (seek+rot, transfer inside)
//   kSeek / kTransfer  children of kService
//   kRequest     logical request from array submit to last sub-op completion
//   kEpoch       CR epoch decision (instant, on the policy track)
//   kDecision    per-disk policy decisions: spin-down, RPM step (instant)
//   kBoost       performance-guarantee boost interval
//   kRebuild     disk replacement rebuild interval
//   kMigration   one background extent move
#ifndef HIBERNATOR_SRC_OBS_TRACER_H_
#define HIBERNATOR_SRC_OBS_TRACER_H_

#include <cstdint>
#include <vector>

#include "src/util/thread_annotations.h"
#include "src/util/units.h"

namespace hib {

enum class SpanKind : std::uint8_t {
  kPowerState,
  kQueueWait,
  kService,
  kSeek,
  kTransfer,
  kRequest,
  kEpoch,
  kDecision,
  kBoost,
  kRebuild,
  kMigration,
};

const char* SpanKindName(SpanKind kind);

// Track ids: non-negative values name a disk; these name the shared lanes.
inline constexpr std::int32_t kTrackArray = -1;
inline constexpr std::int32_t kTrackPolicy = -2;

// One recorded event.  `name` must point at static-storage strings (state
// names, literal labels): the ring never copies or frees it.
struct TraceEvent {
  SimTime start;
  Duration dur;  // zero for instants
  std::int64_t id = 0;
  double arg = 0.0;
  std::int32_t track = 0;
  SpanKind kind = SpanKind::kRequest;
  bool instant = false;
  const char* name = "";
};

// Shard-local: one ring per Simulator; never shared across shards.
class HIB_SHARD_LOCAL Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts recording into a ring of `capacity` events (allocated up front).
  void Enable(std::size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const { return enabled_; }

  // Records a completed span [start, end].  A span must not end before it
  // starts; violations abort (tests/obs_test.cc pins the death).
  void Span(SpanKind kind, std::int32_t track, const char* name, SimTime start, SimTime end,
            std::int64_t id = 0, double arg = 0.0);

  // Records a point event.
  void Instant(SpanKind kind, std::int32_t track, const char* name, SimTime at,
               std::int64_t id = 0, double arg = 0.0);

  std::size_t capacity() const { return capacity_; }
  // Events currently retained (<= capacity).
  std::size_t size() const;
  // Total events recorded, including any the ring has since dropped.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - size(); }

  // Retained events, oldest first (resolves the ring wraparound).
  std::vector<TraceEvent> Events() const;

 private:
  void Push(const TraceEvent& event);

  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write position
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_OBS_TRACER_H_
