// Exporters: Chrome/Perfetto trace_event JSON for Tracer rings, and a flat
// metrics JSON block for MetricsSnapshot (merged into BENCH_<name>.json and
// the harness --metrics-out files).
//
// The trace format is the Chrome "JSON Array Format" (trace_event), which
// Perfetto's UI (https://ui.perfetto.dev) opens directly:
//   - kPowerState / kService / kSeek / kTransfer / kBoost become complete
//     ("X") events on per-disk or shared lanes;
//   - kQueueWait / kRequest / kRebuild / kMigration become async ("b"/"e")
//     pairs so overlapping intervals nest by id instead of garbling a lane;
//   - kEpoch / kDecision become instants ("i");
//   - lanes carry thread_name metadata ("disk 3 power", "array", "policy").
// Timestamps convert ms -> microseconds (the format's unit) at this boundary.
#ifndef HIBERNATOR_SRC_OBS_EXPORT_H_
#define HIBERNATOR_SRC_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/util/json.h"

namespace hib {

// Streams the retained events as a complete Chrome trace_event JSON document
// (object form: {"traceEvents":[...], "displayTimeUnit":"ms"}).
void WriteChromeTrace(std::ostream& os, const Tracer& tracer);

// Writes the trace to `path`; aborts on I/O failure (a requested trace that
// silently vanishes is worse than a crash).
void WriteChromeTraceFile(const std::string& path, const Tracer& tracer);

// Snapshot as a JSON object: {"counters":{...}, "gauges":{...},
// "histograms":{name:{count,sum,min,max,mean,p50,p95,p99,buckets:[[i,n]...]}}}.
// Histogram buckets are sparse [index, count] pairs (the dense vector is
// mostly zeros).
JsonObject MetricsSnapshotJson(const MetricsSnapshot& snapshot);

// Writes `{"metrics": <snapshot>}` to `path`; aborts on I/O failure.
void WriteMetricsJsonFile(const std::string& path, const MetricsSnapshot& snapshot);

}  // namespace hib

#endif  // HIBERNATOR_SRC_OBS_EXPORT_H_
