// Observability bundle and zero-cost-when-disabled instrumentation macros.
//
// Every Simulator owns an Observability (metrics registry + tracer); all
// simulated components reach it through their Simulator pointer.  Call sites
// instrument through the macros below, which follow the HIB_DCHECK
// compile-out discipline: with -DHIB_OBS=0 (CMake option HIB_OBS=OFF) every
// macro expands to `((void)0)` — no argument evaluation, no branches, no
// code.  Multi-statement instrumentation blocks use `#if HIB_OBS` directly,
// mirroring the HIB_VALIDATE blocks in src/sim and src/disk.
//
// With HIB_OBS=1 (the default):
//   - counter/gauge/histogram macros are an unconditional pointer bump — the
//     instruments were resolved once at component construction;
//   - trace macros test Tracer::enabled() first, so span argument
//     expressions only evaluate when a trace was actually requested.
#ifndef HIBERNATOR_SRC_OBS_OBS_H_
#define HIBERNATOR_SRC_OBS_OBS_H_

#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

#ifndef HIB_OBS
#define HIB_OBS 1
#endif

namespace hib {

// Per-simulator observability state.  The classes always compile (exporters,
// tests and the harness need the types in every configuration); HIB_OBS only
// controls whether instrumentation call sites feed them.
struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace hib

#if HIB_OBS

// `counter` / `gauge` / `hist` are pointers resolved from the registry at
// component construction (never null once attached).
#define HIB_COUNTER_ADD(counter, n) ((counter)->Add(n))
#define HIB_COUNTER_INC(counter) ((counter)->Add(1))
#define HIB_GAUGE_SET(gauge, v) ((gauge)->Set(v))
#define HIB_HIST_RECORD(hist, v) ((hist)->Record(v))

// `tracer` is a Tracer lvalue (typically sim->obs().tracer).  Arguments after
// it are only evaluated when tracing is enabled.
#define HIB_TRACE_SPAN(tracer, kind, track, name, start, end, id, arg) \
  do {                                                                 \
    if ((tracer).enabled()) {                                          \
      (tracer).Span((kind), (track), (name), (start), (end), (id), (arg)); \
    }                                                                  \
  } while (false)

#define HIB_TRACE_INSTANT(tracer, kind, track, name, at, id, arg)        \
  do {                                                                   \
    if ((tracer).enabled()) {                                            \
      (tracer).Instant((kind), (track), (name), (at), (id), (arg));      \
    }                                                                    \
  } while (false)

#else  // !HIB_OBS

#define HIB_COUNTER_ADD(counter, n) ((void)0)
#define HIB_COUNTER_INC(counter) ((void)0)
#define HIB_GAUGE_SET(gauge, v) ((void)0)
#define HIB_HIST_RECORD(hist, v) ((void)0)
#define HIB_TRACE_SPAN(tracer, kind, track, name, start, end, id, arg) ((void)0)
#define HIB_TRACE_INSTANT(tracer, kind, track, name, at, id, arg) ((void)0)

#endif  // HIB_OBS

#endif  // HIBERNATOR_SRC_OBS_OBS_H_
