// Streaming statistics used by the simulator's metering and the policies'
// online load estimation.
#ifndef HIBERNATOR_SRC_UTIL_STATS_H_
#define HIBERNATOR_SRC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace hib {

// Welford-style running mean/variance with min/max.
class RunningStats {
 public:
  void Add(double x);
  // Quantities unwrap at the stats boundary; samples are recorded in the
  // quantity's canonical unit (ms / W / J).
  template <int P, int T, int A>
  void Add(Quantity<P, T, A> q) {
    Add(q.value());
  }
  void Reset();
  // Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-size uniform reservoir for percentile estimation (Vitter's algorithm R).
class PercentileReservoir {
 public:
  explicit PercentileReservoir(std::size_t capacity = 16384, std::uint64_t seed = 1);

  void Add(double x);
  template <int P, int T, int A>
  void Add(Quantity<P, T, A> q) {
    Add(q.value());
  }
  void Reset();

  // Returns the p-th percentile (p in [0, 100]) of the sampled values;
  // 0 when empty.  Not const: the first queries after a mutation use O(n)
  // std::nth_element selection; sustained querying without mutation falls
  // back to one full sort, after which queries are O(1) (the lazy `sorted_`
  // fast path).  Both paths return identical values.
  double Percentile(double p);

  std::int64_t count() const { return count_; }

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::int64_t count_ = 0;
  std::uint64_t rng_state_;
  bool sorted_ = false;
  int selects_since_mutation_ = 0;

  std::uint64_t NextRand();
};

// Exponentially weighted moving average with a configurable smoothing factor.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void Add(double x);
  template <int P, int T, int A>
  void Add(Quantity<P, T, A> q) {
    Add(q.value());
  }
  void Reset();
  double current() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Fixed-bucket linear histogram over [lo, hi); out-of-range values clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  void Reset();

  std::int64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::int64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  // Render as a compact ASCII bar chart, one bucket per line.
  std::string ToString(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_STATS_H_
