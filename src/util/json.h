// Minimal order-preserving JSON builder: objects, arrays and scalars, eagerly
// serialized.  Deliberately tiny — the repo only ever *writes* flat records
// (BENCH_<name>.json, metrics exports, Chrome traces), so a full JSON library
// would be dead weight (and a dependency the container may not have).
//
// Moved here from bench/bench_common.h so the observability exporters
// (src/obs/export.h) and the benches share one serializer.
#ifndef HIBERNATOR_SRC_UTIL_JSON_H_
#define HIBERNATOR_SRC_UTIL_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace hib {

class JsonValue {
 public:
  static JsonValue Number(double v) {
    char buf[40];
    if (v != v || v > 1.7e308 || v < -1.7e308) {  // NaN / +-Inf have no JSON form
      return JsonValue("null");
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return JsonValue(buf);
  }
  static JsonValue Int(std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return JsonValue(buf);
  }
  static JsonValue UInt(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return JsonValue(buf);
  }
  static JsonValue Bool(bool v) { return JsonValue(v ? "true" : "false"); }
  static JsonValue Str(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return JsonValue(out);
  }
  static JsonValue Raw(std::string serialized) { return JsonValue(std::move(serialized)); }

  const std::string& raw() const { return raw_; }

 private:
  explicit JsonValue(std::string raw) : raw_(std::move(raw)) {}
  std::string raw_;
};

class JsonArray {
 public:
  JsonArray& Push(const JsonValue& v) {
    items_.push_back(v.raw());
    return *this;
  }
  std::string Dump() const {
    std::string out = "[";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out += (i ? "," : "") + items_[i];
    }
    return out + "]";
  }

 private:
  std::vector<std::string> items_;
};

class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const JsonValue& v) {
    members_.emplace_back(key, v.raw());
    return *this;
  }
  JsonObject& Set(const std::string& key, const JsonObject& v) {
    members_.emplace_back(key, v.Dump());
    return *this;
  }
  JsonObject& Set(const std::string& key, const JsonArray& v) {
    members_.emplace_back(key, v.Dump());
    return *this;
  }
  JsonObject& Set(const std::string& key, double v) { return Set(key, JsonValue::Number(v)); }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return Set(key, JsonValue::Str(v));
  }
  std::string Dump() const {
    std::string out = "{";
    for (std::size_t i = 0; i < members_.size(); ++i) {
      out += (i ? "," : "") + JsonValue::Str(members_[i].first).raw() + ":" + members_[i].second;
    }
    return out + "}";
  }

 private:
  std::vector<std::pair<std::string, std::string>> members_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_JSON_H_
