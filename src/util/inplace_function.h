// Small-buffer-optimized move-only callable wrapper.
//
// hib::InplaceFunction<R(Args...), Capacity> stores any callable of size
// <= Capacity *inline* — never on the heap.  The simulator schedules millions
// of events per run; with std::function every capture larger than the
// implementation's tiny SSO buffer (16 bytes in libstdc++) costs a heap
// allocation + free on the hot path.  InplaceFunction turns an oversized
// capture into a compile error instead, which keeps the event hot path
// allocation-free by construction: if a new callback doesn't fit, the build
// breaks and the capacity (or the capture) is revisited explicitly.
#ifndef HIBERNATOR_SRC_UTIL_INPLACE_FUNCTION_H_
#define HIBERNATOR_SRC_UTIL_INPLACE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/check.h"

namespace hib {

template <typename Signature, std::size_t Capacity>
class InplaceFunction;  // undefined; only the R(Args...) specialization exists

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Implicit from any callable, mirroring std::function — call sites pass
  // lambdas straight to Schedule*().
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  // Destroys the current callable (if any) and constructs `f` directly in
  // the inline buffer — the zero-relocation path for hot schedule sites.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable exceeds InplaceFunction capacity: shrink the capture "
                  "or raise the capacity where the alias is defined");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for InplaceFunction storage");
    static_assert(std::is_move_constructible_v<Fn>,
                  "InplaceFunction requires a move-constructible callable");
    Destroy();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    MoveFrom(other);
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    Destroy();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    HIB_DCHECK(ops_ != nullptr) << "invoking an empty InplaceFunction";
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-constructs *src into dst, then destroys *src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    // Trivially copyable callables relocate as a raw byte copy — the move
    // path takes an inline memcpy instead of two indirect calls.  This is
    // the common case: most simulator callbacks capture only pointers,
    // indices, and PODs.
    bool trivial = false;
  };

  template <typename Fn>
  struct OpsFor {
    static R Invoke(void* storage, Args&&... args) {
      return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { static_cast<Fn*>(storage)->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy,
                              std::is_trivially_copyable_v<Fn>};
  };

  void MoveFrom(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial) {
        // Copying the whole buffer (not sizeof(Fn)) keeps the copy length a
        // compile-time constant; indeterminate tail bytes are fine through
        // unsigned char.
        std::memcpy(storage_, other.storage_, Capacity);
      } else {
        other.ops_->relocate(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {  // trivially copyable => trivially destructible
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_INPLACE_FUNCTION_H_
