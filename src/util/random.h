// Deterministic random number generation for the simulator.
//
// Every source of randomness in the system derives from a seeded Pcg32 so that
// simulation runs are exactly reproducible.  The distributions implemented here
// (Zipf, exponential, Pareto) are the ones the workload generators need.
#ifndef HIBERNATOR_SRC_UTIL_RANDOM_H_
#define HIBERNATOR_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace hib {

// PCG-XSH-RR 64/32: small, fast, statistically strong, fully deterministic.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Uniform 32-bit value.
  std::uint32_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) without modulo bias.
  std::uint32_t NextBounded(std::uint32_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Pareto-distributed value with shape `alpha` and scale `x_min`.
  double NextPareto(double alpha, double x_min);

  // Normally distributed value (Box-Muller).
  double NextGaussian(double mean, double stddev);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

// Samples ranks from a Zipf(theta) distribution over {0, ..., n-1}; rank 0 is
// the most popular.  Uses the Gray/Jim-Gray "scrambled" quantile-table method:
// O(n) setup, O(log n) per sample, exact distribution.
class ZipfGenerator {
 public:
  // `n` items, skew `theta` in (0, ~1.2]; theta -> 0 degenerates to uniform.
  ZipfGenerator(std::int64_t n, double theta);

  // Draws one rank in [0, n).
  std::int64_t Next(Pcg32& rng) const;

  std::int64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Fraction of total probability mass held by the first `k` ranks.
  double MassOfTop(std::int64_t k) const;

 private:
  std::int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); size n (capped, see .cc)
  // For very large n we use the analytic inverse instead of the table.
  bool use_table_;
  double harmonic_;  // generalized harmonic number H_{n,theta}
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_RANDOM_H_
