// Minimal key=value configuration parser for the CLI simulator.
//
// Format: one `key = value` per line; '#' starts a comment; whitespace is
// trimmed; keys are case-sensitive; later assignments win.  Typed getters
// report defaults for missing keys and record type errors for the caller to
// surface.
#ifndef HIBERNATOR_SRC_UTIL_CONFIG_H_
#define HIBERNATOR_SRC_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hib {

class Config {
 public:
  Config() = default;

  // Parses from a string; returns false (and records errors) on malformed
  // lines, but keeps all well-formed assignments.
  bool ParseString(const std::string& contents);

  // Parses a file; false if the file cannot be read or has malformed lines.
  bool ParseFile(const std::string& path);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def = "") const;
  // Numeric getters record an error and return `def` when the value does not
  // parse cleanly (trailing junk counts as an error).
  double GetDouble(const std::string& key, double def);
  std::int64_t GetInt(const std::string& key, std::int64_t def);
  bool GetBool(const std::string& key, bool def);  // true/false/1/0/yes/no

  // Keys present in the config but never read by any getter: catches typos.
  std::vector<std::string> UnusedKeys() const;

  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> errors_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_CONFIG_H_
