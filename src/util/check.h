// Fatal runtime check macros for simulator invariants.
//
// Two families:
//
//   HIB_CHECK / HIB_CHECK_EQ / ... : always on, in every build type.  Use for
//       cheap preconditions whose violation means the simulation is garbage.
//   HIB_DCHECK / HIB_DCHECK_EQ / ...: compiled only when HIB_VALIDATE is
//       nonzero (CMake turns it on for every build type except Release /
//       MinSizeRel; -DHIB_VALIDATE=ON|OFF overrides).  Use for per-event
//       invariants that are too hot to keep in optimized production runs.
//
// Both support trailing stream context and print expression, file:line and
// (for the _OP forms) the two operand values before aborting:
//
//   HIB_CHECK(depth >= 0) << "disk " << id;
//   HIB_DCHECK_GE(now, last_) << "non-monotonic dispatch";
//
// Failures abort() after writing to stderr, so GTest death tests can match
// the message.  Operands of the _OP forms are evaluated twice on failure
// (once for the test, once for the message); keep them side-effect free.
#ifndef HIBERNATOR_SRC_UTIL_CHECK_H_
#define HIBERNATOR_SRC_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#ifndef HIB_VALIDATE
#define HIB_VALIDATE 0
#endif

namespace hib {
namespace internal {

// Accumulates the failure message; aborts in the destructor so that trailing
// `<< context` operands run first.
class CheckFailer {
 public:
  CheckFailer(const char* file, int line, const char* expr) {
    stream_ << "HIB_CHECK failed: " << expr << " @ " << file << ":" << line << " ";
  }

  [[noreturn]] ~CheckFailer() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows `<< context` operands of compiled-out HIB_DCHECKs.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace hib

// The for-loop runs the failure statement exactly once when `cond` is false;
// the CheckFailer temporary aborts when the full statement (including any
// trailing <<) finishes.
#define HIB_CHECK(cond)                                                     \
  for (bool hib_check_ok_ = static_cast<bool>(cond); !hib_check_ok_;        \
       hib_check_ok_ = true)                                                \
  ::hib::internal::CheckFailer(__FILE__, __LINE__, #cond).stream()

#define HIB_CHECK_OP_(a, b, op)                                             \
  for (bool hib_check_ok_ = static_cast<bool>((a)op(b)); !hib_check_ok_;    \
       hib_check_ok_ = true)                                                \
  ::hib::internal::CheckFailer(__FILE__, __LINE__, #a " " #op " " #b).stream() \
      << "(" << (a) << " vs " << (b) << ") "

#define HIB_CHECK_EQ(a, b) HIB_CHECK_OP_(a, b, ==)
#define HIB_CHECK_NE(a, b) HIB_CHECK_OP_(a, b, !=)
#define HIB_CHECK_GE(a, b) HIB_CHECK_OP_(a, b, >=)
#define HIB_CHECK_GT(a, b) HIB_CHECK_OP_(a, b, >)
#define HIB_CHECK_LE(a, b) HIB_CHECK_OP_(a, b, <=)
#define HIB_CHECK_LT(a, b) HIB_CHECK_OP_(a, b, <)

#if HIB_VALIDATE

#define HIB_DCHECK(cond) HIB_CHECK(cond)
#define HIB_DCHECK_EQ(a, b) HIB_CHECK_EQ(a, b)
#define HIB_DCHECK_NE(a, b) HIB_CHECK_NE(a, b)
#define HIB_DCHECK_GE(a, b) HIB_CHECK_GE(a, b)
#define HIB_DCHECK_GT(a, b) HIB_CHECK_GT(a, b)
#define HIB_DCHECK_LE(a, b) HIB_CHECK_LE(a, b)
#define HIB_DCHECK_LT(a, b) HIB_CHECK_LT(a, b)

#else  // !HIB_VALIDATE

// `false && (cond)` keeps the operands referenced (no -Wunused warnings for
// validation-only locals) without evaluating them.
#define HIB_DCHECK_OFF_(cond) \
  while (false && static_cast<bool>(cond)) ::hib::internal::NullStream()

#define HIB_DCHECK(cond) HIB_DCHECK_OFF_(cond)
#define HIB_DCHECK_EQ(a, b) HIB_DCHECK_OFF_((a) == (b))
#define HIB_DCHECK_NE(a, b) HIB_DCHECK_OFF_((a) != (b))
#define HIB_DCHECK_GE(a, b) HIB_DCHECK_OFF_((a) >= (b))
#define HIB_DCHECK_GT(a, b) HIB_DCHECK_OFF_((a) > (b))
#define HIB_DCHECK_LE(a, b) HIB_DCHECK_OFF_((a) <= (b))
#define HIB_DCHECK_LT(a, b) HIB_DCHECK_OFF_((a) < (b))

#endif  // HIB_VALIDATE

#endif  // HIBERNATOR_SRC_UTIL_CHECK_H_
