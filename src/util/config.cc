#include "src/util/config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hib {

namespace {
std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

bool Config::ParseString(const std::string& contents) {
  std::istringstream in(contents);
  std::string line;
  int line_no = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::string trimmed = Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      errors_.push_back("line " + std::to_string(line_no) + ": missing '='");
      ok = false;
      continue;
    }
    std::string key = Trim(trimmed.substr(0, eq));
    std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      errors_.push_back("line " + std::to_string(line_no) + ": empty key");
      ok = false;
      continue;
    }
    values_[key] = value;
  }
  return ok;
}

bool Config::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    errors_.push_back("cannot open " + path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str());
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  read_[key] = true;
  auto it = values_.find(key);
  return it != values_.end() ? it->second : def;
}

double Config::GetDouble(const std::string& key, double def) {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("key '" + key + "': not a number: " + it->second);
    return def;
  }
  return v;
}

std::int64_t Config::GetInt(const std::string& key, std::int64_t def) {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("key '" + key + "': not an integer: " + it->second);
    return def;
  }
  return v;
}

bool Config::GetBool(const std::string& key, bool def) {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  errors_.push_back("key '" + key + "': not a boolean: " + it->second);
  return def;
}

std::vector<std::string> Config::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (!read_.count(key)) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace hib
