#include "src/util/log.h"

#include <atomic>
#include <cstring>

namespace hib {

namespace {
std::atomic<LogLevel>& LevelStore() {
  // Output-only knob: set before any shard runs, relaxed loads thereafter.
  // It never feeds simulation state, so it cannot break shard determinism.
  static std::atomic<LogLevel> level{LogLevel::kWarning};  // NOLINT(HIB019)
  return level;
}
}  // namespace

LogLevel GlobalLogLevel() { return LevelStore().load(std::memory_order_relaxed); }

void SetGlobalLogLevel(LogLevel level) {
  LevelStore().store(level, std::memory_order_relaxed);
}

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(GlobalLogLevel())) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace hib
