#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hib {

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::NewRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(const std::string& cell) {
  if (rows_.empty()) {
    NewRow();
  }
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::Add(const char* cell) { return Add(std::string(cell)); }

Table& Table::Add(double value, int precision) { return Add(FormatDouble(value, precision)); }

Table& Table::Add(std::int64_t value) { return Add(std::to_string(value)); }

Table& Table::Add(int value) { return Add(std::to_string(value)); }

Table& Table::AddPercent(double fraction, int precision) {
  return Add(FormatDouble(fraction * 100.0, precision) + "%");
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "| " : " ") << std::left << std::setw(static_cast<int>(widths[c])) << cell
          << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) {
        out << ",";
      }
      out << cells[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

}  // namespace hib
