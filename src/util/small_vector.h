// Small-buffer-optimized vector for trivially copyable elements.
//
// hib::SmallVector<T, N> keeps up to N elements inline (no heap traffic) and
// spills to a heap buffer only beyond that.  The request hot path plans a
// handful of sub-I/O targets per logical request; with std::vector every
// request pays at least one allocation for that plan.  Restricting T to
// trivially copyable types keeps growth a single memcpy and lets clear()
// retain the spilled capacity, so a pooled owner amortizes the rare spill
// across its whole lifetime.
#ifndef HIBERNATOR_SRC_UTIL_SMALL_VECTOR_H_
#define HIBERNATOR_SRC_UTIL_SMALL_VECTOR_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "src/util/check.h"

namespace hib {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is specialized for trivially copyable elements; "
                "use std::vector for anything that needs real copy/move ctors");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  SmallVector(SmallVector&& other) noexcept { MoveFrom(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      MoveFrom(other);
    }
    return *this;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    data()[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow();
    }
    T* slot = data() + size_++;
    *slot = T{std::forward<Args>(args)...};
    return *slot;
  }

  // Drops the elements but keeps any spilled capacity, so a reused owner
  // (e.g. a pooled request context) never re-pays the spill.
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool spilled() const { return heap_ != nullptr; }

  T* data() { return heap_ ? heap_.get() : inline_; }
  const T* data() const { return heap_ ? heap_.get() : inline_; }

  T& operator[](std::size_t i) {
    HIB_DCHECK_LT(i, size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    HIB_DCHECK_LT(i, size_);
    return data()[i];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  void Grow() {
    std::size_t next = capacity_ * 2;
    auto bigger = std::make_unique<T[]>(next);
    std::memcpy(bigger.get(), data(), size_ * sizeof(T));
    heap_ = std::move(bigger);
    capacity_ = next;
  }

  void MoveFrom(SmallVector& other) noexcept {
    size_ = other.size_;
    capacity_ = other.capacity_;
    heap_ = std::move(other.heap_);
    if (!heap_) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
    other.size_ = 0;
    other.capacity_ = N;
  }

  T inline_[N];
  std::unique_ptr<T[]> heap_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_SMALL_VECTOR_H_
