// Minimal leveled logging.
//
// Usage:  HIB_LOG(kInfo) << "epoch " << epoch << " reconfigured";
// Levels below the global threshold compile to a no-op stream.
//
// Thread safety: each simulation runs single-threaded, but the parallel
// experiment runner (src/harness/parallel.h) executes many simulations
// concurrently.  The level threshold is an atomic, and each LogMessage
// flushes its fully composed line to std::cerr in one call, so concurrent
// runs never tear each other's lines or race on the threshold.
#ifndef HIBERNATOR_SRC_UTIL_LOG_H_
#define HIBERNATOR_SRC_UTIL_LOG_H_

#include <iostream>
#include <sstream>
#include <string>

namespace hib {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// The global threshold; messages below it are dropped.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

// RAII line logger: accumulates into a buffer, flushes with newline on
// destruction so interleaved output stays line-atomic.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace hib

#define HIB_LOG(level) ::hib::LogMessage(::hib::LogLevel::level, __FILE__, __LINE__)

#endif  // HIBERNATOR_SRC_UTIL_LOG_H_
