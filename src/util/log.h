// Minimal leveled logging.  The simulator is single-threaded; no locking.
//
// Usage:  HIB_LOG(kInfo) << "epoch " << epoch << " reconfigured";
// Levels below the global threshold compile to a no-op stream.
#ifndef HIBERNATOR_SRC_UTIL_LOG_H_
#define HIBERNATOR_SRC_UTIL_LOG_H_

#include <iostream>
#include <sstream>
#include <string>

namespace hib {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Returns the mutable global threshold; messages below it are dropped.
LogLevel& GlobalLogLevel();

// RAII line logger: accumulates into a buffer, flushes with newline on
// destruction so interleaved output stays line-atomic.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace hib

#define HIB_LOG(level) ::hib::LogMessage(::hib::LogLevel::level, __FILE__, __LINE__)

#endif  // HIBERNATOR_SRC_UTIL_LOG_H_
