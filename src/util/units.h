// Units and basic numeric types used throughout the Hibernator simulator.
//
// Conventions (kept uniform across every module):
//   - Simulated time is a double count of *milliseconds* since simulation start.
//   - Durations are also double milliseconds.
//   - Energy is joules, power is watts.  energy(J) = power(W) * seconds.
//   - Disk addresses are 512-byte sectors; request sizes are in sectors.
#ifndef HIBERNATOR_SRC_UTIL_UNITS_H_
#define HIBERNATOR_SRC_UTIL_UNITS_H_

#include <cstdint>

namespace hib {

// Simulated time, in milliseconds since simulation start.
using SimTime = double;

// A duration, in milliseconds.
using Duration = double;

// Energy in joules.
using Joules = double;

// Power in watts.
using Watts = double;

// 512-byte sector address within a disk or within the logical array space.
using SectorAddr = std::int64_t;

// A count of sectors.
using SectorCount = std::int64_t;

inline constexpr double kMsPerSecond = 1000.0;
inline constexpr double kMsPerMinute = 60.0 * kMsPerSecond;
inline constexpr double kMsPerHour = 60.0 * kMsPerMinute;
inline constexpr int kSectorBytes = 512;

// Converts a duration in milliseconds to seconds.
constexpr double MsToSeconds(Duration ms) { return ms / kMsPerSecond; }

// Converts seconds to milliseconds.
constexpr Duration SecondsToMs(double s) { return s * kMsPerSecond; }

// Converts hours to milliseconds.
constexpr Duration HoursToMs(double h) { return h * kMsPerHour; }

// Energy consumed by drawing `power` watts for `ms` milliseconds.
constexpr Joules EnergyOf(Watts power, Duration ms) { return power * MsToSeconds(ms); }

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_UNITS_H_
