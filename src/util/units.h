// Units and basic numeric types used throughout the Hibernator simulator.
//
// Physical quantities are *strong types*: a dimensioned value is a
// Quantity<PowerExp, TimeExp, AngleExp> wrapping exactly one double, so a
// milliseconds-vs-seconds or power-vs-energy mixup is a compile error instead
// of a silently corrupted energy ledger.  The arithmetic is dimensional:
//
//   Watts * Duration   -> Joules          Duration + Duration -> Duration
//   Joules / Duration  -> Watts           Duration + Joules   -> compile error
//   Joules / Watts     -> Duration        double  + Duration  -> compile error
//   count / Duration   -> Frequency       Frequency * Duration -> double (rho)
//   Revolutions / AngularVelocity -> Duration   (one rev at 6000 RPM = 10 ms)
//
// Conventions (kept uniform across every module):
//   - Simulated time is counted in *milliseconds* since simulation start;
//     SimTime and Duration are the same quantity (the sim origin is 0).
//   - Energy is joules, power is watts.  Joules = Watts * seconds; the single
//     ms->s conversion in the whole repo lives in UnitScale below — callers
//     never convert by hand (simlint HIB009 enforces this).
//   - Disk addresses are 512-byte sectors; request sizes are in sectors.
//
// Each quantity stores its value in the repo's *canonical unit* (ms for time,
// W for power, J for energy, rev/min for angular velocity, "per ms" for
// rates).  Cross-dimension operators convert operands to coherent SI, combine
// them, and convert the result back to its canonical unit; all scales are
// compile-time constants, so the codegen is a plain multiply (zero overhead —
// see the static_asserts at the bottom of this header).
//
// Escape hatch: q.value() returns the raw double in the canonical unit.  It
// is for I/O and statistics boundaries ONLY (table rendering, trace parsing,
// RunningStats internals, the event queue's bit-level time image); simlint
// HIB008 flags .value() anywhere else in src/.  Constructing a quantity from
// a double is always fine — that is how raw inputs enter the typed world:
// use Ms/Seconds/Hours, Watts(x), Joules(x), PerSecond(x), Rpm(x).
//
// Adding a new quantity: pick its dimension exponents, add a `using` alias,
// and (only if its canonical unit is not the one derived from ms/W/rev) add
// a UnitScale specialization.  See DESIGN.md "Units & dimensional analysis".
#ifndef HIBERNATOR_SRC_UTIL_UNITS_H_
#define HIBERNATOR_SRC_UTIL_UNITS_H_

#include <cstdint>
#include <limits>
#include <ostream>
#include <type_traits>

namespace hib {

namespace units_internal {
// Integer powers of a double, constexpr (std::pow is not constexpr in C++20).
constexpr double Pow(double base, int exp) {
  if (exp < 0) {
    return 1.0 / Pow(base, -exp);
  }
  double result = 1.0;
  for (int i = 0; i < exp; ++i) {
    result *= base;
  }
  return result;
}
}  // namespace units_internal

// Canonical-units-per-SI-unit scale for each dimension vector.  The default
// derives from the base choices "time in ms, power in W, angle in rev":
// 1 s = 1000 ms, so a T^n quantity holds 1000^n canonical units per SI unit.
// THIS IS THE ONE ms<->s CONVERSION SITE IN THE REPO.
template <int PowerExp, int TimeExp, int AngleExp>
struct UnitScale {
  static constexpr double kPerSi = units_internal::Pow(1000.0, TimeExp);
};
// Energy is canonically joules (W*s), not watt-milliseconds.
template <>
struct UnitScale<1, 1, 0> {
  static constexpr double kPerSi = 1.0;
};
// Angular velocity is canonically rev/min (RPM): 1 rev/s = 60 RPM.
template <>
struct UnitScale<0, -1, 1> {
  static constexpr double kPerSi = 60.0;
};

template <int PowerExp, int TimeExp, int AngleExp>
class Quantity;

namespace units_internal {
// Dimensionless results collapse to plain double (rho, ratios, fractions);
// everything else stays a Quantity of the combined dimension.
template <int PowerExp, int TimeExp, int AngleExp>
struct Result {
  using Type = Quantity<PowerExp, TimeExp, AngleExp>;
  static constexpr Type FromSi(double si) { return Type::FromSi(si); }
};
template <>
struct Result<0, 0, 0> {
  using Type = double;
  static constexpr double FromSi(double si) { return si; }
};
}  // namespace units_internal

// A physical quantity of dimension power^PowerExp * time^TimeExp *
// angle^AngleExp, stored as one double in the quantity's canonical unit.
// Trivially copyable and exactly sizeof(double), so it bit_casts, memcpys and
// vectorizes exactly like the raw double it replaces.
template <int PowerExp, int TimeExp, int AngleExp = 0>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  // Raw double in the canonical unit (ms / W / J / rpm).  I/O and stats
  // boundaries only — simlint HIB008 flags other uses in src/.
  constexpr double value() const { return value_; }

  static constexpr Quantity FromSi(double si) {
    return Quantity(si * UnitScale<PowerExp, TimeExp, AngleExp>::kPerSi);
  }
  constexpr double ToSi() const {
    return value_ / UnitScale<PowerExp, TimeExp, AngleExp>::kPerSi;
  }

  // Same-dimension arithmetic operates on the canonical value directly.
  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double scale) {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(double scale) {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double scale) {
    return Quantity(a.value_ * scale);
  }
  friend constexpr Quantity operator*(double scale, Quantity a) {
    return Quantity(scale * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double scale) {
    return Quantity(a.value_ / scale);
  }

  friend constexpr bool operator==(Quantity a, Quantity b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Quantity a, Quantity b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Quantity a, Quantity b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Quantity a, Quantity b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Quantity a, Quantity b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Quantity a, Quantity b) { return a.value_ >= b.value_; }

 private:
  double value_ = 0.0;
};

// Cross-dimension products/quotients: combine in SI, land in the result's
// canonical unit.  All scales are constexpr, so this folds to one multiply.
template <int P1, int T1, int A1, int P2, int T2, int A2>
constexpr typename units_internal::Result<P1 + P2, T1 + T2, A1 + A2>::Type operator*(
    Quantity<P1, T1, A1> a, Quantity<P2, T2, A2> b) {
  return units_internal::Result<P1 + P2, T1 + T2, A1 + A2>::FromSi(a.ToSi() * b.ToSi());
}
template <int P1, int T1, int A1, int P2, int T2, int A2>
constexpr typename units_internal::Result<P1 - P2, T1 - T2, A1 - A2>::Type operator/(
    Quantity<P1, T1, A1> a, Quantity<P2, T2, A2> b) {
  return units_internal::Result<P1 - P2, T1 - T2, A1 - A2>::FromSi(a.ToSi() / b.ToSi());
}
// double / quantity inverts the dimension (e.g. count / Duration -> Frequency).
template <int P, int T, int A>
constexpr typename units_internal::Result<-P, -T, -A>::Type operator/(double a,
                                                                      Quantity<P, T, A> b) {
  return units_internal::Result<-P, -T, -A>::FromSi(a / b.ToSi());
}

// Streaming prints the bare canonical value, keeping log/table output formats
// identical to the raw-double era (and giving GTest readable failures).
template <int P, int T, int A>
std::ostream& operator<<(std::ostream& os, Quantity<P, T, A> q) {
  return os << q.value();
}

// Magnitude; quantities have no std::abs overload.
template <int P, int T, int A>
constexpr Quantity<P, T, A> Abs(Quantity<P, T, A> q) {
  return q.value() < 0.0 ? -q : q;
}

// Finiteness (unstable-queue sentinels are +infinity durations); quantities
// have no std::isfinite overload.
template <int P, int T, int A>
constexpr bool IsFinite(Quantity<P, T, A> q) {
  return q.value() - q.value() == 0.0;  // false for +-inf and NaN
}

// --- The quantities of the Hibernator domain -------------------------------

// Simulated time, in milliseconds since simulation start.  A point in time
// and a span are the same dimension (the simulation origin is 0), so SimTime
// and Duration are deliberately the same type.
using Duration = Quantity<0, 1>;
using SimTime = Duration;

// Second moment of durations (canonically ms^2), for variance accumulators.
using DurationSq = Quantity<0, 2>;

// Energy in joules.
using Joules = Quantity<1, 1>;

// Power in watts.
using Watts = Quantity<1, 0>;

// Event rate, canonically "per millisecond" (arrival rates, IOPS / 1000).
using Frequency = Quantity<0, -1>;

// Spindle angle in revolutions and speed in rev/min (the DRPM model's unit).
using Revolutions = Quantity<0, 0, 1>;
using AngularVelocity = Quantity<0, -1, 1>;

// 512-byte sector address within a disk or within the logical array space.
using SectorAddr = std::int64_t;

// A count of sectors.
using SectorCount = std::int64_t;

inline constexpr double kMsPerSecond = 1000.0;
inline constexpr double kMsPerMinute = 60.0 * kMsPerSecond;
inline constexpr double kMsPerHour = 60.0 * kMsPerMinute;
inline constexpr int kSectorBytes = 512;

// --- Constructors: raw numbers enter the typed world here ------------------

constexpr Duration Ms(double ms) { return Duration(ms); }
constexpr Duration Seconds(double s) { return Duration(s * kMsPerSecond); }
constexpr Duration Minutes(double m) { return Duration(m * kMsPerMinute); }
constexpr Duration Hours(double h) { return Duration(h * kMsPerHour); }
constexpr Frequency PerMs(double per_ms) { return Frequency(per_ms); }
constexpr Frequency PerSecond(double per_s) { return Frequency(per_s / kMsPerSecond); }
constexpr Revolutions Rev(double revs) { return Revolutions(revs); }
constexpr AngularVelocity Rpm(double rpm) { return AngularVelocity(rpm); }

// --- Boundary accessors (I/O only; prefer staying in the typed world) ------

// Duration in seconds, for human-facing output (IOPS, tables, JSON).
constexpr double ToSeconds(Duration d) { return d.value() / kMsPerSecond; }
// Frequency in events per second (IOPS), for human-facing output.
constexpr double ToPerSecond(Frequency f) { return f.value() * kMsPerSecond; }

// Energy consumed by drawing `power` for `elapsed` time.  Kept as a named
// helper because "power times time" reads better at ledger call sites; the
// operator does the single ms->s conversion.
constexpr Joules EnergyOf(Watts power, Duration elapsed) { return power * elapsed; }

// --- Zero-overhead pins ----------------------------------------------------
// A Quantity is exactly the double it wraps: same size, trivially copyable
// (so std::bit_cast and memcpy-based code keep working), and the arithmetic
// below folds to the same constants the raw-double code produced.
static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(SimTime) == sizeof(double));
static_assert(std::is_trivially_copyable_v<SimTime>);
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert((Watts(10.0) * Seconds(2.0)).value() == 20.0);
static_assert((Joules(20.0) / Seconds(2.0)).value() == 10.0);
static_assert((Joules(20.0) / Watts(10.0)).value() == 2000.0);
static_assert(PerSecond(500.0) * Ms(2.0) == 1.0);  // rho is dimensionless
static_assert((Rev(1.0) / Rpm(6000.0)).value() == 10.0);  // one rev at 6k RPM = 10 ms
static_assert(Hours(1.0).value() == 3.6e6);

}  // namespace hib

// SimTime's +infinity / max sentinels ("run forever") come from numeric_limits,
// exactly as they did for the raw double; program-defined specializations of
// numeric_limits are explicitly allowed.
template <int P, int T, int A>
class std::numeric_limits<hib::Quantity<P, T, A>> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool has_infinity = std::numeric_limits<double>::has_infinity;
  static constexpr hib::Quantity<P, T, A> max() {
    return hib::Quantity<P, T, A>(std::numeric_limits<double>::max());
  }
  static constexpr hib::Quantity<P, T, A> lowest() {
    return hib::Quantity<P, T, A>(std::numeric_limits<double>::lowest());
  }
  static constexpr hib::Quantity<P, T, A> infinity() {
    return hib::Quantity<P, T, A>(std::numeric_limits<double>::infinity());
  }
  static constexpr hib::Quantity<P, T, A> epsilon() {
    return hib::Quantity<P, T, A>(std::numeric_limits<double>::epsilon());
  }
};

#endif  // HIBERNATOR_SRC_UTIL_UNITS_H_
