#include "src/util/random.h"

#include <cmath>
#include <cstdlib>

namespace hib {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  Next();
  state_ += seed;
  Next();
}

std::uint32_t Pcg32::Next() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::NextDouble() {
  // 32 random bits -> [0, 1) with 2^-32 resolution; plenty for simulation.
  return static_cast<double>(Next()) * (1.0 / 4294967296.0);
}

std::uint32_t Pcg32::NextBounded(std::uint32_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
  for (;;) {
    std::uint32_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Pcg32::NextInRange(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Compose two 32-bit draws for 64-bit spans.
  std::uint64_t r = (static_cast<std::uint64_t>(Next()) << 32) | Next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Pcg32::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Pcg32::NextPareto(double alpha, double x_min) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

double Pcg32::NextGaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

namespace {
// Above this size we skip the explicit CDF table and invert analytically.
constexpr std::int64_t kMaxTableSize = 1 << 22;
}  // namespace

ZipfGenerator::ZipfGenerator(std::int64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta), use_table_(n_ <= kMaxTableSize), harmonic_(0.0) {
  if (use_table_) {
    cdf_.resize(static_cast<std::size_t>(n_));
    double sum = 0.0;
    for (std::int64_t i = 0; i < n_; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      cdf_[static_cast<std::size_t>(i)] = sum;
    }
    harmonic_ = sum;
    for (auto& v : cdf_) {
      v /= sum;
    }
  } else {
    // Approximate H_{n,theta} by the integral; only used for enormous spaces
    // where per-rank exactness is irrelevant.
    double nd = static_cast<double>(n_);
    harmonic_ = theta_ == 1.0 ? std::log(nd) + 0.5772156649
                              : (std::pow(nd, 1.0 - theta_) - 1.0) / (1.0 - theta_) + 0.5772156649;
  }
}

std::int64_t ZipfGenerator::Next(Pcg32& rng) const {
  double u = rng.NextDouble();
  if (use_table_) {
    // Binary search the CDF.
    std::int64_t lo = 0;
    std::int64_t hi = n_ - 1;
    while (lo < hi) {
      std::int64_t mid = lo + (hi - lo) / 2;
      if (cdf_[static_cast<std::size_t>(mid)] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  // Analytic inverse of the continuous approximation.
  double target = u * harmonic_;
  double rank;
  if (theta_ == 1.0) {
    rank = std::exp(target) - 1.0;
  } else {
    rank = std::pow(target * (1.0 - theta_) + 1.0, 1.0 / (1.0 - theta_)) - 1.0;
  }
  auto r = static_cast<std::int64_t>(rank);
  if (r < 0) {
    r = 0;
  }
  if (r >= n_) {
    r = n_ - 1;
  }
  return r;
}

double ZipfGenerator::MassOfTop(std::int64_t k) const {
  if (k <= 0) {
    return 0.0;
  }
  if (k >= n_) {
    return 1.0;
  }
  if (use_table_) {
    return cdf_[static_cast<std::size_t>(k - 1)];
  }
  double kd = static_cast<double>(k);
  double hk = theta_ == 1.0 ? std::log(kd) + 0.5772156649
                            : (std::pow(kd, 1.0 - theta_) - 1.0) / (1.0 - theta_) + 0.5772156649;
  return hk / harmonic_;
}

}  // namespace hib
