#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hib {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

PercentileReservoir::PercentileReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), rng_state_(seed | 1) {
  samples_.reserve(capacity_);
}

std::uint64_t PercentileReservoir::NextRand() {
  // xorshift64*
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 2685821657736338717ULL;
}

void PercentileReservoir::Add(double x) {
  ++count_;
  sorted_ = false;
  selects_since_mutation_ = 0;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  std::uint64_t j = NextRand() % static_cast<std::uint64_t>(count_);
  if (j < capacity_) {
    samples_[static_cast<std::size_t>(j)] = x;
  }
}

void PercentileReservoir::Reset() {
  samples_.clear();
  count_ = 0;
  sorted_ = false;
  selects_since_mutation_ = 0;
}

double PercentileReservoir::Percentile(double p) {
  if (samples_.empty()) {
    return 0.0;
  }
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  if (!sorted_) {
    // Policies interleave Add() with the occasional percentile probe, so a
    // full O(n log n) sort per query is wasted work.  Select the two order
    // statistics in O(n) instead; only a run of repeated queries with no
    // intervening mutation (e.g. end-of-run reporting) pays for a real sort.
    if (++selects_since_mutation_ > 2) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    } else {
      auto lo_it = samples_.begin() + static_cast<std::ptrdiff_t>(lo);
      std::nth_element(samples_.begin(), lo_it, samples_.end());
      double lo_value = *lo_it;
      double hi_value =
          hi > lo ? *std::min_element(lo_it + 1, samples_.end()) : lo_value;
      return lo_value * (1.0 - frac) + hi_value * frac;
    }
  }
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::Add(double x) {
  double span = hi_ - lo_;
  auto n = static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / span * n);
  if (idx < 0) {
    idx = 0;
  }
  if (idx >= static_cast<std::int64_t>(counts_.size())) {
    idx = static_cast<std::int64_t>(counts_.size()) - 1;
  }
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::ToString(int width) const {
  std::ostringstream out;
  std::int64_t max_count = 1;
  for (auto c : counts_) {
    max_count = std::max(max_count, c);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                               static_cast<double>(max_count) * width);
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") " << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace hib
