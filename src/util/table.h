// Aligned ASCII table and CSV rendering for benchmark/experiment output.
//
// Every bench binary prints its paper-figure reproduction through this class so
// that tables are uniform and machine-parsable (the same table can be dumped as
// CSV with Table::ToCsv).
#ifndef HIBERNATOR_SRC_UTIL_TABLE_H_
#define HIBERNATOR_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace hib {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row.  Cells are appended with the Add* overloads.
  Table& NewRow();
  Table& Add(const std::string& cell);
  Table& Add(const char* cell);
  Table& Add(double value, int precision = 2);
  Table& Add(std::int64_t value);
  Table& Add(int value);
  // Quantities render as their canonical-unit value; the table is one of the
  // sanctioned .value() boundaries.
  template <int P, int T, int A>
  Table& Add(Quantity<P, T, A> value, int precision = 2) {
    return Add(value.value(), precision);
  }
  // Adds a percentage cell rendered as e.g. "42.3%".
  Table& AddPercent(double fraction, int precision = 1);

  std::string ToString() const;
  std::string ToCsv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared with Table).
std::string FormatDouble(double value, int precision);

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_TABLE_H_
