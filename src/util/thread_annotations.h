// Thread-safety / shard-isolation annotation vocabulary.
//
// The fleet simulator's correctness rests on two contracts that used to be
// comments: nothing mutable is shared across RunAll / FleetSimulator shards,
// and no callback outlives the object (or pool slot) it captures.  This
// header turns both into *declared* contracts:
//
//   - Under clang, the capability macros expand to the -Wthread-safety
//     attribute family, so `-DHIB_THREAD_SAFETY=ON` (which adds
//     -Wthread-safety -Wthread-safety-beta) makes the compiler enforce them.
//   - Under every compiler, tools/simlint.py parses the same spellings and
//     enforces them interprocedurally (HIB022 shard-escape, HIB023
//     callback-lifetime, HIB024 contract propagation).
//
// Vocabulary:
//
//   HIB_CAPABILITY(name)      Declares a capability class (a "role" such as
//                             being inside a shard worker), checkable by
//                             clang's capability analysis.
//   HIB_THREAD_CONTEXT(ctx)   The function may only run while `ctx` is held
//                             (requires_capability).  Callers must hold the
//                             context or establish it with a scope below.
//   HIB_EXCLUDES_CONTEXT(ctx) The function must NOT run while `ctx` is held
//                             (locks_excluded) — e.g. spec-order merges that
//                             must happen after every shard has joined.
//   HIB_GUARDED_BY(ctx)       Member may only be touched while `ctx` is held.
//   HIB_SHARD_LOCAL           Marks shard-owned state: the address of this
//                             member/object must never be stored anywhere
//                             that outlives the shard run or is reachable
//                             from another shard (simlint HIB022).  Under
//                             clang it is a parsed annotate attribute, so a
//                             typo fails the build everywhere.
//   HIB_REQUIRES_LIVE(h)      The caller must guarantee pool handle `h` is
//                             live for the duration of the call (simlint
//                             HIB024; annotate attribute under clang).
//   HIB_ACQUIRE_CONTEXT(ctx) / HIB_RELEASE_CONTEXT(ctx)
//                             Functions that enter / leave a context.
//   HIB_SCOPED_CONTEXT        RAII class that holds a context for its scope.
//
// The capability tokens live at the bottom of this header: `kShardContext`
// is held exactly while a worker thread executes one shard's universe
// (src/harness/parallel.cc acquires it via ShardContextScope).
#ifndef HIBERNATOR_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define HIBERNATOR_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define HIB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define HIB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside clang
#endif

#define HIB_CAPABILITY(name) HIB_THREAD_ANNOTATION_ATTRIBUTE_(capability(name))
#define HIB_THREAD_CONTEXT(...) \
  HIB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define HIB_EXCLUDES_CONTEXT(...) \
  HIB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
#define HIB_GUARDED_BY(x) HIB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
#define HIB_ACQUIRE_CONTEXT(...) \
  HIB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define HIB_RELEASE_CONTEXT(...) \
  HIB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define HIB_SCOPED_CONTEXT HIB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)
#define HIB_NO_THREAD_SAFETY_ANALYSIS \
  HIB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// Shard-ownership / handle-lifetime markers.  These have no -Wthread-safety
// counterpart (the analysis has no notion of pool generations), so under
// clang they expand to `annotate` attributes — compiler-parsed metadata, so
// misuse is still a build error — and simlint carries the semantics
// (HIB022 / HIB024).
#if defined(__clang__)
#define HIB_SHARD_LOCAL __attribute__((annotate("hib::shard_local")))
#define HIB_REQUIRES_LIVE(h) __attribute__((annotate("hib::requires_live:" #h)))
#else
#define HIB_SHARD_LOCAL
#define HIB_REQUIRES_LIVE(h)
#endif

namespace hib {

// A thread context is a capability with no lock inside: holding it means
// "this code is running in that role", nothing more.  Acquire/Release exist
// so ShardContextScope can tell the analysis when a worker enters a shard.
class HIB_CAPABILITY("context") ThreadContext {
 public:
  constexpr ThreadContext() = default;
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;
  void Acquire() const HIB_ACQUIRE_CONTEXT() {}
  void Release() const HIB_RELEASE_CONTEXT() {}
};

// Held exactly while a worker executes one shard's deterministic universe
// (one RunExperiment call inside RunAll / FleetSimulator::Run).  Functions
// annotated HIB_THREAD_CONTEXT(kShardContext) may only be called from shard
// workers; HIB_EXCLUDES_CONTEXT(kShardContext) marks merge-side code that
// must wait for every shard to join.
inline constexpr ThreadContext kShardContext;

// RAII context holder for thread entry points.
class HIB_SCOPED_CONTEXT ThreadContextScope {
 public:
  explicit ThreadContextScope(const ThreadContext& ctx) HIB_ACQUIRE_CONTEXT(ctx)
      : ctx_(ctx) {
    ctx_.Acquire();
  }
  ~ThreadContextScope() HIB_RELEASE_CONTEXT() { ctx_.Release(); }
  ThreadContextScope(const ThreadContextScope&) = delete;
  ThreadContextScope& operator=(const ThreadContextScope&) = delete;

 private:
  const ThreadContext& ctx_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_UTIL_THREAD_ANNOTATIONS_H_
