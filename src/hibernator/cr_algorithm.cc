#include "src/hibernator/cr_algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace hib {

Watts DiskPowerAt(const DiskParams& disk, const SpeedServiceModel& service, int level,
                  Frequency lambda) {
  const SpeedLevel& lvl = disk.speeds[static_cast<std::size_t>(level)];
  double rho = std::min(1.0, Mg1Model::Utilization(lambda, service.Level(level).mean_ms));
  return lvl.idle_power + (lvl.active_power - lvl.idle_power) * rho;
}

namespace {

struct SearchState {
  const CrInput* input = nullptr;
  int num_groups = 0;
  int num_levels = 0;
  // Sum of per-group arrival rates; response sums weighted by it are
  // dimensionless (Frequency * Duration), and dividing one back out yields
  // the predicted mean response as a Duration.
  Frequency total_weight;
  // Indexed [group][level].
  std::vector<std::vector<Duration>> response;  // per-disk mean response
  std::vector<std::vector<Watts>> power;        // group power (width included)
  std::vector<std::vector<Watts>> trans_w;      // amortized transition power
  std::vector<int> order;                       // groups sorted by lambda desc
  // Suffix lower bounds over `order` positions.
  std::vector<Watts> min_rest_power;    // sum of min-over-level power
  std::vector<double> min_rest_resp;    // sum of min-over-level weighted response

  std::vector<int> current;  // level per order position
  std::vector<int> best;
  Watts best_power = std::numeric_limits<Watts>::infinity();
  double best_resp_sum = 0.0;
  std::int64_t evaluated = 0;

  void Dfs(int pos, int cap, double resp_sum, Watts power_sum);
};

void SearchState::Dfs(int pos, int cap, double resp_sum, Watts power_sum) {
  if (pos == num_groups) {
    ++evaluated;
    QueueingTelemetry telemetry = input->telemetry;
    telemetry.Observe(total_weight > Frequency{} ? resp_sum / total_weight : Duration{});
    double goal_sum = input->goal_ms * total_weight;
    if (resp_sum <= goal_sum + 1e-9 && power_sum < best_power) {
      best_power = power_sum;
      best_resp_sum = resp_sum;
      best = current;
    }
    return;
  }
  // Admissible prunes: even the best-case completion cannot beat the record
  // or satisfy the goal.
  if (power_sum + min_rest_power[static_cast<std::size_t>(pos)] >= best_power) {
    return;
  }
  if (resp_sum + min_rest_resp[static_cast<std::size_t>(pos)] >
      input->goal_ms * total_weight + 1e-9) {
    return;
  }
  int g = order[static_cast<std::size_t>(pos)];
  Frequency w = input->group_lambda[static_cast<std::size_t>(g)];
  for (int k = cap; k >= 0; --k) {
    Duration r = response[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)];
    if (!IsFinite(r) && w > Frequency{}) {
      continue;  // this speed cannot even keep up with the load
    }
    double contrib = w > Frequency{} ? w * r : 0.0;
    int next_cap = input->exhaustive ? num_levels - 1 : k;
    current[static_cast<std::size_t>(pos)] = k;
    Dfs(pos + 1, next_cap,
        resp_sum + contrib,
        power_sum + power[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)] +
            trans_w[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)]);
  }
}

}  // namespace

CrResult SolveCr(const CrInput& input) {
  HIB_CHECK(input.disk != nullptr) << "CR input needs disk parameters";
  const int num_groups = static_cast<int>(input.group_lambda.size());
  const int num_levels = input.service.num_levels();
  HIB_CHECK_EQ(num_levels, input.disk->num_speeds());
  HIB_CHECK(input.current_levels.empty() ||
            static_cast<int>(input.current_levels.size()) == num_groups)
      << "current_levels must be empty or one per group";
  HIB_CHECK_GT(input.group_width, 0);
  HIB_CHECK_GT(num_groups, 0);

  SearchState s;
  s.input = &input;
  s.num_groups = num_groups;
  s.num_levels = num_levels;
  s.total_weight = std::accumulate(input.group_lambda.begin(),
                                   input.group_lambda.end(), Frequency{});

  s.response.assign(static_cast<std::size_t>(num_groups),
                    std::vector<Duration>(static_cast<std::size_t>(num_levels)));
  s.power.assign(static_cast<std::size_t>(num_groups),
                 std::vector<Watts>(static_cast<std::size_t>(num_levels)));
  s.trans_w = s.power;
  for (int g = 0; g < num_groups; ++g) {
    Frequency lambda = input.group_lambda[static_cast<std::size_t>(g)];
    double arrival_scv = input.group_arrival_scv.empty()
                             ? 1.0
                             : input.group_arrival_scv[static_cast<std::size_t>(g)];
    double bias = input.group_response_bias.empty()
                      ? 1.0
                      : input.group_response_bias[static_cast<std::size_t>(g)];
    int from_level = input.current_levels.empty()
                         ? num_levels - 1
                         : input.current_levels[static_cast<std::size_t>(g)];
    int from_rpm = input.disk->speeds[static_cast<std::size_t>(from_level)].rpm;
    for (int k = 0; k < num_levels; ++k) {
      const auto& lvl = input.service.Level(k);
      // Steady-state response at this speed, plus the epoch-averaged cost of
      // getting there: requests arriving during the RPM transition stall for
      // the remainder of it (the disk cannot serve while the spindle moves),
      // so a request's expected extra delay is P(arrive in transition) *
      // T/2 = T^2 / (2 * epoch).  This term is what makes fine-grained speed
      // changes (DRPM-style) unattractive and coarse epochs cheap — the
      // paper's central trade-off — and it also steers CR toward gradual
      // one-level steps when epochs are short.
      int to_rpm_k = input.disk->speeds[static_cast<std::size_t>(k)].rpm;
      Duration trans_ms = input.disk->RpmTransitionTime(from_rpm, to_rpm_k);
      Duration transition_delay = input.epoch_ms > Duration{}
                                      ? trans_ms * trans_ms / (2.0 * input.epoch_ms)
                                      : Duration{};
      s.response[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)] =
          bias * Mg1Model::Gg1ResponseTime(lambda, lvl.mean_ms, lvl.scv, arrival_scv) +
          transition_delay;
      s.power[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)] =
          static_cast<double>(input.group_width) *
          DiskPowerAt(*input.disk, input.service, k, lambda);
      int to_rpm = input.disk->speeds[static_cast<std::size_t>(k)].rpm;
      Joules trans = static_cast<double>(input.group_width) *
                     input.disk->RpmTransitionEnergy(from_rpm, to_rpm);
      // Joules amortized over the epoch -> Watts.
      s.trans_w[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)] =
          input.epoch_ms > Duration{} ? trans / input.epoch_ms : Watts{};
    }
  }

  // Hotter groups first; monotone non-increasing levels along this order.
  s.order.resize(static_cast<std::size_t>(num_groups));
  std::iota(s.order.begin(), s.order.end(), 0);
  std::stable_sort(s.order.begin(), s.order.end(), [&](int a, int b) {
    return input.group_lambda[static_cast<std::size_t>(a)] >
           input.group_lambda[static_cast<std::size_t>(b)];
  });

  // Suffix lower bounds (ignore monotonicity: still admissible).
  s.min_rest_power.assign(static_cast<std::size_t>(num_groups) + 1, Watts{});
  s.min_rest_resp.assign(static_cast<std::size_t>(num_groups) + 1, 0.0);
  for (int pos = num_groups - 1; pos >= 0; --pos) {
    int g = s.order[static_cast<std::size_t>(pos)];
    Frequency w = input.group_lambda[static_cast<std::size_t>(g)];
    Watts min_p = std::numeric_limits<Watts>::infinity();
    double min_r = std::numeric_limits<double>::infinity();
    for (int k = 0; k < num_levels; ++k) {
      min_p = std::min(min_p,
                       s.power[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)] +
                           s.trans_w[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)]);
      Duration r = s.response[static_cast<std::size_t>(g)][static_cast<std::size_t>(k)];
      if (IsFinite(r)) {
        min_r = std::min(min_r, w > Frequency{} ? w * r : 0.0);
      }
    }
    if (!std::isfinite(min_r)) {
      min_r = w > Frequency{} ? std::numeric_limits<double>::infinity() : 0.0;
    }
    s.min_rest_power[static_cast<std::size_t>(pos)] =
        s.min_rest_power[static_cast<std::size_t>(pos) + 1] + min_p;
    s.min_rest_resp[static_cast<std::size_t>(pos)] =
        s.min_rest_resp[static_cast<std::size_t>(pos) + 1] + min_r;
  }

  s.current.assign(static_cast<std::size_t>(num_groups), num_levels - 1);
  s.Dfs(0, num_levels - 1, 0.0, Watts{});

  CrResult result;
  result.candidates_evaluated = s.evaluated;
  result.levels.assign(static_cast<std::size_t>(num_groups), num_levels - 1);
  if (!s.best.empty()) {
    result.feasible = true;
    for (int pos = 0; pos < num_groups; ++pos) {
      result.levels[static_cast<std::size_t>(s.order[static_cast<std::size_t>(pos)])] =
          s.best[static_cast<std::size_t>(pos)];
    }
    result.predicted_response_ms = s.total_weight > Frequency{}
                                       ? s.best_resp_sum / s.total_weight
                                       : Duration{};
    result.predicted_power = s.best_power;
  } else {
    // Infeasible even at full speed: run everything flat out.
    result.feasible = false;
    double resp_sum = 0.0;
    Watts power_sum;
    for (int g = 0; g < num_groups; ++g) {
      Frequency w = input.group_lambda[static_cast<std::size_t>(g)];
      Duration r =
          s.response[static_cast<std::size_t>(g)][static_cast<std::size_t>(num_levels) - 1];
      if (w > Frequency{} && IsFinite(r)) {
        resp_sum += w * r;
      }
      power_sum +=
          s.power[static_cast<std::size_t>(g)][static_cast<std::size_t>(num_levels) - 1];
    }
    result.predicted_response_ms =
        s.total_weight > Frequency{} ? resp_sum / s.total_weight : Duration{};
    result.predicted_power = power_sum;
  }
  return result;
}

}  // namespace hib
