// Hibernator's performance guarantee: a response-time credit account.
//
// Every completed request earns (goal - response) milliseconds of credit;
// fast requests build savings, slow requests spend them.  When the account
// goes negative the array's long-run average response time is about to miss
// the goal, so the policy "boosts" — every disk to full speed, migration
// paused — until enough credit accumulates to resume saving energy.  A cap
// on the account keeps a long quiet night from banking unlimited slack that
// a busy day could then squander in one sustained violation.
#ifndef HIBERNATOR_SRC_HIBERNATOR_PERF_GUARANTEE_H_
#define HIBERNATOR_SRC_HIBERNATOR_PERF_GUARANTEE_H_

#include <cstdint>

#include "src/util/units.h"

namespace hib {

struct PerfGuaranteeParams {
  Duration goal_ms = Ms(20.0);
  // Credit ceiling expressed in requests' worth of full goal slack.
  double credit_cap_requests = 500000.0;
  // Resume saving once this many requests' worth of credit is rebuilt.  Kept
  // small and absolute (not a fraction of the cap): its only job is to stop
  // boost/resume flapping, and re-slowing is already deferred to the next
  // epoch boundary.
  double resume_credit_requests = 2000.0;
  // Boost while credit is still slightly positive ("risk that performance
  // goals might not be met"), so the repayment capacity of full-speed
  // operation is never outrun by a deficit accrued between checks.
  double boost_margin_requests = 1000.0;
};

class PerfGuarantee {
 public:
  explicit PerfGuarantee(PerfGuaranteeParams params);

  // Feeds one observation window: `sum_ms` total response time over `count`
  // completed requests.
  void Observe(Duration sum_ms, std::int64_t count);

  // True when the account is at risk (below the boost margin): run at full
  // speed until CanResume().
  bool ShouldBoost() const { return credit_ms_ < boost_threshold_ms_; }

  // True once enough credit is banked to leave boost mode.
  bool CanResume() const { return credit_ms_ >= resume_threshold_ms_; }

  Duration credit_ms() const { return credit_ms_; }
  Duration cap_ms() const { return cap_ms_; }
  Duration goal_ms() const { return params_.goal_ms; }

  void set_goal_ms(Duration goal_ms);

 private:
  PerfGuaranteeParams params_;
  Duration cap_ms_;
  Duration resume_threshold_ms_;
  Duration boost_threshold_ms_;
  Duration credit_ms_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_HIBERNATOR_PERF_GUARANTEE_H_
