#include "src/hibernator/hibernator_policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/util/log.h"

namespace hib {

std::string HibernatorPolicy::Describe() const {
  std::ostringstream out;
  out << Name() << "(goal=" << params_.goal_ms << "ms, epoch=" << params_.epoch_ms / Hours(1.0)
      << "h, budget=" << params_.migration_budget_extents << " extents"
      << (params_.enable_boost ? "" : ", no-boost")
      << (params_.enable_migration ? "" : ", no-migration") << ")";
  return out.str();
}

void HibernatorPolicy::Attach(Simulator* sim, ArrayController* array) {
  sim_ = sim;
  array_ = array;
  service_model_ = SpeedServiceModel::FromDisk(array->params().disk,
                                               params_.model_request_sectors,
                                               params_.model_write_fraction);
  PerfGuaranteeParams gp;
  gp.goal_ms = params_.goal_ms;
  gp.credit_cap_requests = params_.credit_cap_requests;
  guarantee_ = std::make_unique<PerfGuarantee>(gp);

  int groups = array_->layout().num_groups();
  group_levels_.assign(static_cast<std::size_t>(groups),
                       array_->params().disk.num_speeds() - 1);
  group_bias_.assign(static_cast<std::size_t>(groups), Ewma(0.5));

  sim_->SchedulePeriodic(params_.epoch_ms, params_.epoch_ms, [this] { EpochTick(); });
  if (params_.enable_boost) {
    sim_->SchedulePeriodic(params_.guarantee_check_ms, params_.guarantee_check_ms,
                           [this] { GuaranteeTick(); });
  }
}

void HibernatorPolicy::Finish() {
  if (boosted_) {
    boosted_ms_total_ += sim_->Now() - boost_started_;
    // Close the still-open boost interval so the trace timeline is complete.
    HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kBoost, kTrackPolicy, "boost",
                   boost_started_, sim_->Now(), boosts_, 0.0);
    boost_started_ = sim_->Now();
  }
}

std::vector<Frequency> HibernatorPolicy::MeasureGroupLambdas() const {
  const LayoutManager& layout = array_->layout();
  int width = layout.group_width();
  std::vector<Frequency> lambdas(static_cast<std::size_t>(layout.num_groups()));
  for (int g = 0; g < layout.num_groups(); ++g) {
    std::int64_t arrivals = 0;
    for (int slot = 0; slot < width; ++slot) {
      arrivals += array_->disk(layout.GroupDisk(g, slot)).stats().window_arrivals;
    }
    // Mean per-disk arrival rate over the elapsed epoch.
    lambdas[static_cast<std::size_t>(g)] =
        static_cast<double>(arrivals) / static_cast<double>(width) / params_.epoch_ms;
  }
  return lambdas;
}

std::vector<double> HibernatorPolicy::MeasureGroupArrivalScvs() const {
  const LayoutManager& layout = array_->layout();
  std::vector<double> scvs(static_cast<std::size_t>(layout.num_groups()), 1.0);
  for (int g = 0; g < layout.num_groups(); ++g) {
    double sum = 0.0;
    for (int slot = 0; slot < layout.group_width(); ++slot) {
      sum += array_->disk(layout.GroupDisk(g, slot)).stats().WindowArrivalScv();
    }
    scvs[static_cast<std::size_t>(g)] = sum / static_cast<double>(layout.group_width());
  }
  return scvs;
}

std::vector<double> HibernatorPolicy::UpdateGroupBiases(const std::vector<Frequency>& lambdas,
                                                        const std::vector<double>& scvs) {
  // The renewal queueing model misses batch effects (a burst of requests to
  // one disk queues far deeper than independent arrivals at the same rate),
  // so CR's predictions carry a per-group multiplicative correction learned
  // from the last epoch: measured mean sub-op response / predicted response
  // at the level the group actually ran.
  const LayoutManager& layout = array_->layout();
  std::vector<double> biases(static_cast<std::size_t>(layout.num_groups()), 1.0);
  for (int g = 0; g < layout.num_groups(); ++g) {
    Duration sum;
    std::int64_t count = 0;
    for (int slot = 0; slot < layout.group_width(); ++slot) {
      const DiskStats& ds = array_->disk(layout.GroupDisk(g, slot)).stats();
      sum += ds.window_response_sum_ms;
      count += ds.window_completions;
    }
    Ewma& bias = group_bias_[static_cast<std::size_t>(g)];
    if (count >= 50) {
      Duration measured = sum / static_cast<double>(count);
      const auto& lvl =
          service_model_.Level(group_levels_[static_cast<std::size_t>(g)]);
      Duration predicted = Mg1Model::Gg1ResponseTime(lambdas[static_cast<std::size_t>(g)],
                                                     lvl.mean_ms, lvl.scv,
                                                     scvs[static_cast<std::size_t>(g)]);
      if (predicted > Duration{}) {
        bias.Add(std::clamp(measured / predicted, 0.5, 8.0));
      }
    }
    biases[static_cast<std::size_t>(g)] = bias.empty() ? 1.0 : bias.current();
  }
  return biases;
}

Duration HibernatorPolicy::EffectiveGoalMs(std::int64_t expected_requests) const {
  Duration goal = params_.goal_ms;
  if (params_.enable_boost && guarantee_ != nullptr && guarantee_->credit_ms() > Duration{}) {
    Duration spend = params_.credit_spend_fraction * guarantee_->credit_ms() /
                     static_cast<double>(std::max<std::int64_t>(expected_requests, 1));
    goal += std::min(spend, params_.credit_spend_cap_goal_multiple * params_.goal_ms);
  }
  return goal;
}

double HibernatorPolicy::MeasureResponseScale() const {
  // Logical requests fan out into sub-ops (RAID5 writes especially), so the
  // logical mean response exceeds the per-disk mean.  CR's constraint lives
  // at the sub-op level; this live ratio converts the user-facing goal.
  const ArrayStats& as = array_->stats();
  Duration logical_mean = as.WindowMeanResponse();
  Duration subop_sum;
  std::int64_t subop_count = 0;
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    const DiskStats& ds = array_->disk(i).stats();
    subop_sum += ds.window_response_sum_ms;
    subop_count += ds.window_completions;
  }
  if (as.window_responses < 100 || subop_count < 100 || logical_mean <= Duration{}) {
    return last_scale_;  // not enough data; reuse the previous calibration
  }
  Duration subop_mean = subop_sum / static_cast<double>(subop_count);
  double scale = subop_mean > Duration{} ? logical_mean / subop_mean : last_scale_;
  return std::clamp(scale, 1.0, 5.0);
}

std::vector<int> HibernatorPolicy::SolveUtilizationThreshold(
    const std::vector<Frequency>& lambdas) const {
  // Ablation baseline: pick the slowest speed keeping predicted utilization
  // under the target, with no response-time model at all.
  std::vector<int> levels(lambdas.size(), 0);
  for (std::size_t g = 0; g < lambdas.size(); ++g) {
    int chosen = service_model_.num_levels() - 1;
    for (int k = 0; k < service_model_.num_levels(); ++k) {
      double rho = Mg1Model::Utilization(lambdas[g], service_model_.Level(k).mean_ms);
      if (rho <= params_.threshold_target_utilization) {
        chosen = k;
        break;
      }
    }
    levels[g] = chosen;
  }
  return levels;
}

std::vector<Frequency> MaxElementwise(const std::vector<Frequency>& a,
                                      const std::vector<Frequency>& b) {
  if (b.empty()) {
    return a;
  }
  std::vector<Frequency> out = a;
  for (std::size_t i = 0; i < out.size() && i < b.size(); ++i) {
    out[i] = std::max(out[i], b[i]);
  }
  return out;
}

void HibernatorPolicy::EpochTick() {
  array_->temperatures().EndEpoch();
  std::vector<Frequency> lambdas = MeasureGroupLambdas();
  last_scale_ = MeasureResponseScale();

  if (params_.use_history_prediction) {
    // Plan against the worse of "what just happened" and "what happened at
    // this time yesterday": cheap anticipation of diurnal ramps.
    auto epochs_per_period = static_cast<std::size_t>(
        std::max(1.0, params_.history_period_ms / params_.epoch_ms));
    std::vector<Frequency> yesterday;
    if (lambda_history_.size() >= epochs_per_period) {
      yesterday = lambda_history_[lambda_history_.size() - epochs_per_period];
    }
    lambda_history_.push_back(lambdas);
    if (lambda_history_.size() > epochs_per_period + 1) {
      lambda_history_.pop_front();
    }
    lambdas = MaxElementwise(lambdas, yesterday);
  }

  if (!boosted_) {
    std::vector<int> levels;
    if (params_.use_cr) {
      // Expected demand for the coming epoch is approximated by the last one.
      Duration effective_goal = EffectiveGoalMs(array_->stats().window_responses);
      std::vector<double> scvs = MeasureGroupArrivalScvs();
      CrInput input;
      input.service = service_model_;
      input.group_lambda = lambdas;
      input.group_arrival_scv = scvs;
      input.group_response_bias = UpdateGroupBiases(lambdas, scvs);
      input.group_width = array_->layout().group_width();
      input.goal_ms = effective_goal / last_scale_;
      input.epoch_ms = params_.epoch_ms;
      input.current_levels = group_levels_;
      input.disk = &array_->params().disk;
#if HIB_OBS
      input.telemetry.evaluations =
          &sim_->obs().metrics.GetCounter("hibernator.cr_candidates");
      input.telemetry.predicted_response_ms =
          &sim_->obs().metrics.GetHistogram("hibernator.cr_predicted_response_ms");
#endif
      CrResult result = SolveCr(input);
      levels = result.levels;
      last_predicted_response_ms_ = result.predicted_response_ms * last_scale_;
      HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kEpoch, kTrackPolicy,
                        result.feasible ? "epoch" : "epoch(infeasible)", sim_->Now(),
                        epochs_completed_, last_predicted_response_ms_ / Ms(1.0));
      HIB_LOG(kInfo) << Name() << " epoch " << epochs_completed_ << ": predicted "
                     << last_predicted_response_ms_ << "ms vs goal " << params_.goal_ms
                     << "ms, power " << result.predicted_power << "W, feasible "
                     << result.feasible;
    } else {
      levels = SolveUtilizationThreshold(lambdas);
    }
    ApplyLevels(levels, /*immediate=*/false);
    if (params_.enable_migration) {
      PlanMigrations();
    }
  }

  // Start the next measurement window.
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    array_->disk(i).stats().ResetWindow();
  }
  array_->stats().ResetWindow();
  ++epochs_completed_;
  HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("hibernator.epochs"));
}

void HibernatorPolicy::ApplyGroupLevel(int group, int level) {
  const LayoutManager& layout = array_->layout();
  const DiskParams& dp = array_->params().disk;
  int rpm = dp.speeds[static_cast<std::size_t>(level)].rpm;
  for (int slot = 0; slot < layout.group_width(); ++slot) {
    array_->disk(layout.GroupDisk(group, slot)).SetTargetRpm(rpm);
  }
}

void HibernatorPolicy::ApplyLevels(const std::vector<int>& levels, bool immediate) {
  const LayoutManager& layout = array_->layout();
  const DiskParams& dp = array_->params().disk;
  group_levels_ = levels;
  ++config_generation_;
  std::uint64_t generation = config_generation_;
  Duration delay;
  for (int g = 0; g < layout.num_groups(); ++g) {
    int level = levels[static_cast<std::size_t>(g)];
    // Compare against the disks' *actual* target, not the previously intended
    // assignment: a staggered change may still be pending (its event dies
    // with the generation bump above), and skipping based on intent would
    // strand the group at its old speed.
    int actual_level = dp.LevelOf(array_->disk(layout.GroupDisk(g, 0)).target_rpm());
    if (level == actual_level) {
      continue;  // no spindle movement needed
    }
    if (immediate || params_.stagger_ms <= Duration{}) {
      ApplyGroupLevel(g, level);
      continue;
    }
    // Stagger: one group's spindles move at a time, so at any instant only a
    // small slice of the array is paying the transition stall.
    sim_->ScheduleIn(delay, [this, g, level, generation] {
      if (config_generation_ != generation) {
        return;  // superseded by a newer assignment (epoch or boost)
      }
      ApplyGroupLevel(g, level);
    });
    delay += params_.stagger_ms;
  }
}

void HibernatorPolicy::PlanMigrations() {
  const LayoutManager& layout = array_->layout();
  std::int64_t num_extents = layout.num_extents();
  int num_groups = layout.num_groups();

  // Groups ordered fastest-first (ties: hotter group keeps its rank) —
  // the hottest extents should live on the fastest groups.
  std::vector<int> group_order(static_cast<std::size_t>(num_groups));
  std::iota(group_order.begin(), group_order.end(), 0);
  std::stable_sort(group_order.begin(), group_order.end(), [this](int a, int b) {
    return group_levels_[static_cast<std::size_t>(a)] > group_levels_[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> order = array_->temperatures().SortedHottestFirst();
  std::int64_t per_group = (num_extents + num_groups - 1) / num_groups;
  std::int64_t budget = params_.migration_budget_extents;
  for (std::size_t rank = 0; rank < order.size() && budget > 0; ++rank) {
    std::int64_t extent = order[rank];
    if (array_->temperatures().TemperatureOf(extent) <= 0.0) {
      break;  // never-accessed extents (the sorted tail) stay where they are
    }
    int slot = static_cast<int>(static_cast<std::int64_t>(rank) / per_group);
    int target = group_order[static_cast<std::size_t>(slot)];
    if (layout.GroupOf(extent) != target) {
      array_->RequestMigration(extent, target);
      ++migrations_requested_;
      --budget;
    }
  }
  HIB_COUNTER_ADD(&sim_->obs().metrics.GetCounter("hibernator.migrations_requested"),
                  params_.migration_budget_extents - budget);
}

void HibernatorPolicy::GuaranteeTick() {
  const ArrayStats& as = array_->stats();
  Duration delta_sum = as.total_response_sum_ms - seen_response_sum_ms_;
  std::int64_t delta_count = as.total_responses - seen_responses_;
  seen_response_sum_ms_ = as.total_response_sum_ms;
  seen_responses_ = as.total_responses;
  guarantee_->Observe(delta_sum, delta_count);

  if (!boosted_ && guarantee_->ShouldBoost()) {
    boosted_ = true;
    ++boosts_;
    boost_started_ = sim_->Now();
    HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("hibernator.boosts"));
    BoostAllFull();
    array_->PauseMigration(true);
    HIB_LOG(kInfo) << Name() << " BOOST at " << sim_->Now() / Hours(1.0) << "h (credit "
                   << guarantee_->credit_ms() << "ms)";
  } else if (boosted_ && guarantee_->CanResume()) {
    // Leave boost mode but stay at full speed: slowing back down is a coarse
    // decision that belongs to CR at the next epoch boundary (an immediate
    // re-transition would stall requests and re-drain the credit we just
    // rebuilt).
    boosted_ = false;
    boosted_ms_total_ += sim_->Now() - boost_started_;
    HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kBoost, kTrackPolicy, "boost",
                   boost_started_, sim_->Now(), boosts_, 0.0);
    array_->PauseMigration(false);
    HIB_LOG(kInfo) << Name() << " resume at " << sim_->Now() / Hours(1.0) << "h";
  }
}

void HibernatorPolicy::BoostAllFull() {
  std::vector<int> full(group_levels_.size(), array_->params().disk.num_speeds() - 1);
  ApplyLevels(full, /*immediate=*/true);
}

}  // namespace hib
