// CR: the Coarse-grained Response-time-based speed-setting algorithm — the
// analytical heart of Hibernator.
//
// Once per epoch, CR chooses an RPM level for every stripe group so that the
// array's predicted request-weighted mean response time stays within the
// performance goal while total power (including RPM-transition energy
// amortized over the epoch) is minimized.
//
// Inputs are per-group *observed* per-disk arrival rates from the previous
// epoch; per-level service times come from the analytic M/G/1 model
// (src/queueing/mg1.h).  Hotter groups always deserve faster speeds (a
// standard exchange argument), so CR sorts groups by load and searches only
// monotone level assignments — C(G+K-1, K-1) candidates instead of K^G — with
// an admissible lower-bound prune.  Tests cross-check the result against
// exhaustive enumeration on small instances.
#ifndef HIBERNATOR_SRC_HIBERNATOR_CR_ALGORITHM_H_
#define HIBERNATOR_SRC_HIBERNATOR_CR_ALGORITHM_H_

#include <cstdint>
#include <vector>

#include "src/disk/disk_params.h"
#include "src/queueing/mg1.h"
#include "src/util/units.h"

namespace hib {

struct CrInput {
  // Per-level service-time statistics for the current request mix.
  SpeedServiceModel service;
  // Observed per-disk arrival rate in each group.
  std::vector<Frequency> group_lambda;
  // Observed squared coefficient of variation of interarrival times per
  // group (1 = Poisson).  Empty means Poisson everywhere.  Bursty groups
  // queue much worse than M/G/1 predicts (G/G/1 Allen-Cunneen correction).
  std::vector<double> group_arrival_scv;
  // Multiplicative correction per group learned online by the policy from
  // (measured response / predicted response); batch arrivals and other
  // effects outside the renewal model land here.  Empty = 1.0 everywhere.
  std::vector<double> group_response_bias;
  int group_width = 4;
  // Constraint: request-weighted mean per-sub-op response time.
  Duration goal_ms = Ms(20.0);
  // Amortization horizon for transition energy.
  Duration epoch_ms = Hours(2.0);
  // Current level of each group (transition-cost accounting).
  std::vector<int> current_levels;
  // Disk model (power + transition energies).
  const DiskParams* disk = nullptr;
  // When true, search all K^G assignments instead of monotone ones (test /
  // validation mode; exponential, keep G*K tiny).
  bool exhaustive = false;
  // Optional instrumentation: per-candidate evaluation count and predicted
  // response distribution (see src/queueing/mg1.h).
  QueueingTelemetry telemetry;
};

struct CrResult {
  std::vector<int> levels;        // chosen level per group (input order)
  Duration predicted_response_ms; // request-weighted mean sub-op response
  Watts predicted_power;          // including amortized transition power
  bool feasible = false;          // false => fell back to all-full-speed
  std::int64_t candidates_evaluated = 0;
};

// Mean electrical power of one disk at `level` carrying `lambda` arrivals
// (linear idle/active blend by utilization).
Watts DiskPowerAt(const DiskParams& disk, const SpeedServiceModel& service, int level,
                  Frequency lambda);

CrResult SolveCr(const CrInput& input);

}  // namespace hib

#endif  // HIBERNATOR_SRC_HIBERNATOR_CR_ALGORITHM_H_
