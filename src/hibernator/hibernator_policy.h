// The Hibernator energy-management policy: the paper's full system.
//
// Combines, per the abstract, (1) multi-speed disks, (2) a coarse-grained
// epoch scheme that decides which disks spin at which speeds (the CR
// algorithm, src/hibernator/cr_algorithm.h), (3) automatic migration of the
// right data to appropriate-speed disks (temperature-sorted multi-tier
// layout, rate-limited background moves), and (4) automatic performance
// boosts when the response-time goal is at risk (the credit account,
// src/hibernator/perf_guarantee.h).
//
// Epoch cycle:
//   - fold the access-temperature window, read per-group arrival rates;
//   - calibrate the sub-op <-> logical response scale from live measurements;
//   - run CR to pick each group's RPM level (skipped while boosted);
//   - apply speeds (no data moves: a group changes speed in place);
//   - plan migrations toward the temperature-sorted target layout, hottest
//     mismatches first, bounded by the per-epoch budget.
//
// Guarantee cycle (fine-grained): feed completed-request response times into
// the credit account; boost to full speed on deficit, restore the saved
// configuration once credit recovers.
#ifndef HIBERNATOR_SRC_HIBERNATOR_HIBERNATOR_POLICY_H_
#define HIBERNATOR_SRC_HIBERNATOR_HIBERNATOR_POLICY_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/hibernator/cr_algorithm.h"
#include "src/hibernator/perf_guarantee.h"
#include "src/policy/policy.h"
#include "src/util/stats.h"

namespace hib {

struct HibernatorParams {
  // Average logical response-time goal.  Required.
  Duration goal_ms = Ms(20.0);
  Duration epoch_ms = Hours(2.0);
  std::int64_t migration_budget_extents = 4096;
  Duration guarantee_check_ms = Seconds(1.0);
  // The credit cap must comfortably exceed the one-shot response-time cost of
  // an epoch reconfiguration (requests stall while a group's spindle moves),
  // or the guarantee will boost on every slow-down and thrash.
  double credit_cap_requests = 500000.0;
  // Groups change speed one at a time, this far apart, so only a small slice
  // of the array is unavailable at any instant.
  Duration stagger_ms = Seconds(120.0);
  bool enable_migration = true;
  bool enable_boost = true;
  // How aggressively banked response-time credit is spent: each epoch CR may
  // exceed the base goal by spend_fraction * credit / expected_requests,
  // capped at spend_cap_goal_multiple x goal.  This is what lets a nearly
  // idle night run slow (its few requests individually exceed the goal)
  // repaid by the daytime surplus — the long-term *average* stays bounded,
  // with the boost as the hard floor.
  double credit_spend_fraction = 0.5;
  double credit_spend_cap_goal_multiple = 4.0;
  // When true, CR plans each epoch against max(last epoch's load, the load
  // observed one history period ago) — anticipating diurnal ramps instead of
  // reacting one epoch late.
  bool use_history_prediction = false;
  Duration history_period_ms = Hours(24.0);
  // false selects the naive utilization-threshold speed setter (ablation).
  bool use_cr = true;
  double threshold_target_utilization = 0.5;  // used only when !use_cr
  // Assumed mix for the analytic service model; the live scale factor
  // corrects residual error each epoch.
  double model_request_sectors = 12.0;
  double model_write_fraction = 0.35;
};

// Elementwise max of two load vectors; `b` may be empty (returns `a`).
std::vector<Frequency> MaxElementwise(const std::vector<Frequency>& a,
                                      const std::vector<Frequency>& b);

class HibernatorPolicy : public PowerPolicy {
 public:
  explicit HibernatorPolicy(HibernatorParams params) : params_(params) {}

  std::string Name() const override { return params_.use_cr ? "Hibernator" : "Hibernator-UT"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;
  void Finish() override;

  // --- introspection (reports, tests) ------------------------------------
  int epochs_completed() const { return epochs_completed_; }
  int boosts() const { return boosts_; }
  Duration boosted_ms() const { return boosted_ms_total_; }
  bool boosted() const { return boosted_; }
  Duration credit_ms() const { return guarantee_ ? guarantee_->credit_ms() : Duration{}; }
  const std::vector<int>& group_levels() const { return group_levels_; }
  Duration last_predicted_response_ms() const { return last_predicted_response_ms_; }
  std::int64_t migrations_requested() const { return migrations_requested_; }

 private:
  void EpochTick();
  void GuaranteeTick();
  // Applies a level assignment.  Staggered mode spaces the per-group speed
  // changes `stagger_ms` apart (slow-downs are never urgent); immediate mode
  // switches everything now (boosts are).
  void ApplyLevels(const std::vector<int>& levels, bool immediate);
  void ApplyGroupLevel(int group, int level);
  void BoostAllFull();
  std::vector<Frequency> MeasureGroupLambdas() const;
  std::vector<double> MeasureGroupArrivalScvs() const;
  // Updates the per-group measured/predicted response bias from the closing
  // window and returns the smoothed biases for the next CR solve.
  std::vector<double> UpdateGroupBiases(const std::vector<Frequency>& lambdas,
                                        const std::vector<double>& scvs);
  double MeasureResponseScale() const;
  Duration EffectiveGoalMs(std::int64_t expected_requests) const;
  void PlanMigrations();
  std::vector<int> SolveUtilizationThreshold(const std::vector<Frequency>& lambdas) const;

  HibernatorParams params_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
  SpeedServiceModel service_model_;
  std::unique_ptr<PerfGuarantee> guarantee_;

  std::vector<int> group_levels_;  // current assignment
  std::vector<Ewma> group_bias_;   // learned response-model correction per group
  // Bumped on every reconfiguration; staggered speed-change events from a
  // superseded assignment check it and drop themselves.
  std::uint64_t config_generation_ = 0;
  bool boosted_ = false;
  SimTime boost_started_;

  // Deltas for the guarantee window.
  Duration seen_response_sum_ms_;
  std::int64_t seen_responses_ = 0;

  // Per-epoch history of measured group loads (most recent at the back).
  std::deque<std::vector<Frequency>> lambda_history_;
  int epochs_completed_ = 0;
  int boosts_ = 0;
  Duration boosted_ms_total_;
  Duration last_predicted_response_ms_;
  std::int64_t migrations_requested_ = 0;
  double last_scale_ = 2.0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_HIBERNATOR_HIBERNATOR_POLICY_H_
