#include "src/hibernator/perf_guarantee.h"

#include <algorithm>

namespace hib {

PerfGuarantee::PerfGuarantee(PerfGuaranteeParams params) : params_(params) {
  cap_ms_ = params_.goal_ms * params_.credit_cap_requests;
  resume_threshold_ms_ = params_.goal_ms * params_.resume_credit_requests;
  boost_threshold_ms_ = params_.goal_ms * params_.boost_margin_requests;
}

void PerfGuarantee::Observe(Duration sum_ms, std::int64_t count) {
  if (count <= 0) {
    return;
  }
  credit_ms_ += params_.goal_ms * static_cast<double>(count) - sum_ms;
  credit_ms_ = std::min(credit_ms_, cap_ms_);
}

void PerfGuarantee::set_goal_ms(Duration goal_ms) {
  params_.goal_ms = goal_ms;
  cap_ms_ = params_.goal_ms * params_.credit_cap_requests;
  resume_threshold_ms_ = params_.goal_ms * params_.resume_credit_requests;
  boost_threshold_ms_ = params_.goal_ms * params_.boost_margin_requests;
  credit_ms_ = std::min(credit_ms_, cap_ms_);
}

}  // namespace hib
