#include "src/disk/disk_params.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hib {

Duration SeekModel::SeekTime(std::int64_t distance, std::int64_t num_cylinders) const {
  if (distance <= 0) {
    return Duration{};
  }
  if (num_cylinders < 2) {
    return single_cyl_ms;
  }
  // DiskSim-style blend: sqrt growth out to the 1/3-stroke "average" point,
  // linear growth from there to full stroke.
  double avg_dist = static_cast<double>(num_cylinders) / 3.0;
  double d = static_cast<double>(distance);
  if (d <= avg_dist) {
    double frac = std::sqrt(d / avg_dist);
    return single_cyl_ms + (average_ms - single_cyl_ms) * frac;
  }
  double full = static_cast<double>(num_cylinders - 1);
  double frac = (d - avg_dist) / std::max(1.0, full - avg_dist);
  frac = std::min(frac, 1.0);
  return average_ms + (full_stroke_ms - average_ms) * frac;
}

int DiskParams::LevelOf(int rpm) const {
  for (int i = 0; i < num_speeds(); ++i) {
    if (speeds[static_cast<std::size_t>(i)].rpm == rpm) {
      return i;
    }
  }
  return -1;
}

Duration DiskParams::TransferTime(SectorCount count, int rpm) const {
  if (count <= 0) {
    return Duration{};
  }
  Duration rev_ms = Rev(1.0) / Rpm(static_cast<double>(rpm));
  return static_cast<double>(count) / static_cast<double>(sectors_per_track) * rev_ms;
}

Duration DiskParams::RpmTransitionTime(int from_rpm, int to_rpm) const {
  if (from_rpm == to_rpm) {
    return Duration{};
  }
  double swing = static_cast<double>(max_rpm() - min_rpm());
  if (swing <= 0.0) {
    return Duration{};
  }
  double delta = std::abs(static_cast<double>(to_rpm - from_rpm));
  return rpm_full_swing_ms * delta / swing;
}

Joules DiskParams::RpmTransitionEnergy(int from_rpm, int to_rpm) const {
  Duration t = RpmTransitionTime(from_rpm, to_rpm);
  int hi = std::max(from_rpm, to_rpm);
  int level = LevelOf(hi);
  Watts p = level >= 0 ? speeds[static_cast<std::size_t>(level)].active_power
                       : speeds.back().active_power;
  return EnergyOf(p, t);
}

Duration DiskParams::SpinUpTime(int rpm) const {
  return spin_up_full_ms * static_cast<double>(rpm) / static_cast<double>(max_rpm());
}

Joules DiskParams::SpinUpEnergy(int rpm) const {
  // Kinetic energy scales with rpm^2; drag during ramp roughly follows suit.
  double frac = static_cast<double>(rpm) / static_cast<double>(max_rpm());
  return spin_up_full_energy * frac * frac;
}

std::string DiskParams::Validate() const {
  std::ostringstream err;
  if (speeds.empty()) {
    err << "no speed levels; ";
  }
  for (std::size_t i = 1; i < speeds.size(); ++i) {
    if (speeds[i].rpm <= speeds[i - 1].rpm) {
      err << "speeds not strictly ascending at index " << i << "; ";
    }
  }
  for (const auto& s : speeds) {
    if (s.rpm <= 0 || s.idle_power <= Watts{} || s.active_power < s.idle_power) {
      err << "bad speed level rpm=" << s.rpm << "; ";
    }
  }
  if (num_cylinders <= 0 || tracks_per_cylinder <= 0 || sectors_per_track <= 0) {
    err << "bad geometry; ";
  }
  if (seek.single_cyl_ms < Duration{} || seek.average_ms < seek.single_cyl_ms ||
      seek.full_stroke_ms < seek.average_ms) {
    err << "seek curve not monotone; ";
  }
  if (standby_power < Watts{} || spin_down_ms < Duration{} || spin_up_full_ms < Duration{}) {
    err << "bad standby parameters; ";
  }
  return err.str();
}

Watts IdlePowerAtRpm(int rpm, int max_rpm, Watts idle_at_max, Watts electronics) {
  // The DRPM RPM^2.8 law on the dimensionless speed ratio.
  double frac = Rpm(static_cast<double>(rpm)) / Rpm(static_cast<double>(max_rpm));
  return electronics + (idle_at_max - electronics) * std::pow(frac, 2.8);
}

Watts ActivePowerAtRpm(int rpm, int max_rpm, Watts idle_at_max, Watts active_extra,
                       Watts electronics) {
  return IdlePowerAtRpm(rpm, max_rpm, idle_at_max, electronics) + active_extra;
}

DiskParams MakeUltrastar36Z15MultiSpeed(int num_levels) {
  DiskParams p;
  p.model_name = "IBM Ultrastar 36Z15 (multi-speed)";
  p.num_cylinders = 15110;
  p.tracks_per_cylinder = 8;
  p.sectors_per_track = 600;  // ~36.7 GB total
  p.seek = SeekModel{Ms(0.6), Ms(3.4), Ms(6.5)};
  p.write_settle_ms = Ms(0.3);
  p.standby_power = Watts(1.5);
  p.spin_down_ms = Ms(1500.0);
  p.spin_down_energy = Joules(13.0);
  p.spin_up_full_ms = Ms(10900.0);
  p.spin_up_full_energy = Joules(135.0);
  p.rpm_full_swing_ms = Ms(8000.0);

  constexpr int kMinRpm = 3000;
  constexpr int kMaxRpm = 15000;
  constexpr Watts kIdleAtMax = Watts(10.2);
  if (num_levels < 1) {
    num_levels = 1;
  }
  p.speeds.clear();
  if (num_levels == 1) {
    p.speeds.push_back(
        SpeedLevel{kMaxRpm, kIdleAtMax, ActivePowerAtRpm(kMaxRpm, kMaxRpm, kIdleAtMax)});
  } else {
    for (int i = 0; i < num_levels; ++i) {
      int rpm = kMinRpm + (kMaxRpm - kMinRpm) * i / (num_levels - 1);
      p.speeds.push_back(SpeedLevel{rpm, IdlePowerAtRpm(rpm, kMaxRpm, kIdleAtMax),
                                    ActivePowerAtRpm(rpm, kMaxRpm, kIdleAtMax)});
    }
  }
  return p;
}

}  // namespace hib
