// Multi-speed disk model parameters.
//
// Hibernator's evaluation assumed multi-speed disks extrapolated from the IBM
// Ultrastar 36Z15 (15,000 RPM), following the DRPM model of Gurumurthi et al.
// (ISCA 2003): spindle power scales roughly with RPM^2.8, rotational latency
// and media transfer rate scale linearly with RPM, and changing RPM takes
// seconds (not milliseconds), which is exactly why Hibernator changes speeds
// only at coarse epoch boundaries.
//
// MakeUltrastar36Z15MultiSpeed() builds that disk with a configurable number
// of evenly spaced RPM levels between 3,000 and 15,000.
#ifndef HIBERNATOR_SRC_DISK_DISK_PARAMS_H_
#define HIBERNATOR_SRC_DISK_DISK_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace hib {

// Three-point seek curve (DiskSim's simplest calibrated model): single
// cylinder, average (1/3 stroke), and full stroke, interpolated with the
// standard sqrt/linear blend.
struct SeekModel {
  Duration single_cyl_ms = Ms(0.6);
  Duration average_ms = Ms(3.4);
  Duration full_stroke_ms = Ms(6.5);

  // Seek time for a move of `distance` cylinders on a disk with
  // `num_cylinders` cylinders total.  Zero distance costs nothing.
  Duration SeekTime(std::int64_t distance, std::int64_t num_cylinders) const;
};

// One spindle speed the disk supports.
struct SpeedLevel {
  int rpm = 15000;
  Watts idle_power = Watts(10.2);    // platters spinning, heads parked, no I/O
  Watts active_power = Watts(13.5);  // seeking / transferring

  AngularVelocity Speed() const { return Rpm(static_cast<double>(rpm)); }
  Duration RevolutionMs() const { return Rev(1.0) / Speed(); }
};

struct DiskParams {
  std::string model_name = "generic";

  // Geometry.  Capacity = cylinders * tracks_per_cylinder * sectors_per_track.
  std::int64_t num_cylinders = 15110;
  int tracks_per_cylinder = 8;
  int sectors_per_track = 600;

  SeekModel seek;
  Duration write_settle_ms = Ms(0.3);  // extra head-settle charged to writes

  // Supported speeds, sorted ascending by RPM.  A single entry models a
  // conventional fixed-speed disk.
  std::vector<SpeedLevel> speeds;

  // Standby (spun down) state.
  Watts standby_power = Watts(1.5);
  Duration spin_down_ms = Ms(1500.0);   // full speed -> standby
  Joules spin_down_energy = Joules(13.0);
  Duration spin_up_full_ms = Ms(10900.0);  // standby -> full speed
  Joules spin_up_full_energy = Joules(135.0);

  // Seconds to swing the spindle across the full RPM range; a transition of
  // |delta| RPM takes full_swing * |delta| / (max - min).
  Duration rpm_full_swing_ms = Ms(8000.0);

  std::int64_t TotalSectors() const {
    return num_cylinders * tracks_per_cylinder * sectors_per_track;
  }
  std::int64_t SectorsPerCylinder() const {
    return static_cast<std::int64_t>(tracks_per_cylinder) * sectors_per_track;
  }

  int num_speeds() const { return static_cast<int>(speeds.size()); }
  int min_rpm() const { return speeds.front().rpm; }
  int max_rpm() const { return speeds.back().rpm; }

  // Index of the level with exactly `rpm`; -1 if unsupported.
  int LevelOf(int rpm) const;

  // Media transfer time for `count` sectors at `rpm` (sequential, no seek).
  Duration TransferTime(SectorCount count, int rpm) const;

  // Time to move the spindle between two supported speeds.
  Duration RpmTransitionTime(int from_rpm, int to_rpm) const;

  // Energy drawn during that transition (charged at the higher level's
  // active power — accelerating costs at least as much as running).
  Joules RpmTransitionEnergy(int from_rpm, int to_rpm) const;

  // Spin-up time/energy from standby to `rpm` (scales with target speed).
  Duration SpinUpTime(int rpm) const;
  Joules SpinUpEnergy(int rpm) const;

  // Validates internal consistency (sorted speeds, positive geometry, ...).
  // Returns an empty string when valid, else a description of the problem.
  std::string Validate() const;
};

// The DRPM-style spindle power law: electronics + k * (rpm/rpm_max)^2.8.
Watts IdlePowerAtRpm(int rpm, int max_rpm, Watts idle_at_max, Watts electronics = Watts(2.5));
Watts ActivePowerAtRpm(int rpm, int max_rpm, Watts idle_at_max,
                       Watts active_extra = Watts(3.3), Watts electronics = Watts(2.5));

// Builds the Hibernator evaluation disk: IBM Ultrastar 36Z15 extrapolated to
// `num_levels` evenly spaced speeds in [3000, 15000] RPM.  num_levels == 1
// yields the conventional fixed 15k disk; 2 yields {3k, 15k}; 5 (the paper's
// default) yields {3k, 6k, 9k, 12k, 15k}.
DiskParams MakeUltrastar36Z15MultiSpeed(int num_levels = 5);

}  // namespace hib

#endif  // HIBERNATOR_SRC_DISK_DISK_PARAMS_H_
