#include "src/disk/disk.h"

#include <cstdlib>
#include <utility>

#include "src/util/check.h"
#include "src/util/log.h"

namespace hib {

const char* DiskPowerStateName(DiskPowerState state) {
  switch (state) {
    case DiskPowerState::kIdle:
      return "IDLE";
    case DiskPowerState::kBusy:
      return "BUSY";
    case DiskPowerState::kChangingRpm:
      return "CHANGING_RPM";
    case DiskPowerState::kSpinningDown:
      return "SPINNING_DOWN";
    case DiskPowerState::kStandby:
      return "STANDBY";
    case DiskPowerState::kSpinningUp:
      return "SPINNING_UP";
  }
  return "?";
}

Disk::Disk(Simulator* sim, DiskParams params, int id, std::uint64_t seed)
    : sim_(sim),
      params_(std::move(params)),
      id_(id),
      rng_(seed, static_cast<std::uint64_t>(id) * 2 + 1),
      level_(params_.num_speeds() - 1),
      target_level_(level_) {
  HIB_CHECK(params_.Validate().empty()) << "invalid DiskParams: " << params_.Validate();
  current_power_ = StatePower(DiskPowerState::kIdle);
  last_account_ = sim_->Now();
  last_activity_ = sim_->Now();
  MetricsRegistry& metrics = sim_->obs().metrics;
  obs_spin_ups_ = &metrics.GetCounter("disk.spin_ups");
  obs_spin_downs_ = &metrics.GetCounter("disk.spin_downs");
  obs_rpm_changes_ = &metrics.GetCounter("disk.rpm_changes");
  obs_queue_wait_ms_ = &metrics.GetHistogram("disk.queue_wait_ms");
  obs_service_ms_ = &metrics.GetHistogram("disk.service_ms");
  obs_state_since_ = sim_->Now();
#if HIB_VALIDATE
  sim_->validator()->OnDiskAttached(this, id_, static_cast<ValidatorDiskState>(state_),
                                    current_power_, sim_->Now());
#endif
}

Disk::~Disk() {
#if HIB_VALIDATE
  sim_->validator()->OnDiskDetached(this);
#endif
}

Watts Disk::StatePower(DiskPowerState state) const {
  const SpeedLevel& lvl = params_.speeds[static_cast<std::size_t>(level_)];
  switch (state) {
    case DiskPowerState::kIdle:
      return lvl.idle_power;
    case DiskPowerState::kBusy:
      return lvl.active_power;
    case DiskPowerState::kStandby:
      return params_.standby_power;
    case DiskPowerState::kChangingRpm:
    case DiskPowerState::kSpinningDown:
    case DiskPowerState::kSpinningUp:
      return transition_power_;
  }
  return Watts{};
}

void Disk::AccountToNow() {
  SimTime now = sim_->Now();
  Duration dt = now - last_account_;
  if (dt <= Duration{}) {
    last_account_ = now;
    return;
  }
  Joules joules = EnergyOf(current_power_, dt);
  switch (state_) {
    case DiskPowerState::kBusy:
      energy_.active += joules;
      energy_.active_ms += dt;
      break;
    case DiskPowerState::kIdle:
      energy_.idle += joules;
      energy_.idle_ms += dt;
      break;
    case DiskPowerState::kStandby:
      energy_.standby += joules;
      energy_.standby_ms += dt;
      break;
    case DiskPowerState::kChangingRpm:
    case DiskPowerState::kSpinningDown:
    case DiskPowerState::kSpinningUp:
      energy_.transition += joules;
      energy_.transition_ms += dt;
      break;
  }
  last_account_ = now;
}

void Disk::EnterState(DiskPowerState next) {
  AccountToNow();
  Watts next_power = StatePower(next);
#if HIB_VALIDATE
  sim_->validator()->OnDiskTransition(this, static_cast<ValidatorDiskState>(state_),
                                      static_cast<ValidatorDiskState>(next), sim_->Now(),
                                      next_power, energy_.Total(),
                                      static_cast<std::int64_t>(QueueDepth()));
#endif
  // Close the residency span of the state being left (arg = its power draw,
  // dimensionless via the Watts/Watts division — this is trace output).
  HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kPowerState, id_, DiskPowerStateName(state_),
                 obs_state_since_, sim_->Now(), id_, current_power_ / Watts(1.0));
  obs_state_since_ = sim_->Now();
  state_ = next;
  current_power_ = next_power;
}

void Disk::FlushObs() {
  HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kPowerState, id_, DiskPowerStateName(state_),
                 obs_state_since_, sim_->Now(), id_, current_power_ / Watts(1.0));
  obs_state_since_ = sim_->Now();
}

DiskEnergy Disk::MeteredEnergy() const {
  // Fold in the time since the last state change without mutating state.
  DiskEnergy snapshot = energy_;
  Duration dt = sim_->Now() - last_account_;
  if (dt > Duration{}) {
    Joules joules = EnergyOf(current_power_, dt);
    switch (state_) {
      case DiskPowerState::kBusy:
        snapshot.active += joules;
        snapshot.active_ms += dt;
        break;
      case DiskPowerState::kIdle:
        snapshot.idle += joules;
        snapshot.idle_ms += dt;
        break;
      case DiskPowerState::kStandby:
        snapshot.standby += joules;
        snapshot.standby_ms += dt;
        break;
      default:
        snapshot.transition += joules;
        snapshot.transition_ms += dt;
        break;
    }
  }
  return snapshot;
}

void Disk::Submit(DiskRequest request) {
  request.arrival = sim_->Now();
  last_activity_ = sim_->Now();
  ++stats_.window_arrivals;
  if (!request.background) {
    if (stats_.window_prev_arrival >= SimTime{}) {
      Duration gap = sim_->Now() - stats_.window_prev_arrival;
      stats_.window_gap_sum_ms += gap;
      stats_.window_gap_sq_ms2 += gap * gap;
      ++stats_.window_gaps;
    }
    stats_.window_prev_arrival = sim_->Now();
  }
  if (request.background) {
    background_.push_back(std::move(request));
  } else {
    foreground_.push_back(std::move(request));
  }
  if (state_ == DiskPowerState::kStandby) {
    BeginSpinUp();
    return;
  }
  MaybeStartWork();
}

void Disk::SetTargetRpm(int rpm) {
  int level = params_.LevelOf(rpm);
  HIB_CHECK_GE(level, 0) << "unsupported RPM level " << rpm;
  if (level == target_level_) {
    return;
  }
  target_level_ = level;
  if (state_ == DiskPowerState::kIdle && level_ != target_level_) {
    BeginRpmChange();
  }
  // Busy: picked up in FinishService.  Standby / spinning up: the spin-up
  // (or the next one) targets target_level_.  Changing RPM: chained in
  // FinishRpmChange.
}

bool Disk::SpinDown() {
  if (!FullyIdle()) {
    return false;
  }
  // Joules / Duration -> Watts: the units layer owns the ms->s conversion.
  transition_power_ = params_.spin_down_ms > Duration{}
                          ? params_.spin_down_energy / params_.spin_down_ms
                          : Watts{};
  EnterState(DiskPowerState::kSpinningDown);
  ++stats_.spin_downs;
  HIB_COUNTER_INC(obs_spin_downs_);
  sim_->ScheduleIn(params_.spin_down_ms, [this] { FinishSpinDown(); });
  return true;
}

void Disk::FinishSpinDown() {
  EnterState(DiskPowerState::kStandby);
  // A request may have arrived while the platters wound down.
  if (QueueDepth() > 0) {
    BeginSpinUp();
  }
}

void Disk::SpinUp() {
  if (state_ == DiskPowerState::kStandby) {
    BeginSpinUp();
  }
}

void Disk::BeginSpinUp() {
  HIB_DCHECK(state_ == DiskPowerState::kStandby) << "spin-up outside standby";
  int rpm = params_.speeds[static_cast<std::size_t>(target_level_)].rpm;
  Duration t = params_.SpinUpTime(rpm);
  Joules e = params_.SpinUpEnergy(rpm);
  transition_power_ = t > Duration{} ? e / t : Watts{};
  EnterState(DiskPowerState::kSpinningUp);
  ++stats_.spin_ups;
  HIB_COUNTER_INC(obs_spin_ups_);
  sim_->ScheduleIn(t, [this] { FinishSpinUp(); });
}

void Disk::FinishSpinUp() {
  level_ = target_level_;
  EnterState(DiskPowerState::kIdle);
  MaybeStartWork();
}

void Disk::BeginRpmChange() {
  HIB_DCHECK(state_ == DiskPowerState::kIdle) << "RPM change outside idle";
  HIB_DCHECK_NE(level_, target_level_) << "RPM change to the current level";
  int from = params_.speeds[static_cast<std::size_t>(level_)].rpm;
  int to = params_.speeds[static_cast<std::size_t>(target_level_)].rpm;
  Duration t = params_.RpmTransitionTime(from, to);
  Joules e = params_.RpmTransitionEnergy(from, to);
  transition_power_ = t > Duration{} ? e / t : Watts{};
  EnterState(DiskPowerState::kChangingRpm);
  ++stats_.rpm_changes;
  HIB_COUNTER_INC(obs_rpm_changes_);
  int destination = target_level_;
  sim_->ScheduleIn(t, [this, destination] {
    level_ = destination;
    FinishRpmChange();
  });
}

void Disk::FinishRpmChange() {
  EnterState(DiskPowerState::kIdle);
  if (level_ != target_level_) {
    // The target moved again while we were transitioning.
    BeginRpmChange();
    return;
  }
  MaybeStartWork();
}

void Disk::MaybeStartWork() {
  if (state_ != DiskPowerState::kIdle) {
    return;
  }
  if (level_ != target_level_) {
    BeginRpmChange();
    return;
  }
  if (foreground_.empty() && background_.empty()) {
    return;
  }
  StartService();
}

void Disk::StartService() {
  HIB_DCHECK(state_ == DiskPowerState::kIdle) << "service start outside idle";
  bool from_fg = !foreground_.empty();
  DiskRequest req = from_fg ? std::move(foreground_.front()) : std::move(background_.front());
  if (from_fg) {
    foreground_.pop_front();
  } else {
    background_.pop_front();
  }

  const SpeedLevel& lvl = params_.speeds[static_cast<std::size_t>(level_)];
  std::int64_t cylinder = req.sector / params_.SectorsPerCylinder();
  if (cylinder >= params_.num_cylinders) {
    cylinder = params_.num_cylinders - 1;
  }
  Duration seek;
  Duration rotation;
  if (req.sector == next_sequential_sector_) {
    // Sequential continuation: the head is already in position and the media
    // streams under it — no seek, no rotational latency.  This is what makes
    // large sequential runs cheap even at low RPM.
    seek = Duration{};
    rotation = Duration{};
  } else {
    seek = params_.seek.SeekTime(std::llabs(cylinder - head_cylinder_), params_.num_cylinders);
    rotation = rng_.NextDouble() * lvl.RevolutionMs();
  }
  Duration transfer = params_.TransferTime(req.count, lvl.rpm);
  Duration settle = req.is_write ? params_.write_settle_ms : Duration{};
  Duration service = seek + rotation + transfer + settle;

  head_cylinder_ = cylinder;
  next_sequential_sector_ = req.sector + req.count;
  EnterState(DiskPowerState::kBusy);
  stats_.service_time_ms.Add(service);
  stats_.window_busy_ms += service;

  SimTime done = sim_->Now() + service;
#if HIB_OBS
  {
    SimTime now = sim_->Now();
    if (!req.background) {
      HIB_HIST_RECORD(obs_queue_wait_ms_, (now - req.arrival) / Ms(1.0));
    }
    HIB_HIST_RECORD(obs_service_ms_, service / Ms(1.0));
    Tracer& tracer = sim_->obs().tracer;
    if (tracer.enabled()) {
      // One id per sub-op ties the async wait span to the service breakdown.
      std::int64_t subop = (static_cast<std::int64_t>(id_) << 40) +
                           static_cast<std::int64_t>(obs_subop_seq_++);
      tracer.Span(SpanKind::kQueueWait, id_, req.background ? "wait(bg)" : "wait",
                  req.arrival, now, subop, static_cast<double>(QueueDepth()));
      tracer.Span(SpanKind::kService, id_, req.is_write ? "write" : "read", now, done, subop,
                  static_cast<double>(req.count));
      if (seek + rotation > Duration{}) {
        tracer.Span(SpanKind::kSeek, id_, "seek+rot", now, now + seek + rotation, subop);
      }
      tracer.Span(SpanKind::kTransfer, id_, "transfer", now + seek + rotation,
                  now + seek + rotation + transfer, subop);
    }
  }
#endif
  sim_->ScheduleIn(service, [this, done, r = std::move(req)]() mutable {
    FinishService(done, std::move(r));
  });
}

void Disk::FinishService(SimTime completion_time, DiskRequest request) {
  last_activity_ = completion_time;
  ++stats_.requests_completed;
  if (request.background) {
    ++stats_.background_completed;
  } else {
    ++stats_.foreground_completed;
    stats_.response_time_ms.Add(completion_time - request.arrival);
    stats_.window_response_sum_ms += completion_time - request.arrival;
    ++stats_.window_completions;
  }
  if (request.is_write) {
    stats_.sectors_written += request.count;
  } else {
    stats_.sectors_read += request.count;
  }
  EnterState(DiskPowerState::kIdle);
  if (request.on_complete) {
    request.on_complete(completion_time);
  }
  MaybeStartWork();
}

Duration Disk::ExpectedServiceTime(SectorCount count, int level) const {
  const SpeedLevel& lvl = params_.speeds[static_cast<std::size_t>(level)];
  // Average seek (1/3 stroke) + half-revolution latency + transfer.
  return params_.seek.average_ms + 0.5 * lvl.RevolutionMs() +
         params_.TransferTime(count, lvl.rpm);
}

}  // namespace hib
