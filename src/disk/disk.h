// Simulated multi-speed disk: request queue, mechanical service-time model,
// and a power-state machine with full energy metering.
//
// States and transitions:
//
//   IDLE <-> BUSY            (serve queued requests, FCFS; background I/O
//                             only runs when the foreground queue is empty)
//   IDLE -> CHANGING_RPM -> IDLE        (SetTargetRpm; waits for current
//                             request to finish, queues arrivals meanwhile)
//   IDLE -> SPINNING_DOWN -> STANDBY    (SpinDown, only when fully idle)
//   STANDBY -> SPINNING_UP -> IDLE      (SpinUp or demand arrival)
//
// Energy is accounted lazily: every state carries a power draw, and the meter
// integrates power over the time spent in each state, so
//   total_energy == sum over states (time_in_state * state_power)
// holds exactly (tests assert this invariant).
#ifndef HIBERNATOR_SRC_DISK_DISK_H_
#define HIBERNATOR_SRC_DISK_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/disk/disk_params.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/units.h"

namespace hib {

enum class DiskPowerState {
  kIdle,          // spinning at current RPM, no request in service
  kBusy,          // serving a request
  kChangingRpm,   // moving the spindle between two speeds
  kSpinningDown,  // heading to standby
  kStandby,       // spun down
  kSpinningUp,    // leaving standby
};

#if HIB_VALIDATE
// SimValidator mirrors this enum so the sim layer stays below the disk layer;
// keep the value mapping in lockstep.
static_assert(static_cast<int>(DiskPowerState::kIdle) ==
              static_cast<int>(ValidatorDiskState::kIdle));
static_assert(static_cast<int>(DiskPowerState::kBusy) ==
              static_cast<int>(ValidatorDiskState::kBusy));
static_assert(static_cast<int>(DiskPowerState::kChangingRpm) ==
              static_cast<int>(ValidatorDiskState::kChangingRpm));
static_assert(static_cast<int>(DiskPowerState::kSpinningDown) ==
              static_cast<int>(ValidatorDiskState::kSpinningDown));
static_assert(static_cast<int>(DiskPowerState::kStandby) ==
              static_cast<int>(ValidatorDiskState::kStandby));
static_assert(static_cast<int>(DiskPowerState::kSpinningUp) ==
              static_cast<int>(ValidatorDiskState::kSpinningUp));
#endif

const char* DiskPowerStateName(DiskPowerState state);

// One I/O sent to a disk.  `on_complete` fires at completion with the
// completion timestamp; `arrival` is stamped by the disk at Submit.
struct DiskRequest {
  SectorAddr sector = 0;
  SectorCount count = 8;
  bool is_write = false;
  bool background = false;  // migration traffic: served at idle priority
  SimTime arrival;
  std::function<void(SimTime)> on_complete;
};

// Cumulative energy/time ledger, broken down by power state.
struct DiskEnergy {
  Joules active;
  Joules idle;
  Joules standby;
  Joules transition;  // rpm changes + spin up/down

  Duration active_ms;
  Duration idle_ms;
  Duration standby_ms;
  Duration transition_ms;

  Joules Total() const { return active + idle + standby + transition; }
  Duration TotalMs() const { return active_ms + idle_ms + standby_ms + transition_ms; }
};

struct DiskStats {
  std::int64_t requests_completed = 0;
  std::int64_t foreground_completed = 0;
  std::int64_t background_completed = 0;
  std::int64_t sectors_read = 0;
  std::int64_t sectors_written = 0;
  std::int64_t spin_ups = 0;
  std::int64_t spin_downs = 0;
  std::int64_t rpm_changes = 0;
  RunningStats service_time_ms;    // mechanical time only
  RunningStats response_time_ms;   // queue wait + service (foreground only)

  // Rolling window counters; policies read these each epoch and call
  // ResetWindow() to start the next measurement interval.
  std::int64_t window_arrivals = 0;
  Duration window_busy_ms;
  Duration window_response_sum_ms;  // foreground completions only
  std::int64_t window_completions = 0;
  // Interarrival moments (foreground), for the arrival-burstiness estimate.
  SimTime window_prev_arrival = Ms(-1.0);
  Duration window_gap_sum_ms;
  DurationSq window_gap_sq_ms2;
  std::int64_t window_gaps = 0;

  // Squared coefficient of variation of interarrival gaps in the window;
  // 1 for Poisson, >> 1 for bursts.  Returns 1 with too little data.
  double WindowArrivalScv() const {
    if (window_gaps < 8 || window_gap_sum_ms <= Duration{}) {
      return 1.0;
    }
    Duration mean = window_gap_sum_ms / static_cast<double>(window_gaps);
    DurationSq var = window_gap_sq_ms2 / static_cast<double>(window_gaps) - mean * mean;
    return var > DurationSq{} ? var / (mean * mean) : 0.0;
  }

  void ResetWindow() {
    window_arrivals = 0;
    window_busy_ms = Duration{};
    window_response_sum_ms = Duration{};
    window_completions = 0;
    window_prev_arrival = Ms(-1.0);
    window_gap_sum_ms = Duration{};
    window_gap_sq_ms2 = DurationSq{};
    window_gaps = 0;
  }
};

class Disk {
 public:
  // `sim` must outlive the disk.  `seed` drives rotational-latency sampling.
  Disk(Simulator* sim, DiskParams params, int id, std::uint64_t seed);
  ~Disk();

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Enqueues a request.  A disk in standby spins up automatically.
  void Submit(DiskRequest request);

  // Requests a coarse speed change.  Takes effect once the in-flight request
  // (if any) completes; arrivals queue during the transition.  No-op if the
  // disk is already at (or already heading to) `rpm`.  `rpm` must be one of
  // the supported levels.
  void SetTargetRpm(int rpm);

  // Spins down to standby.  Returns false (and does nothing) unless the disk
  // is idle with an empty queue.
  bool SpinDown();

  // Spins up from standby toward the current target RPM.  No-op otherwise.
  void SpinUp();

  int id() const { return id_; }
  const DiskParams& params() const { return params_; }
  DiskPowerState state() const { return state_; }
  // The speed the disk is at (or heading to).
  int target_rpm() const { return params_.speeds[static_cast<std::size_t>(target_level_)].rpm; }
  int current_rpm() const { return params_.speeds[static_cast<std::size_t>(level_)].rpm; }
  int current_level() const { return level_; }

  std::size_t QueueDepth() const { return foreground_.size() + background_.size(); }
  std::size_t ForegroundQueueDepth() const { return foreground_.size(); }
  bool FullyIdle() const { return state_ == DiskPowerState::kIdle && QueueDepth() == 0; }
  // Time of the most recent arrival or completion; drives TPM idle detection.
  SimTime last_activity() const { return last_activity_; }

  // Energy metered through the current instant.
  DiskEnergy MeteredEnergy() const;

  DiskStats& stats() { return stats_; }
  const DiskStats& stats() const { return stats_; }

  // Pure service-time query (no state change): what would this request cost
  // mechanically at the given level, with average rotational latency?
  Duration ExpectedServiceTime(SectorCount count, int level) const;

  // Emits the still-open power-state residency span (the tail of the
  // timeline).  Call once at end of run, before exporting a trace.
  void FlushObs();

 private:
  void EnterState(DiskPowerState next);
  Watts StatePower(DiskPowerState state) const;
  void AccountToNow();
  void MaybeStartWork();
  void StartService();
  void FinishService(SimTime completion_time, DiskRequest request);
  void BeginRpmChange();
  void FinishRpmChange();
  void BeginSpinUp();
  void FinishSpinUp();
  void FinishSpinDown();

  Simulator* sim_;
  DiskParams params_;
  int id_;
  Pcg32 rng_;

  DiskPowerState state_ = DiskPowerState::kIdle;
  int level_;         // current speed level index
  int target_level_;  // desired level (== level_ when no change pending)
  std::int64_t head_cylinder_ = 0;
  SectorAddr next_sequential_sector_ = -1;  // end of the last transfer

  std::deque<DiskRequest> foreground_;
  std::deque<DiskRequest> background_;

  // Lazy energy metering.
  SimTime last_account_;
  Watts current_power_;
  Watts transition_power_;  // effective draw while in a transition state
  DiskEnergy energy_;

  SimTime last_activity_;
  DiskStats stats_;

  // Observability instruments, resolved once from the simulator's registry;
  // bumps go through the HIB_* macros (no-ops when HIB_OBS=0).
  Counter* obs_spin_ups_;
  Counter* obs_spin_downs_;
  Counter* obs_rpm_changes_;
  LogLinearHistogram* obs_queue_wait_ms_;
  LogLinearHistogram* obs_service_ms_;
  SimTime obs_state_since_;           // start of the current power-state span
  std::uint32_t obs_subop_seq_ = 0;   // per-disk sub-op trace id counter
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_DISK_DISK_H_
