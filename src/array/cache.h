// Controller-level LRU read cache.
//
// Real arrays carry a battery-backed controller cache; the paper's traces
// already sit below large database/file-system caches, so this cache is kept
// modest and identical for every policy (it affects all schemes equally).
// Reads that fully hit are served at `cache_hit_ms`; writes invalidate any
// overlapping lines (write-through, no allocate).
//
// Layout: a single flat open-addressing table.  Each slot carries the line
// id plus intrusive prev/next slot indices forming the LRU list, so a lookup
// touches one contiguous array instead of a std::list node + unordered_map
// bucket chain (three dependent cache misses per line in the old layout).
// The table is sized for `lines` at construction and never grows: warmup
// never rehashes, and steady state holds size() == capacity() while every
// insert recycles the LRU tail.  Erasure leaves a tombstone (the LRU links
// of live slots must not move); tombstones are compacted in place — walking
// the LRU list to preserve exact recency order — once they would start to
// hurt probe lengths.  Hit/miss/eviction semantics are identical to the old
// list+map implementation (tests/cache_diff_test.cc pins this).
#ifndef HIBERNATOR_SRC_ARRAY_CACHE_H_
#define HIBERNATOR_SRC_ARRAY_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace hib {

class LruCache {
 public:
  // `lines` == 0 disables the cache entirely.
  LruCache(std::size_t lines, SectorCount line_sectors);

  // True iff every sector of [lba, lba+count) is resident; touches LRU state.
  bool Lookup(SectorAddr lba, SectorCount count);

  // Inserts all lines covering [lba, lba+count), evicting LRU lines.
  void Insert(SectorAddr lba, SectorCount count);

  // Drops all lines overlapping [lba, lba+count).
  void Invalidate(SectorAddr lba, SectorCount count);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  double HitRate() const;

 private:
  using LineId = std::int64_t;

  enum SlotState : std::uint8_t { kEmpty = 0, kLive = 1, kTombstone = 2 };

  struct Slot {
    LineId line = 0;
    std::uint32_t prev = 0;  // LRU links: slot indices, kNil at the ends
    std::uint32_t next = 0;
    SlotState state = kEmpty;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  LineId FirstLine(SectorAddr lba) const { return lba / line_sectors_; }
  LineId LastLine(SectorAddr lba, SectorCount count) const {
    return (lba + count - 1) / line_sectors_;
  }

  std::uint32_t Bucket(LineId line) const;
  // Index of the live slot holding `line`, or kNil.
  std::uint32_t FindSlot(LineId line) const;
  void LinkFront(std::uint32_t s);
  void Unlink(std::uint32_t s);
  void MoveToFront(std::uint32_t s);
  // Evicts the LRU tail (leaves a tombstone).
  void EvictTail();
  // Places `line` (must be absent, size_ < capacity_) and links it MRU.
  void InsertFresh(LineId line);
  // Rebuilds the table without tombstones, preserving exact LRU order.
  void Compact();

  std::size_t capacity_;
  SectorCount line_sectors_;
  std::vector<Slot> table_;          // power-of-two flat open-addressing table
  std::uint32_t mask_ = 0;           // table_.size() - 1
  std::uint32_t head_ = kNil;        // most recently used
  std::uint32_t tail_ = kNil;        // least recently used
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<LineId> scratch_;      // Compact() staging, allocated once
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_ARRAY_CACHE_H_
