// Controller-level LRU read cache.
//
// Real arrays carry a battery-backed controller cache; the paper's traces
// already sit below large database/file-system caches, so this cache is kept
// modest and identical for every policy (it affects all schemes equally).
// Reads that fully hit are served at `cache_hit_ms`; writes invalidate any
// overlapping lines (write-through, no allocate).
#ifndef HIBERNATOR_SRC_ARRAY_CACHE_H_
#define HIBERNATOR_SRC_ARRAY_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/util/units.h"

namespace hib {

class LruCache {
 public:
  // `lines` == 0 disables the cache entirely.
  LruCache(std::size_t lines, SectorCount line_sectors);

  // True iff every sector of [lba, lba+count) is resident; touches LRU state.
  bool Lookup(SectorAddr lba, SectorCount count);

  // Inserts all lines covering [lba, lba+count), evicting LRU lines.
  void Insert(SectorAddr lba, SectorCount count);

  // Drops all lines overlapping [lba, lba+count).
  void Invalidate(SectorAddr lba, SectorCount count);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  double HitRate() const;

 private:
  using LineId = std::int64_t;
  using LruList = std::list<LineId>;

  LineId FirstLine(SectorAddr lba) const { return lba / line_sectors_; }
  LineId LastLine(SectorAddr lba, SectorCount count) const {
    return (lba + count - 1) / line_sectors_;
  }

  std::size_t capacity_;
  SectorCount line_sectors_;
  LruList lru_;  // front = most recent
  std::unordered_map<LineId, LruList::iterator> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_ARRAY_CACHE_H_
