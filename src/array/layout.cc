#include "src/array/layout.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace hib {

LayoutManager::LayoutManager(LayoutParams params) : params_(params) {
  HIB_CHECK_GT(params_.num_disks, 0);
  HIB_CHECK_GT(params_.group_width, 0);
  HIB_CHECK_EQ(params_.num_disks % params_.group_width, 0)
      << "group width must divide the disk count";
  HIB_CHECK_GT(params_.num_extents, 0);
  HIB_CHECK_GT(params_.disk_capacity_sectors, params_.extent_sectors);
  HIB_CHECK_EQ(params_.extent_sectors % params_.stripe_unit_sectors, 0)
      << "extents must hold whole stripe units";
  num_groups_ = params_.num_disks / params_.group_width;
  extent_group_.resize(static_cast<std::size_t>(params_.num_extents));
  extents_per_group_.assign(static_cast<std::size_t>(num_groups_), 0);
  ResetRoundRobin();
}

void LayoutManager::ResetRoundRobin() {
  std::fill(extents_per_group_.begin(), extents_per_group_.end(), 0);
  for (std::int64_t e = 0; e < params_.num_extents; ++e) {
    int g = static_cast<int>(e % num_groups_);
    extent_group_[static_cast<std::size_t>(e)] = g;
    ++extents_per_group_[static_cast<std::size_t>(g)];
  }
}

void LayoutManager::SetGroup(std::int64_t extent, int group) {
  HIB_DCHECK(group >= 0 && group < num_groups_) << "group " << group;
  auto idx = static_cast<std::size_t>(extent);
  int old_group = extent_group_[idx];
  if (old_group == group) {
    return;
  }
  --extents_per_group_[static_cast<std::size_t>(old_group)];
  ++extents_per_group_[static_cast<std::size_t>(group)];
  extent_group_[idx] = static_cast<std::int32_t>(group);
}

std::vector<int> LayoutManager::GroupDisks(int group) const {
  std::vector<int> disks(static_cast<std::size_t>(params_.group_width));
  std::iota(disks.begin(), disks.end(), group * params_.group_width);
  return disks;
}

StripeTarget LayoutManager::Map(std::int64_t extent, SectorAddr offset_in_extent) const {
  HIB_DCHECK(offset_in_extent >= 0 && offset_in_extent < params_.extent_sectors)
      << "offset " << offset_in_extent;
  int group = GroupOf(extent);
  int width = params_.group_width;
  StripeTarget t;

  // Physical placement: hash the extent onto the disk surface so different
  // extents land on different cylinders (seek distances stay realistic).
  SectorAddr usable = params_.disk_capacity_sectors - params_.extent_sectors;
  SectorAddr base = static_cast<SectorAddr>(
      (static_cast<unsigned long long>(extent) * 2654435761ULL) %
      static_cast<unsigned long long>(usable));

  if (width == 1) {
    t.data_disk = GroupDisk(group, 0);
    t.parity_disk = -1;
    t.data_sector = base + offset_in_extent;
    return t;
  }

  std::int64_t unit = offset_in_extent / params_.stripe_unit_sectors;
  SectorAddr within_unit = offset_in_extent % params_.stripe_unit_sectors;

  if (width == 2) {
    // Mirroring: data on slot 0, mirror ("parity") on slot 1.
    t.data_disk = GroupDisk(group, static_cast<int>(unit % 2));
    t.parity_disk = GroupDisk(group, static_cast<int>((unit + 1) % 2));
    t.data_sector = base + unit * params_.stripe_unit_sectors + within_unit;
    t.parity_sector = t.data_sector;
    return t;
  }

  // Left-symmetric RAID5 with `width - 1` data units per row.
  int data_per_row = width - 1;
  std::int64_t row = unit / data_per_row;
  int pos = static_cast<int>(unit % data_per_row);
  int parity_slot = static_cast<int>((width - 1 - (row % width)) % width);
  int data_slot = (parity_slot + 1 + pos) % width;
  t.data_disk = GroupDisk(group, data_slot);
  t.parity_disk = GroupDisk(group, parity_slot);
  SectorAddr row_sector = base + row * params_.stripe_unit_sectors;
  t.data_sector = row_sector + within_unit;
  t.parity_sector = row_sector + within_unit;
  return t;
}

TemperatureTracker::TemperatureTracker(std::int64_t num_extents, double decay)
    : decay_(decay),
      temperature_(static_cast<std::size_t>(num_extents), 0.0f),
      window_(static_cast<std::size_t>(num_extents), 0.0f) {}

void TemperatureTracker::Touch(std::int64_t extent, double weight) {
  window_[static_cast<std::size_t>(extent)] += static_cast<float>(weight);
}

void TemperatureTracker::EndEpoch() {
  for (std::size_t i = 0; i < temperature_.size(); ++i) {
    temperature_[i] =
        static_cast<float>(decay_ * static_cast<double>(temperature_[i])) + window_[i];
    window_[i] = 0.0f;
  }
}

std::vector<std::int64_t> TemperatureTracker::SortedHottestFirst() const {
  std::vector<std::int64_t> order(temperature_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](std::int64_t a, std::int64_t b) {
    return TemperatureOf(a) > TemperatureOf(b);
  });
  return order;
}

double TemperatureTracker::TotalTemperature() const {
  double total = 0.0;
  for (std::size_t i = 0; i < temperature_.size(); ++i) {
    total += static_cast<double>(temperature_[i]) + static_cast<double>(window_[i]);
  }
  return total;
}

}  // namespace hib
