// The simulated disk array: controller cache, RAID fan-out, extent
// temperature tracking, and a rate-limited background migration engine.
//
// Logical requests arrive through Submit() (typically replayed from a
// WorkloadSource by the harness).  The controller:
//   1. checks the LRU read cache (hits complete at cache_hit_ms);
//   2. splits the request along extent and stripe-unit boundaries;
//   3. issues the per-disk sub-I/Os — one read per data unit for reads, and
//      the classic RAID5 small-write sequence (read old data + old parity,
//      then write new data + new parity) for writes in parity groups;
//   4. completes the logical request when the last sub-I/O finishes and
//      reports the response time to the stats and to the policy hook.
//
// Policies interact through: per-disk speed/standby control (via disk(i)),
// the read-routing hook (MAID cache disks), the completion hook, and the
// migration queue (Hibernator and PDC data reorganization).
//
// Memory discipline: steady-state dispatch performs zero heap allocations.
// Request contexts come from a generation-stamped SlotPool, sub-I/O plans
// live in inline SmallVector storage, completion callbacks capture only
// [this, PoolHandle] (16 bytes — inside every SSO buffer in the system), and
// background fan-ins (rebuild, migration) use intrusive counters instead of
// make_shared<int>.  simlint HIB017 keeps it that way.
#ifndef HIBERNATOR_SRC_ARRAY_ARRAY_H_
#define HIBERNATOR_SRC_ARRAY_ARRAY_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/array/cache.h"
#include "src/array/layout.h"
#include "src/array/request_pool.h"
#include "src/disk/disk.h"
#include "src/sim/simulator.h"
#include "src/trace/trace.h"
#include "src/util/small_vector.h"
#include "src/util/stats.h"
#include "src/util/thread_annotations.h"

namespace hib {

struct ArrayParams {
  int num_disks = 16;
  int num_cache_disks = 0;  // extra disks addressable only via SubmitRaw (MAID)
  int group_width = 4;      // stripe-group width; 1 disables striping/parity
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SectorCount stripe_unit_sectors = 128;  // 64 KB
  SectorCount extent_sectors = 2048;      // 1 MB
  double data_fraction = 0.6;  // logical data size as a fraction of raw capacity
  std::size_t cache_lines = 2048;         // 128 MB controller cache
  SectorCount cache_line_sectors = 128;   // 64 KB lines
  Duration cache_hit_ms = Ms(0.05);
  double temperature_decay = 0.5;
  int max_concurrent_migrations = 2;
  std::uint64_t seed = 1234;

  // Logical data space (whole extents).
  SectorAddr DataSectors() const;
  std::int64_t NumExtents() const { return DataSectors() / extent_sectors; }
};

struct ArrayStats {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t cache_hits = 0;
  std::int64_t subops = 0;
  RunningStats response_ms;
  PercentileReservoir response_pct{16384, 99};
  std::int64_t migrations_completed = 0;
  std::int64_t migrated_sectors = 0;

  // Failure / recovery accounting.
  std::int64_t degraded_reads = 0;      // reads reconstructed from peers
  std::int64_t parity_only_writes = 0;  // writes absorbed by parity while degraded
  std::int64_t lost_accesses = 0;       // unprotected accesses to a failed disk
  std::int64_t rebuilt_extents = 0;

  // Rolling window (policies read + ResetWindow once per epoch/check).
  Duration window_response_sum_ms;
  std::int64_t window_responses = 0;

  // Cumulative sums backing the performance guarantee.
  Duration total_response_sum_ms;
  std::int64_t total_responses = 0;

  void ResetWindow() {
    window_response_sum_ms = Duration{};
    window_responses = 0;
  }
  Duration WindowMeanResponse() const {
    return window_responses > 0 ? window_response_sum_ms / static_cast<double>(window_responses)
                                : Duration{};
  }
  Duration CumulativeMeanResponse() const {
    return total_responses > 0 ? total_response_sum_ms / static_cast<double>(total_responses)
                               : Duration{};
  }
};

// Shard-local: one controller per shard universe, single-threaded within it.
// Escaping its address (or the Simulator's) past the shard run is an HIB022.
class HIB_SHARD_LOCAL ArrayController {
 public:
  ArrayController(Simulator* sim, ArrayParams params);

  ArrayController(const ArrayController&) = delete;
  ArrayController& operator=(const ArrayController&) = delete;

  // Submits a logical request; `done` (optional) fires with the response time.
  void Submit(const TraceRecord& record, std::function<void(Duration)> done = nullptr);

  // Direct access to a disk's queue (policy-private traffic, e.g. MAID
  // cache-disk fills).  `disk_id` may name a cache disk.
  void SubmitRaw(int disk_id, DiskRequest request);

  // --- topology ----------------------------------------------------------
  int num_data_disks() const { return params_.num_disks; }
  int num_cache_disks() const { return params_.num_cache_disks; }
  int num_disks_total() const { return params_.num_disks + params_.num_cache_disks; }
  Disk& disk(int id) { return *disks_[static_cast<std::size_t>(id)]; }
  const Disk& disk(int id) const { return *disks_[static_cast<std::size_t>(id)]; }
  // Cache disks occupy ids [num_data_disks, num_disks_total).
  int cache_disk_id(int index) const { return params_.num_disks + index; }

  LayoutManager& layout() { return layout_; }
  const LayoutManager& layout() const { return layout_; }
  TemperatureTracker& temperatures() { return temperatures_; }
  LruCache& cache() { return cache_; }
  const ArrayParams& params() const { return params_; }
  Simulator& sim() { return *sim_; }

  // --- policy hooks ------------------------------------------------------
  // May redirect a read sub-op to another disk (return the replacement disk
  // id, or a negative value to keep the intended disk).
  using ReadRouter = std::function<int(std::int64_t extent, int intended_disk)>;
  void set_read_router(ReadRouter router) { read_router_ = std::move(router); }

  using CompletionHook = std::function<void(const TraceRecord&, Duration response_ms)>;
  void set_completion_hook(CompletionHook hook) { completion_hook_ = std::move(hook); }

  // --- migration ---------------------------------------------------------
  // Queues an extent move; executed in the background (idle-priority disk
  // I/O, at most max_concurrent_migrations in flight).
  void RequestMigration(std::int64_t extent, int target_group);
  void PauseMigration(bool paused);
  void CancelQueuedMigrations();
  std::size_t MigrationBacklog() const { return migration_queue_.size() + active_migrations_; }

  // --- failure injection and recovery --------------------------------------
  // Marks a data disk failed: reads of its units are served degraded
  // (reconstructed from the group's surviving disks), writes fall back to
  // parity-only updates, and unprotected (width-1) accesses are counted as
  // lost.  Idempotent.
  void FailDisk(int disk_id);

  // Installs a replacement for a failed disk and starts a background rebuild
  // (reads every extent's surviving shares, rewrites the lost share).  The
  // disk serves demand traffic degraded until the rebuild finishes, then
  // `on_complete` fires and the disk rejoins.  No-op if the disk isn't failed
  // or is already rebuilding.
  void ReplaceDisk(int disk_id, std::function<void()> on_complete = nullptr);

  bool IsDiskFailed(int disk_id) const {
    return disk_failed_[static_cast<std::size_t>(disk_id)];
  }
  bool IsRebuilding(int disk_id) const {
    return disk_rebuilding_[static_cast<std::size_t>(disk_id)];
  }

  // --- metrics -----------------------------------------------------------
  ArrayStats& stats() { return stats_; }
  const ArrayStats& stats() const { return stats_; }

  // Pool occupancy, for tests and leak hunting: every logical request in
  // flight holds exactly one pooled context.
  std::size_t InFlightRequests() const { return request_pool_.live(); }

  // Sum of per-disk metered energy (data + cache disks), through now.
  DiskEnergy TotalEnergy() const;

  // Closes every disk's open power-state span.  Call once at end of run,
  // before exporting a trace.
  void FlushObs();

 private:
  struct PendingWrite {
    int disk_id = -1;
    SectorAddr sector = 0;
    SectorCount count = 0;
  };

  // Tracks one logical request across its sub-I/Os.  For RAID5 small writes
  // the pre-read phase (old data + old parity) runs first; the write phase is
  // stashed in `phase2` and issued when the pre-reads drain.  Pooled: reused
  // across requests, so Reset() clears only what Submit doesn't overwrite.
  struct RequestContext {
    TraceRecord record;
    SimTime arrival;
    int pending = 0;
    std::function<void(Duration)> done;
    std::int64_t obs_id = 0;
    bool cache_hit = false;
    // Four inline slots cover every single-stripe-unit request (RAID5 small
    // write = 2 writes); multi-unit requests spill once, then the grown
    // buffer is reused by the slot's later tenants.
    SmallVector<PendingWrite, 4> phase2;

    void Reset() {
      pending = 0;
      done = nullptr;
      cache_hit = false;
      phase2.clear();
    }
  };

  // One in-flight extent move: phase 1 reads every live source share, phase 2
  // writes every live destination share, then the extent flips groups.
  struct MigrationState {
    std::int64_t extent = 0;
    int target_group = 0;
    int reads_left = 0;
    int writes_left = 0;
    SectorAddr base = 0;
    SectorCount share_dst = 0;
    SimTime started;
  };

  PoolHandle AcquireContext(const TraceRecord& record, std::function<void(Duration)> done);
  // HIB_REQUIRES_LIVE: callers must hold a live (unreleased) handle — either
  // freshly acquired or checked with IsLive() after a completion callback
  // (simlint HIB024 propagates the obligation up the call graph; the
  // annotation argument must name the parameter as the definitions spell it).
  void IssueRead(PoolHandle h, int disk_id, SectorAddr sector, SectorCount count)
      HIB_REQUIRES_LIVE(h);
  void IssueWritePhase(PoolHandle h) HIB_REQUIRES_LIVE(h);
  void FinishLogical(PoolHandle h) HIB_REQUIRES_LIVE(h);
  void PumpMigrations();
  void StartMigration(std::int64_t extent, int target_group);
  void DoMigrationWrites(PoolHandle mig) HIB_REQUIRES_LIVE(mig);
  // Reads the stripe unit degraded: one read per surviving group disk.
  void IssueDegradedRead(PoolHandle h, int group, int failed_disk, SectorAddr sector,
                         SectorCount count) HIB_REQUIRES_LIVE(h);
  void RebuildNextExtent(int disk_id);
  void WriteRebuildShare(int disk_id);
  void FinishRebuild(int disk_id);

  Simulator* sim_;
  ArrayParams params_;
  std::vector<std::unique_ptr<Disk>> disks_;
  LayoutManager layout_;
  TemperatureTracker temperatures_;
  LruCache cache_;
  ReadRouter read_router_;
  CompletionHook completion_hook_;
  ArrayStats stats_;

  SlotPool<RequestContext> request_pool_;
  SlotPool<MigrationState, 16> migration_pool_;

  std::deque<std::pair<std::int64_t, int>> migration_queue_;
  int active_migrations_ = 0;
  bool migration_paused_ = false;

  std::vector<bool> disk_failed_;
  std::vector<bool> disk_rebuilding_;
  // Per-disk rebuild progress, keyed by disk id; ordered so concurrent
  // rebuilds are always walked in disk order (HIB011).
  struct RebuildState {
    std::vector<std::int64_t> worklist;
    std::size_t cursor = 0;  // next index into worklist to copy
    std::function<void()> on_complete;
    SimTime started;         // for the rebuild trace span
    int reads_left = 0;      // fan-in for the current extent's source reads
    SectorAddr base = 0;     // current extent's base sector
    SectorCount share = 0;   // per-disk share of the current extent
  };
  std::map<int, RebuildState> rebuilds_;

  // Observability instruments (resolved once; bumped via the HIB_* macros).
  Counter* obs_reads_;
  Counter* obs_writes_;
  Counter* obs_cache_hits_;
  Counter* obs_subops_;
  Counter* obs_migrations_;
  Counter* obs_rebuilt_extents_;
  LogLinearHistogram* obs_response_ms_;
  std::int64_t obs_req_seq_ = 0;  // logical-request trace id counter
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_ARRAY_ARRAY_H_
