// Generation-stamped object pool for per-request controller state.
//
// The array controller used to allocate a shared_ptr'd context per logical
// request plus a make_shared<int> fan-in counter per background fan-out
// (rebuild, migration).  At fleet scale that is three heap round-trips and
// two atomic refcounts on every request — the dominant cost of dispatch.
// SlotPool replaces all of it:
//
//   - Objects live in fixed-size chunks whose storage never moves, so a
//     reference obtained from Get() stays valid even while the pool grows
//     (completions may submit new work reentrantly).
//   - Acquire/Release are O(1) free-list pushes; the pooled object is
//     *reused*, not destroyed, so internal buffers (a spilled SmallVector,
//     a bound std::function) keep their capacity across requests.
//   - Handles are {index, generation} pairs.  Release bumps the slot's
//     generation, so a stale handle held by an already-cancelled callback
//     can never alias the slot's next tenant (the classic ABA hazard).
//     Handles are 8 bytes and trivially copyable: a [this, handle] capture
//     fits every callback SSO buffer in the system, which is what makes the
//     dispatch path allocation-free end to end.
//
// Single-threaded by design, like everything inside one Simulator universe.
#ifndef HIBERNATOR_SRC_ARRAY_REQUEST_POOL_H_
#define HIBERNATOR_SRC_ARRAY_REQUEST_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/check.h"
#include "src/util/thread_annotations.h"

namespace hib {

// Opaque ticket for a pooled object.  Value-semantic, 8 bytes.
struct PoolHandle {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  friend bool operator==(PoolHandle a, PoolHandle b) {
    return a.index == b.index && a.generation == b.generation;
  }
  friend bool operator!=(PoolHandle a, PoolHandle b) { return !(a == b); }
};

// Shard-local: pools live inside one controller, inside one shard universe.
template <typename T, std::size_t ChunkSize = 256>
class HIB_SHARD_LOCAL SlotPool {
  static_assert((ChunkSize & (ChunkSize - 1)) == 0, "chunk size must be a power of two");

 public:
  SlotPool() = default;
  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  // Hands out a free slot, growing by one chunk when the free list is dry.
  // The object keeps whatever state its previous tenant left; callers reset
  // the fields they use (cheaper than destroy+construct, and it preserves
  // grown internal buffers).
  PoolHandle Acquire() {
    if (free_.empty()) {
      AddChunk();
    }
    std::uint32_t index = free_.back();
    free_.pop_back();
    Slot& slot = SlotRef(index);
    HIB_DCHECK(!slot.live) << "free-list handed out a live slot";
    slot.live = true;
    ++live_;
    return PoolHandle{index, slot.generation};
  }

  // Resolves a handle.  The reference stays valid across pool growth (chunked
  // storage) but not across Release of the same handle.
  T& Get(PoolHandle handle) HIB_REQUIRES_LIVE(handle) {
    Slot& slot = SlotRef(handle.index);
    HIB_DCHECK(slot.live && slot.generation == handle.generation)
        << "stale pool handle (slot was released and possibly reused)";
    return slot.value;
  }

  // True iff the handle still names the object it was acquired for.
  bool IsLive(PoolHandle handle) const {
    if (handle.index >= size_) {
      return false;
    }
    const Slot& slot = SlotRef(handle.index);
    return slot.live && slot.generation == handle.generation;
  }

  // Returns the slot to the free list and invalidates every outstanding
  // handle to it by bumping the generation.
  void Release(PoolHandle handle) HIB_REQUIRES_LIVE(handle) {
    Slot& slot = SlotRef(handle.index);
    HIB_CHECK(slot.live && slot.generation == handle.generation)
        << "releasing a stale or double-released pool handle";
    slot.live = false;
    ++slot.generation;  // unsigned wraparound is fine: equality is all we test
    free_.push_back(handle.index);
    --live_;
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return size_; }

  // Pre-grows the pool to at least `objects` slots.
  void Reserve(std::size_t objects) {
    while (size_ < objects) {
      AddChunk();
    }
  }

 private:
  struct Slot {
    T value{};
    std::uint32_t generation = 0;
    bool live = false;
  };

  Slot& SlotRef(std::uint32_t index) {
    HIB_DCHECK_LT(index, size_);
    return chunks_[index / ChunkSize][index % ChunkSize];
  }
  const Slot& SlotRef(std::uint32_t index) const {
    HIB_DCHECK_LT(index, size_);
    return chunks_[index / ChunkSize][index % ChunkSize];
  }

  void AddChunk() {
    HIB_CHECK_LT(size_, kMaxSlots) << "SlotPool exhausted (2^32 - chunk live objects)";
    // Amortized one-chunk growth: this is the only allocation the pool ever
    // makes, and Reserve() lets callers front-load it at setup.
    chunks_.push_back(std::make_unique<Slot[]>(ChunkSize));  // NOLINT(HIB018)
    std::uint32_t base = static_cast<std::uint32_t>(size_);
    size_ += ChunkSize;
    // The free list can hold at most one entry per slot; reserving the full
    // capacity here means the push_backs below — and the one in Release() on
    // the dispatch path — can never reallocate.
    free_.reserve(size_);
    // Newest indices go to the back of the LIFO free list, so low indices are
    // handed out first and reuse stays cache-dense under steady load.
    for (std::uint32_t i = ChunkSize; i > 0; --i) {
      free_.push_back(base + i - 1);
    }
  }

  static constexpr std::size_t kMaxSlots = (std::size_t{1} << 32) - ChunkSize;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_ARRAY_REQUEST_POOL_H_
