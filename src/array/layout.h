// Extent-based data layout over fixed RAID groups.
//
// The array's disks are statically partitioned into stripe groups of
// `group_width` disks (width 1 = no striping/parity, as PDC and MAID assume;
// width >= 3 = rotating-parity RAID5).  The logical address space is divided
// into fixed-size extents; each extent lives entirely within one group and is
// striped across that group's disks.  Moving an extent between groups is the
// unit of data migration.
//
// This is the layout Hibernator's multi-tier scheme builds on: a *tier* is a
// set of groups running at the same RPM, so changing a group's speed moves no
// data, and only temperature-driven promotion/demotion of extents between
// groups costs I/O.
#ifndef HIBERNATOR_SRC_ARRAY_LAYOUT_H_
#define HIBERNATOR_SRC_ARRAY_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace hib {

struct LayoutParams {
  int num_disks = 16;
  int group_width = 4;               // disks per stripe group; num_disks % width == 0
  std::int64_t num_extents = 0;      // required
  SectorCount extent_sectors = 2048;  // 1 MB extents
  SectorCount stripe_unit_sectors = 128;  // 64 KB stripe unit
  SectorAddr disk_capacity_sectors = 0;   // required (physical placement hash)
};

// Where one stripe-unit-sized piece of an extent lands.
struct StripeTarget {
  int data_disk = -1;
  int parity_disk = -1;  // -1 when the group has no parity
  SectorAddr data_sector = 0;
  SectorAddr parity_sector = 0;
};

class LayoutManager {
 public:
  explicit LayoutManager(LayoutParams params);

  int num_groups() const { return num_groups_; }
  int group_width() const { return params_.group_width; }
  std::int64_t num_extents() const { return params_.num_extents; }
  SectorCount extent_sectors() const { return params_.extent_sectors; }

  int GroupOf(std::int64_t extent) const {
    return extent_group_[static_cast<std::size_t>(extent)];
  }

  // Instantly rebinds an extent to a group.  Callers that model migration
  // cost (ArrayController::MigrateExtent) issue the I/O first and flip the
  // mapping on completion.
  void SetGroup(std::int64_t extent, int group);

  // Disk ids belonging to a group (a contiguous slice of the array).
  std::vector<int> GroupDisks(int group) const;
  int GroupDisk(int group, int slot) const { return group * params_.group_width + slot; }

  // Maps (extent, byte offset within extent expressed in sectors) to the
  // data/parity disks and physical sectors for the stripe unit containing
  // that offset.
  StripeTarget Map(std::int64_t extent, SectorAddr offset_in_extent) const;

  // Live count of extents per group (maintained incrementally).
  const std::vector<std::int64_t>& extents_per_group() const { return extents_per_group_; }

  // Spreads all extents round-robin across groups (the initial layout).
  void ResetRoundRobin();

 private:
  LayoutParams params_;
  int num_groups_;
  std::vector<std::int32_t> extent_group_;
  std::vector<std::int64_t> extents_per_group_;
};

// Per-extent access-frequency tracking with exponential decay across epochs;
// this is the "temperature" that decides which extents belong on fast disks.
class TemperatureTracker {
 public:
  TemperatureTracker(std::int64_t num_extents, double decay = 0.5);

  void Touch(std::int64_t extent, double weight = 1.0);

  // Folds the current window into the decayed temperature and clears it.
  void EndEpoch();

  double TemperatureOf(std::int64_t extent) const {
    auto i = static_cast<std::size_t>(extent);
    return temperature_[i] + window_[i];
  }

  // Extent ids sorted hottest-first.  O(n log n); called once per epoch.
  std::vector<std::int64_t> SortedHottestFirst() const;

  // Sum of all temperatures (including the live window).
  double TotalTemperature() const;

  std::int64_t num_extents() const { return static_cast<std::int64_t>(temperature_.size()); }

 private:
  double decay_;
  std::vector<float> temperature_;
  std::vector<float> window_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_ARRAY_LAYOUT_H_
