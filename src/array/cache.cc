#include "src/array/cache.h"

#include "src/util/check.h"

namespace hib {

namespace {

std::size_t NextPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

LruCache::LruCache(std::size_t lines, SectorCount line_sectors)
    : capacity_(lines), line_sectors_(line_sectors > 0 ? line_sectors : 1) {
  if (capacity_ == 0) {
    return;
  }
  HIB_CHECK_LT(capacity_, std::size_t{1} << 31) << "cache line count overflows slot indices";
  // 2x headroom keeps the live load factor <= 50%; the whole table is
  // allocated here, so no insert ever grows or rehashes it.
  std::size_t slots = NextPow2(capacity_ * 2 < 16 ? 16 : capacity_ * 2);
  table_.assign(slots, Slot{});
  mask_ = static_cast<std::uint32_t>(slots - 1);
  scratch_.reserve(capacity_);
}

std::uint32_t LruCache::Bucket(LineId line) const {
  // splitmix64 finalizer: line ids are dense and sequential, so the table
  // needs real avalanche to avoid clustering whole extents into one run.
  std::uint64_t x = static_cast<std::uint64_t>(line);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x) & mask_;
}

std::uint32_t LruCache::FindSlot(LineId line) const {
  std::uint32_t i = Bucket(line);
  for (;;) {
    const Slot& slot = table_[i];
    if (slot.state == kEmpty) {
      return kNil;
    }
    if (slot.state == kLive && slot.line == line) {
      return i;
    }
    i = (i + 1) & mask_;
  }
}

void LruCache::LinkFront(std::uint32_t s) {
  Slot& slot = table_[s];
  slot.prev = kNil;
  slot.next = head_;
  if (head_ != kNil) {
    table_[head_].prev = s;
  }
  head_ = s;
  if (tail_ == kNil) {
    tail_ = s;
  }
}

void LruCache::Unlink(std::uint32_t s) {
  Slot& slot = table_[s];
  if (slot.prev != kNil) {
    table_[slot.prev].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNil) {
    table_[slot.next].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
}

void LruCache::MoveToFront(std::uint32_t s) {
  if (head_ == s) {
    return;
  }
  Unlink(s);
  LinkFront(s);
}

void LruCache::EvictTail() {
  HIB_DCHECK(tail_ != kNil) << "evicting from an empty cache";
  std::uint32_t s = tail_;
  Unlink(s);
  table_[s].state = kTombstone;
  --size_;
  ++tombstones_;
}

void LruCache::InsertFresh(LineId line) {
  // Reuse the first tombstone on the probe path when there is one; otherwise
  // claim the terminating empty slot.
  std::uint32_t i = Bucket(line);
  std::uint32_t grave = kNil;
  for (;;) {
    Slot& slot = table_[i];
    if (slot.state == kEmpty) {
      break;
    }
    if (slot.state == kTombstone && grave == kNil) {
      grave = i;
    }
    i = (i + 1) & mask_;
  }
  if (grave != kNil) {
    i = grave;
    --tombstones_;
  }
  Slot& slot = table_[i];
  slot.line = line;
  slot.state = kLive;
  ++size_;
  LinkFront(i);
  // Tombstones only accumulate past this bound when Invalidate churns lines
  // without reusing their probe paths; compacting at 1/4 of the table keeps
  // the worst-case probe short while staying O(1) amortized per erase.
  if (tombstones_ > table_.size() / 4) {
    Compact();
  }
}

void LruCache::Compact() {
  scratch_.clear();
  for (std::uint32_t s = head_; s != kNil; s = table_[s].next) {
    scratch_.push_back(table_[s].line);
  }
  for (Slot& slot : table_) {
    slot = Slot{};
  }
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
  tombstones_ = 0;
  // Reinsert in MRU->LRU order, appending at the tail, so the recency order
  // is reproduced exactly.
  for (LineId line : scratch_) {
    std::uint32_t i = Bucket(line);
    while (table_[i].state != kEmpty) {
      i = (i + 1) & mask_;
    }
    Slot& slot = table_[i];
    slot.line = line;
    slot.state = kLive;
    slot.prev = tail_;
    slot.next = kNil;
    if (tail_ != kNil) {
      table_[tail_].next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
    ++size_;
  }
}

bool LruCache::Lookup(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    ++misses_;
    return false;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  // All lines must be resident for the request to be a hit.
  for (LineId line = first; line <= last; ++line) {
    if (FindSlot(line) == kNil) {
      ++misses_;
      return false;
    }
  }
  for (LineId line = first; line <= last; ++line) {
    MoveToFront(FindSlot(line));
  }
  ++hits_;
  return true;
}

void LruCache::Insert(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    return;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  for (LineId line = first; line <= last; ++line) {
    std::uint32_t s = FindSlot(line);
    if (s != kNil) {
      MoveToFront(s);
      continue;
    }
    while (size_ >= capacity_) {
      EvictTail();
    }
    InsertFresh(line);
  }
}

void LruCache::Invalidate(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    return;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  for (LineId line = first; line <= last; ++line) {
    std::uint32_t s = FindSlot(line);
    if (s != kNil) {
      Unlink(s);
      table_[s].state = kTombstone;
      --size_;
      ++tombstones_;
    }
  }
}

double LruCache::HitRate() const {
  std::int64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

}  // namespace hib
