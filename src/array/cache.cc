#include "src/array/cache.h"

namespace hib {

LruCache::LruCache(std::size_t lines, SectorCount line_sectors)
    : capacity_(lines), line_sectors_(line_sectors > 0 ? line_sectors : 1) {}

bool LruCache::Lookup(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    ++misses_;
    return false;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  // All lines must be resident for the request to be a hit.
  for (LineId line = first; line <= last; ++line) {
    if (map_.find(line) == map_.end()) {
      ++misses_;
      return false;
    }
  }
  for (LineId line = first; line <= last; ++line) {
    auto it = map_.find(line);
    lru_.splice(lru_.begin(), lru_, it->second);
  }
  ++hits_;
  return true;
}

void LruCache::Insert(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    return;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  for (LineId line = first; line <= last; ++line) {
    auto it = map_.find(line);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      continue;
    }
    while (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(line);
    map_[line] = lru_.begin();
  }
}

void LruCache::Invalidate(SectorAddr lba, SectorCount count) {
  if (capacity_ == 0 || count <= 0) {
    return;
  }
  LineId first = FirstLine(lba);
  LineId last = LastLine(lba, count);
  for (LineId line = first; line <= last; ++line) {
    auto it = map_.find(line);
    if (it != map_.end()) {
      lru_.erase(it->second);
      map_.erase(it);
    }
  }
}

double LruCache::HitRate() const {
  std::int64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

}  // namespace hib
