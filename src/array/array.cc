#include "src/array/array.h"

#include <algorithm>

#include "src/util/log.h"

#include "src/util/check.h"

namespace hib {

SectorAddr ArrayParams::DataSectors() const {
  double raw = static_cast<double>(num_disks) * static_cast<double>(disk.TotalSectors());
  auto sectors = static_cast<SectorAddr>(raw * data_fraction);
  return (sectors / extent_sectors) * extent_sectors;
}

namespace {
LayoutParams MakeLayoutParams(const ArrayParams& p) {
  LayoutParams lp;
  lp.num_disks = p.num_disks;
  lp.group_width = p.group_width;
  lp.num_extents = p.NumExtents();
  lp.extent_sectors = p.extent_sectors;
  lp.stripe_unit_sectors = p.stripe_unit_sectors;
  lp.disk_capacity_sectors = p.disk.TotalSectors();
  return lp;
}
}  // namespace

ArrayController::ArrayController(Simulator* sim, ArrayParams params)
    : sim_(sim),
      params_(params),
      layout_(MakeLayoutParams(params)),
      temperatures_(params.NumExtents(), params.temperature_decay),
      cache_(params.cache_lines, params.cache_line_sectors) {
  HIB_CHECK_EQ(params_.num_disks % params_.group_width, 0)
      << "group width must divide the data-disk count";
  int total = num_disks_total();
  disk_failed_.assign(static_cast<std::size_t>(total), false);
  disk_rebuilding_.assign(static_cast<std::size_t>(total), false);
  disks_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    disks_.push_back(std::make_unique<Disk>(sim_, params_.disk, i,
                                            params_.seed + static_cast<std::uint64_t>(i)));
  }
  MetricsRegistry& metrics = sim_->obs().metrics;
  obs_reads_ = &metrics.GetCounter("array.reads");
  obs_writes_ = &metrics.GetCounter("array.writes");
  obs_cache_hits_ = &metrics.GetCounter("array.cache_hits");
  obs_subops_ = &metrics.GetCounter("array.subops");
  obs_migrations_ = &metrics.GetCounter("array.migrations");
  obs_rebuilt_extents_ = &metrics.GetCounter("array.rebuilt_extents");
  obs_response_ms_ = &metrics.GetHistogram("array.response_ms");
}

void ArrayController::FlushObs() {
  for (auto& d : disks_) {
    d->FlushObs();
  }
}

PoolHandle ArrayController::AcquireContext(const TraceRecord& record,
                                           std::function<void(Duration)> done) {
  PoolHandle h = request_pool_.Acquire();
  RequestContext& ctx = request_pool_.Get(h);
  ctx.Reset();
  ctx.record = record;
  ctx.arrival = sim_->Now();
  ctx.done = std::move(done);
  ctx.obs_id = obs_req_seq_++;
  return h;
}

void ArrayController::Submit(const TraceRecord& record, std::function<void(Duration)> done) {
  HIB_DCHECK(record.lba >= 0 && record.count > 0) << "malformed trace record";
  HIB_DCHECK_LE(record.lba + record.count, params_.DataSectors())
      << "trace record beyond the logical address space";

  if (record.is_write) {
    ++stats_.writes;
    HIB_COUNTER_INC(obs_writes_);
  } else {
    ++stats_.reads;
    HIB_COUNTER_INC(obs_reads_);
  }

  // Temperature accounting per touched extent.
  for (SectorAddr addr = record.lba; addr < record.lba + record.count;) {
    std::int64_t extent = addr / params_.extent_sectors;
    SectorAddr extent_end = (extent + 1) * params_.extent_sectors;
    temperatures_.Touch(extent);
    addr = std::min<SectorAddr>(extent_end, record.lba + record.count);
  }

  if (!record.is_write && cache_.Lookup(record.lba, record.count)) {
    ++stats_.cache_hits;
    HIB_COUNTER_INC(obs_cache_hits_);
    PoolHandle hit = AcquireContext(record, std::move(done));
    RequestContext& ctx = request_pool_.Get(hit);
    ctx.pending = 1;
    ctx.cache_hit = true;
    sim_->ScheduleIn(params_.cache_hit_ms, [this, hit] {
      if (--request_pool_.Get(hit).pending == 0) {
        FinishLogical(hit);
      }
    });
    return;
  }

  if (record.is_write) {
    // Keep the read cache coherent: drop overlapping lines immediately.
    cache_.Invalidate(record.lba, record.count);
  }

  PoolHandle h = AcquireContext(record, std::move(done));
  RequestContext& ctx = request_pool_.Get(h);

  // Split into stripe-unit-aligned pieces and plan the sub-I/Os.  The
  // pending counter starts at 1 so completions racing the planning loop
  // cannot finish the request early; the guard is released at the end.
  ctx.pending = 1;
  SectorAddr addr = record.lba;
  SectorCount remaining = record.count;
  while (remaining > 0) {
    std::int64_t extent = addr / params_.extent_sectors;
    SectorAddr offset = addr % params_.extent_sectors;
    SectorAddr unit_end =
        (offset / params_.stripe_unit_sectors + 1) * params_.stripe_unit_sectors;
    SectorCount len = std::min<SectorCount>(remaining, unit_end - offset);
    len = std::min<SectorCount>(len, params_.extent_sectors - offset);
    StripeTarget target = layout_.Map(extent, offset);

    int group = layout_.GroupOf(extent);
    bool data_failed = disk_failed_[static_cast<std::size_t>(target.data_disk)];
    bool parity_failed =
        target.parity_disk >= 0 && disk_failed_[static_cast<std::size_t>(target.parity_disk)];

    if (!record.is_write) {
      int disk_id = target.data_disk;
      if (read_router_) {
        int routed = read_router_(extent, disk_id);
        if (routed >= 0 && routed < num_disks_total() &&
            !disk_failed_[static_cast<std::size_t>(routed)]) {
          disk_id = routed;
        }
      }
      if (!disk_failed_[static_cast<std::size_t>(disk_id)]) {
        ++ctx.pending;
        IssueRead(h, disk_id, target.data_sector, len);
      } else if (layout_.group_width() == 1) {
        ++stats_.lost_accesses;  // no redundancy to reconstruct from
      } else if (layout_.group_width() == 2) {
        if (parity_failed) {
          ++stats_.lost_accesses;
        } else {
          ++stats_.degraded_reads;
          ++ctx.pending;
          IssueRead(h, target.parity_disk, target.parity_sector, len);
        }
      } else {
        IssueDegradedRead(h, group, disk_id, target.data_sector, len);
      }
    } else if (target.parity_disk < 0) {
      // Unprotected layout (group width 1): plain write.
      if (data_failed) {
        ++stats_.lost_accesses;
      } else {
        ctx.phase2.push_back({target.data_disk, target.data_sector, len});
      }
    } else if (layout_.group_width() == 2) {
      // Mirroring: write the surviving copies, no pre-read.
      if (!data_failed) {
        ctx.phase2.push_back({target.data_disk, target.data_sector, len});
      }
      if (!parity_failed) {
        ctx.phase2.push_back({target.parity_disk, target.parity_sector, len});
      }
      if (data_failed && parity_failed) {
        ++stats_.lost_accesses;
      }
    } else if (data_failed && parity_failed) {
      ++stats_.lost_accesses;  // double failure in one stripe
    } else if (data_failed) {
      // Reconstruct-write: the lost data unit is absorbed into parity.  Read
      // the row's surviving data units, then write the new parity.
      ++stats_.parity_only_writes;
      for (int slot = 0; slot < layout_.group_width(); ++slot) {
        int peer = layout_.GroupDisk(group, slot);
        if (peer == target.data_disk || peer == target.parity_disk ||
            disk_failed_[static_cast<std::size_t>(peer)]) {
          continue;
        }
        ++ctx.pending;
        IssueRead(h, peer, target.data_sector, len);
      }
      ctx.phase2.push_back({target.parity_disk, target.parity_sector, len});
    } else if (parity_failed) {
      // Parity lost: the data write proceeds without parity maintenance.
      ctx.phase2.push_back({target.data_disk, target.data_sector, len});
    } else {
      // RAID5 small write: pre-read old data and old parity...
      ctx.pending += 2;
      IssueRead(h, target.data_disk, target.data_sector, len);
      IssueRead(h, target.parity_disk, target.parity_sector, len);
      // ...then write new data and new parity.
      ctx.phase2.push_back({target.data_disk, target.data_sector, len});
      ctx.phase2.push_back({target.parity_disk, target.parity_sector, len});
    }

    addr += len;
    remaining -= len;
  }

  // Release the planning guard.
  if (--ctx.pending == 0) {
    IssueWritePhase(h);
  }
}

void ArrayController::IssueRead(PoolHandle h, int disk_id, SectorAddr sector,
                                SectorCount count) {
  ++stats_.subops;
  HIB_COUNTER_INC(obs_subops_);
  DiskRequest req;
  req.sector = sector;
  req.count = count;
  req.is_write = false;
  // [this, handle] is 16 trivially-copyable bytes: fits std::function's SSO
  // buffer, so this closure never touches the heap.
  req.on_complete = [this, h](SimTime) {
    if (--request_pool_.Get(h).pending == 0) {
      IssueWritePhase(h);
    }
  };
  disks_[static_cast<std::size_t>(disk_id)]->Submit(std::move(req));
}

void ArrayController::IssueWritePhase(PoolHandle h) {
  RequestContext& ctx = request_pool_.Get(h);
  if (ctx.phase2.empty()) {
    FinishLogical(h);
    return;
  }
  ctx.pending = static_cast<int>(ctx.phase2.size());
  // Disk completions only ever fire from the event loop, never inside
  // Submit(), so iterating the plan in place is safe; clear() afterwards
  // keeps any spilled capacity for the slot's next tenant.
  for (const PendingWrite& w : ctx.phase2) {
    ++stats_.subops;
    HIB_COUNTER_INC(obs_subops_);
    DiskRequest req;
    req.sector = w.sector;
    req.count = w.count;
    req.is_write = true;
    req.on_complete = [this, h](SimTime) {
      if (--request_pool_.Get(h).pending == 0) {
        FinishLogical(h);
      }
    };
    disks_[static_cast<std::size_t>(w.disk_id)]->Submit(std::move(req));
  }
  ctx.phase2.clear();
}

void ArrayController::FinishLogical(PoolHandle h) {
  RequestContext& ctx = request_pool_.Get(h);
  Duration response = sim_->Now() - ctx.arrival;
  HIB_HIST_RECORD(obs_response_ms_, response / Ms(1.0));
  HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kRequest, kTrackArray,
                 ctx.record.is_write ? "write" : (ctx.cache_hit ? "read(hit)" : "read"),
                 ctx.arrival, sim_->Now(), ctx.obs_id,
                 static_cast<double>(ctx.record.count));
  stats_.response_ms.Add(response);
  stats_.response_pct.Add(response);
  stats_.window_response_sum_ms += response;
  ++stats_.window_responses;
  stats_.total_response_sum_ms += response;
  ++stats_.total_responses;

  // Copy out what outlives the slot, release, then run side effects: the
  // completion hook or `done` may Submit() reentrantly and reuse this slot.
  TraceRecord record = ctx.record;
  std::function<void(Duration)> done = std::move(ctx.done);
  request_pool_.Release(h);

  if (!record.is_write) {
    cache_.Insert(record.lba, record.count);
  }
  if (completion_hook_) {
    completion_hook_(record, response);
  }
  if (done) {
    done(response);
  }
}

void ArrayController::SubmitRaw(int disk_id, DiskRequest request) {
  HIB_CHECK(disk_id >= 0 && disk_id < num_disks_total()) << "disk id " << disk_id;
  ++stats_.subops;
  HIB_COUNTER_INC(obs_subops_);
  disks_[static_cast<std::size_t>(disk_id)]->Submit(std::move(request));
}

DiskEnergy ArrayController::TotalEnergy() const {
  DiskEnergy total;
  for (const auto& d : disks_) {
    DiskEnergy e = d->MeteredEnergy();
    total.active += e.active;
    total.idle += e.idle;
    total.standby += e.standby;
    total.transition += e.transition;
    total.active_ms += e.active_ms;
    total.idle_ms += e.idle_ms;
    total.standby_ms += e.standby_ms;
    total.transition_ms += e.transition_ms;
  }
  return total;
}

void ArrayController::IssueDegradedRead(PoolHandle h, int group, int failed_disk,
                                        SectorAddr sector, SectorCount count) {
  // Reconstruction needs every surviving unit of the row: one read per
  // surviving disk in the group.
  int issued = 0;
  for (int slot = 0; slot < layout_.group_width(); ++slot) {
    int peer = layout_.GroupDisk(group, slot);
    if (peer == failed_disk) {
      continue;
    }
    if (disk_failed_[static_cast<std::size_t>(peer)]) {
      // Second failure in the group: the data is unrecoverable.
      ++stats_.lost_accesses;
      return;
    }
    ++issued;
  }
  ++stats_.degraded_reads;
  request_pool_.Get(h).pending += issued;
  for (int slot = 0; slot < layout_.group_width(); ++slot) {
    int peer = layout_.GroupDisk(group, slot);
    if (peer != failed_disk) {
      IssueRead(h, peer, sector, count);
    }
  }
}

void ArrayController::FailDisk(int disk_id) {
  HIB_CHECK(disk_id >= 0 && disk_id < num_disks_total()) << "disk id " << disk_id;
  disk_failed_[static_cast<std::size_t>(disk_id)] = true;
}

void ArrayController::ReplaceDisk(int disk_id, std::function<void()> on_complete) {
  HIB_CHECK(disk_id >= 0 && disk_id < num_disks_total()) << "disk id " << disk_id;
  if (!disk_failed_[static_cast<std::size_t>(disk_id)] ||
      disk_rebuilding_[static_cast<std::size_t>(disk_id)]) {
    return;
  }
  if (disk_id >= num_data_disks()) {
    // Cache disks hold no primary data: replacement is immediate.
    disk_failed_[static_cast<std::size_t>(disk_id)] = false;
    if (on_complete) {
      on_complete();
    }
    return;
  }
  disk_rebuilding_[static_cast<std::size_t>(disk_id)] = true;
  int group = disk_id / layout_.group_width();
  std::vector<std::int64_t> worklist;
  for (std::int64_t e = 0; e < layout_.num_extents(); ++e) {
    if (layout_.GroupOf(e) == group) {
      worklist.push_back(e);
    }
  }
  RebuildState& rebuild = rebuilds_[disk_id];
  rebuild.worklist = std::move(worklist);
  rebuild.cursor = 0;
  rebuild.on_complete = std::move(on_complete);
  rebuild.started = sim_->Now();
  RebuildNextExtent(disk_id);
}

void ArrayController::RebuildNextExtent(int disk_id) {
  RebuildState& rebuild = rebuilds_[disk_id];
  std::vector<std::int64_t>& worklist = rebuild.worklist;
  std::size_t& cursor = rebuild.cursor;
  int group = disk_id / layout_.group_width();
  // Skip extents that migrated away since the worklist was built.
  while (cursor < worklist.size() && layout_.GroupOf(worklist[cursor]) != group) {
    ++cursor;
  }
  if (cursor >= worklist.size()) {
    FinishRebuild(disk_id);
    return;
  }
  std::int64_t extent = worklist[cursor];
  ++cursor;

  rebuild.share = params_.extent_sectors / layout_.group_width();
  rebuild.base = layout_.Map(extent, 0).data_sector;
  // Fan-in for this extent's source reads lives in the rebuild state itself
  // (one extent in flight per rebuilding disk), not a heap counter.
  rebuild.reads_left = 0;
  for (int slot = 0; slot < layout_.group_width(); ++slot) {
    int peer = layout_.GroupDisk(group, slot);
    if (peer != disk_id && !disk_failed_[static_cast<std::size_t>(peer)]) {
      ++rebuild.reads_left;
    }
  }
  if (rebuild.reads_left == 0) {
    // Nothing to reconstruct from; count the extent and move on.
    ++stats_.rebuilt_extents;
    HIB_COUNTER_INC(obs_rebuilt_extents_);
    RebuildNextExtent(disk_id);
    return;
  }
  int i = 0;
  for (int slot = 0; slot < layout_.group_width(); ++slot) {
    int peer = layout_.GroupDisk(group, slot);
    if (peer == disk_id || disk_failed_[static_cast<std::size_t>(peer)]) {
      continue;
    }
    DiskRequest req;
    req.sector = rebuild.base + static_cast<SectorAddr>(i) * rebuild.share;
    req.count = rebuild.share;
    req.is_write = false;
    req.background = true;
    req.on_complete = [this, disk_id](SimTime) {
      auto it = rebuilds_.find(disk_id);
      HIB_DCHECK(it != rebuilds_.end()) << "rebuild read completed after rebuild finished";
      if (--it->second.reads_left == 0) {
        WriteRebuildShare(disk_id);
      }
    };
    SubmitRaw(peer, std::move(req));
    ++i;
  }
}

void ArrayController::WriteRebuildShare(int disk_id) {
  RebuildState& rebuild = rebuilds_[disk_id];
  DiskRequest req;
  req.sector = rebuild.base;
  req.count = rebuild.share;
  req.is_write = true;
  req.background = true;
  req.on_complete = [this, disk_id](SimTime) {
    ++stats_.rebuilt_extents;
    HIB_COUNTER_INC(obs_rebuilt_extents_);
    RebuildNextExtent(disk_id);
  };
  SubmitRaw(disk_id, std::move(req));
}

void ArrayController::FinishRebuild(int disk_id) {
  std::function<void()> fn;
  auto it = rebuilds_.find(disk_id);
  if (it != rebuilds_.end()) {
    HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kRebuild, disk_id, "rebuild",
                   it->second.started, sim_->Now(), disk_id, 0.0);
    fn = std::move(it->second.on_complete);
    rebuilds_.erase(it);
  }
  disk_failed_[static_cast<std::size_t>(disk_id)] = false;
  disk_rebuilding_[static_cast<std::size_t>(disk_id)] = false;
  if (fn) {
    fn();
  }
}

// ----------------------------------------------------------- migration -----

void ArrayController::RequestMigration(std::int64_t extent, int target_group) {
  HIB_CHECK(extent >= 0 && extent < layout_.num_extents()) << "extent " << extent;
  HIB_CHECK(target_group >= 0 && target_group < layout_.num_groups())
      << "group " << target_group;
  migration_queue_.emplace_back(extent, target_group);
  PumpMigrations();
}

void ArrayController::PauseMigration(bool paused) {
  migration_paused_ = paused;
  if (!paused) {
    PumpMigrations();
  }
}

void ArrayController::CancelQueuedMigrations() { migration_queue_.clear(); }

void ArrayController::PumpMigrations() {
  while (!migration_paused_ && active_migrations_ < params_.max_concurrent_migrations &&
         !migration_queue_.empty()) {
    auto [extent, target] = migration_queue_.front();
    migration_queue_.pop_front();
    if (layout_.GroupOf(extent) == target) {
      continue;  // already there (duplicate request or racing plan)
    }
    StartMigration(extent, target);
  }
}

void ArrayController::StartMigration(std::int64_t extent, int target_group) {
  ++active_migrations_;
  int source_group = layout_.GroupOf(extent);
  std::vector<int> src_disks = layout_.GroupDisks(source_group);
  std::vector<int> dst_disks = layout_.GroupDisks(target_group);
  SectorCount share_src =
      params_.extent_sectors / static_cast<SectorCount>(src_disks.size());

  PoolHandle mig = migration_pool_.Acquire();
  MigrationState& st = migration_pool_.Get(mig);
  st.extent = extent;
  st.target_group = target_group;
  st.reads_left = 0;
  st.writes_left = 0;
  st.base = layout_.Map(extent, 0).data_sector;
  st.share_dst = params_.extent_sectors / static_cast<SectorCount>(dst_disks.size());
  st.started = sim_->Now();

  // Phase 1: background reads of the extent's share on every source disk.
  // Failed disks contribute nothing (their share is reconstructable);
  // prune them up front so the completion count matches issued requests.
  std::vector<int> live_sources;
  for (int d : src_disks) {
    if (!disk_failed_[static_cast<std::size_t>(d)]) {
      live_sources.push_back(d);
    }
  }
  st.reads_left = static_cast<int>(live_sources.size());
  if (live_sources.empty()) {
    DoMigrationWrites(mig);
    return;
  }
  for (std::size_t i = 0; i < live_sources.size(); ++i) {
    DiskRequest req;
    req.sector = st.base + static_cast<SectorAddr>(i) * share_src;
    req.count = share_src;
    req.is_write = false;
    req.background = true;
    req.on_complete = [this, mig](SimTime) {
      if (--migration_pool_.Get(mig).reads_left == 0) {
        DoMigrationWrites(mig);
      }
    };
    SubmitRaw(live_sources[i], std::move(req));
  }
}

void ArrayController::DoMigrationWrites(PoolHandle mig) {
  MigrationState& st = migration_pool_.Get(mig);
  // Group membership is static, so the destination set recomputed here is the
  // one StartMigration saw; only the failure mask can have changed.
  std::vector<int> dst_disks = layout_.GroupDisks(st.target_group);
  std::vector<int> live_dsts;
  for (int d : dst_disks) {
    if (!disk_failed_[static_cast<std::size_t>(d)]) {
      live_dsts.push_back(d);
    }
  }
  if (live_dsts.empty()) {
    // Nowhere to write; abandon the move (the extent stays put).
    migration_pool_.Release(mig);
    --active_migrations_;
    PumpMigrations();
    return;
  }
  st.writes_left = static_cast<int>(live_dsts.size());
  for (std::size_t i = 0; i < live_dsts.size(); ++i) {
    DiskRequest req;
    req.sector = st.base + static_cast<SectorAddr>(i) * st.share_dst;
    req.count = st.share_dst;
    req.is_write = true;
    req.background = true;
    req.on_complete = [this, mig](SimTime) {
      MigrationState& mst = migration_pool_.Get(mig);
      if (--mst.writes_left != 0) {
        return;
      }
      std::int64_t extent = mst.extent;
      int target_group = mst.target_group;
      SimTime mig_start = mst.started;
      migration_pool_.Release(mig);
      layout_.SetGroup(extent, target_group);
      ++stats_.migrations_completed;
      stats_.migrated_sectors += params_.extent_sectors;
      HIB_COUNTER_INC(obs_migrations_);
      HIB_TRACE_SPAN(sim_->obs().tracer, SpanKind::kMigration, kTrackArray, "migrate",
                     mig_start, sim_->Now(), extent, static_cast<double>(target_group));
      --active_migrations_;
      PumpMigrations();
    };
    SubmitRaw(live_dsts[i], std::move(req));
  }
}

}  // namespace hib
