// Workload zoo extensions beyond the paper's OLTP/Cello pair.
//
// Two shapes the energy schemes were never tuned for, chosen because they
// stress opposite ends of the policy space:
//
//   ML training:  a near-100% read storm — shuffled shard-sequential reads at
//                 a high sustained rate for epoch after epoch, punctuated by
//                 large checkpoint write bursts.  There are no idle valleys,
//                 so the interesting question is how little the schemes *hurt*
//                 (spin-downs should never pay for themselves here).
//   Backup/scrub: a nightly window of near-sequential full-array scanning,
//                 with only sparse verify reads outside it.  The inverse
//                 shape: the array is almost always idle, but the nightly
//                 scan touches everything, defeating popularity-based layouts
//                 that assume a small hot set.
//
// Both are deterministic given their seed, like the generators in
// synthetic.h, and both are exposed through FleetSpec::Workload.
#ifndef HIBERNATOR_SRC_TRACE_ZOO_H_
#define HIBERNATOR_SRC_TRACE_ZOO_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/random.h"

namespace hib {

struct MlTrainingWorkloadParams {
  SectorAddr address_space_sectors = 0;  // required
  Duration duration_ms = Hours(24.0);
  double read_iops = 400.0;        // sustained dataloader read rate
  int shards = 64;                 // dataset shards, reshuffled every epoch
  Duration epoch_ms = Hours(1.0);  // one pass over the shard order
  SectorCount read_sectors = 256;  // 128 KB streaming reads
  // Checkpoint burst at each epoch boundary: large sequential writes into the
  // top of the address space, back to back.
  int checkpoint_writes = 64;
  SectorCount checkpoint_sectors = 2048;  // 1 MB writes
  Duration checkpoint_gap_ms = Ms(2.0);
  std::uint64_t seed = 77;
};

class MlTrainingWorkload : public WorkloadSource {
 public:
  explicit MlTrainingWorkload(MlTrainingWorkloadParams params);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return params_.address_space_sectors; }
  Duration DurationHint() const override { return params_.duration_ms; }
  double PeakIopsHint() const override;

 private:
  void ShuffleShards();

  MlTrainingWorkloadParams params_;
  Pcg32 rng_;
  SimTime now_;
  std::vector<int> shard_order_;
  std::int64_t reads_this_epoch_ = 0;
  std::int64_t epoch_ = 0;
  SectorAddr shard_pos_ = 0;  // sequential read offset within the active shard
  int checkpoint_remaining_ = 0;
  SectorAddr checkpoint_lba_ = 0;
};

struct BackupScanWorkloadParams {
  SectorAddr address_space_sectors = 0;  // required
  Duration duration_ms = Hours(24.0);
  Duration day_ms = Hours(24.0);          // window recurrence period
  Duration window_start_ms = Hours(1.0);  // nightly scan window start
  Duration window_ms = Hours(4.0);
  double scan_iops = 300.0;       // sequential scan rate inside the window
  SectorCount scan_sectors = 512;  // 256 KB sequential reads
  double background_iops = 2.0;   // sparse verify reads outside the window
  SectorCount background_sectors = 8;
  std::uint64_t seed = 78;
};

class BackupScanWorkload : public WorkloadSource {
 public:
  explicit BackupScanWorkload(BackupScanWorkloadParams params);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return params_.address_space_sectors; }
  Duration DurationHint() const override { return params_.duration_ms; }
  double PeakIopsHint() const override;

  // True when the scan window covers time t; exposed for the tests.
  bool InWindow(SimTime t) const;

 private:
  BackupScanWorkloadParams params_;
  Pcg32 rng_;
  SimTime now_;
  SectorAddr scan_pos_ = 0;  // sequential scan cursor, wraps over the space
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_ZOO_H_
