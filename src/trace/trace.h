// Trace records and the streaming workload-source interface.
//
// The paper's evaluation replays block-level traces (an OLTP/TPC-C trace and
// HP's Cello99 trace) against the simulated array.  We reproduce those with
// parameterized synthetic generators (src/trace/synthetic.h) and provide an
// SPC-style ASCII trace reader (src/trace/spc_reader.h) so real traces can be
// dropped in.  All sources stream records in nondecreasing time order, so a
// multi-day trace never has to be materialized in memory.
#ifndef HIBERNATOR_SRC_TRACE_TRACE_H_
#define HIBERNATOR_SRC_TRACE_TRACE_H_

#include <cstdint>

#include "src/util/stats.h"
#include "src/util/units.h"

namespace hib {

// One logical I/O against the array's address space.
struct TraceRecord {
  SimTime time;            // arrival time, ms from trace start
  SectorAddr lba = 0;      // logical sector address within the array
  SectorCount count = 8;   // sectors (8 = 4 KB)
  bool is_write = false;
  int stream = 0;          // originating stream/ASU, informational
};

// Pull-based trace source.  Next() returns false at end-of-trace.
// Timestamps are nondecreasing.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  virtual bool Next(TraceRecord* out) = 0;

  // Rewinds to the beginning (re-seeding any internal randomness so the
  // replay is identical).
  virtual void Reset() = 0;

  // Size of the logical address space this source draws LBAs from.
  virtual SectorAddr AddressSpaceSectors() const = 0;

  // Trace duration when known in advance (generators), else 0.  The harness
  // uses this to bound the replay horizon exactly.
  virtual Duration DurationHint() const { return Duration{}; }

  // Upper bound on the instantaneous arrival rate (requests/second), or 0
  // when unknown.  The harness sizes the event queue from this so fleet runs
  // never grow it mid-run.
  virtual double PeakIopsHint() const { return 0.0; }
};

// Summary statistics of a trace, as reported in the paper's workload table.
struct TraceSummary {
  std::int64_t records = 0;
  Duration duration_ms;
  double read_fraction = 0.0;
  RunningStats size_sectors;
  RunningStats interarrival_ms;

  double Iops() const {
    return duration_ms > Duration{} ? static_cast<double>(records) / ToSeconds(duration_ms) : 0.0;
  }
  double MeanSizeKb() const { return size_sectors.mean() * kSectorBytes / 1024.0; }
};

// Drains `source` (consuming it; call Reset() afterwards to reuse) and
// summarizes it.  `max_records` caps the scan for very long traces.
TraceSummary Summarize(WorkloadSource& source, std::int64_t max_records = -1);

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_TRACE_H_
