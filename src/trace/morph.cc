#include "src/trace/morph.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/trace/synthetic.h"
#include "src/util/check.h"

namespace hib {

// --------------------------------------------------------------- rate x N ---

RateScaleMorph::RateScaleMorph(std::unique_ptr<WorkloadSource> inner, int factor)
    : inner_(std::move(inner)), factor_(factor) {
  HIB_CHECK(inner_ != nullptr);
  HIB_CHECK_GE(factor_, 1);
}

bool RateScaleMorph::Next(TraceRecord* out) {
  if (!primed_) {
    primed_ = true;
    have_cur_ = inner_->Next(&cur_);
    have_next_ = have_cur_ && inner_->Next(&next_);
    replica_ = 0;
  }
  if (!have_cur_) {
    return false;
  }
  if (replica_ == factor_) {
    if (!have_next_) {
      have_cur_ = false;
      return false;
    }
    cur_ = next_;
    have_next_ = inner_->Next(&next_);
    replica_ = 0;
  }
  *out = cur_;
  if (replica_ > 0) {
    // Spread replicas evenly across the gap to the next inner arrival so the
    // instantaneous rate scales by `factor` instead of arriving as bursts of
    // `factor` simultaneous requests.  The last inner record has no gap, so
    // its replicas land on its own timestamp.
    if (have_next_) {
      const Duration gap = next_.time - cur_.time;
      out->time = cur_.time + gap * (static_cast<double>(replica_) / static_cast<double>(factor_));
    }
    // Each replica is a distinct "user": rotate its addresses by an evenly
    // spaced, chunk-aligned offset within the same address space.
    const SectorAddr space = inner_->AddressSpaceSectors();
    const SectorCount count = std::clamp<SectorCount>(cur_.count, 1, space);
    SectorAddr rotation =
        (space * static_cast<SectorAddr>(replica_) / static_cast<SectorAddr>(factor_)) / 2048 *
        2048;
    SectorAddr lba = (cur_.lba + rotation) % space;
    out->lba = std::min(lba, space - count);
    out->count = count;
  }
  ++replica_;
  return true;
}

void RateScaleMorph::Reset() {
  inner_->Reset();
  primed_ = false;
  have_cur_ = false;
  have_next_ = false;
  replica_ = 0;
}

// -------------------------------------------------------------- LBA remap ---

LbaRemapMorph::LbaRemapMorph(std::unique_ptr<WorkloadSource> inner,
                             SectorAddr target_space_sectors, SectorCount chunk_sectors)
    : inner_(std::move(inner)),
      target_space_sectors_(target_space_sectors),
      chunk_sectors_(chunk_sectors) {
  HIB_CHECK(inner_ != nullptr);
  HIB_CHECK_GT(target_space_sectors_, 0);
  HIB_CHECK_GT(chunk_sectors_, 0);
}

bool LbaRemapMorph::Next(TraceRecord* out) {
  if (!inner_->Next(out)) {
    return false;
  }
  const SectorCount count = std::clamp<SectorCount>(out->count, 1, target_space_sectors_);
  const std::int64_t target_chunks = std::max<std::int64_t>(1, target_space_sectors_ / chunk_sectors_);
  const std::int64_t chunk = out->lba / chunk_sectors_;
  const SectorAddr offset = out->lba % chunk_sectors_;
  const std::int64_t mapped = ScrambleRank(chunk % target_chunks, target_chunks);
  SectorAddr lba = mapped * chunk_sectors_ + offset;
  out->lba = std::clamp<SectorAddr>(lba, 0, target_space_sectors_ - count);
  out->count = count;
  return true;
}

// ----------------------------------------------------------- phase splice ---

PhaseSpliceMorph::PhaseSpliceMorph(std::unique_ptr<WorkloadSource> inner, Duration shift,
                                   Duration period)
    : inner_(std::move(inner)), period_(period) {
  HIB_CHECK(inner_ != nullptr);
  if (!(period_ > Duration{})) {
    period_ = inner_->DurationHint();
  }
  HIB_CHECK(period_ > Duration{})
      << "PhaseSpliceMorph needs an explicit period when the source has no duration hint";
  double s = std::fmod(shift.value(), period_.value());
  if (s < 0.0) {
    s += period_.value();
  }
  split_ = period_ - Ms(s);
}

bool PhaseSpliceMorph::Next(TraceRecord* out) {
  TraceRecord r;
  // Pass 1: the tail segment t in [split, period) plays first, shifted to 0.
  while (in_tail_pass_) {
    if (!inner_->Next(&r)) {
      in_tail_pass_ = false;
      inner_->Reset();
      break;
    }
    if (r.time < split_ || r.time >= period_) {
      continue;  // head segment (second pass) or beyond the period (dropped)
    }
    *out = r;
    out->time = r.time - split_;
    HIB_DCHECK(!emitted_any_ || out->time >= last_out_);
    last_out_ = out->time;
    emitted_any_ = true;
    return true;
  }
  // Pass 2: the head segment t in [0, split) follows, shifted by the
  // complement.  Sources are time-sorted, so the first record at or past the
  // split ends the pass.
  while (inner_->Next(&r)) {
    if (r.time >= split_) {
      return false;
    }
    *out = r;
    out->time = r.time + (period_ - split_);
    HIB_DCHECK(!emitted_any_ || out->time >= last_out_);
    last_out_ = out->time;
    emitted_any_ = true;
    return true;
  }
  return false;
}

void PhaseSpliceMorph::Reset() {
  inner_->Reset();
  in_tail_pass_ = true;
  last_out_ = SimTime{};
  emitted_any_ = false;
}

// ---------------------------------------------------------------- sampler ---

SampleMorph::SampleMorph(std::unique_ptr<WorkloadSource> inner, double keep_fraction,
                         std::uint64_t seed)
    : inner_(std::move(inner)), keep_fraction_(keep_fraction), seed_(seed), rng_(seed) {
  HIB_CHECK(inner_ != nullptr);
  HIB_CHECK(keep_fraction_ >= 0.0 && keep_fraction_ <= 1.0);
}

bool SampleMorph::Next(TraceRecord* out) {
  while (inner_->Next(out)) {
    if (rng_.NextDouble() < keep_fraction_) {
      return true;
    }
  }
  return false;
}

void SampleMorph::Reset() {
  inner_->Reset();
  rng_ = Pcg32(seed_);
}

}  // namespace hib
