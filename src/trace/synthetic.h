// Synthetic workload generators standing in for the paper's traces.
//
// The paper evaluated Hibernator on (a) an OLTP trace collected from TPC-C
// running against a commercial database and (b) HP's Cello99 file-server
// trace.  Neither trace is redistributable, so we generate synthetic streams
// with the properties the paper's results depend on:
//
//   OLTP:  steady high request rate with a mild day/night swing, small
//          (4-8 KB) random I/Os, Zipf-skewed spatial popularity, read-mostly.
//   Cello: strongly diurnal and bursty, write-heavy, very high spatial skew,
//          long nearly idle valleys at night (these valleys are what let
//          every scheme save energy, and the skew is what multi-tier layouts
//          exploit).
//
// Both generators are fully deterministic given their seed.
#ifndef HIBERNATOR_SRC_TRACE_SYNTHETIC_H_
#define HIBERNATOR_SRC_TRACE_SYNTHETIC_H_

#include <algorithm>
#include <cstdint>
#include <memory>

#include "src/trace/trace.h"
#include "src/util/random.h"

namespace hib {

// Popularity is drawn over fixed-size "locality chunks" and scrambled with a
// multiplicative hash so hot chunks are spread across the address space
// (consecutive-hot layouts would make data concentration trivially easy).
struct SkewedSpace {
  SectorAddr address_space_sectors = 0;
  SectorCount chunk_sectors = 2048;  // 1 MB locality granularity
  double zipf_theta = 0.86;          // classic ~80/20 skew

  // Number of chunks in the space.
  std::int64_t NumChunks() const;
};

struct OltpWorkloadParams {
  SectorAddr address_space_sectors = 0;  // required
  Duration duration_ms = Hours(24.0);
  double peak_iops = 200.0;   // aggregate arrival rate at the daily peak
  double trough_iops = 60.0;  // rate at the nightly trough
  double read_fraction = 0.66;
  double zipf_theta = 0.86;
  SectorCount chunk_sectors = 2048;
  // Request size mix: mostly 4 KB with a tail of 16 KB table scans.
  double large_fraction = 0.1;
  SectorCount small_sectors = 8;    // 4 KB
  SectorCount large_sectors = 32;   // 16 KB
  // Optional load surge (for the performance-guarantee experiment): rate is
  // multiplied by surge_factor inside [surge_start_ms, surge_end_ms).
  Duration surge_start_ms = Ms(-1.0);
  Duration surge_end_ms = Ms(-1.0);
  double surge_factor = 1.0;
  // Diurnal phase shift: the daily cycle is evaluated at (t + phase_ms), so
  // a fleet can stagger its arrays across timezones.  0 = the paper's shape.
  Duration phase_ms = Ms(0.0);
  std::uint64_t seed = 42;
};

class OltpWorkload : public WorkloadSource {
 public:
  explicit OltpWorkload(OltpWorkloadParams params);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return params_.address_space_sectors; }
  Duration DurationHint() const override { return params_.duration_ms; }
  double PeakIopsHint() const override {
    return params_.peak_iops * std::max(1.0, params_.surge_factor);
  }

  // Instantaneous arrival rate at time t (requests/second); exposed so the
  // tests can check the generator against its own model.
  double RateAt(SimTime t) const;

 private:
  OltpWorkloadParams params_;
  Pcg32 rng_;
  ZipfGenerator zipf_;
  SimTime now_;
};

struct CelloWorkloadParams {
  SectorAddr address_space_sectors = 0;  // required
  Duration duration_ms = Hours(24.0);
  double peak_iops = 90.0;
  double trough_iops = 4.0;   // nights are nearly idle
  double read_fraction = 0.45;
  double zipf_theta = 1.05;   // higher skew than OLTP
  SectorCount chunk_sectors = 2048;
  // Bursts: arrivals come in Pareto-sized clumps with short intra-burst gaps.
  double burst_alpha = 1.5;
  double mean_burst_size = 8.0;
  Duration intra_burst_gap_ms = Ms(6.0);
  // Some bursts are sequential runs (file reads/writes).
  double sequential_fraction = 0.3;
  SectorCount io_sectors = 16;  // 8 KB typical file-server block
  // Diurnal phase shift, as in OltpWorkloadParams.
  Duration phase_ms = Ms(0.0);
  std::uint64_t seed = 43;
};

class CelloWorkload : public WorkloadSource {
 public:
  explicit CelloWorkload(CelloWorkloadParams params);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return params_.address_space_sectors; }
  Duration DurationHint() const override { return params_.duration_ms; }
  double PeakIopsHint() const override { return params_.peak_iops; }

  double RateAt(SimTime t) const;

 private:
  void StartBurst();

  CelloWorkloadParams params_;
  Pcg32 rng_;
  ZipfGenerator zipf_;
  SimTime now_;
  int burst_remaining_ = 0;
  bool burst_sequential_ = false;
  SectorAddr burst_next_lba_ = 0;
  bool burst_is_write_ = false;
};

// Constant-rate Poisson stream with uniform addresses; the tests' workhorse.
struct ConstantWorkloadParams {
  SectorAddr address_space_sectors = 0;
  Duration duration_ms = Hours(1.0);
  double iops = 50.0;
  double read_fraction = 0.7;
  SectorCount io_sectors = 8;
  std::uint64_t seed = 7;
};

class ConstantWorkload : public WorkloadSource {
 public:
  explicit ConstantWorkload(ConstantWorkloadParams params);

  const ConstantWorkloadParams& params() const { return params_; }

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return params_.address_space_sectors; }
  Duration DurationHint() const override { return params_.duration_ms; }
  double PeakIopsHint() const override { return params_.iops; }

 private:
  ConstantWorkloadParams params_;
  Pcg32 rng_;
  SimTime now_;
};

// Maps a popularity rank to a scrambled chunk index (bijective over
// [0, num_chunks)); shared by the generators and by tests.
std::int64_t ScrambleRank(std::int64_t rank, std::int64_t num_chunks);

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_SYNTHETIC_H_
