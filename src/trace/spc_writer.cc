#include "src/trace/spc_writer.h"

#include <fstream>
#include <iomanip>

namespace hib {

SpcTraceWriter::SpcTraceWriter(std::ostream* out) : out_(out) {}

bool SpcTraceWriter::Write(const TraceRecord& record) {
  if (record.lba < 0 || record.count <= 0 || record.time < last_time_ ||
      record.time < SimTime{}) {
    return false;
  }
  // ASU 0 keeps the reader's slicing out of the address math on round-trip.
  *out_ << 0 << ',' << record.lba << ',' << record.count * kSectorBytes << ','
        << (record.is_write ? 'w' : 'r') << ',' << std::fixed << std::setprecision(6)
        << ToSeconds(record.time) << '\n';
  last_time_ = record.time;
  ++records_written_;
  return true;
}

std::int64_t ExportSpcTrace(WorkloadSource& source, std::ostream& out,
                            std::int64_t max_records) {
  SpcTraceWriter writer(&out);
  TraceRecord record;
  while ((max_records < 0 || writer.records_written() < max_records) && source.Next(&record)) {
    writer.Write(record);
  }
  return writer.records_written();
}

std::int64_t ExportSpcTraceToFile(WorkloadSource& source, const std::string& path,
                                  std::int64_t max_records) {
  std::ofstream out(path);
  if (!out) {
    return -1;
  }
  return ExportSpcTrace(source, out, max_records);
}

}  // namespace hib
