// Compiled binary trace format ("HIBT") — the storage half of the trace
// pipeline.  ASCII SPC traces parse at a few million records/second; the
// fleet runs from PR 7 replay hundreds of array-days per wall second and were
// starting to bottleneck on strtod.  A compiled trace replays at memory speed
// through an O(1) cursor and can be mmap-ed, so a multi-hundred-GB trace
// never has to be parsed (or even fully paged in) again.
//
// File layout (all integers little-endian, every section 8-byte aligned):
//
//   +--------------------------------------------------------------+
//   | FileHeader (72 B): magic "HIBT", version, flags,             |
//   |   address_space_sectors, num_records, num_blocks,            |
//   |   records_per_block, index_offset, footer_offset,            |
//   |   header_checksum (FNV-1a over the preceding 64 B)           |
//   +--------------------------------------------------------------+
//   | Block index: num_blocks x u64 absolute byte offsets,         |
//   |   then u64 index_checksum                                    |
//   +--------------------------------------------------------------+
//   | Block 0 .. Block n-1, each:                                  |
//   |   BlockHeader (24 B): base_time_bits, block_checksum,        |
//   |     num_records (u32), time_bytes (u32)                      |
//   |   varint timestamp deltas (time_bytes B, padded to 8)        |
//   |   num_records x RecordFixed (16 B: lba i64, count u32,       |
//   |     stream u16, flags u8, reserved u8)                       |
//   +--------------------------------------------------------------+
//   | Footer: TraceStats (80 B), footer magic "HIBF", reserved,    |
//   |   footer_checksum                                            |
//   +--------------------------------------------------------------+
//
// Timestamps are stored as deltas of the *bit images* of the double
// millisecond values: for nonnegative doubles, the u64 bit pattern is
// monotone in the value (the same trick the event queue uses to pack
// (time, seq) into one u64 key), so sorted times give nonnegative deltas
// that varint-encode compactly AND round-trip bit-exactly.  Bit-exact
// timestamps are what make the differential test trivial: a compiled trace
// drives RunExperiment through the identical event sequence as its ASCII
// source, so results match at 0 ulp, not just 1e-12.
//
// Every byte of a well-formed file is covered by one of the four FNV-1a
// checksums (header, index, per-block, footer), and both checksum steps are
// injective per byte, so any single-byte corruption is detected — the
// robustness suite in tests/trace_compile_test.cc flips bytes at every
// offset and asserts the reader fails closed instead of replaying garbage.
//
// This header and format.cc are the ONLY place raw-byte deserialization is
// allowed (simlint HIB026): everything else consumes TraceRecords through
// the WorkloadSource interface.
#ifndef HIBERNATOR_SRC_TRACE_FORMAT_H_
#define HIBERNATOR_SRC_TRACE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/units.h"

namespace hib {

// ---------------------------------------------------------------------------
// On-disk layout constants (exposed so the corruption tests can perform
// precise surgery on well-formed files).

inline constexpr std::uint32_t kTraceMagic = 0x54424948u;        // "HIBT"
inline constexpr std::uint32_t kTraceFooterMagic = 0x46424948u;  // "HIBF"
inline constexpr std::uint32_t kTraceVersion = 1;

inline constexpr std::int64_t kTraceHeaderBytes = 72;
inline constexpr std::int64_t kTraceBlockHeaderBytes = 24;
inline constexpr std::int64_t kTraceRecordBytes = 16;
inline constexpr std::int64_t kTraceFooterBytes = 96;
// Byte offset of block_checksum within a block (the only bytes a block's own
// checksum cannot cover).
inline constexpr std::int64_t kTraceBlockChecksumOffset = 8;

// Incremental FNV-1a over `len` bytes, continuing from `state`.  Exposed for
// the corruption tests, which re-seal blocks after deliberate damage.
std::uint64_t Fnv1a64(const void* bytes, std::size_t len,
                      std::uint64_t state = 0xcbf29ce484222325ull);

// ---------------------------------------------------------------------------
// Summary footer, as reported by `tracec info` and used for replay hints.
// Fixed 80-byte layout; stored verbatim in the file footer.

struct TraceStats {
  std::int64_t records = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t total_sectors = 0;
  std::int64_t min_lba = 0;
  std::int64_t max_lba_end = 0;  // max over records of lba + count
  SimTime first_time;
  SimTime last_time;
  double peak_iops = 0.0;  // max arrival rate over any 1-second window
  double mean_iops = 0.0;

  double ReadFraction() const {
    return records > 0 ? static_cast<double>(reads) / static_cast<double>(records) : 0.0;
  }
};

// ---------------------------------------------------------------------------
// Compiler: records in, bytes out.

struct TraceCompileOptions {
  std::int64_t records_per_block = 4096;
  // Address space recorded in the header.  0 = take WorkloadSource's (or, in
  // CompileRecords, round max_lba_end up to the next power of two).
  SectorAddr address_space_sectors = 0;
};

struct TraceCompileResult {
  bool ok = false;
  std::string error;  // non-empty when !ok
  std::int64_t records = 0;
  std::int64_t bytes = 0;
  TraceStats stats;
};

// Compiles an explicit record list.  Records may arrive out of order (the
// compiler stable-sorts by timestamp); they must have finite nonnegative
// times, lba >= 0, count >= 1, lba + count <= the address space, and stream
// ids in [0, 65535].
TraceCompileResult CompileRecords(std::vector<TraceRecord> records,
                                  std::string* out,
                                  const TraceCompileOptions& options = {});

// Drains `source` (call source.Reset() afterwards to reuse it) and compiles
// everything it yields.  `max_records` caps the drain; -1 = to exhaustion.
TraceCompileResult CompileTrace(WorkloadSource& source, std::string* out,
                                const TraceCompileOptions& options = {},
                                std::int64_t max_records = -1);

// Same, writing the bytes to `path`.
TraceCompileResult CompileTraceToFile(WorkloadSource& source, const std::string& path,
                                      const TraceCompileOptions& options = {},
                                      std::int64_t max_records = -1);

// ---------------------------------------------------------------------------
// Replay cursor.  Open()/FromBuffer() always return an object; a corrupt or
// unreadable input yields ok() == false with a diagnostic, and Next() then
// returns false (fail closed — never garbage records).  Validation that
// cannot be done up front (block checksums, timestamp monotonicity across
// blocks) happens lazily as blocks are entered; a mid-trace failure stops
// the stream and latches error().

class CompiledTraceReader : public WorkloadSource {
 public:
  // mmaps `path` (falling back to a plain read if mmap is unavailable).
  static std::unique_ptr<CompiledTraceReader> Open(const std::string& path);

  // Takes ownership of an in-memory compiled trace (tests, morph pipelines).
  static std::unique_ptr<CompiledTraceReader> FromBuffer(std::string bytes);

  // Open() that HIB_CHECK-fails on any validation error; for tools and tests
  // where a bad trace is a fatal misuse, not a recoverable condition.
  static std::unique_ptr<CompiledTraceReader> OpenOrDie(const std::string& path);

  ~CompiledTraceReader() override;
  CompiledTraceReader(const CompiledTraceReader&) = delete;
  CompiledTraceReader& operator=(const CompiledTraceReader&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const TraceStats& stats() const { return stats_; }
  std::int64_t num_records() const { return num_records_; }
  std::int64_t num_blocks() const { return num_blocks_; }

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return address_space_sectors_; }
  Duration DurationHint() const override { return stats_.last_time; }
  double PeakIopsHint() const override { return stats_.peak_iops; }

 private:
  CompiledTraceReader() = default;

  // Validates everything reachable without touching block payloads; latches
  // error_ on the first problem.
  void Validate();
  // Enters block `b` (checksum-verifying it on first visit).  Returns false
  // (latching error_) on any inconsistency.
  bool EnterBlock(std::int64_t b);
  // Latches the first error with an offset-stamped diagnostic.
  bool Fail(const std::string& what, std::int64_t offset);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string owned_;        // backing store for FromBuffer / mmap fallback
  void* mmap_base_ = nullptr;
  std::size_t mmap_len_ = 0;

  std::string error_;
  TraceStats stats_;
  SectorAddr address_space_sectors_ = 0;
  std::int64_t num_records_ = 0;
  std::int64_t num_blocks_ = 0;
  std::int64_t index_offset_ = 0;
  std::int64_t footer_offset_ = 0;

  // Cursor.
  std::int64_t block_ = -1;          // current block index; -1 = before block 0
  std::uint32_t rec_in_block_ = 0;   // records already emitted from it
  std::uint32_t block_records_ = 0;  // total records in it
  std::int64_t time_pos_ = 0;        // next varint byte
  std::int64_t time_end_ = 0;        // end of this block's varint stream
  std::int64_t rec_pos_ = 0;         // next fixed record
  std::uint64_t time_bits_ = 0;      // running timestamp bit image
  bool first_in_block_ = true;
  std::int64_t emitted_ = 0;
  std::vector<bool> block_verified_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_FORMAT_H_
