#include "src/trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace hib {

namespace {
constexpr Duration kDayMs = Hours(24.0);
constexpr std::int64_t kScramblePrime = 2654435761LL;

// Smooth diurnal shape in [0, 1]: 0 at t = 0 (midnight), 1 at t = 12 h.
double DiurnalShape(SimTime t) { return 0.5 * (1.0 - std::cos(2.0 * M_PI * t / kDayMs)); }
}  // namespace

std::int64_t SkewedSpace::NumChunks() const {
  return std::max<std::int64_t>(1, address_space_sectors / chunk_sectors);
}

std::int64_t ScrambleRank(std::int64_t rank, std::int64_t num_chunks) {
  if (num_chunks <= 1) {
    return 0;
  }
  if (num_chunks == kScramblePrime) {
    return rank;  // degenerate; the multiplier would not be coprime
  }
  // rank -> (rank * p) mod n is a bijection because p is prime and n < p
  // in all realistic configurations (n is a chunk count, p ~ 2.65e9).
  __int128 prod = static_cast<__int128>(rank) * kScramblePrime;
  return static_cast<std::int64_t>(prod % num_chunks);
}

// ---------------------------------------------------------------- OLTP -----

OltpWorkload::OltpWorkload(OltpWorkloadParams params)
    : params_(params),
      rng_(params.seed),
      zipf_(std::max<std::int64_t>(1, params.address_space_sectors / params.chunk_sectors),
            params.zipf_theta) {
  HIB_CHECK_GT(params_.address_space_sectors, 0) << "workload needs a positive address space";
}

double OltpWorkload::RateAt(SimTime t) const {
  double rate = params_.trough_iops +
                (params_.peak_iops - params_.trough_iops) * DiurnalShape(t + params_.phase_ms);
  if (t >= params_.surge_start_ms && t < params_.surge_end_ms) {
    rate *= params_.surge_factor;
  }
  return rate;
}

bool OltpWorkload::Next(TraceRecord* out) {
  if (now_ >= params_.duration_ms) {
    return false;
  }
  double rate = std::max(1e-6, RateAt(now_));  // arrivals per second
  now_ += Seconds(rng_.NextExponential(1.0 / rate));
  if (now_ >= params_.duration_ms) {
    return false;
  }
  std::int64_t num_chunks = zipf_.n();
  std::int64_t chunk = ScrambleRank(zipf_.Next(rng_), num_chunks);
  SectorCount count =
      rng_.NextDouble() < params_.large_fraction ? params_.large_sectors : params_.small_sectors;
  SectorCount slots = std::max<SectorCount>(1, params_.chunk_sectors / count);
  SectorAddr lba = chunk * params_.chunk_sectors + rng_.NextInRange(0, slots - 1) * count;
  lba = std::min(lba, params_.address_space_sectors - count);
  out->time = now_;
  out->lba = lba;
  out->count = count;
  out->is_write = rng_.NextDouble() >= params_.read_fraction;
  out->stream = 0;
  return true;
}

void OltpWorkload::Reset() {
  rng_ = Pcg32(params_.seed);
  now_ = SimTime{};
}

// --------------------------------------------------------------- Cello -----

CelloWorkload::CelloWorkload(CelloWorkloadParams params)
    : params_(params),
      rng_(params.seed),
      zipf_(std::max<std::int64_t>(1, params.address_space_sectors / params.chunk_sectors),
            params.zipf_theta) {
  HIB_CHECK_GT(params_.address_space_sectors, 0) << "workload needs a positive address space";
}

double CelloWorkload::RateAt(SimTime t) const {
  double s = DiurnalShape(t + params_.phase_ms);
  // Cubing sharpens the valleys: nights sit near the trough for hours.
  return params_.trough_iops + (params_.peak_iops - params_.trough_iops) * s * s * s;
}

void CelloWorkload::StartBurst() {
  double pareto_min = params_.mean_burst_size * (params_.burst_alpha - 1.0) / params_.burst_alpha;
  double size = rng_.NextPareto(params_.burst_alpha, std::max(1.0, pareto_min));
  burst_remaining_ = static_cast<int>(std::min(size, 200.0));
  if (burst_remaining_ < 1) {
    burst_remaining_ = 1;
  }
  burst_sequential_ = rng_.NextDouble() < params_.sequential_fraction;
  burst_is_write_ = rng_.NextDouble() >= params_.read_fraction;
  std::int64_t num_chunks = zipf_.n();
  std::int64_t chunk = ScrambleRank(zipf_.Next(rng_), num_chunks);
  SectorCount slots = std::max<SectorCount>(1, params_.chunk_sectors / params_.io_sectors);
  burst_next_lba_ =
      chunk * params_.chunk_sectors + rng_.NextInRange(0, slots - 1) * params_.io_sectors;
}

bool CelloWorkload::Next(TraceRecord* out) {
  if (now_ >= params_.duration_ms) {
    return false;
  }
  if (burst_remaining_ == 0) {
    // Gap to the next burst: burst arrivals form a (slowly modulated) Poisson
    // process with rate = request_rate / mean_burst_size.
    double rate = std::max(1e-6, RateAt(now_) / params_.mean_burst_size);
    now_ += Seconds(rng_.NextExponential(1.0 / rate));
    if (now_ >= params_.duration_ms) {
      return false;
    }
    StartBurst();
  } else {
    now_ += Ms(rng_.NextExponential(params_.intra_burst_gap_ms.value()));
    if (now_ >= params_.duration_ms) {
      return false;
    }
  }
  --burst_remaining_;

  SectorAddr lba;
  if (burst_sequential_) {
    lba = burst_next_lba_;
    burst_next_lba_ += params_.io_sectors;
    if (burst_next_lba_ + params_.io_sectors > params_.address_space_sectors) {
      burst_next_lba_ = 0;
    }
  } else {
    std::int64_t chunk = ScrambleRank(zipf_.Next(rng_), zipf_.n());
    SectorCount slots = std::max<SectorCount>(1, params_.chunk_sectors / params_.io_sectors);
    lba = chunk * params_.chunk_sectors + rng_.NextInRange(0, slots - 1) * params_.io_sectors;
  }
  lba = std::min(lba, params_.address_space_sectors - params_.io_sectors);
  out->time = now_;
  out->lba = lba;
  out->count = params_.io_sectors;
  out->is_write = burst_is_write_;
  out->stream = 1;
  return true;
}

void CelloWorkload::Reset() {
  rng_ = Pcg32(params_.seed);
  now_ = SimTime{};
  burst_remaining_ = 0;
  burst_sequential_ = false;
  burst_next_lba_ = 0;
  burst_is_write_ = false;
}

// ------------------------------------------------------------ Constant -----

ConstantWorkload::ConstantWorkload(ConstantWorkloadParams params)
    : params_(params), rng_(params.seed) {
  HIB_CHECK_GT(params_.address_space_sectors, 0) << "workload needs a positive address space";
}

bool ConstantWorkload::Next(TraceRecord* out) {
  now_ += Seconds(rng_.NextExponential(1.0 / params_.iops));
  if (now_ >= params_.duration_ms) {
    return false;
  }
  SectorCount count = params_.io_sectors;
  SectorAddr max_lba = params_.address_space_sectors - count;
  out->time = now_;
  out->lba = rng_.NextInRange(0, max_lba / count) * count;
  out->lba = std::min(out->lba, max_lba);
  out->count = count;
  out->is_write = rng_.NextDouble() >= params_.read_fraction;
  out->stream = 2;
  return true;
}

void ConstantWorkload::Reset() {
  rng_ = Pcg32(params_.seed);
  now_ = SimTime{};
}

}  // namespace hib
