#include "src/trace/trace.h"

namespace hib {

TraceSummary Summarize(WorkloadSource& source, std::int64_t max_records) {
  TraceSummary s;
  TraceRecord rec;
  std::int64_t reads = 0;
  SimTime prev = Ms(-1.0);
  while ((max_records < 0 || s.records < max_records) && source.Next(&rec)) {
    ++s.records;
    if (!rec.is_write) {
      ++reads;
    }
    s.size_sectors.Add(static_cast<double>(rec.count));
    if (prev >= Duration{}) {
      s.interarrival_ms.Add(rec.time - prev);
    }
    prev = rec.time;
    s.duration_ms = rec.time;
  }
  s.read_fraction = s.records > 0 ? static_cast<double>(reads) / static_cast<double>(s.records)
                                  : 0.0;
  return s;
}

}  // namespace hib
