// Writer for the SPC-1-style ASCII trace format read by SpcTraceReader.
//
// Lets any WorkloadSource (including the synthetic OLTP/Cello generators) be
// exported to a portable text trace — useful for sharing repeatable inputs or
// feeding other simulators.  Round-trips with SpcTraceReader: write, read
// back, and the record stream matches (modulo the reader's ASU slicing, which
// Export sidesteps by emitting everything as ASU 0).
#ifndef HIBERNATOR_SRC_TRACE_SPC_WRITER_H_
#define HIBERNATOR_SRC_TRACE_SPC_WRITER_H_

#include <ostream>
#include <string>

#include "src/trace/trace.h"

namespace hib {

class SpcTraceWriter {
 public:
  // Writes records to `out` as "asu,lba,size_bytes,opcode,timestamp" lines.
  explicit SpcTraceWriter(std::ostream* out);

  // Appends one record; returns false (and writes nothing) if the record is
  // malformed (negative lba/time, nonpositive size) or goes back in time.
  bool Write(const TraceRecord& record);

  std::int64_t records_written() const { return records_written_; }

 private:
  std::ostream* out_;
  std::int64_t records_written_ = 0;
  SimTime last_time_;
};

// Drains `source` into `out`; returns the number of records written.
// `max_records` < 0 means no cap.
std::int64_t ExportSpcTrace(WorkloadSource& source, std::ostream& out,
                            std::int64_t max_records = -1);

// Convenience: export to a file path; returns records written, -1 on I/O
// failure.
std::int64_t ExportSpcTraceToFile(WorkloadSource& source, const std::string& path,
                                  std::int64_t max_records = -1);

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_SPC_WRITER_H_
