#include "src/trace/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "src/util/check.h"
#include "src/util/log.h"

namespace hib {
namespace {

// The format stores native little-endian integers and IEEE double bit images.
static_assert(std::endian::native == std::endian::little,
              "the HIBT trace format is defined little-endian");
static_assert(sizeof(TraceStats) == 80 && std::is_trivially_copyable_v<TraceStats>,
              "TraceStats is serialized verbatim into the footer");

// Bit image of inf: every finite nonnegative double is strictly below it,
// and the nonneg-double -> u64 map is monotone (same ordering trick as the
// event queue's packed keys).
constexpr std::uint64_t kInfTimeBits = 0x7ff0000000000000ull;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

std::uint64_t TimeBits(SimTime t) { return std::bit_cast<std::uint64_t>(t); }
SimTime TimeFromBits(std::uint64_t bits) { return std::bit_cast<SimTime>(bits); }

void PutBytes(std::string* out, const void* p, std::size_t n) {
  out->append(static_cast<const char*>(p), n);
}

template <typename T>
void Put(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutBytes(out, &v, sizeof v);
}

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) {
    out->push_back('\0');
  }
}

template <typename T>
T Get(const std::uint8_t* data, std::int64_t offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, data + offset, sizeof v);
  return v;
}

TraceCompileResult CompileError(std::string what) {
  TraceCompileResult r;
  r.ok = false;
  r.error = std::move(what);
  return r;
}

SectorAddr NextPow2(SectorAddr v) {
  SectorAddr p = 8;
  while (p < v) {
    p *= 2;
  }
  return p;
}

// Peak arrival rate over any sliding 1-second window of the sorted records.
double PeakWindowIops(const std::vector<TraceRecord>& records) {
  double peak = 0.0;
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < records.size(); ++hi) {
    while (records[hi].time - records[lo].time >= Seconds(1.0)) {
      ++lo;
    }
    peak = std::max(peak, static_cast<double>(hi - lo + 1));
  }
  return peak;
}

TraceStats ComputeStats(const std::vector<TraceRecord>& records) {
  TraceStats s;
  s.records = static_cast<std::int64_t>(records.size());
  if (records.empty()) {
    return s;
  }
  s.min_lba = std::numeric_limits<std::int64_t>::max();
  for (const TraceRecord& r : records) {
    (r.is_write ? s.writes : s.reads) += 1;
    s.total_sectors += r.count;
    s.min_lba = std::min(s.min_lba, r.lba);
    s.max_lba_end = std::max(s.max_lba_end, r.lba + r.count);
  }
  s.first_time = records.front().time;
  s.last_time = records.back().time;
  s.peak_iops = PeakWindowIops(records);
  double span_s = ToSeconds(s.last_time);
  s.mean_iops = span_s > 0.0 ? static_cast<double>(s.records) / span_s : s.peak_iops;
  return s;
}

}  // namespace

std::uint64_t Fnv1a64(const void* bytes, std::size_t len, std::uint64_t state) {
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    state = (state ^ p[i]) * 0x100000001b3ull;
  }
  return state;
}

// ---------------------------------------------------------------------------
// Compiler.

TraceCompileResult CompileRecords(std::vector<TraceRecord> records, std::string* out,
                                  const TraceCompileOptions& options) {
  HIB_CHECK(out != nullptr);
  HIB_CHECK_GT(options.records_per_block, 0);
  out->clear();

  // Sorting by value and by bit image agree for finite nonnegative doubles;
  // stable so equal-time records keep their arrival order.
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });

  TraceStats stats = ComputeStats(records);
  SectorAddr space = options.address_space_sectors;
  if (space <= 0) {
    space = NextPow2(stats.max_lba_end);
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (TimeBits(r.time) >= kInfTimeBits) {
      return CompileError("non-finite or negative timestamp in record " + std::to_string(i));
    }
    if (r.lba < 0 || r.count < 1 || r.count > std::numeric_limits<std::uint32_t>::max() ||
        r.lba > space - r.count) {
      return CompileError("lba/count outside the address space in record " + std::to_string(i));
    }
    if (r.stream < 0 || r.stream > std::numeric_limits<std::uint16_t>::max()) {
      return CompileError("stream id outside [0, 65535] in record " + std::to_string(i));
    }
  }

  const std::int64_t n = static_cast<std::int64_t>(records.size());
  const std::int64_t rpb = options.records_per_block;
  const std::int64_t num_blocks = n > 0 ? (n + rpb - 1) / rpb : 0;

  // Encode the blocks first (the index needs their sizes).
  std::string blocks;
  blocks.reserve(records.size() * 20);
  std::vector<std::uint64_t> rel_offsets;
  rel_offsets.reserve(static_cast<std::size_t>(num_blocks));
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::int64_t lo = b * rpb;
    const std::int64_t hi = std::min(n, lo + rpb);
    rel_offsets.push_back(blocks.size());
    const std::size_t block_start = blocks.size();

    std::string deltas;
    std::uint64_t prev_bits = TimeBits(records[static_cast<std::size_t>(lo)].time);
    for (std::int64_t j = lo + 1; j < hi; ++j) {
      std::uint64_t bits = TimeBits(records[static_cast<std::size_t>(j)].time);
      PutVarint(&deltas, bits - prev_bits);
      prev_bits = bits;
    }

    Put<std::uint64_t>(&blocks, TimeBits(records[static_cast<std::size_t>(lo)].time));
    Put<std::uint64_t>(&blocks, 0);  // checksum, patched below
    Put<std::uint32_t>(&blocks, static_cast<std::uint32_t>(hi - lo));
    Put<std::uint32_t>(&blocks, static_cast<std::uint32_t>(deltas.size()));
    blocks += deltas;
    PadTo8(&blocks);
    for (std::int64_t j = lo; j < hi; ++j) {
      const TraceRecord& r = records[static_cast<std::size_t>(j)];
      Put<std::int64_t>(&blocks, r.lba);
      Put<std::uint32_t>(&blocks, static_cast<std::uint32_t>(r.count));
      Put<std::uint16_t>(&blocks, static_cast<std::uint16_t>(r.stream));
      Put<std::uint8_t>(&blocks, r.is_write ? 1 : 0);
      Put<std::uint8_t>(&blocks, 0);
    }

    // Seal the block: the checksum covers every block byte except itself.
    const char* base = blocks.data() + block_start;
    std::uint64_t sum = Fnv1a64(base, 8, kFnvOffset);
    sum = Fnv1a64(base + 16, blocks.size() - block_start - 16, sum);
    std::memcpy(blocks.data() + block_start + kTraceBlockChecksumOffset, &sum, sizeof sum);
  }

  const std::int64_t index_bytes = 8 * num_blocks + 8;
  const std::int64_t blocks_start = kTraceHeaderBytes + index_bytes;
  const std::int64_t footer_offset = blocks_start + static_cast<std::int64_t>(blocks.size());

  out->reserve(static_cast<std::size_t>(footer_offset + kTraceFooterBytes));
  Put<std::uint32_t>(out, kTraceMagic);
  Put<std::uint32_t>(out, kTraceVersion);
  Put<std::uint64_t>(out, 0);  // flags
  Put<std::int64_t>(out, space);
  Put<std::int64_t>(out, n);
  Put<std::int64_t>(out, num_blocks);
  Put<std::int64_t>(out, rpb);
  Put<std::uint64_t>(out, static_cast<std::uint64_t>(kTraceHeaderBytes));
  Put<std::uint64_t>(out, static_cast<std::uint64_t>(footer_offset));
  Put<std::uint64_t>(out, Fnv1a64(out->data(), 64));

  const std::size_t index_start = out->size();
  for (std::uint64_t rel : rel_offsets) {
    Put<std::uint64_t>(out, static_cast<std::uint64_t>(blocks_start) + rel);
  }
  Put<std::uint64_t>(out, Fnv1a64(out->data() + index_start, 8 * static_cast<std::size_t>(num_blocks)));

  *out += blocks;

  const std::size_t footer_start = out->size();
  PutBytes(out, &stats, sizeof stats);
  Put<std::uint32_t>(out, kTraceFooterMagic);
  Put<std::uint32_t>(out, 0);  // reserved
  Put<std::uint64_t>(out, Fnv1a64(out->data() + footer_start, out->size() - footer_start));

  TraceCompileResult result;
  result.ok = true;
  result.records = n;
  result.bytes = static_cast<std::int64_t>(out->size());
  result.stats = stats;
  return result;
}

TraceCompileResult CompileTrace(WorkloadSource& source, std::string* out,
                                const TraceCompileOptions& options, std::int64_t max_records) {
  std::vector<TraceRecord> records;
  TraceRecord r;
  while ((max_records < 0 || static_cast<std::int64_t>(records.size()) < max_records) &&
         source.Next(&r)) {
    records.push_back(r);
  }
  TraceCompileOptions opts = options;
  if (opts.address_space_sectors <= 0) {
    opts.address_space_sectors = source.AddressSpaceSectors();
  }
  return CompileRecords(std::move(records), out, opts);
}

TraceCompileResult CompileTraceToFile(WorkloadSource& source, const std::string& path,
                                      const TraceCompileOptions& options,
                                      std::int64_t max_records) {
  std::string bytes;
  TraceCompileResult result = CompileTrace(source, &bytes, options, max_records);
  if (!result.ok) {
    return result;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  if (!f) {
    return CompileError("cannot write compiled trace to " + path);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Reader.

std::unique_ptr<CompiledTraceReader> CompiledTraceReader::FromBuffer(std::string bytes) {
  auto reader = std::unique_ptr<CompiledTraceReader>(new CompiledTraceReader());
  reader->owned_ = std::move(bytes);
  reader->data_ = reinterpret_cast<const std::uint8_t*>(reader->owned_.data());
  reader->size_ = reader->owned_.size();
  reader->Validate();
  return reader;
}

std::unique_ptr<CompiledTraceReader> CompiledTraceReader::Open(const std::string& path) {
  auto reader = std::unique_ptr<CompiledTraceReader>(new CompiledTraceReader());
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    reader->Fail("cannot open compiled trace '" + path + "'", 0);
    return reader;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    reader->Fail("cannot stat compiled trace '" + path + "'", 0);
    return reader;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* base = size > 0 ? ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0) : MAP_FAILED;
  if (base != MAP_FAILED) {
    reader->mmap_base_ = base;
    reader->mmap_len_ = size;
    reader->data_ = static_cast<const std::uint8_t*>(base);
    reader->size_ = size;
    ::close(fd);
  } else {
    // mmap can fail on exotic filesystems; fall back to a plain read.
    ::close(fd);
    std::ifstream f(path, std::ios::binary);
    reader->owned_.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
    if (!f) {
      reader->Fail("cannot read compiled trace '" + path + "'", 0);
      return reader;
    }
    reader->data_ = reinterpret_cast<const std::uint8_t*>(reader->owned_.data());
    reader->size_ = reader->owned_.size();
  }
  reader->Validate();
  return reader;
}

std::unique_ptr<CompiledTraceReader> CompiledTraceReader::OpenOrDie(const std::string& path) {
  auto reader = Open(path);
  HIB_CHECK(reader->ok()) << reader->error();
  return reader;
}

CompiledTraceReader::~CompiledTraceReader() {
  if (mmap_base_ != nullptr) {
    ::munmap(mmap_base_, mmap_len_);
  }
}

bool CompiledTraceReader::Fail(const std::string& what, std::int64_t offset) {
  if (error_.empty()) {
    error_ = "compiled trace check failed: " + what + " @ byte " + std::to_string(offset);
    HIB_LOG(kWarning) << error_;
  }
  return false;
}

void CompiledTraceReader::Validate() {
  if (!error_.empty()) {
    return;
  }
  const std::int64_t size = static_cast<std::int64_t>(size_);
  if (size < kTraceHeaderBytes + kTraceFooterBytes) {
    Fail("file too small for header + footer", size);
    return;
  }
  if (Get<std::uint32_t>(data_, 0) != kTraceMagic) {
    Fail("bad magic (not a HIBT trace)", 0);
    return;
  }
  if (Get<std::uint32_t>(data_, 4) != kTraceVersion) {
    Fail("unsupported version " + std::to_string(Get<std::uint32_t>(data_, 4)), 4);
    return;
  }
  if (Get<std::uint64_t>(data_, 64) != Fnv1a64(data_, 64)) {
    Fail("header checksum mismatch", 64);
    return;
  }
  address_space_sectors_ = Get<std::int64_t>(data_, 16);
  num_records_ = Get<std::int64_t>(data_, 24);
  num_blocks_ = Get<std::int64_t>(data_, 32);
  const std::int64_t rpb = Get<std::int64_t>(data_, 40);
  index_offset_ = static_cast<std::int64_t>(Get<std::uint64_t>(data_, 48));
  footer_offset_ = static_cast<std::int64_t>(Get<std::uint64_t>(data_, 56));
  if (address_space_sectors_ <= 0 || num_records_ < 0 || rpb < 1) {
    Fail("implausible header fields", 16);
    return;
  }
  if (num_blocks_ != (num_records_ > 0 ? (num_records_ + rpb - 1) / rpb : 0)) {
    Fail("block count inconsistent with record count", 32);
    return;
  }
  if (index_offset_ != kTraceHeaderBytes) {
    Fail("bad index offset", 48);
    return;
  }
  if (num_blocks_ > (size - kTraceHeaderBytes - kTraceFooterBytes) / 8) {
    Fail("block index larger than the file", 32);
    return;
  }
  const std::int64_t index_end = index_offset_ + 8 * num_blocks_ + 8;
  if (footer_offset_ != size - kTraceFooterBytes || footer_offset_ < index_end) {
    Fail("bad footer offset (truncated file?)", 56);
    return;
  }
  const std::size_t footer_sum_bytes = static_cast<std::size_t>(kTraceFooterBytes) - 8;
  if (Get<std::uint64_t>(data_, footer_offset_ + kTraceFooterBytes - 8) !=
      Fnv1a64(data_ + footer_offset_, footer_sum_bytes)) {
    Fail("footer checksum mismatch", footer_offset_);
    return;
  }
  if (Get<std::uint32_t>(data_, footer_offset_ + 80) != kTraceFooterMagic) {
    Fail("bad footer magic", footer_offset_ + 80);
    return;
  }
  if (Get<std::uint64_t>(data_, index_end - 8) !=
      Fnv1a64(data_ + index_offset_, 8 * static_cast<std::size_t>(num_blocks_))) {
    Fail("block index checksum mismatch", index_offset_);
    return;
  }
  std::memcpy(&stats_, data_ + footer_offset_, sizeof stats_);
  if (stats_.records != num_records_) {
    Fail("footer record count disagrees with header", footer_offset_);
    return;
  }
  block_verified_.assign(static_cast<std::size_t>(num_blocks_), false);
  Reset();
}

bool CompiledTraceReader::EnterBlock(std::int64_t b) {
  const std::int64_t index_end = index_offset_ + 8 * num_blocks_ + 8;
  const std::uint64_t raw_offset = Get<std::uint64_t>(data_, index_offset_ + 8 * b);
  if (raw_offset > static_cast<std::uint64_t>(footer_offset_ - kTraceBlockHeaderBytes)) {
    return Fail("block offset outside the file", index_offset_ + 8 * b);
  }
  const std::int64_t offset = static_cast<std::int64_t>(raw_offset);
  if (offset < index_end || offset % 8 != 0) {
    return Fail("misaligned block offset", index_offset_ + 8 * b);
  }
  const std::uint64_t base_bits = Get<std::uint64_t>(data_, offset);
  const std::uint64_t stored_sum = Get<std::uint64_t>(data_, offset + 8);
  const std::uint32_t nrec = Get<std::uint32_t>(data_, offset + 16);
  const std::uint32_t tbytes = Get<std::uint32_t>(data_, offset + 20);
  if (nrec < 1) {
    return Fail("empty block", offset);
  }
  const std::int64_t time_start = offset + kTraceBlockHeaderBytes;
  const std::int64_t time_end = time_start + static_cast<std::int64_t>(tbytes);
  const std::int64_t rec_start = (time_end + 7) & ~std::int64_t{7};
  if (time_end < time_start || rec_start > footer_offset_ - 16 * static_cast<std::int64_t>(nrec)) {
    return Fail("block overruns the file (truncated block?)", offset);
  }
  const std::int64_t block_end = rec_start + 16 * static_cast<std::int64_t>(nrec);
  if (emitted_ + static_cast<std::int64_t>(nrec) > num_records_) {
    return Fail("block overruns the trace record count", offset);
  }
  if (!block_verified_[static_cast<std::size_t>(b)]) {
    std::uint64_t sum = Fnv1a64(data_ + offset, 8, kFnvOffset);
    sum = Fnv1a64(data_ + offset + 16, static_cast<std::size_t>(block_end - offset - 16), sum);
    if (sum != stored_sum) {
      return Fail("block checksum mismatch", offset);
    }
    block_verified_[static_cast<std::size_t>(b)] = true;
  }
  if (base_bits >= kInfTimeBits) {
    return Fail("non-finite block base timestamp", offset);
  }
  if (emitted_ > 0 && base_bits < time_bits_) {
    return Fail("non-monotonic block base timestamp", offset);
  }
  block_records_ = nrec;
  rec_in_block_ = 0;
  time_pos_ = time_start;
  time_end_ = time_end;
  rec_pos_ = rec_start;
  time_bits_ = base_bits;
  first_in_block_ = true;
  return true;
}

bool CompiledTraceReader::Next(TraceRecord* out) {
  if (!error_.empty()) {
    return false;
  }
  if (block_ < 0) {
    if (num_blocks_ == 0) {
      return false;
    }
    block_ = 0;
    if (!EnterBlock(0)) {
      return false;
    }
  }
  while (rec_in_block_ == block_records_) {
    ++block_;
    if (block_ >= num_blocks_) {
      if (emitted_ != num_records_) {
        Fail("trace ended with fewer records than the header promised",
             static_cast<std::int64_t>(size_));
      }
      return false;
    }
    if (!EnterBlock(block_)) {
      return false;
    }
  }

  if (first_in_block_) {
    first_in_block_ = false;  // time_bits_ already holds the block base
  } else {
    std::uint64_t delta = 0;
    int shift = 0;
    while (true) {
      if (time_pos_ >= time_end_) {
        Fail("truncated varint timestamp delta", time_pos_);
        return false;
      }
      const std::uint8_t byte = data_[time_pos_++];
      if (shift == 63 && byte > 1) {
        Fail("overflowing varint timestamp delta", time_pos_ - 1);
        return false;
      }
      delta |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
      if (shift > 63) {
        Fail("overflowing varint timestamp delta", time_pos_ - 1);
        return false;
      }
    }
    if (delta > kInfTimeBits - time_bits_) {
      Fail("timestamp delta overflows past infinity", time_pos_);
      return false;
    }
    time_bits_ += delta;
    if (time_bits_ >= kInfTimeBits) {
      Fail("non-finite timestamp", time_pos_);
      return false;
    }
  }

  const std::int64_t lba = Get<std::int64_t>(data_, rec_pos_);
  const std::uint32_t count = Get<std::uint32_t>(data_, rec_pos_ + 8);
  const std::uint16_t stream = Get<std::uint16_t>(data_, rec_pos_ + 12);
  const std::uint8_t flags = Get<std::uint8_t>(data_, rec_pos_ + 14);
  if (lba < 0 || count < 1 ||
      lba > address_space_sectors_ - static_cast<SectorCount>(count)) {
    Fail("record lba/count outside the address space", rec_pos_);
    return false;
  }
  out->time = TimeFromBits(time_bits_);
  out->lba = lba;
  out->count = static_cast<SectorCount>(count);
  out->is_write = (flags & 1) != 0;
  out->stream = stream;
  rec_pos_ += kTraceRecordBytes;
  ++rec_in_block_;
  ++emitted_;
  return true;
}

void CompiledTraceReader::Reset() {
  // A corrupt trace stays corrupt: error_ latches, so a Reset() after a
  // mid-stream failure does not reopen the garbage for replay.
  block_ = -1;
  rec_in_block_ = 0;
  block_records_ = 0;
  time_pos_ = 0;
  time_end_ = 0;
  rec_pos_ = 0;
  time_bits_ = 0;
  first_in_block_ = true;
  emitted_ = 0;
}

}  // namespace hib
