#include "src/trace/spc_reader.h"

#include <algorithm>
#include <cstdlib>

#include "src/util/check.h"
#include "src/util/log.h"

namespace hib {

SpcTraceReader::SpcTraceReader(SectorAddr address_space_sectors, int max_asus,
                               TimeOrderPolicy time_order)
    : address_space_sectors_(address_space_sectors),
      max_asus_(std::max(1, max_asus)),
      asu_slice_sectors_(address_space_sectors / std::max(1, max_asus)),
      time_order_(time_order) {}

SpcTraceReader::SpcTraceReader(std::string path, SectorAddr address_space_sectors, int max_asus,
                               TimeOrderPolicy time_order)
    : SpcTraceReader(address_space_sectors, max_asus, time_order) {
  path_ = std::move(path);
  OpenStream();
}

std::unique_ptr<SpcTraceReader> SpcTraceReader::FromString(std::string contents,
                                                           SectorAddr address_space_sectors,
                                                           int max_asus,
                                                           TimeOrderPolicy time_order) {
  auto reader = std::unique_ptr<SpcTraceReader>(
      new SpcTraceReader(address_space_sectors, max_asus, time_order));
  reader->memory_buffer_ = std::move(contents);
  reader->OpenStream();
  return reader;
}

void SpcTraceReader::OpenStream() {
  if (!path_.empty()) {
    stream_ = std::make_unique<std::ifstream>(path_);
  } else {
    stream_ = std::make_unique<std::istringstream>(memory_buffer_);
  }
  last_time_ = SimTime{};
}

bool SpcTraceReader::ParseLine(const std::string& line, TraceRecord* out) {
  // asu,lba,size_bytes,opcode,timestamp
  std::istringstream in(line);
  std::string field;
  auto next_field = [&](std::string* dst) {
    return static_cast<bool>(std::getline(in, *dst, ','));
  };
  std::string asu_s, lba_s, size_s, op_s, ts_s;
  if (!next_field(&asu_s) || !next_field(&lba_s) || !next_field(&size_s) ||
      !next_field(&op_s) || !next_field(&ts_s)) {
    return false;
  }
  char* end = nullptr;
  long asu = std::strtol(asu_s.c_str(), &end, 10);
  if (end == asu_s.c_str() || asu < 0) {
    return false;
  }
  long long lba = std::strtoll(lba_s.c_str(), &end, 10);
  if (end == lba_s.c_str() || lba < 0) {
    return false;
  }
  long long size_bytes = std::strtoll(size_s.c_str(), &end, 10);
  if (end == size_s.c_str() || size_bytes <= 0) {
    return false;
  }
  // Trim whitespace from the opcode.
  std::string op;
  for (char c : op_s) {
    if (!isspace(static_cast<unsigned char>(c))) {
      op.push_back(c);
    }
  }
  if (op != "r" && op != "R" && op != "w" && op != "W") {
    return false;
  }
  double ts = std::strtod(ts_s.c_str(), &end);
  if (end == ts_s.c_str() || ts < 0.0) {
    return false;
  }

  SectorCount count = (size_bytes + kSectorBytes - 1) / kSectorBytes;
  count = std::min<SectorCount>(count, std::max<SectorCount>(1, asu_slice_sectors_));
  SectorAddr base = (asu % max_asus_) * asu_slice_sectors_;
  SectorAddr offset = asu_slice_sectors_ > count
                          ? lba % (asu_slice_sectors_ - count + 1)
                          : 0;
  out->lba = std::min(base + offset, address_space_sectors_ - count);
  out->count = count;
  out->is_write = (op == "w" || op == "W");
  out->time = Seconds(ts);
  out->stream = static_cast<int>(asu);
  return true;
}

bool SpcTraceReader::Next(TraceRecord* out) {
  if (!stream_ || !*stream_) {
    return false;
  }
  std::string line;
  while (std::getline(*stream_, line)) {
    ++line_number_;
    // CRLF traces (SPC files often come from Windows tooling): getline stops
    // at '\n' and leaves the '\r' on the line — strip it so it neither turns
    // a blank line into a "parse error" nor rides into the last field.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    // Skip blank (including whitespace-only) and comment lines.
    if (line.find_first_not_of(" \t") == std::string::npos || line[0] == '#') {
      continue;
    }
    if (!ParseLine(line, out)) {
      ++parse_errors_;
      continue;
    }
    if (time_order_ != TimeOrderPolicy::kAccept && out->time < last_time_) {
      // SPC traces are sorted by definition; a backwards timestamp means the
      // file is damaged, not that the clock should be repaired for it.
      HIB_CHECK(time_order_ != TimeOrderPolicy::kAbort)
          << "non-monotonic SPC timestamp at line " << line_number_ << ": " << out->time
          << " after " << last_time_;
      ++time_order_errors_;
      if (time_order_errors_ == 1) {
        HIB_LOG(kWarning) << "SPC trace: rejecting non-monotonic record at line " << line_number_
                          << " (" << out->time << " after " << last_time_ << ")";
      }
      continue;
    }
    if (time_order_ != TimeOrderPolicy::kAccept) {
      last_time_ = out->time;
    }
    return true;
  }
  return false;
}

void SpcTraceReader::Reset() {
  OpenStream();
  line_number_ = 0;
  // The monotonicity check restarts with the stream, so its error count does
  // too; parse_errors_ stays cumulative across passes.
  time_order_errors_ = 0;
}

}  // namespace hib
