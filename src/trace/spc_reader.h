// Reader for SPC-1-style ASCII block traces, so genuine traces (Cello99
// exports, UMass/SPC traces, Microsoft production traces converted to this
// form) can replace the synthetic generators.
//
// Line format (comma separated, one request per line):
//
//   asu,lba,size_bytes,opcode,timestamp
//
//   asu        integer application storage unit id (mapped to an address
//              offset: each ASU gets a contiguous slice of the space)
//   lba        sector address within the ASU
//   size_bytes request size in bytes (rounded up to whole sectors)
//   opcode     "r"/"R" for reads, "w"/"W" for writes
//   timestamp  seconds from trace start (float, nondecreasing)
//
// Blank lines and lines starting with '#' are skipped.
#ifndef HIBERNATOR_SRC_TRACE_SPC_READER_H_
#define HIBERNATOR_SRC_TRACE_SPC_READER_H_

#include <fstream>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace hib {

// What to do with a record whose timestamp runs backwards.  SPC traces are
// sorted by definition, so a backwards timestamp means the file is damaged
// or was concatenated wrong — silently repairing it (the old clamp behavior)
// would hide exactly the corruption the trace compiler needs surfaced.
enum class TimeOrderPolicy {
  kReject,  // drop the record, count it in time_order_errors(), keep going
  kAbort,   // HIB_CHECK-fail with the offending timestamps (strict tools)
  kAccept,  // pass records through unordered (the trace compiler sorts)
};

class SpcTraceReader : public WorkloadSource {
 public:
  // Reads from a file on disk.  `asu_slice_sectors` is the address-space
  // slice reserved per ASU; LBAs beyond a slice wrap within it.
  SpcTraceReader(std::string path, SectorAddr address_space_sectors, int max_asus = 8,
                 TimeOrderPolicy time_order = TimeOrderPolicy::kReject);

  // Reads from an in-memory string (tests).
  static std::unique_ptr<SpcTraceReader> FromString(std::string contents,
                                                    SectorAddr address_space_sectors,
                                                    int max_asus = 8,
                                                    TimeOrderPolicy time_order = TimeOrderPolicy::kReject);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return address_space_sectors_; }

  // Number of malformed lines skipped so far.
  std::int64_t parse_errors() const { return parse_errors_; }

  // Number of records rejected for non-monotonic timestamps (kReject only).
  // Cleared by Reset(): the monotonicity check restarts with the stream.
  std::int64_t time_order_errors() const { return time_order_errors_; }

 private:
  SpcTraceReader(SectorAddr address_space_sectors, int max_asus, TimeOrderPolicy time_order);
  void OpenStream();
  bool ParseLine(const std::string& line, TraceRecord* out);

  std::string path_;           // empty when reading from memory
  std::string memory_buffer_;  // used when path_ is empty
  std::unique_ptr<std::istream> stream_;
  SectorAddr address_space_sectors_;
  int max_asus_;
  SectorAddr asu_slice_sectors_;
  TimeOrderPolicy time_order_;
  std::int64_t parse_errors_ = 0;
  std::int64_t time_order_errors_ = 0;
  std::int64_t line_number_ = 0;
  SimTime last_time_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_SPC_READER_H_
