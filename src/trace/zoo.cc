#include "src/trace/zoo.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace hib {

// ------------------------------------------------------------ ML training ---

MlTrainingWorkload::MlTrainingWorkload(MlTrainingWorkloadParams params)
    : params_(params), rng_(params.seed) {
  HIB_CHECK_GT(params_.address_space_sectors, 0);
  HIB_CHECK_GE(params_.shards, 1);
  HIB_CHECK(params_.epoch_ms > Duration{});
  HIB_CHECK(params_.checkpoint_gap_ms > Duration{});
  HIB_CHECK_GT(params_.read_iops, 0.0);
  Reset();
}

void MlTrainingWorkload::ShuffleShards() {
  shard_order_.resize(static_cast<std::size_t>(params_.shards));
  for (int i = 0; i < params_.shards; ++i) {
    shard_order_[static_cast<std::size_t>(i)] = i;
  }
  for (int i = params_.shards - 1; i > 0; --i) {
    std::int64_t j = rng_.NextInRange(0, i);
    std::swap(shard_order_[static_cast<std::size_t>(i)], shard_order_[static_cast<std::size_t>(j)]);
  }
}

double MlTrainingWorkload::PeakIopsHint() const {
  // The checkpoint burst is the densest stretch: one write per gap.
  return std::max(params_.read_iops, kMsPerSecond / params_.checkpoint_gap_ms.value());
}

bool MlTrainingWorkload::Next(TraceRecord* out) {
  const SectorAddr space = params_.address_space_sectors;
  // Checkpoints land sequentially in the top 1/16 of the space.
  const SectorAddr ckpt_base = space - space / 16;

  if (checkpoint_remaining_ > 0) {
    now_ += params_.checkpoint_gap_ms;
    if (now_ >= params_.duration_ms) {
      return false;
    }
    const SectorCount count = std::clamp<SectorCount>(params_.checkpoint_sectors, 1, space);
    if (checkpoint_lba_ > space - count) {
      checkpoint_lba_ = std::min(ckpt_base, space - count);
    }
    out->time = now_;
    out->lba = checkpoint_lba_;
    out->count = count;
    out->is_write = true;
    out->stream = 1;
    checkpoint_lba_ += count;
    --checkpoint_remaining_;
    return true;
  }

  now_ += Seconds(rng_.NextExponential(1.0 / params_.read_iops));
  if (now_ >= params_.duration_ms) {
    return false;
  }
  if (now_ >= params_.epoch_ms * static_cast<double>(epoch_ + 1)) {
    // Epoch boundary: reshuffle the shard order and start the checkpoint
    // burst, whose first write goes out right now.
    ++epoch_;
    reads_this_epoch_ = 0;
    shard_pos_ = 0;
    ShuffleShards();
    checkpoint_remaining_ = std::max(0, params_.checkpoint_writes);
    checkpoint_lba_ = std::min(ckpt_base, space - 1);
    if (checkpoint_remaining_ > 0) {
      const SectorCount count = std::clamp<SectorCount>(params_.checkpoint_sectors, 1, space);
      out->time = now_;
      out->lba = std::min(checkpoint_lba_, space - count);
      out->count = count;
      out->is_write = true;
      out->stream = 1;
      checkpoint_lba_ = out->lba + count;
      --checkpoint_remaining_;
      return true;
    }
  }

  // Dataloader read: sequential within the active shard, shards visited in
  // this epoch's shuffled order.
  const std::int64_t reads_per_epoch = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(params_.read_iops * ToSeconds(params_.epoch_ms)));
  const std::int64_t reads_per_shard =
      std::max<std::int64_t>(1, reads_per_epoch / params_.shards);
  const std::size_t shard_idx =
      static_cast<std::size_t>((reads_this_epoch_ / reads_per_shard) %
                               static_cast<std::int64_t>(params_.shards));
  const int shard = shard_order_[shard_idx];
  const SectorAddr slice = std::max<SectorAddr>(1, space / params_.shards);
  const SectorCount count = std::clamp<SectorCount>(params_.read_sectors, 1, space);
  if (shard_pos_ + count > slice) {
    shard_pos_ = 0;  // wrap within the shard
  }
  out->time = now_;
  out->lba = std::min<SectorAddr>(shard * slice + shard_pos_, space - count);
  out->count = count;
  out->is_write = false;
  out->stream = 0;
  shard_pos_ += count;
  ++reads_this_epoch_;
  return true;
}

void MlTrainingWorkload::Reset() {
  rng_ = Pcg32(params_.seed);
  now_ = SimTime{};
  epoch_ = 0;
  reads_this_epoch_ = 0;
  shard_pos_ = 0;
  checkpoint_remaining_ = 0;
  checkpoint_lba_ = 0;
  ShuffleShards();
}

// ------------------------------------------------------------ backup scan ---

BackupScanWorkload::BackupScanWorkload(BackupScanWorkloadParams params)
    : params_(params), rng_(params.seed) {
  HIB_CHECK_GT(params_.address_space_sectors, 0);
  HIB_CHECK(params_.day_ms > Duration{});
  HIB_CHECK(params_.window_ms > Duration{});
  HIB_CHECK(params_.window_start_ms + params_.window_ms <= params_.day_ms)
      << "the scan window must fit within one day";
  HIB_CHECK_GT(params_.scan_iops, 0.0);
  Reset();
}

bool BackupScanWorkload::InWindow(SimTime t) const {
  const double tod = std::fmod(t.value(), params_.day_ms.value());
  return tod >= params_.window_start_ms.value() &&
         tod < params_.window_start_ms.value() + params_.window_ms.value();
}

double BackupScanWorkload::PeakIopsHint() const {
  return std::max(params_.scan_iops, params_.background_iops);
}

bool BackupScanWorkload::Next(TraceRecord* out) {
  const SectorAddr space = params_.address_space_sectors;
  const double rate =
      std::max(1e-6, InWindow(now_) ? params_.scan_iops : params_.background_iops);
  now_ += Seconds(rng_.NextExponential(1.0 / rate));
  if (now_ >= params_.duration_ms) {
    return false;
  }
  if (InWindow(now_)) {
    // Sequential full-array scan, wrapping over the space night after night.
    const SectorCount count = std::clamp<SectorCount>(params_.scan_sectors, 1, space);
    if (scan_pos_ > space - count) {
      scan_pos_ = 0;
    }
    out->time = now_;
    out->lba = scan_pos_;
    out->count = count;
    out->is_write = false;
    out->stream = 2;
    scan_pos_ += count;
    return true;
  }
  // Sparse verify read at a uniformly random address.
  const SectorCount count = std::clamp<SectorCount>(params_.background_sectors, 1, space);
  out->time = now_;
  out->lba = rng_.NextInRange(0, space - count);
  out->count = count;
  out->is_write = false;
  out->stream = 3;
  return true;
}

void BackupScanWorkload::Reset() {
  rng_ = Pcg32(params_.seed);
  now_ = SimTime{};
  scan_pos_ = 0;
}

}  // namespace hib
