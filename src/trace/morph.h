// Trace morphers: composable WorkloadSource wrappers that reshape an existing
// trace (compiled, ASCII, or synthetic) without re-collecting it.  The paper's
// questions are mostly counterfactuals — "what if this array had 10x the
// users", "what if the US trace ran in the Singapore timezone" — and a morph
// stack answers them against the *real* request structure instead of a
// synthetic stand-in:
//
//   auto w = std::make_unique<RateScaleMorph>(
//       std::make_unique<LbaRemapMorph>(CompiledTraceReader::Open(path),
//                                       bigger_array.DataSectors()),
//       /*factor=*/10);
//
// Composition rules (see DESIGN.md "Trace pipeline"):
//   * Every morpher preserves the WorkloadSource contract: nondecreasing
//     timestamps, LBAs within AddressSpaceSectors(), deterministic replay
//     after Reset().
//   * Remap before rate-scale when doing both (scale replicates LBAs into
//     the *target* space).
//   * PhaseSpliceMorph drops records at or beyond its period — put it last
//     if an inner morpher could stretch the trace.
#ifndef HIBERNATOR_SRC_TRACE_MORPH_H_
#define HIBERNATOR_SRC_TRACE_MORPH_H_

#include <memory>

#include "src/trace/trace.h"
#include "src/util/random.h"

namespace hib {

// Multiplies the arrival rate by an integer factor: every inner record is
// emitted `factor` times, spread evenly across the gap to the next inner
// arrival (so the rate scales smoothly instead of arriving in lockstep
// bursts), with each replica's LBA shifted by a per-replica deterministic
// offset — factor distinct "users" running the same application.  Record
// count is exactly factor x inner, and ordering is preserved.
class RateScaleMorph : public WorkloadSource {
 public:
  RateScaleMorph(std::unique_ptr<WorkloadSource> inner, int factor);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return inner_->AddressSpaceSectors(); }
  Duration DurationHint() const override { return inner_->DurationHint(); }
  double PeakIopsHint() const override {
    return inner_->PeakIopsHint() * static_cast<double>(factor_);
  }

 private:
  std::unique_ptr<WorkloadSource> inner_;
  int factor_;
  TraceRecord cur_;
  TraceRecord next_;
  bool have_cur_ = false;
  bool have_next_ = false;
  bool primed_ = false;
  int replica_ = 0;
};

// Remaps LBAs onto a (typically larger) target address space, preserving
// within-chunk sequentiality: the 1 MB locality chunk index is spread over
// the target's chunks with the same bijective multiplicative scramble the
// synthetic generators use, and the offset within the chunk is kept.  Every
// emitted record satisfies 0 <= lba and lba + count <= target space.
class LbaRemapMorph : public WorkloadSource {
 public:
  LbaRemapMorph(std::unique_ptr<WorkloadSource> inner, SectorAddr target_space_sectors,
                SectorCount chunk_sectors = 2048);

  bool Next(TraceRecord* out) override;
  void Reset() override { inner_->Reset(); }
  SectorAddr AddressSpaceSectors() const override { return target_space_sectors_; }
  Duration DurationHint() const override { return inner_->DurationHint(); }
  double PeakIopsHint() const override { return inner_->PeakIopsHint(); }

 private:
  std::unique_ptr<WorkloadSource> inner_;
  SectorAddr target_space_sectors_;
  SectorCount chunk_sectors_;
};

// Rotates the diurnal phase: record times become (t + shift) mod period, so
// a daytime-peaked trace can stand in for an array on the other side of the
// planet while keeping its exact request structure.  Implemented as two
// sorted passes over the inner source (tail first, then head), so the output
// stays nondecreasing.  Records at t >= period are dropped.
class PhaseSpliceMorph : public WorkloadSource {
 public:
  // period <= 0 means "use inner->DurationHint()".
  PhaseSpliceMorph(std::unique_ptr<WorkloadSource> inner, Duration shift,
                   Duration period = Duration{});

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return inner_->AddressSpaceSectors(); }
  Duration DurationHint() const override { return period_; }
  double PeakIopsHint() const override { return inner_->PeakIopsHint(); }

 private:
  std::unique_ptr<WorkloadSource> inner_;
  Duration period_;
  Duration split_;  // inner records at t >= split_ are emitted first
  bool in_tail_pass_ = true;
  SimTime last_out_;
  bool emitted_any_ = false;
};

// Keeps each record independently with probability `keep_fraction` (seeded,
// deterministic): thins a trace for quick experiments while preserving its
// temporal and spatial shape.
class SampleMorph : public WorkloadSource {
 public:
  SampleMorph(std::unique_ptr<WorkloadSource> inner, double keep_fraction, std::uint64_t seed);

  bool Next(TraceRecord* out) override;
  void Reset() override;
  SectorAddr AddressSpaceSectors() const override { return inner_->AddressSpaceSectors(); }
  Duration DurationHint() const override { return inner_->DurationHint(); }
  double PeakIopsHint() const override { return inner_->PeakIopsHint() * keep_fraction_; }

 private:
  std::unique_ptr<WorkloadSource> inner_;
  double keep_fraction_;
  std::uint64_t seed_;
  Pcg32 rng_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_TRACE_MORPH_H_
