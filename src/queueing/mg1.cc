#include "src/queueing/mg1.h"

#include <algorithm>
#include <limits>

namespace hib {

double Mg1Model::Utilization(Frequency lambda, Duration mean_service) {
  return lambda * mean_service;
}

Duration Mg1Model::ResponseTime(Frequency lambda, Duration mean_service, double scv) {
  return mean_service + WaitTime(lambda, mean_service, scv);
}

Duration Mg1Model::WaitTime(Frequency lambda, Duration mean_service, double scv) {
  double rho = Utilization(lambda, mean_service);
  if (rho >= 1.0) {
    return std::numeric_limits<Duration>::infinity();
  }
  if (rho <= 0.0) {
    return Duration{};
  }
  // P-K: W = lambda * E[S^2] / (2 (1 - rho)), with E[S^2] = S^2 (1 + c2).
  // Dimensions: Frequency * DurationSq -> Duration.
  return lambda * (mean_service * mean_service) * (1.0 + scv) / (2.0 * (1.0 - rho));
}

Duration Mg1Model::Gg1ResponseTime(Frequency lambda, Duration mean_service, double scv,
                                   double arrival_scv) {
  Duration wait = WaitTime(lambda, mean_service, scv);
  double factor = (arrival_scv + scv) / (1.0 + scv);
  return mean_service + wait * std::max(0.0, factor);
}

Frequency Mg1Model::MaxArrivalRate(Duration target, Duration mean_service, double scv) {
  if (target <= mean_service) {
    return Frequency{};
  }
  // Solve S + lambda S^2 (1+c2) / (2 (1 - lambda S)) = target for lambda.
  // Let a = S^2 (1+c2) / 2, T = target - S:
  //   lambda a = T (1 - lambda S)  =>  lambda = T / (a + T S)
  Duration t = target - mean_service;
  DurationSq a = mean_service * mean_service * (1.0 + scv) / 2.0;
  return t / (a + t * mean_service);  // Duration / DurationSq -> Frequency
}

SpeedServiceModel SpeedServiceModel::FromDisk(const DiskParams& disk,
                                              double mean_request_sectors,
                                              double write_fraction) {
  SpeedServiceModel model;
  model.levels.reserve(disk.speeds.size());
  for (const SpeedLevel& lvl : disk.speeds) {
    PerLevel entry;
    entry.rpm = lvl.rpm;
    Duration rev = lvl.RevolutionMs();
    Duration seek_mean = disk.seek.average_ms;
    Duration rot_mean = 0.5 * rev;
    Duration xfer = disk.TransferTime(static_cast<SectorCount>(mean_request_sectors), lvl.rpm);
    Duration settle = write_fraction * disk.write_settle_ms;
    entry.mean_ms = seek_mean + rot_mean + xfer + settle;

    // Variance: uniform rotational latency contributes rev^2/12; seek spread
    // is approximated as 40% of the mean seek (matches the 3-point curve's
    // dispersion for random access).
    DurationSq var = rev * rev / 12.0;
    Duration seek_sd = 0.4 * seek_mean;
    var += seek_sd * seek_sd;
    entry.scv = entry.mean_ms > Duration{} ? var / (entry.mean_ms * entry.mean_ms) : 0.0;
    model.levels.push_back(entry);
  }
  return model;
}

}  // namespace hib
