#include "src/queueing/mg1.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hib {

double Mg1Model::Utilization(double lambda_per_ms, Duration mean_service_ms) {
  return lambda_per_ms * mean_service_ms;
}

Duration Mg1Model::ResponseTime(double lambda_per_ms, Duration mean_service_ms, double scv) {
  return mean_service_ms + WaitTime(lambda_per_ms, mean_service_ms, scv);
}

Duration Mg1Model::WaitTime(double lambda_per_ms, Duration mean_service_ms, double scv) {
  double rho = Utilization(lambda_per_ms, mean_service_ms);
  if (rho >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  if (rho <= 0.0) {
    return 0.0;
  }
  // P-K: W = lambda * E[S^2] / (2 (1 - rho)), with E[S^2] = S^2 (1 + c2).
  return lambda_per_ms * mean_service_ms * mean_service_ms * (1.0 + scv) / (2.0 * (1.0 - rho));
}

Duration Mg1Model::Gg1ResponseTime(double lambda_per_ms, Duration mean_service_ms, double scv,
                                   double arrival_scv) {
  double wait = WaitTime(lambda_per_ms, mean_service_ms, scv);
  double factor = (arrival_scv + scv) / (1.0 + scv);
  return mean_service_ms + wait * std::max(0.0, factor);
}

double Mg1Model::MaxArrivalRate(Duration target_ms, Duration mean_service_ms, double scv) {
  if (target_ms <= mean_service_ms) {
    return 0.0;
  }
  // Solve S + lambda S^2 (1+c2) / (2 (1 - lambda S)) = target for lambda.
  // Let a = S^2 (1+c2) / 2, T = target - S:
  //   lambda a = T (1 - lambda S)  =>  lambda = T / (a + T S)
  double t = target_ms - mean_service_ms;
  double a = mean_service_ms * mean_service_ms * (1.0 + scv) / 2.0;
  return t / (a + t * mean_service_ms);
}

SpeedServiceModel SpeedServiceModel::FromDisk(const DiskParams& disk,
                                              double mean_request_sectors,
                                              double write_fraction) {
  SpeedServiceModel model;
  model.levels.reserve(disk.speeds.size());
  for (const SpeedLevel& lvl : disk.speeds) {
    PerLevel entry;
    entry.rpm = lvl.rpm;
    Duration rev = lvl.RevolutionMs();
    Duration seek_mean = disk.seek.average_ms;
    Duration rot_mean = 0.5 * rev;
    Duration xfer = disk.TransferTime(static_cast<SectorCount>(mean_request_sectors), lvl.rpm);
    Duration settle = write_fraction * disk.write_settle_ms;
    entry.mean_ms = seek_mean + rot_mean + xfer + settle;

    // Variance: uniform rotational latency contributes rev^2/12; seek spread
    // is approximated as 40% of the mean seek (matches the 3-point curve's
    // dispersion for random access).
    double var = rev * rev / 12.0;
    double seek_sd = 0.4 * seek_mean;
    var += seek_sd * seek_sd;
    entry.scv = entry.mean_ms > 0.0 ? var / (entry.mean_ms * entry.mean_ms) : 0.0;
    model.levels.push_back(entry);
  }
  return model;
}

}  // namespace hib
