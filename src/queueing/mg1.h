// Open M/G/1 queueing model used by Hibernator's CR algorithm to predict the
// per-disk average response time at each candidate speed before committing to
// a reconfiguration.
//
// For a disk receiving Poisson arrivals at rate lambda with mean service time
// S and squared coefficient of variation c2 (Var[S]/S^2), Pollaczek-Khinchine
// gives the mean response time
//
//   R = S + lambda * S^2 * (1 + c2) / (2 * (1 - lambda * S))
//
// which diverges as utilization rho = lambda * S approaches 1.
#ifndef HIBERNATOR_SRC_QUEUEING_MG1_H_
#define HIBERNATOR_SRC_QUEUEING_MG1_H_

#include <vector>

#include "src/disk/disk_params.h"
#include "src/obs/metrics.h"
#include "src/util/units.h"

namespace hib {

// Optional instrumentation feed for analytic evaluations (CR's candidate
// search).  Null pointers make Observe a no-op, so callers wire it only when
// a registry is in play; the policy leaves both null when HIB_OBS=0.
struct QueueingTelemetry {
  Counter* evaluations = nullptr;
  LogLinearHistogram* predicted_response_ms = nullptr;

  void Observe(Duration predicted) {
    if (evaluations != nullptr) {
      evaluations->Add(1);
    }
    if (predicted_response_ms != nullptr && IsFinite(predicted)) {
      // Duration / Duration is dimensionless: this is metric output.
      predicted_response_ms->Record(predicted / Ms(1.0));
    }
  }
};

class Mg1Model {
 public:
  // rho = lambda * S (dimensionless; the Frequency*Duration product).
  static double Utilization(Frequency lambda, Duration mean_service);

  // Mean response time; +infinity when rho >= 1 (unstable).
  static Duration ResponseTime(Frequency lambda, Duration mean_service, double scv);

  // Mean waiting time only.
  static Duration WaitTime(Frequency lambda, Duration mean_service, double scv);

  // G/G/1 approximation (Allen-Cunneen): scales the M/G/1 wait by
  // (ca2 + cs2) / (1 + cs2), where ca2 is the squared coefficient of
  // variation of interarrival times (1 = Poisson).  Bursty arrival streams
  // (ca2 >> 1, e.g. file-server traffic) queue far worse than Poisson, and
  // CR must know it before slowing a disk into a burst.
  static Duration Gg1ResponseTime(Frequency lambda, Duration mean_service, double scv,
                                  double arrival_scv);

  // Highest arrival rate at which the predicted response time stays at or
  // below `target`; zero if even an idle disk misses the target.
  static Frequency MaxArrivalRate(Duration target, Duration mean_service, double scv);
};

// Per-speed-level service-time statistics for a given request mix, derived
// analytically from the disk's mechanical parameters: mean = average seek +
// half revolution + transfer (+ write settle), variance from the uniform
// rotational latency plus seek spread.
struct SpeedServiceModel {
  struct PerLevel {
    int rpm = 0;
    Duration mean_ms;
    double scv = 0.0;  // squared coefficient of variation of service time
  };

  std::vector<PerLevel> levels;

  // `mean_request_sectors` and `write_fraction` describe the workload mix.
  static SpeedServiceModel FromDisk(const DiskParams& disk, double mean_request_sectors,
                                    double write_fraction);

  const PerLevel& Level(int level) const { return levels[static_cast<std::size_t>(level)]; }
  int num_levels() const { return static_cast<int>(levels.size()); }
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_QUEUEING_MG1_H_
