// Base / FPM: every disk spins at full speed for the whole run.  This is the
// paper's energy baseline and also defines the baseline response time that
// the other schemes' performance goals are expressed against.
#ifndef HIBERNATOR_SRC_POLICY_FULL_POWER_H_
#define HIBERNATOR_SRC_POLICY_FULL_POWER_H_

#include "src/policy/policy.h"

namespace hib {

class FullPowerPolicy : public PowerPolicy {
 public:
  std::string Name() const override { return "Base"; }

  void Attach(Simulator* /*sim*/, ArrayController* array) override {
    // Disks start at their top level; pin them there explicitly in case the
    // array was handed a previously reconfigured state.
    for (int i = 0; i < array->num_disks_total(); ++i) {
      array->disk(i).SetTargetRpm(array->disk(i).params().max_rpm());
    }
  }
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_FULL_POWER_H_
