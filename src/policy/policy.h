// Common interface for disk-array energy-management policies.
//
// A policy attaches to a simulator + array before trace replay starts,
// installs whatever periodic controllers it needs, and manipulates the array
// through the public surface: per-disk speed/standby control, the read
// router, the completion hook, and the migration queue.  The harness treats
// every scheme in the paper's evaluation (Base/FPM, TPM, DRPM, PDC, MAID,
// Hibernator) uniformly through this interface.
#ifndef HIBERNATOR_SRC_POLICY_POLICY_H_
#define HIBERNATOR_SRC_POLICY_POLICY_H_

#include <string>

#include "src/array/array.h"
#include "src/sim/simulator.h"

namespace hib {

class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  virtual std::string Name() const = 0;

  // Called once, before any request is replayed.  `sim` and `array` outlive
  // the policy's use of them.
  virtual void Attach(Simulator* sim, ArrayController* array) = 0;

  // Called after the trace drains, before metrics are read.
  virtual void Finish() {}

  // One-line human-readable parameter summary for reports.
  virtual std::string Describe() const { return Name(); }
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_POLICY_H_
