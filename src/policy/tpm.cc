#include "src/policy/tpm.h"

#include <sstream>

namespace hib {

Duration TpmBreakEvenMs(const DiskParams& disk) {
  Watts saved = disk.speeds.back().idle_power - disk.standby_power;
  if (saved <= Watts{}) {
    return Ms(1e15);  // standby never pays off
  }
  Joules cycle = disk.spin_down_energy + disk.spin_up_full_energy;
  // Joules / Watts is a Duration; the ms<->s scaling lives in the operator.
  return cycle / saved + disk.spin_down_ms + disk.spin_up_full_ms;
}

std::string TpmPolicy::Describe() const {
  std::ostringstream out;
  out << "TPM(threshold=" << ToSeconds(threshold_ms_) << "s)";
  return out.str();
}

void TpmPolicy::Attach(Simulator* sim, ArrayController* array) {
  sim_ = sim;
  array_ = array;
  threshold_ms_ = params_.idle_threshold_ms > Duration{} ? params_.idle_threshold_ms
                                                  : TpmBreakEvenMs(array->params().disk);
  sim_->SchedulePeriodic(params_.poll_period_ms, params_.poll_period_ms, [this] { Poll(); });
}

void TpmPolicy::Poll() {
  int first = params_.first_disk >= 0 ? params_.first_disk : 0;
  int last = params_.last_disk >= 0 ? params_.last_disk : array_->num_data_disks();
  for (int i = first; i < last; ++i) {
    Disk& disk = array_->disk(i);
    if (disk.FullyIdle() && sim_->Now() - disk.last_activity() >= threshold_ms_) {
      if (disk.SpinDown()) {
        HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.spin_down_decisions"));
        HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "spin-down",
                          sim_->Now(), i, static_cast<double>(i));
      }
    }
  }
}

}  // namespace hib
