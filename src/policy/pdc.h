// PDC: Popular Data Concentration (Pinheiro & Bianchini, ICS 2004).
//
// Periodically migrates the most popular data onto the first disks of the
// array (disk 0 holds the hottest extents, disk 1 the next-hottest, ...) so
// the trailing disks go cold and a TPM-style threshold can spin them down.
// PDC assumes an unstriped layout (each extent lives on exactly one disk), so
// the array must be configured with group_width == 1.
//
// The paper's critique, which this implementation reproduces: concentrating
// the load destroys the array's parallelism, so the leading disks saturate
// and response time balloons for data-center workloads.
#ifndef HIBERNATOR_SRC_POLICY_PDC_H_
#define HIBERNATOR_SRC_POLICY_PDC_H_

#include <string>

#include "src/policy/policy.h"

namespace hib {

struct PdcParams {
  Duration reorg_period_ms = Hours(1.0);
  // At most this many extents migrate per reorganization pass.
  std::int64_t migration_budget_extents = 2048;
  // TPM spin-down threshold for the cold disks; <= 0 = break-even.
  Duration idle_threshold_ms = Ms(-1.0);
  Duration poll_period_ms = Seconds(1.0);
};

class PdcPolicy : public PowerPolicy {
 public:
  explicit PdcPolicy(PdcParams params = {}) : params_(params) {}

  std::string Name() const override { return "PDC"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;

 private:
  void Reorganize();
  void Poll();

  PdcParams params_;
  Duration threshold_ms_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_PDC_H_
