// Adaptive TPM: threshold-based spin-down with an online-learned threshold.
//
// Classic TPM uses one fixed idle threshold (usually the break-even time).
// The adaptive variant keeps a small pool of candidate thresholds ("experts",
// after Helmbold et al.'s share algorithm for disk spin-down) and, per disk,
// weights them by how much energy each would have saved on the observed idle
// gaps; the working threshold is the weighted mean.  Long quiet periods pull
// the threshold down (sleep sooner), busy periods push it up (avoid wasteful
// spin cycles).
//
// Included because the paper's TPM baseline is often criticized as a straw
// man with a fixed threshold; this variant shows the conclusion is unchanged:
// data-center idle gaps are simply shorter than any profitable threshold.
#ifndef HIBERNATOR_SRC_POLICY_TPM_ADAPTIVE_H_
#define HIBERNATOR_SRC_POLICY_TPM_ADAPTIVE_H_

#include <string>
#include <vector>

#include "src/policy/policy.h"

namespace hib {

struct AdaptiveTpmParams {
  // Candidate thresholds as multiples of the break-even time.
  std::vector<double> expert_multipliers = {0.25, 0.5, 1.0, 2.0, 4.0};
  // Multiplicative-weights learning rate.
  double eta = 0.15;
  // Lower bound on any expert weight (keeps dead experts revivable).
  double weight_floor = 0.01;
  Duration poll_period_ms = Seconds(1.0);
};

class AdaptiveTpmPolicy : public PowerPolicy {
 public:
  explicit AdaptiveTpmPolicy(AdaptiveTpmParams params = {}) : params_(params) {}

  std::string Name() const override { return "TPM-Adaptive"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;

  // Current working threshold of a disk (ms); for tests and reports.
  Duration ThresholdOf(int disk_id) const;

 private:
  struct DiskState {
    std::vector<double> weights;     // one per expert
    SimTime idle_since = Ms(-1.0);   // start of the current idle gap, -1 if busy
    bool asleep = false;
  };

  void Poll();
  // Scores the ended idle gap against every expert and reweights.
  void LearnFromGap(DiskState& state, Duration gap_ms);
  Duration WorkingThreshold(const DiskState& state) const;

  AdaptiveTpmParams params_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
  Duration break_even_ms_;
  std::vector<DiskState> disks_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_TPM_ADAPTIVE_H_
