// TPM: Traditional (threshold-based) Power Management.
//
// The classic laptop-disk policy the paper uses as the "existing practice"
// baseline: spin a disk down to standby after it has been idle for a fixed
// threshold; spin it back up on the next request (paying the multi-second
// spin-up latency and its energy).  The default threshold is the 2-competitive
// break-even time: the idle duration whose saved energy exactly repays one
// spin-down + spin-up cycle.
//
// The paper's observation: data-center workloads rarely leave disks idle
// longer than the break-even time, so TPM saves little — and when it does
// fire, the spin-up latency wrecks response times.
#ifndef HIBERNATOR_SRC_POLICY_TPM_H_
#define HIBERNATOR_SRC_POLICY_TPM_H_

#include <string>

#include "src/policy/policy.h"

namespace hib {

struct TpmParams {
  // Idle threshold before spin-down; <= 0 selects the break-even time.
  Duration idle_threshold_ms = Ms(-1.0);
  Duration poll_period_ms = Seconds(1.0);
  // Only manage data disks with ids in [first_disk, last_disk); -1 = all.
  int first_disk = -1;
  int last_disk = -1;
};

// The break-even idle time for a disk: (spin-down + spin-up energy) /
// (idle power - standby power), plus the transition durations themselves.
Duration TpmBreakEvenMs(const DiskParams& disk);

class TpmPolicy : public PowerPolicy {
 public:
  explicit TpmPolicy(TpmParams params = {}) : params_(params) {}

  std::string Name() const override { return "TPM"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;

 private:
  void Poll();

  TpmParams params_;
  Duration threshold_ms_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_TPM_H_
