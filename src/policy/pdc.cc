#include "src/policy/pdc.h"

#include <sstream>
#include <vector>

#include "src/policy/tpm.h"

#include "src/util/check.h"

namespace hib {

std::string PdcPolicy::Describe() const {
  std::ostringstream out;
  out << "PDC(reorg=" << params_.reorg_period_ms / Hours(1.0)
      << "h, budget=" << params_.migration_budget_extents
      << " extents, threshold=" << ToSeconds(threshold_ms_) << "s)";
  return out.str();
}

void PdcPolicy::Attach(Simulator* sim, ArrayController* array) {
  HIB_CHECK_EQ(array->params().group_width, 1)
      << "PDC requires an unstriped (width-1) layout";
  sim_ = sim;
  array_ = array;
  threshold_ms_ = params_.idle_threshold_ms > Duration{} ? params_.idle_threshold_ms
                                                  : TpmBreakEvenMs(array->params().disk);
  sim_->SchedulePeriodic(params_.reorg_period_ms, params_.reorg_period_ms,
                         [this] { Reorganize(); });
  sim_->SchedulePeriodic(params_.poll_period_ms, params_.poll_period_ms, [this] { Poll(); });
}

void PdcPolicy::Reorganize() {
  TemperatureTracker& temps = array_->temperatures();
  LayoutManager& layout = array_->layout();
  temps.EndEpoch();

  // Target: rank r extent -> group r / per_group (hottest first onto disk 0).
  std::vector<std::int64_t> order = temps.SortedHottestFirst();
  std::int64_t per_group =
      (layout.num_extents() + layout.num_groups() - 1) / layout.num_groups();

  std::int64_t budget = params_.migration_budget_extents;
  for (std::size_t rank = 0; rank < order.size() && budget > 0; ++rank) {
    std::int64_t extent = order[rank];
    int target = static_cast<int>(static_cast<std::int64_t>(rank) / per_group);
    if (layout.GroupOf(extent) != target) {
      array_->RequestMigration(extent, target);
      HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.migrations_requested"));
      --budget;
    }
  }
  HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "reorganize",
                    sim_->Now(), 0,
                    static_cast<double>(params_.migration_budget_extents - budget));
}

void PdcPolicy::Poll() {
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    Disk& disk = array_->disk(i);
    if (disk.FullyIdle() && sim_->Now() - disk.last_activity() >= threshold_ms_) {
      if (disk.SpinDown()) {
        HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.spin_down_decisions"));
        HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "spin-down",
                          sim_->Now(), i, static_cast<double>(i));
      }
    }
  }
}

}  // namespace hib
