// MAID: Massive Array of Idle Disks (Colarelli & Grunwald, SC 2002).
//
// A small set of always-on *cache disks* fronts the data disks: reads whose
// extent is resident on a cache disk are served there; misses go to the data
// disk and the extent is copied to a cache disk in the background.  Data
// disks are spun down by a TPM threshold once the cache absorbs their load.
// Writes go to the data disks (write-through) and invalidate any cached copy.
//
// As in the paper's evaluation, MAID helps only when the working set fits the
// cache disks; data-center working sets typically do not, so data disks keep
// waking up and the added cache disks can even cost energy.
#ifndef HIBERNATOR_SRC_POLICY_MAID_H_
#define HIBERNATOR_SRC_POLICY_MAID_H_

#include <list>
#include <string>
#include <map>

#include "src/policy/policy.h"

namespace hib {

struct MaidParams {
  // Capacity of the cache-disk LRU, in extents (<= 0 sizes it from the cache
  // disks' raw capacity).
  std::int64_t cache_extents = -1;
  // TPM threshold for data disks; <= 0 = break-even.
  Duration idle_threshold_ms = Ms(-1.0);
  Duration poll_period_ms = Seconds(1.0);
};

class MaidPolicy : public PowerPolicy {
 public:
  explicit MaidPolicy(MaidParams params = {}) : params_(params) {}

  std::string Name() const override { return "MAID"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;

  std::int64_t cache_hits() const { return cache_hits_; }
  std::int64_t cache_misses() const { return cache_misses_; }
  std::int64_t copies_started() const { return copies_started_; }

 private:
  // Returns the cache disk holding `extent`, or -1; refreshes LRU position.
  int LookupCache(std::int64_t extent);
  void InsertCache(std::int64_t extent);
  void EvictIfNeeded();
  void Poll();

  MaidParams params_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
  Duration threshold_ms_;
  std::int64_t capacity_extents_ = 0;
  int next_cache_disk_ = 0;

  struct CacheEntry {
    int cache_disk = -1;
    std::list<std::int64_t>::iterator lru_it;
  };
  std::list<std::int64_t> lru_;  // front = most recent
  // Ordered by extent id so any iteration over the resident set (stats,
  // future shard merges) is deterministic (HIB011).
  std::map<std::int64_t, CacheEntry> resident_;

  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  std::int64_t copies_started_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_MAID_H_
