#include "src/policy/drpm.h"

#include <sstream>

namespace hib {

std::string DrpmPolicy::Describe() const {
  std::ostringstream out;
  out << "DRPM(period=" << ToSeconds(params_.control_period_ms)
      << "s, up_q=" << params_.queue_up_watermark << ", low_util=" << params_.utilization_low
      << ")";
  return out.str();
}

void DrpmPolicy::Attach(Simulator* sim, ArrayController* array) {
  sim_ = sim;
  array_ = array;
  sim_->SchedulePeriodic(params_.control_period_ms, params_.control_period_ms,
                         [this] { ControlTick(); });
}

void DrpmPolicy::ControlTick() {
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    Disk& disk = array_->disk(i);
    const DiskParams& dp = disk.params();
    DiskStats& st = disk.stats();
    double utilization = st.window_busy_ms / params_.control_period_ms;
    std::size_t depth = disk.ForegroundQueueDepth();
    st.ResetWindow();

    if (depth >= params_.queue_up_watermark) {
      disk.SetTargetRpm(dp.max_rpm());
      HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.rpm_up_decisions"));
      HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "rpm-max",
                        sim_->Now(), i, static_cast<double>(dp.max_rpm()));
      continue;
    }
    int level = dp.LevelOf(disk.target_rpm());
    if (utilization > params_.utilization_high && level < dp.num_speeds() - 1) {
      disk.SetTargetRpm(dp.speeds[static_cast<std::size_t>(level + 1)].rpm);
      HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.rpm_up_decisions"));
      HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "rpm-up",
                        sim_->Now(), i, static_cast<double>(disk.target_rpm()));
    } else if (depth == 0 && utilization < params_.utilization_low && level > 0) {
      disk.SetTargetRpm(dp.speeds[static_cast<std::size_t>(level - 1)].rpm);
      HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.rpm_down_decisions"));
      HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "rpm-down",
                        sim_->Now(), i, static_cast<double>(disk.target_rpm()));
    }
  }
}

}  // namespace hib
