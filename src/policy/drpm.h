// DRPM: fine-grained per-disk speed control (Gurumurthi et al., ISCA 2003).
//
// Each disk is controlled individually on a short period: when its request
// queue builds past an upper watermark the disk jumps straight to full speed;
// when the queue is empty and the recent utilization is low the disk steps
// down one RPM level.  This captures DRPM's defining behaviour — frequent,
// small, per-disk speed transitions — which saves energy at low load but (as
// Hibernator argues) burns time and energy in transitions and reacts after
// performance has already been damaged.
#ifndef HIBERNATOR_SRC_POLICY_DRPM_H_
#define HIBERNATOR_SRC_POLICY_DRPM_H_

#include <string>
#include <vector>

#include "src/policy/policy.h"

namespace hib {

struct DrpmParams {
  Duration control_period_ms = Seconds(5.0);
  std::size_t queue_up_watermark = 4;   // jump to full speed at/above this
  double utilization_low = 0.25;        // step down below this busy fraction
  double utilization_high = 0.70;       // step up above this busy fraction
};

class DrpmPolicy : public PowerPolicy {
 public:
  explicit DrpmPolicy(DrpmParams params = {}) : params_(params) {}

  std::string Name() const override { return "DRPM"; }
  std::string Describe() const override;

  void Attach(Simulator* sim, ArrayController* array) override;

 private:
  void ControlTick();

  DrpmParams params_;
  Simulator* sim_ = nullptr;
  ArrayController* array_ = nullptr;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_POLICY_DRPM_H_
