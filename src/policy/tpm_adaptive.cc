#include "src/policy/tpm_adaptive.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/policy/tpm.h"

namespace hib {

std::string AdaptiveTpmPolicy::Describe() const {
  std::ostringstream out;
  out << "TPM-Adaptive(breakeven=" << ToSeconds(break_even_ms_) << "s, experts=";
  for (std::size_t i = 0; i < params_.expert_multipliers.size(); ++i) {
    out << (i ? "/" : "") << params_.expert_multipliers[i];
  }
  out << "x)";
  return out.str();
}

void AdaptiveTpmPolicy::Attach(Simulator* sim, ArrayController* array) {
  sim_ = sim;
  array_ = array;
  break_even_ms_ = TpmBreakEvenMs(array->params().disk);
  disks_.assign(static_cast<std::size_t>(array->num_data_disks()), DiskState{});
  for (DiskState& state : disks_) {
    state.weights.assign(params_.expert_multipliers.size(),
                         1.0 / static_cast<double>(params_.expert_multipliers.size()));
  }
  sim_->SchedulePeriodic(params_.poll_period_ms, params_.poll_period_ms, [this] { Poll(); });
}

Duration AdaptiveTpmPolicy::WorkingThreshold(const DiskState& state) const {
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < state.weights.size(); ++i) {
    weighted += state.weights[i] * params_.expert_multipliers[i];
    total += state.weights[i];
  }
  return break_even_ms_ * (total > 0.0 ? weighted / total : 1.0);
}

Duration AdaptiveTpmPolicy::ThresholdOf(int disk_id) const {
  return WorkingThreshold(disks_[static_cast<std::size_t>(disk_id)]);
}

void AdaptiveTpmPolicy::LearnFromGap(DiskState& state, Duration gap_ms) {
  // An expert's loss on a gap of length G with threshold T:
  //   G <= T           : no spin-down, energy lost = 0 baseline (loss 0)
  //   G >  T           : sleep from T to G; net benefit grows with G - T but
  //                      the cycle costs the spin energy, which the
  //                      break-even time encodes.  Normalized loss:
  const DiskParams& dp = array_->params().disk;
  Watts saved_rate = dp.speeds.back().idle_power - dp.standby_power;
  Joules cycle_cost = dp.spin_down_energy + dp.spin_up_full_energy;

  Joules max_loss = Joules(1e-9);
  std::vector<Joules> losses(params_.expert_multipliers.size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    Duration threshold = break_even_ms_ * params_.expert_multipliers[i];
    Joules benefit;
    if (gap_ms > threshold) {
      benefit = EnergyOf(saved_rate, gap_ms - threshold) - cycle_cost;
    }
    // Loss is the regret against the best possible action on this gap.
    Joules best = std::max(Joules{}, EnergyOf(saved_rate, gap_ms) - cycle_cost);
    losses[i] = best - benefit;
    max_loss = std::max(max_loss, losses[i]);
  }
  double total = 0.0;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    state.weights[i] *= std::exp(-params_.eta * losses[i] / max_loss);
    state.weights[i] = std::max(state.weights[i], params_.weight_floor);
    total += state.weights[i];
  }
  for (double& w : state.weights) {
    w /= total;
  }
}

void AdaptiveTpmPolicy::Poll() {
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    Disk& disk = array_->disk(i);
    DiskState& state = disks_[static_cast<std::size_t>(i)];

    bool idle_now = disk.FullyIdle();
    SimTime idle_started = disk.last_activity();

    if (!idle_now || (state.idle_since >= SimTime{} && idle_started > state.idle_since)) {
      // The previous idle gap (if any) ended: learn from it.
      if (state.idle_since >= SimTime{}) {
        Duration gap = (idle_now ? idle_started : sim_->Now()) - state.idle_since;
        if (gap > params_.poll_period_ms) {
          LearnFromGap(state, gap);
        }
      }
      state.idle_since = idle_now ? idle_started : Ms(-1.0);
      state.asleep = false;
    } else if (idle_now && state.idle_since < SimTime{}) {
      state.idle_since = idle_started;
      state.asleep = false;
    }

    if (idle_now && !state.asleep &&
        sim_->Now() - idle_started >= WorkingThreshold(state)) {
      if (disk.SpinDown()) {
        state.asleep = true;
      }
    }
  }
}

}  // namespace hib
