#include "src/policy/maid.h"

#include <sstream>

#include "src/policy/tpm.h"

#include "src/util/check.h"

namespace hib {

std::string MaidPolicy::Describe() const {
  std::ostringstream out;
  out << "MAID(cache_disks=" << (array_ ? array_->num_cache_disks() : 0)
      << ", cache_extents=" << capacity_extents_
      << ", threshold=" << ToSeconds(threshold_ms_) << "s)";
  return out.str();
}

void MaidPolicy::Attach(Simulator* sim, ArrayController* array) {
  HIB_CHECK_GT(array->num_cache_disks(), 0) << "MAID needs at least one cache disk";
  sim_ = sim;
  array_ = array;
  threshold_ms_ = params_.idle_threshold_ms > Duration{} ? params_.idle_threshold_ms
                                                  : TpmBreakEvenMs(array->params().disk);
  if (params_.cache_extents > 0) {
    capacity_extents_ = params_.cache_extents;
  } else {
    capacity_extents_ = static_cast<std::int64_t>(array->num_cache_disks()) *
                        (array->params().disk.TotalSectors() / array->params().extent_sectors);
  }

  // Reads for cached extents are redirected to their cache disk; the
  // physical sector on the cache disk is immaterial to the timing model, so
  // the data-disk sector is reused as-is.
  array_->set_read_router([this](std::int64_t extent, int intended_disk) {
    int cache_disk = LookupCache(extent);
    if (cache_disk >= 0) {
      ++cache_hits_;
      HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.maid_cache_hits"));
      return cache_disk;
    }
    ++cache_misses_;
    HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.maid_cache_misses"));
    return intended_disk;
  });

  // Misses trigger a background copy onto a cache disk; writes invalidate.
  array_->set_completion_hook([this](const TraceRecord& rec, Duration /*response*/) {
    std::int64_t extent = rec.lba / array_->params().extent_sectors;
    if (rec.is_write) {
      auto it = resident_.find(extent);
      if (it != resident_.end()) {
        lru_.erase(it->second.lru_it);
        resident_.erase(it);
      }
      return;
    }
    if (resident_.find(extent) == resident_.end()) {
      InsertCache(extent);
    }
  });

  sim_->SchedulePeriodic(params_.poll_period_ms, params_.poll_period_ms, [this] { Poll(); });
}

int MaidPolicy::LookupCache(std::int64_t extent) {
  auto it = resident_.find(extent);
  if (it == resident_.end()) {
    return -1;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.cache_disk;
}

void MaidPolicy::InsertCache(std::int64_t extent) {
  EvictIfNeeded();
  int cache_disk = array_->cache_disk_id(next_cache_disk_);
  next_cache_disk_ = (next_cache_disk_ + 1) % array_->num_cache_disks();

  lru_.push_front(extent);
  resident_[extent] = CacheEntry{cache_disk, lru_.begin()};
  ++copies_started_;
  HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.maid_copies_started"));

  // Background copy-in: one streaming write of the extent image.  (The read
  // side already happened — the demand miss fetched the data.)
  DiskRequest req;
  req.sector = array_->layout().Map(extent, 0).data_sector;
  req.count = array_->params().extent_sectors;
  req.is_write = true;
  req.background = true;
  array_->SubmitRaw(cache_disk, std::move(req));
}

void MaidPolicy::EvictIfNeeded() {
  while (static_cast<std::int64_t>(resident_.size()) >= capacity_extents_ && !lru_.empty()) {
    std::int64_t victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
  }
}

void MaidPolicy::Poll() {
  for (int i = 0; i < array_->num_data_disks(); ++i) {
    Disk& disk = array_->disk(i);
    if (disk.FullyIdle() && sim_->Now() - disk.last_activity() >= threshold_ms_) {
      if (disk.SpinDown()) {
        HIB_COUNTER_INC(&sim_->obs().metrics.GetCounter("policy.spin_down_decisions"));
        HIB_TRACE_INSTANT(sim_->obs().tracer, SpanKind::kDecision, kTrackPolicy, "spin-down",
                          sim_->Now(), i, static_cast<double>(i));
      }
    }
  }
}

}  // namespace hib
