// Priority queue of timed events for the discrete-event simulator.
//
// Events at the same timestamp fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps simulations
// deterministic regardless of queue internals.
//
// Hot-path design (this queue is the inner loop of every experiment):
//   - Callbacks are hib::InplaceFunction, sized so every simulator / array /
//     policy capture fits inline — no heap allocation per event.
//   - Liveness is tracked in a slot arena indexed by the low bits of the
//     EventId; the high bits carry the event's unique sequence number, which
//     doubles as the slot's generation stamp (a reused slot gets a new seq,
//     so stale ids can never alias a live event).  Schedule, Cancel and the
//     liveness check on pop are O(1) array accesses; there are no hash-set
//     operations anywhere.
//   - Ordering uses a two-tier structure (a simplified ladder queue) instead
//     of a binary heap.  A comparison heap's pop is a sift whose serialized
//     compare chain costs ~200 cycles regardless of arity or branch strategy;
//     here pops are O(1).  The `near` tier is a small array of the earliest
//     events, sorted descending so the global minimum is a pop_back.  The
//     `far` tier is an unsorted vector (O(1) insert).  When near drains, one
//     O(far) nth_element selects the next batch, amortizing to ~constant work
//     per event.  The boundary key `horizon_` keeps the invariant: every far
//     entry is at or after the horizon, every near entry is before it.
//   - Cancellation is lazy: a stale entry is skipped on pop (near) or dropped
//     during the refill scan (far).  If stale entries come to dominate
//     between refills, Cancel purges the far tier directly — timer-heavy
//     policies can't grow the queue without bound.
//   - Slots live in fixed-size chunks whose storage never moves, so FireNext
//     can run a callback directly from its slot (zero relocations per event)
//     even when the callback schedules new events.
//   - Everything is defined inline here: Schedule/FireNext are a few array
//     writes, and keeping them visible to the caller's TU lets the compiler
//     fold the id packing and slot bookkeeping away.
#ifndef HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_
#define HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/util/check.h"
#include "src/util/inplace_function.h"
#include "src/util/thread_annotations.h"
#include "src/util/units.h"

namespace hib {

// Every scheduled capture in the repo fits in 96 bytes (the largest is the
// disk service-completion lambda: this + completion time + a DiskRequest with
// its embedded std::function).  A capture that outgrows this fails to
// compile in InplaceFunction's constructor rather than silently allocating.
inline constexpr std::size_t kEventCallbackCapacity = 96;
using EventCallback = InplaceFunction<void(), kEventCallbackCapacity>;

// Packed (seq << 24) | slot.  40 bits of sequence number cover ~10^12 events
// (a 24h experiment fires ~10^8); 24 bits of slot index cover 16M events
// pending at once.  Both limits are HIB_CHECKed.
using EventId = std::uint64_t;

// Shard-local: owned by exactly one Simulator, which is itself shard-owned
// (simlint HIB022 tracks escapes of its address).
class HIB_SHARD_LOCAL EventQueue {
 public:
  // Schedules `cb` at absolute time `when`; returns an id usable with Cancel.
  // The already-type-erased overload (the Simulator's ScheduleAt/ScheduleIn
  // funnel through it) relocates once; the template overload constructs the
  // callable directly in its slot with no relocation at all.
  EventId Schedule(SimTime when, EventCallback cb) {
    std::uint32_t slot = AcquireSlot();
    SlotRef(slot).callback = std::move(cb);
    return PushEntry(when, slot);
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventId Schedule(SimTime when, F&& cb) {
    std::uint32_t slot = AcquireSlot();
    SlotRef(slot).callback.Emplace(std::forward<F>(cb));
    return PushEntry(when, slot);
  }

  // Cancels a pending event; returns false if it already fired or was
  // cancelled.  O(1): clears the slot's seq stamp so the queue entry goes
  // stale.
  bool Cancel(EventId id) {
    std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (slot >= num_slots_ || SlotRef(slot).seq != (id >> kSlotBits)) {
      return false;  // already fired, already cancelled, or never existed
    }
    ReleaseSlot(slot);
    --live_count_;
    // Stale far entries are normally dropped by the refill scan, but a queue
    // whose near tier never drains would accumulate them forever; purge once
    // they outnumber live events.  O(far) amortized against the cancels that
    // created the junk.
    std::size_t entries = near_.size() + far_.size();
    if (entries > kPurgeMinSize && entries - live_count_ > live_count_) {
      PurgeFar();
    }
    return true;
  }

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Pre-sizes the far tier and slot arena for roughly `events` concurrently
  // pending events, so multi-million-event runs don't pay growth reallocations.
  void Reserve(std::size_t events) {
    far_.reserve(events);
    near_.reserve(std::min(events, kRefillMax) + 1);
    free_slots_.reserve(events);
    slot_chunks_.reserve((events >> kSlotChunkShift) + 1);
  }

  // Time of the earliest pending (non-cancelled) event; only valid when !empty().
  SimTime NextTime() {
    EnsureHead();
    HIB_DCHECK(!near_.empty()) << "NextTime on an empty queue";
    return near_.back().time;
  }

  // Pops the earliest event and invokes its callback in place — the
  // zero-relocation dispatch path used by Simulator::RunUntil.  The event's
  // time is stored through `now` *before* the callback runs, so callbacks
  // observe the correct simulation time.  Only valid when !empty().
  void FireNext(SimTime* now) {
    EnsureHead();
    HIB_DCHECK(!near_.empty()) << "FireNext on an empty queue";
    Entry e = near_.back();
    near_.pop_back();
    Slot& s = SlotRef(static_cast<std::uint32_t>(e.key & kSlotMask));
    // Invalidate the id before invoking: a Cancel from inside the callback
    // must report "already fired", exactly as it would after a pop.
    s.seq = 0;
    --live_count_;
    *now = e.time;
    // The callback runs from its slot: chunk storage never moves, and the
    // slot isn't on the free list yet, so nested Schedule calls can't clobber
    // it.  It becomes reusable only after the call returns.
    s.callback();
    s.callback = nullptr;
    free_slots_.push_back(static_cast<std::uint32_t>(e.key & kSlotMask));
  }

  // Pops and returns the earliest event without invoking it.  Only valid
  // when !empty().  FireNext is the faster path when the callback is invoked
  // immediately anyway.
  struct Fired {
    SimTime time;
    EventId id = 0;
    EventCallback callback;
  };
  Fired PopNext() {
    EnsureHead();
    HIB_DCHECK(!near_.empty()) << "PopNext on an empty queue";
    Entry e = near_.back();
    near_.pop_back();
    std::uint32_t slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    Fired fired{e.time, e.key, std::move(SlotRef(slot).callback)};
    ReleaseSlot(slot);
    --live_count_;
    return fired;
  }

 private:
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Entry {
    SimTime time;
    std::uint64_t key = 0;  // (seq << kSlotBits) | slot — also the EventId
  };
  struct Slot {
    EventCallback callback;
    std::uint64_t seq = 0;  // seq of the pending event; 0 = free or stale
  };

  // Strict total order on (time, seq); seq occupies the key's high bits, so
  // comparing keys compares seqs (two entries never share a seq).  Written
  // with bitwise | and & so the compiler lowers it to flag arithmetic instead
  // of two data-dependent branches.
  static bool Later(const Entry& a, const Entry& b) {
    return (a.time > b.time) |
           ((a.time == b.time) & (a.key > b.key));
  }

  // The near tier holds at most this many entries, so each sorted insert
  // moves at most ~2 KB.  Refills pull up to this many events at once.
  static constexpr std::size_t kNearCapacity = 128;
  // Below this many total entries, purging isn't worth the pass.
  static constexpr std::size_t kPurgeMinSize = 64;
  // Upper bound on one refill batch, capping near_'s size and the worst-case
  // single-refill sort.
  static constexpr std::size_t kRefillMax = 4096;
  // Below this batch size std::sort beats the radix passes' fixed costs.
  static constexpr std::size_t kRadixMinSize = 64;
  // Slots per chunk.  Chunks are never freed or moved while the queue lives,
  // which is what makes in-place callback execution (FireNext) safe.
  static constexpr std::uint32_t kSlotChunkShift = 6;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkShift;

  Slot& SlotRef(std::uint32_t slot) {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }
  const Slot& SlotRef(std::uint32_t slot) const {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }

  EventId PushEntry(SimTime when, std::uint32_t slot) {
    std::uint64_t seq = next_seq_++;
    HIB_CHECK(seq < (1ull << (64 - kSlotBits))) << "event sequence space exhausted";
    SlotRef(slot).seq = seq;
    EventId id = (seq << kSlotBits) | slot;
    Entry e{when, id};
    ++live_count_;
    if (!Later(e, horizon_)) {
      InsertNear(e);
    } else {
      far_.push_back(e);
    }
    return id;
  }

  // Inserts into the near tier, keeping it sorted descending (earliest at the
  // back).  DES inserts skew toward the near future, i.e. toward the back of
  // the array, so the memmove is usually short.  A full (or refill-oversized)
  // tier spills its later half back to far in one pass and lowers the
  // horizon, so sustained insert pressure amortizes to O(1) per event instead
  // of paying a per-insert eviction — the spilled entries get ordered by the
  // next refill's selection anyway.
  void InsertNear(const Entry& e) {
    if (near_.size() >= kNearCapacity) {
      std::size_t spill = near_.size() / 2;
      far_.insert(far_.end(), near_.begin(),
                  near_.begin() + static_cast<std::ptrdiff_t>(spill));
      horizon_ = near_[spill - 1];
      near_.erase(near_.begin(),
                  near_.begin() + static_cast<std::ptrdiff_t>(spill));
      if (Later(e, horizon_)) {
        far_.push_back(e);  // the halving moved the boundary below e
        return;
      }
    }
    near_.insert(near_.begin() + static_cast<std::ptrdiff_t>(UpperBoundDesc(e)),
                 e);
  }

  // Index of the first near entry not Later than e (the insertion point in
  // the descending array).  Branch-free selection: std::upper_bound's
  // data-dependent branch mispredicts on ~half its probes, which at ~7 probes
  // costs more than the insert's memmove; with conditional moves the search
  // is a short chain of L1 loads.
  std::size_t UpperBoundDesc(const Entry& e) const {
    const Entry* base = near_.data();
    std::size_t lo = 0;
    std::size_t len = near_.size();
    while (len > 0) {
      std::size_t half = len >> 1;
      bool later = Later(base[lo + half], e);
      lo = later ? lo + half + 1 : lo;
      len = later ? len - half - 1 : half;
    }
    return lo;
  }

  // Makes near_.back() the earliest live event.  Near entries cancelled in
  // place are popped off here in O(1); when near drains, one O(far) pass
  // drops stale far entries and selects the next kNearCapacity earliest.
  void EnsureHead() {
    for (;;) {
      while (!near_.empty() && !IsLive(near_.back())) {
        near_.pop_back();
      }
      if (!near_.empty() || far_.empty()) {
        return;
      }
      Refill();
    }
  }

  void Refill() {
    // near_ is empty here, so every live event is in far_: a size mismatch is
    // the exact count of stale entries, and a match means the O(far) liveness
    // scan can be skipped entirely (the common case in cancel-free phases).
    if (far_.size() != live_count_) {
      far_.erase(std::remove_if(far_.begin(), far_.end(),
                                [this](const Entry& e) { return !IsLive(e); }),
                 far_.end());
    }
    // Take the whole backlog (capped) in one batch: a single radix sort of N
    // entries is far cheaper than log(N) rounds of comparison sorting, and
    // pops out of a sorted array are O(1).
    std::size_t take = std::min(far_.size(), kRefillMax);
    if (take == 0) {
      horizon_ = Entry{std::numeric_limits<SimTime>::infinity(), ~0ull};
      return;
    }
    if (take < far_.size()) {
      // Partition so the `take` earliest entries sit at the tail (cheap to
      // move out); everything left in far_ is Later than all of them.
      std::nth_element(
          far_.begin(),
          far_.begin() + static_cast<std::ptrdiff_t>(far_.size() - take - 1),
          far_.end(), Later);
    }
    near_.assign(far_.end() - static_cast<std::ptrdiff_t>(take), far_.end());
    far_.resize(far_.size() - take);
    SortNearDescending();
    horizon_ = far_.empty()
                   ? Entry{std::numeric_limits<SimTime>::infinity(), ~0ull}
                   : near_.front();
  }

  // Maps a non-NaN double to a u64 whose unsigned order matches the double's
  // numeric order (the usual sign-flip trick, branch-free for negatives too).
  static std::uint64_t AscendingTimeBits(SimTime t) {
    std::uint64_t b = std::bit_cast<std::uint64_t>(t);
    std::uint64_t mask =
        static_cast<std::uint64_t>(-static_cast<std::int64_t>(b >> 63));
    return b ^ (mask | 0x8000000000000000ull);
  }

  // Sorts near_ descending by (time, seq).  Comparison sorts on random data
  // mispredict roughly every other compare, which makes std::sort the single
  // most expensive piece of a drain; above a small cutoff an LSD radix sort
  // on the timestamp bits is several times cheaper and branch-free.  Radix
  // passes whose digit is constant across the batch (the common case for the
  // high bytes of clustered simulation times) are skipped via a one-pass
  // histogram.  Ties in time are then ordered by seq in a cleanup scan that
  // costs one predictable compare per entry when there are none.
  void SortNearDescending() {
    std::size_t n = near_.size();
    if (n < kRadixMinSize) {
      std::sort(near_.begin(), near_.end(), Later);
      return;
    }
    scratch_.resize(n);
    // Complemented ascending bits sort descending.  All eight histograms are
    // built in one pass (2 KB of counters, L1-resident).
    std::uint32_t hist[8][256];
    std::memset(hist, 0, sizeof(hist));
    for (const Entry& e : near_) {
      std::uint64_t u = ~AscendingTimeBits(e.time);
      for (unsigned d = 0; d < 8; ++d) {
        ++hist[d][(u >> (8 * d)) & 0xff];
      }
    }
    const std::uint64_t u0 = ~AscendingTimeBits(near_[0].time);
    Entry* src = near_.data();
    Entry* dst = scratch_.data();
    for (unsigned d = 0; d < 8; ++d) {
      std::uint32_t* h = hist[d];
      // If every entry shares this digit, the pass is the identity: skip it.
      if (h[(u0 >> (8 * d)) & 0xff] == n) {
        continue;
      }
      std::uint32_t offset = 0;
      for (unsigned b = 0; b < 256; ++b) {
        std::uint32_t count = h[b];
        h[b] = offset;
        offset += count;
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t u = ~AscendingTimeBits(src[i].time);
        dst[h[(u >> (8 * d)) & 0xff]++] = src[i];
      }
      std::swap(src, dst);
    }
    if (src != near_.data()) {
      std::memcpy(near_.data(), src, n * sizeof(Entry));
    }
    // Equal timestamps must still pop in seq order; radix only ordered by
    // time, so sort any run of equal times by the full key.
    for (std::size_t i = 0; i + 1 < n;) {
      if (near_[i].time != near_[i + 1].time) {
        ++i;
        continue;
      }
      std::size_t j = i + 2;
      while (j < n && near_[j].time == near_[i].time) {
        ++j;
      }
      std::sort(near_.begin() + static_cast<std::ptrdiff_t>(i),
                near_.begin() + static_cast<std::ptrdiff_t>(j), Later);
      i = j;
    }
  }

  // Drops every stale entry from the far tier (no ordering to maintain).
  void PurgeFar() {
    far_.erase(std::remove_if(far_.begin(), far_.end(),
                              [this](const Entry& e) { return !IsLive(e); }),
               far_.end());
  }

  bool IsLive(const Entry& e) const {
    return SlotRef(static_cast<std::uint32_t>(e.key & kSlotMask)).seq ==
           (e.key >> kSlotBits);
  }

  std::uint32_t AcquireSlot() {
    if (!free_slots_.empty()) {
      std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    HIB_CHECK(num_slots_ < kSlotMask) << "event slot arena exhausted";
    if ((num_slots_ >> kSlotChunkShift) == slot_chunks_.size()) {
      // Amortized arena growth, once per kSlotChunkSize acquisitions; Reserve()
      // front-loads it so a sized run never takes this branch.
      slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));  // NOLINT(HIB018)
    }
    return num_slots_++;
  }

  void ReleaseSlot(std::uint32_t slot) {
    // Clearing the seq stamp invalidates both the queue entry and any EventId
    // still held by a caller; the slot is immediately safe to reuse because a
    // reuse gets a fresh (globally unique) seq.
    Slot& s = SlotRef(slot);
    s.seq = 0;
    s.callback = nullptr;
    free_slots_.push_back(slot);
  }

  // Earliest events, sorted descending by (time, seq): back() is the global
  // minimum.  Bounded by kNearCapacity (+1 transiently during insert).
  std::vector<Entry> near_;
  // Everything at or after horizon_, unsorted.
  std::vector<Entry> far_;
  // Radix-sort ping-pong buffer, reused across refills.
  std::vector<Entry> scratch_;
  // Every far entry is Later-or-equal, every near entry is earlier.  Starts
  // at +infinity so everything lands in near until the first spill.
  Entry horizon_{std::numeric_limits<SimTime>::infinity(), ~0ull};
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t num_slots_ = 0;
  std::uint64_t next_seq_ = 1;  // 0 is the "free / stale" slot stamp
  std::size_t live_count_ = 0;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_
