// Priority queue of timed events for the discrete-event simulator.
//
// Events at the same timestamp fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps simulations
// deterministic regardless of heap internals.
#ifndef HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_
#define HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/util/check.h"
#include "src/util/units.h"

namespace hib {

using EventCallback = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Schedules `cb` at absolute time `when`; returns an id usable with Cancel.
  EventId Schedule(SimTime when, EventCallback cb);

  // Cancels a pending event; returns false if it already fired or was
  // cancelled.  Cancellation is lazy: the entry is skipped on pop.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest pending (non-cancelled) event; only valid when !empty().
  SimTime NextTime();

  // Pops and returns the earliest event.  Only valid when !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventCallback callback;
  };
  Fired PopNext();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventCallback callback;
  };
  // Min-heap on (time, id).
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.id > b.id;
  }

  void DropCancelledHead();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet fired or cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled, not yet removed from heap_
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
#if HIB_VALIDATE
  SimTime last_popped_ = 0.0;  // dispatch-order audit (validating builds only)
#endif
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_SIM_EVENT_QUEUE_H_
