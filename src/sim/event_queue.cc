#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/util/check.h"

namespace hib {

EventId EventQueue::Schedule(SimTime when, EventCallback cb) {
  EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  pending_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return false;
  }
  pending_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
  }
}

SimTime EventQueue::NextTime() {
  DropCancelledHead();
  HIB_DCHECK(!heap_.empty()) << "NextTime on an empty queue";
  return heap_.front().time;
}

EventQueue::Fired EventQueue::PopNext() {
  DropCancelledHead();
  HIB_DCHECK(!heap_.empty()) << "PopNext on an empty queue";
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  --live_count_;
#if HIB_VALIDATE
  HIB_CHECK_GE(e.time, last_popped_)
      << "heap popped events out of timestamp order";
  last_popped_ = e.time;
#endif
  return Fired{e.time, e.id, std::move(e.callback)};
}

}  // namespace hib
