// Discrete-event simulator: clock + event queue + run loop.
//
// This is the DiskSim-equivalent substrate.  All simulated components (disks,
// the array controller, policies, workload sources) schedule callbacks here;
// the run loop advances virtual time to each event in order.
#ifndef HIBERNATOR_SRC_SIM_SIMULATOR_H_
#define HIBERNATOR_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "src/obs/obs.h"
#include "src/sim/event_queue.h"
#include "src/util/check.h"
#include "src/util/thread_annotations.h"
#include "src/util/units.h"

#if HIB_VALIDATE
#include <memory>

#include "src/sim/validator.h"
#endif

namespace hib {

// Shard-local: a Simulator is one shard's universe.  Its address must never
// be stored anywhere that outlives the shard run or is reachable from
// another shard (simlint HIB022).
class HIB_SHARD_LOCAL Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` to run `delay` ms from now (delay < 0 clamps to 0).
  EventId ScheduleIn(Duration delay, EventCallback cb);

  // Schedules `cb` at the absolute time `when` (past times clamp to now).
  EventId ScheduleAt(SimTime when, EventCallback cb);

  // Cancels a pending event; returns false if it already fired.
  bool Cancel(EventId id);

  // Capacity hint: pre-sizes the event queue for roughly `events` concurrently
  // pending events (see EventQueue::Reserve).
  void ReserveEvents(std::size_t events) { queue_.Reserve(events); }

  // Schedules `cb` every `period` ms starting at `start`; the callback may
  // call StopPeriodic with the returned handle to stop the series.
  struct PeriodicHandle {
    std::uint64_t key = 0;
  };
  PeriodicHandle SchedulePeriodic(SimTime start, Duration period, EventCallback cb);
  void StopPeriodic(PeriodicHandle handle);

  // Runs until the queue is empty or time would pass `until`.
  // Returns the number of events fired.
  std::uint64_t RunUntil(SimTime until = std::numeric_limits<SimTime>::max());

  // Fires exactly one event if any is pending; returns false when idle.
  bool Step();

  std::uint64_t events_fired() const { return events_fired_; }
  bool idle() const { return queue_.empty(); }

#if HIB_VALIDATE
  // Invariant auditor; non-null in validating builds.  Simulated components
  // (disks, ...) report state changes here.  Compiled out in Release.
  SimValidator* validator() { return validator_.get(); }
#endif

  // Per-simulation metrics registry + tracer.  Components resolve their
  // instruments here at construction; instrumentation call sites go through
  // the HIB_COUNTER_* / HIB_TRACE_* macros (no-ops when HIB_OBS=0).
  Observability& obs() { return obs_; }
  const Observability& obs() const { return obs_; }

 private:
  struct PeriodicState {
    Duration period;
    EventCallback callback;
    bool stopped = false;
  };
  void FirePeriodic(std::uint64_t key);

  SimTime now_;
  EventQueue queue_;
  std::uint64_t events_fired_ = 0;
  std::uint64_t next_periodic_key_ = 0;
  // Keyed by the monotonic next_periodic_key_, ordered so any walk over
  // the live periodic series is registration-ordered (HIB011).
  std::map<std::uint64_t, PeriodicState> periodics_;
  Observability obs_;
#if HIB_VALIDATE
  std::unique_ptr<SimValidator> validator_ = std::make_unique<SimValidator>();
#endif
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_SIM_SIMULATOR_H_
