#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace hib {

EventId Simulator::ScheduleIn(Duration delay, EventCallback cb) {
  if (delay < Duration{}) {
    delay = Duration{};
  }
  return queue_.Schedule(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(SimTime when, EventCallback cb) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Schedule(when, std::move(cb));
}

bool Simulator::Cancel(EventId id) { return queue_.Cancel(id); }

Simulator::PeriodicHandle Simulator::SchedulePeriodic(SimTime start, Duration period,
                                                      EventCallback cb) {
  HIB_CHECK_GT(period, Duration{}) << "periodic events need a positive period";
  std::uint64_t key = next_periodic_key_++;
  periodics_.emplace(key, PeriodicState{period, std::move(cb)});
  ScheduleAt(start, [this, key] { FirePeriodic(key); });
  return PeriodicHandle{key};
}

void Simulator::StopPeriodic(PeriodicHandle handle) {
  auto it = periodics_.find(handle.key);
  if (it != periodics_.end()) {
    it->second.stopped = true;
  }
}

void Simulator::FirePeriodic(std::uint64_t key) {
  auto it = periodics_.find(key);
  if (it == periodics_.end() || it->second.stopped) {
    periodics_.erase(key);
    return;
  }
  // Re-arm first so the callback can StopPeriodic or reschedule safely.
  ScheduleIn(it->second.period, [this, key] { FirePeriodic(key); });
  it->second.callback();
}

std::uint64_t Simulator::RunUntil(SimTime until) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    SimTime next = queue_.NextTime();
    if (next > until) {
      break;
    }
    HIB_DCHECK_GE(next, now_) << "event fired in the simulated past";
#if HIB_VALIDATE
    validator_->OnDispatch(next);
#endif
    queue_.FireNext(&now_);
    ++fired;
    ++events_fired_;
  }
  if (now_ < until && until != std::numeric_limits<SimTime>::max()) {
    now_ = until;
  }
  return fired;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime next = queue_.NextTime();
  HIB_DCHECK_GE(next, now_) << "event fired in the simulated past";
#if HIB_VALIDATE
  validator_->OnDispatch(next);
#endif
  queue_.FireNext(&now_);
  ++events_fired_;
  return true;
}

}  // namespace hib
