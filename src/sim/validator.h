// Runtime invariant validator for the discrete-event core (debug builds).
//
// When HIB_VALIDATE is on (any build type except Release/MinSizeRel, or
// -DHIB_VALIDATE=ON), every Simulator owns a SimValidator and the simulation
// core reports into it:
//
//   - Simulator::RunUntil / Step  -> OnDispatch: dispatch times must be
//     monotonically non-decreasing and events must never fire in the past.
//   - Disk::EnterState            -> OnDiskTransition: the power-state change
//     must be an edge of the legal transition graph documented in disk.h
//     (e.g. kStandby -> kBusy is a bug: a spun-down disk must pass through
//     kSpinningUp and kIdle before serving), queue depths must be
//     non-negative, a disk may only start spinning down with an empty queue,
//     and the disk's energy ledger must match the validator's independent
//     integration of state power over time to 1e-6 relative tolerance.
//
// All failures are fatal (HIB_CHECK -> abort), so GTest death tests can pin
// the diagnostics.  In Release builds nothing in the core references this
// class and validator.cc is not even compiled.
#ifndef HIBERNATOR_SRC_SIM_VALIDATOR_H_
#define HIBERNATOR_SRC_SIM_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/util/units.h"

namespace hib {

// Mirrors DiskPowerState without dragging disk.h into the sim layer (sim is
// below disk in the dependency order).  Values must stay in sync; disk.h
// static_asserts the correspondence.
enum class ValidatorDiskState : int {
  kIdle = 0,
  kBusy = 1,
  kChangingRpm = 2,
  kSpinningDown = 3,
  kStandby = 4,
  kSpinningUp = 5,
};

const char* ValidatorDiskStateName(ValidatorDiskState state);

class SimValidator {
 public:
  // `energy_rel_tol` bounds the allowed relative drift between a disk's own
  // energy ledger and the validator's independent power-over-time integral.
  explicit SimValidator(double energy_rel_tol = 1e-6);

  // --- Simulator hooks ------------------------------------------------------
  // Called before each event callback runs; `when` is the event's timestamp.
  void OnDispatch(SimTime when);

  // --- Disk hooks -----------------------------------------------------------
  // Registers a disk (keyed by its address, which is unique and stable: Disk
  // is non-copyable).  `power` is the draw of the initial state.
  void OnDiskAttached(const void* disk, int disk_id, ValidatorDiskState state,
                      Watts power, SimTime now);

  // Forgets a disk (called from ~Disk so a later heap reuse of the same
  // address cannot inherit stale tracking).
  void OnDiskDetached(const void* disk);

  // Audits one power-state change.  `new_power` is the draw of `to`;
  // `metered_total` is the disk's own DiskEnergy::Total() integrated through
  // `now`; `queue_depth` counts foreground + background requests.
  void OnDiskTransition(const void* disk, ValidatorDiskState from,
                        ValidatorDiskState to, SimTime now, Watts new_power,
                        Joules metered_total, std::int64_t queue_depth);

  // True when `from -> to` is an edge of the legal power-state graph.
  static bool IsLegalTransition(ValidatorDiskState from, ValidatorDiskState to);

  // --- introspection (tests) ------------------------------------------------
  std::int64_t dispatches_checked() const { return dispatches_checked_; }
  std::int64_t transitions_checked() const { return transitions_checked_; }
  std::int64_t disks_tracked() const { return static_cast<std::int64_t>(disks_.size()); }

 private:
  struct DiskTrack {
    int disk_id = -1;
    ValidatorDiskState state = ValidatorDiskState::kIdle;
    Watts power;
    SimTime last_change;
    Joules integrated;  // validator's own sum of power * dt
  };

  double energy_rel_tol_;
  SimTime last_dispatch_;
  bool dispatched_any_ = false;
  std::int64_t dispatches_checked_ = 0;
  std::int64_t transitions_checked_ = 0;
  // Tracks are keyed by a monotonically assigned registration index, so
  // any walk over them reports in attach order regardless of where the
  // disks live in memory.  The pointer handle the simulator hands us is
  // resolved through a side index that is only ever used for lookups,
  // never iterated (HIB011/HIB012).
  std::uint64_t next_track_index_ = 0;
  std::map<std::uint64_t, DiskTrack> disks_;
  std::unordered_map<const void*, std::uint64_t> track_index_;
};

}  // namespace hib

#endif  // HIBERNATOR_SRC_SIM_VALIDATOR_H_
