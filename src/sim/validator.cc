#include "src/sim/validator.h"

#include <algorithm>

#include "src/util/check.h"

namespace hib {

const char* ValidatorDiskStateName(ValidatorDiskState state) {
  switch (state) {
    case ValidatorDiskState::kIdle:
      return "IDLE";
    case ValidatorDiskState::kBusy:
      return "BUSY";
    case ValidatorDiskState::kChangingRpm:
      return "CHANGING_RPM";
    case ValidatorDiskState::kSpinningDown:
      return "SPINNING_DOWN";
    case ValidatorDiskState::kStandby:
      return "STANDBY";
    case ValidatorDiskState::kSpinningUp:
      return "SPINNING_UP";
  }
  return "?";
}

SimValidator::SimValidator(double energy_rel_tol) : energy_rel_tol_(energy_rel_tol) {}

void SimValidator::OnDispatch(SimTime when) {
  if (dispatched_any_) {
    HIB_CHECK_GE(when, last_dispatch_)
        << "event dispatch went backwards in time (non-deterministic queue?)";
  }
  last_dispatch_ = when;
  dispatched_any_ = true;
  ++dispatches_checked_;
}

void SimValidator::OnDiskAttached(const void* disk, int disk_id,
                                  ValidatorDiskState state, Watts power,
                                  SimTime now) {
  HIB_CHECK(track_index_.find(disk) == track_index_.end())
      << "disk " << disk_id << " attached twice";
  DiskTrack track;
  track.disk_id = disk_id;
  track.state = state;
  track.power = power;
  track.last_change = now;
  std::uint64_t index = next_track_index_++;
  track_index_.emplace(disk, index);
  disks_.emplace(index, track);
}

void SimValidator::OnDiskDetached(const void* disk) {
  auto it = track_index_.find(disk);
  if (it != track_index_.end()) {
    disks_.erase(it->second);
    track_index_.erase(it);
  }
}

bool SimValidator::IsLegalTransition(ValidatorDiskState from, ValidatorDiskState to) {
  switch (from) {
    case ValidatorDiskState::kIdle:
      return to == ValidatorDiskState::kBusy || to == ValidatorDiskState::kChangingRpm ||
             to == ValidatorDiskState::kSpinningDown;
    case ValidatorDiskState::kBusy:
      return to == ValidatorDiskState::kIdle;
    case ValidatorDiskState::kChangingRpm:
      return to == ValidatorDiskState::kIdle;
    case ValidatorDiskState::kSpinningDown:
      return to == ValidatorDiskState::kStandby;
    case ValidatorDiskState::kStandby:
      return to == ValidatorDiskState::kSpinningUp;
    case ValidatorDiskState::kSpinningUp:
      return to == ValidatorDiskState::kIdle;
  }
  return false;
}

void SimValidator::OnDiskTransition(const void* disk, ValidatorDiskState from,
                                    ValidatorDiskState to, SimTime now,
                                    Watts new_power, Joules metered_total,
                                    std::int64_t queue_depth) {
  auto indexed = track_index_.find(disk);
  HIB_CHECK(indexed != track_index_.end())
      << "transition on a disk that was never attached";
  DiskTrack& track = disks_.at(indexed->second);

  HIB_CHECK(IsLegalTransition(from, to))
      << "disk " << track.disk_id << ": illegal transition "
      << ValidatorDiskStateName(from) << " -> " << ValidatorDiskStateName(to);
  HIB_CHECK_EQ(static_cast<int>(track.state), static_cast<int>(from))
      << "disk " << track.disk_id << ": transition from "
      << ValidatorDiskStateName(from) << " but validator last saw "
      << ValidatorDiskStateName(track.state);
  HIB_CHECK_GE(now, track.last_change)
      << "disk " << track.disk_id << ": state change went backwards in time";
  HIB_CHECK_GE(queue_depth, 0)
      << "disk " << track.disk_id << ": negative queue depth";
  if (to == ValidatorDiskState::kSpinningDown) {
    HIB_CHECK_EQ(queue_depth, 0)
        << "disk " << track.disk_id << ": spinning down with queued requests";
  }

  // Independent energy audit: integrate the previous state's power over the
  // time spent in it and compare against the disk's own ledger.
  track.integrated += EnergyOf(track.power, now - track.last_change);
  Joules drift = Abs(metered_total - track.integrated);
  Joules scale = std::max(Abs(track.integrated), Joules(1.0));
  HIB_CHECK_LE(drift, energy_rel_tol_ * scale)
      << "disk " << track.disk_id << ": energy ledger drift (ledger "
      << metered_total << " J vs integrated " << track.integrated << " J)";

  track.state = to;
  track.power = new_power;
  track.last_change = now;
  ++transitions_checked_;
}

}  // namespace hib
