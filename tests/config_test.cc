#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/util/config.h"

namespace hib {
namespace {

TEST(Config, ParsesKeysValuesAndComments) {
  Config config;
  EXPECT_TRUE(config.ParseString(
      "# leading comment\n"
      "a = 1\n"
      "  b.c =  hello world  # trailing comment\n"
      "\n"
      "d=2.5\n"));
  EXPECT_TRUE(config.Has("a"));
  EXPECT_EQ(config.GetString("b.c"), "hello world");
  EXPECT_EQ(config.GetInt("a", 0), 1);
  EXPECT_DOUBLE_EQ(config.GetDouble("d", 0.0), 2.5);
  EXPECT_TRUE(config.errors().empty());
}

TEST(Config, LaterAssignmentWins) {
  Config config;
  config.ParseString("x = 1\nx = 2\n");
  EXPECT_EQ(config.GetInt("x", 0), 2);
}

TEST(Config, MissingKeyYieldsDefault) {
  Config config;
  config.ParseString("a = 1\n");
  EXPECT_EQ(config.GetString("nope", "fallback"), "fallback");
  EXPECT_EQ(config.GetInt("nope", 7), 7);
  EXPECT_DOUBLE_EQ(config.GetDouble("nope", 1.5), 1.5);
  EXPECT_TRUE(config.GetBool("nope", true));
  EXPECT_TRUE(config.errors().empty());  // missing is not an error
}

TEST(Config, MalformedLinesReported) {
  Config config;
  EXPECT_FALSE(config.ParseString("no equals sign\n= empty key\ngood = 1\n"));
  EXPECT_EQ(config.errors().size(), 2u);
  EXPECT_EQ(config.GetInt("good", 0), 1);  // good lines survive
}

TEST(Config, TypeErrorsReportedAndDefaulted) {
  Config config;
  config.ParseString("n = abc\nf = 1.5x\nb = maybe\n");
  EXPECT_EQ(config.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(config.GetDouble("f", 2.0), 2.0);
  EXPECT_FALSE(config.GetBool("b", false));
  EXPECT_EQ(config.errors().size(), 3u);
}

TEST(Config, BoolSpellings) {
  Config config;
  config.ParseString("a=true\nb=YES\nc=1\nd=off\ne=False\nf=0\n");
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_TRUE(config.GetBool("b", false));
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_FALSE(config.GetBool("d", true));
  EXPECT_FALSE(config.GetBool("e", true));
  EXPECT_FALSE(config.GetBool("f", true));
}

TEST(Config, UnusedKeysDetected) {
  Config config;
  config.ParseString("used = 1\nunused = 2\n");
  config.GetInt("used", 0);
  std::vector<std::string> unused = config.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Config, EmptyValueIsValid) {
  Config config;
  EXPECT_TRUE(config.ParseString("key =\n"));
  EXPECT_TRUE(config.Has("key"));
  EXPECT_EQ(config.GetString("key", "def"), "");
}

TEST(Config, ParseFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/hibernator_config_test.conf";
  {
    std::ofstream out(path);
    out << "alpha = 3\nbeta = x\n";
  }
  Config config;
  EXPECT_TRUE(config.ParseFile(path));
  EXPECT_EQ(config.GetInt("alpha", 0), 3);
  EXPECT_EQ(config.GetString("beta"), "x");
  std::remove(path.c_str());
}

TEST(Config, MissingFileFails) {
  Config config;
  EXPECT_FALSE(config.ParseFile("/nonexistent/path.conf"));
  EXPECT_FALSE(config.errors().empty());
}

TEST(Config, NegativeNumbers) {
  Config config;
  config.ParseString("i = -42\nd = -2.5\n");
  EXPECT_EQ(config.GetInt("i", 0), -42);
  EXPECT_DOUBLE_EQ(config.GetDouble("d", 0.0), -2.5);
}

}  // namespace
}  // namespace hib
