#include "src/util/units.h"

using namespace hib;

int main() {
  double d = Ms(5.0);  // leaving the typed world requires .value()
  return d > 0.0 ? 0 : 1;
}
