#include "src/util/units.h"

using namespace hib;

int main() {
  Duration d = Ms(1.0) + 5.0;  // 5.0 of what? ms? s? hours?
  return d > Duration{} ? 0 : 1;
}
