#include "src/util/units.h"

using namespace hib;

int main() {
  return Ms(1.0) < Joules(1.0) ? 0 : 1;  // cross-dimension comparison
}
