#include "src/util/units.h"

using namespace hib;

int main() {
  Duration d = 5.0;  // raw doubles must enter via Ms()/Seconds()/Hours()
  return d > Duration{} ? 0 : 1;
}
