#include "src/util/units.h"

using namespace hib;

int main() {
  Watts w = Watts(2.0) * Seconds(1.0);  // W*s is energy, not power
  return w > Watts{} ? 0 : 1;
}
