#include "src/util/units.h"

using namespace hib;

int main() {
  Joules e = EnergyOf(Ms(1.0), Watts(1.0));  // EnergyOf(power, elapsed)
  return e > Joules{} ? 0 : 1;
}
