#include "src/util/units.h"

using namespace hib;

// Positive control: the correct spelling of every operation the fail_* cases
// get wrong.  Must always compile, or the harness is testing a broken setup.
int main() {
  Duration d = Ms(1.0) + Seconds(1.0);
  double raw = d.value();
  Joules e = Watts(2.0) * Seconds(1.0);
  Watts w = e / Seconds(1.0);
  Joules via_helper = EnergyOf(w, d);
  Frequency f = PerMs(1.0) + PerSecond(1.0);
  bool ordered = Ms(1.0) < Seconds(1.0) && via_helper > Joules{};
  return (ordered && raw > 0.0 && f > Frequency{}) ? 0 : 1;
}
