#include "src/util/units.h"

using namespace hib;

int main() {
  Frequency f = PerMs(1.0) + Ms(1.0);  // rate + time has no meaning
  return f > Frequency{} ? 0 : 1;
}
