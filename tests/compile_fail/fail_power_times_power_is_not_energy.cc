#include "src/util/units.h"

using namespace hib;

int main() {
  Joules e = Watts(1.0) * Watts(1.0);  // W*W is power^2, not energy
  return e > Joules{} ? 0 : 1;
}
