#include "src/util/units.h"

using namespace hib;

int main() {
  Duration d = Ms(1.0) + Joules(1.0);  // time + energy has no meaning
  return d > Duration{} ? 0 : 1;
}
