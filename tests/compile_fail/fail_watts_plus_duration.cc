#include "src/util/units.h"

using namespace hib;

int main() {
  Watts w = Watts(10.0) + Ms(5.0);  // power + time has no meaning
  return w > Watts{} ? 0 : 1;
}
