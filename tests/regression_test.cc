// Guardrail regressions: the paper's qualitative results, asserted as loose
// quantitative bands on miniature versions of the headline experiments.  If a
// refactor breaks the energy model, the CR optimizer, or the guarantee, these
// fail long before anyone stares at a benchmark table.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

ArrayParams MiniArray() {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = 4;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.1;
  p.cache_lines = 256;
  return p;
}

OltpWorkloadParams MiniOltp(SectorAddr space) {
  OltpWorkloadParams p;
  p.address_space_sectors = space;
  p.duration_ms = Hours(4.0);
  p.peak_iops = 70.0;
  p.trough_iops = 20.0;
  return p;
}

struct MiniRun {
  ExperimentResult result;
  Duration goal_ms;
};

MiniRun RunMini(Scheme scheme, Duration goal_ms) {
  SchemeConfig cfg;
  cfg.scheme = scheme;
  cfg.goal_ms = goal_ms;
  cfg.epoch_ms = Hours(0.5);
  ArrayParams array = ArrayFor(cfg, MiniArray());
  auto policy = MakePolicy(cfg);
  OltpWorkload workload(MiniOltp(array.DataSectors()));
  return {RunExperiment(workload, *policy, array), goal_ms};
}

class RegressionBands : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new MiniRun(RunMini(Scheme::kBase, Duration{}));
    goal_ = 2.5 * base_->result.mean_response_ms;
  }
  static void TearDownTestSuite() {
    delete base_;
    base_ = nullptr;
  }
  static MiniRun* base_;
  static Duration goal_;
};

MiniRun* RegressionBands::base_ = nullptr;
Duration RegressionBands::goal_;

TEST_F(RegressionBands, BaseResponseInExpectedBand) {
  // Full-speed small random I/O on this disk model: mean a few ms.
  EXPECT_GT(base_->result.mean_response_ms, Ms(4.0));
  EXPECT_LT(base_->result.mean_response_ms, Ms(14.0));
  // Mean power near 8 idle-ish disks.
  EXPECT_GT(base_->result.MeanPower(), Watts(80.0));
  EXPECT_LT(base_->result.MeanPower(), Watts(112.0));
}

TEST_F(RegressionBands, HibernatorSavesWhileMeetingGoal) {
  MiniRun hib = RunMini(Scheme::kHibernator, goal_);
  EXPECT_GT(hib.result.SavingsVs(base_->result), 0.15);
  EXPECT_LT(hib.result.SavingsVs(base_->result), 0.80);
  EXPECT_LE(hib.result.mean_response_ms, goal_ * 1.10);
}

TEST_F(RegressionBands, TpmIsNoOpOnBusyArray) {
  MiniRun tpm = RunMini(Scheme::kTpm, goal_);
  EXPECT_NEAR(tpm.result.energy_total.value(), base_->result.energy_total.value(),
              (0.03 * base_->result.energy_total).value());
}

TEST_F(RegressionBands, DrpmSavesButDegradesLatency) {
  MiniRun drpm = RunMini(Scheme::kDrpm, goal_);
  EXPECT_GT(drpm.result.SavingsVs(base_->result), 0.25);
  EXPECT_GT(drpm.result.mean_response_ms, 2.0 * base_->result.mean_response_ms);
}

TEST_F(RegressionBands, MaidCostsEnergyAtThisScale) {
  MiniRun maid = RunMini(Scheme::kMaid, goal_);
  // Two always-on cache disks on an 8-disk array: net energy increase.
  EXPECT_LT(maid.result.SavingsVs(base_->result), 0.05);
}

TEST_F(RegressionBands, HibernatorBeatsUtilThresholdOnGoalAdherence) {
  MiniRun cr = RunMini(Scheme::kHibernator, goal_);
  MiniRun ut = RunMini(Scheme::kHibernatorUtilThreshold, goal_);
  // Both run; CR must meet the goal.  UT has no response model, so its only
  // guardrail is the boost — it may meet the goal but burns boost time.
  EXPECT_LE(cr.result.mean_response_ms, goal_ * 1.10);
  EXPECT_GT(ut.result.requests, 0);
}

}  // namespace
}  // namespace hib
