// Observability layer tests: log-linear histogram bucket boundaries, metrics
// snapshot merging (including determinism across RunAll shard counts), the
// tracer ring buffer, and the trace/metrics JSON exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/parallel.h"
#include "src/harness/schemes.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/tracer.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

// ------------------------------------------------ LogLinearHistogram -------

// Every bucket boundary must land in its own bucket, and the largest double
// strictly below it in the previous one.  This is only true because the
// boundaries are exact binary doubles (sub_buckets is a power of two); a
// decimal-stepped histogram would flake per-platform on exactly this test.
TEST(LogLinearHistogram, BucketBoundariesAreExact) {
  LogLinearHistogram h;
  const HistogramOptions& opt = h.options();
  for (int i = 1; i < opt.NumBuckets(); ++i) {
    double lower = h.BucketLowerBound(i);
    EXPECT_EQ(h.BucketIndex(lower), i) << "lower bound of bucket " << i << " (" << lower << ")";
    double below = std::nextafter(lower, 0.0);
    EXPECT_EQ(h.BucketIndex(below), i - 1)
        << "value just below bucket " << i << "'s lower bound (" << below << ")";
  }
}

TEST(LogLinearHistogram, UnderflowAndOverflow) {
  LogLinearHistogram h;
  const HistogramOptions& opt = h.options();
  EXPECT_EQ(h.BucketIndex(0.0), 0);
  EXPECT_EQ(h.BucketIndex(-5.0), 0);
  EXPECT_EQ(h.BucketIndex(std::nan("")), 0);
  EXPECT_EQ(h.BucketIndex(opt.min_bound / 2.0), 0);
  double top = std::ldexp(opt.min_bound, opt.octaves);
  EXPECT_EQ(h.BucketIndex(top), opt.NumBuckets() - 1);
  EXPECT_EQ(h.BucketIndex(top * 1e6), opt.NumBuckets() - 1);
}

TEST(LogLinearHistogram, RecordTracksMoments) {
  LogLinearHistogram h;
  for (double v : {4.0, 1.0, 16.0, 2.0}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 23.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 16.0);
}

TEST(LogLinearHistogram, QuantileReturnsBucketLowerBounds) {
  LogLinearHistogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(1.0);  // 100 samples in one bucket
  }
  h.Record(1024.0);  // one outlier
  // p50 must be the bucket holding 1.0; p100 the outlier's bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), h.BucketLowerBound(h.BucketIndex(1.0)));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.BucketLowerBound(h.BucketIndex(1024.0)));
  // Quantiles are lower bounds, so p50 <= 1.0 < next boundary.
  EXPECT_LE(h.Quantile(0.5), 1.0);
}

TEST(LogLinearHistogram, EmptyQuantileIsZero) {
  LogLinearHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// --------------------------------------------------- MetricsRegistry -------

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("a");
  c.Add(2);
  reg.GetCounter("b").Add(10);  // map growth must not move `c`
  EXPECT_EQ(&reg.GetCounter("a"), &c);
  c.Add(3);
  EXPECT_EQ(reg.GetCounter("a").count(), 5);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("zeta").Add(1);
  reg.GetCounter("alpha").Add(2);
  reg.GetGauge("mid").Set(3.0);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].current, 3.0);
}

TEST(MetricsRegistry, UnsetGaugesOmittedFromSnapshot) {
  MetricsRegistry reg;
  reg.GetGauge("never_set");
  EXPECT_TRUE(reg.Snapshot().gauges.empty());
}

TEST(MetricsSnapshot, MergeSemantics) {
  MetricsRegistry a;
  a.GetCounter("shared").Add(2);
  a.GetCounter("only_a").Add(7);
  a.GetGauge("g").Set(1.0);
  a.GetHistogram("h").Record(4.0);

  MetricsRegistry b;
  b.GetCounter("shared").Add(40);
  b.GetCounter("only_b").Add(9);
  b.GetGauge("g").Set(2.0);
  b.GetHistogram("h").Record(8.0);
  b.GetHistogram("h").Record(16.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());

  ASSERT_EQ(merged.counters.size(), 3u);
  EXPECT_EQ(merged.counters[0].name, "only_a");
  EXPECT_EQ(merged.counters[1].name, "only_b");
  EXPECT_EQ(merged.counters[2].name, "shared");
  EXPECT_EQ(merged.counters[2].count, 42);
  EXPECT_EQ(merged.gauges[0].current, 2.0);  // last merged wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 3);
  EXPECT_DOUBLE_EQ(merged.histograms[0].sum, 28.0);
  EXPECT_DOUBLE_EQ(merged.histograms[0].min_seen, 4.0);
  EXPECT_DOUBLE_EQ(merged.histograms[0].max_seen, 16.0);
}

// Counter merge across RunAll shards must not depend on the thread count:
// each run is an isolated universe and MergeMetrics folds in spec order.
TEST(MergeMetrics, DeterministicAcrossShardCounts) {
  ArrayParams base;
  base.num_disks = 8;
  base.group_width = 4;
  base.disk = MakeUltrastar36Z15MultiSpeed(5);
  base.seed = 7;

  auto make_workload = [](const ArrayParams& array) -> std::unique_ptr<WorkloadSource> {
    ConstantWorkloadParams wp;
    wp.address_space_sectors = array.DataSectors();
    wp.duration_ms = Minutes(10.0);
    wp.iops = 40.0;
    wp.seed = 11;
    return std::make_unique<ConstantWorkload>(wp);
  };

  std::vector<ExperimentSpec> specs;
  for (Scheme scheme : {Scheme::kBase, Scheme::kTpm, Scheme::kDrpm}) {
    SchemeConfig cfg;
    cfg.scheme = scheme;
    cfg.goal_ms = Ms(30.0);
    cfg.epoch_ms = Minutes(5.0);
    specs.push_back(SpecForScheme(cfg, base, make_workload));
  }

  MetricsSnapshot sequential = MergeMetrics(RunAll(specs, 1));
  MetricsSnapshot threaded = MergeMetrics(RunAll(specs, 3));

  ASSERT_EQ(sequential.counters.size(), threaded.counters.size());
  for (std::size_t i = 0; i < sequential.counters.size(); ++i) {
    EXPECT_EQ(sequential.counters[i].name, threaded.counters[i].name);
    EXPECT_EQ(sequential.counters[i].count, threaded.counters[i].count)
        << "counter " << sequential.counters[i].name;
  }
  ASSERT_EQ(sequential.histograms.size(), threaded.histograms.size());
  for (std::size_t i = 0; i < sequential.histograms.size(); ++i) {
    EXPECT_EQ(sequential.histograms[i].name, threaded.histograms[i].name);
    EXPECT_EQ(sequential.histograms[i].count, threaded.histograms[i].count);
    EXPECT_EQ(sequential.histograms[i].sum, threaded.histograms[i].sum);
    EXPECT_EQ(sequential.histograms[i].buckets, threaded.histograms[i].buckets);
  }

#if HIB_OBS
  // The instrumentation actually fired: every scheme submitted requests.
  bool found = false;
  for (const auto& c : sequential.counters) {
    if (c.name == "array.reads") {
      found = true;
      EXPECT_GT(c.count, 0);
    }
  }
  EXPECT_TRUE(found);
#endif
}

// --------------------------------------------------------- Tracer ----------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  t.Span(SpanKind::kService, 0, "io", Ms(0.0), Ms(1.0));
  t.Instant(SpanKind::kDecision, 0, "d", Ms(0.0));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, RingBufferWrapsDroppingOldest) {
  Tracer t;
  t.Enable(8);
  for (int i = 0; i < 20; ++i) {
    t.Instant(SpanKind::kDecision, 0, "tick", Ms(static_cast<double>(i)), i);
  }
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].id, 12 + i) << "oldest-first order";
  }
}

TEST(Tracer, EventsBeforeWraparoundKeepInsertionOrder) {
  Tracer t;
  t.Enable(8);
  for (int i = 0; i < 3; ++i) {
    t.Instant(SpanKind::kDecision, 0, "tick", Ms(static_cast<double>(i)), i);
  }
  std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 0);
  EXPECT_EQ(events[2].id, 2);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, SpanStoresDuration) {
  Tracer t;
  t.Enable(4);
  t.Span(SpanKind::kService, 3, "read", Ms(10.0), Ms(12.5), 77, 1.0);
  std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].track, 3);
  EXPECT_EQ(events[0].id, 77);
  EXPECT_FALSE(events[0].instant);
  EXPECT_DOUBLE_EQ(events[0].start.value(), 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur.value(), 2.5);
}

using TracerDeathTest = ::testing::Test;

TEST(TracerDeathTest, SpanEndingBeforeStartAborts) {
  Tracer t;
  t.Enable(4);
  EXPECT_DEATH(t.Span(SpanKind::kService, 0, "bad", Ms(5.0), Ms(1.0)),
               "ends before it starts");
}

// ------------------------------------------------------- Exporters ---------

TEST(ChromeTraceExport, EmitsWellFormedEventsAndLanes) {
  Tracer t;
  t.Enable(16);
  t.Span(SpanKind::kPowerState, 0, "Active", Ms(0.0), Ms(100.0), 0, 13.5);
  t.Span(SpanKind::kQueueWait, 1, "wait", Ms(5.0), Ms(7.0), 42);
  t.Instant(SpanKind::kEpoch, kTrackPolicy, "epoch", Ms(50.0), 1);
  std::ostringstream out;
  WriteChromeTrace(out, t);
  std::string json = out.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete span on disk 0's power lane, ms -> us conversion applied.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100000"), std::string::npos);
  // kQueueWait becomes an async begin/end pair.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  // Instant on the policy lane.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Lane naming metadata.
  EXPECT_NE(json.find("disk 0 power"), std::string::npos);
  EXPECT_NE(json.find("\"policy\""), std::string::npos);
}

TEST(MetricsJsonExport, RoundTripShape) {
  MetricsRegistry reg;
  reg.GetCounter("c").Add(5);
  reg.GetGauge("g").Set(2.5);
  LogLinearHistogram& h = reg.GetHistogram("h");
  h.Record(1.0);
  h.Record(2.0);
  std::string json = MetricsSnapshotJson(reg.Snapshot()).Dump();
  EXPECT_NE(json.find("\"c\":5"), std::string::npos);
  EXPECT_NE(json.find("\"g\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

}  // namespace
}  // namespace hib
