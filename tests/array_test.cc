#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/array/array.h"
#include "src/array/cache.h"
#include "src/array/layout.h"
#include "src/sim/simulator.h"

namespace hib {
namespace {

LayoutParams SmallLayout(int width = 4) {
  LayoutParams p;
  p.num_disks = 8;
  p.group_width = width;
  p.num_extents = 1000;
  p.extent_sectors = 2048;
  p.stripe_unit_sectors = 128;
  p.disk_capacity_sectors = 10'000'000;
  return p;
}

ArrayParams SmallArray(int width = 4) {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = width;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.1;  // keep extent tables small in tests
  p.cache_lines = 0;      // cache off unless a test turns it on
  return p;
}

// ------------------------------------------------------ LayoutManager ------

TEST(Layout, RoundRobinInitialAssignment) {
  LayoutManager layout(SmallLayout());
  EXPECT_EQ(layout.num_groups(), 2);
  EXPECT_EQ(layout.GroupOf(0), 0);
  EXPECT_EQ(layout.GroupOf(1), 1);
  EXPECT_EQ(layout.GroupOf(2), 0);
  EXPECT_EQ(layout.extents_per_group()[0], 500);
  EXPECT_EQ(layout.extents_per_group()[1], 500);
}

TEST(Layout, SetGroupMaintainsCounts) {
  LayoutManager layout(SmallLayout());
  layout.SetGroup(0, 1);
  EXPECT_EQ(layout.GroupOf(0), 1);
  EXPECT_EQ(layout.extents_per_group()[0], 499);
  EXPECT_EQ(layout.extents_per_group()[1], 501);
  layout.SetGroup(0, 1);  // idempotent
  EXPECT_EQ(layout.extents_per_group()[1], 501);
}

TEST(Layout, GroupDisksAreContiguous) {
  LayoutManager layout(SmallLayout());
  EXPECT_EQ(layout.GroupDisks(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(layout.GroupDisks(1), (std::vector<int>{4, 5, 6, 7}));
}

TEST(Layout, MapStaysInsideGroup) {
  LayoutManager layout(SmallLayout());
  for (std::int64_t e : {0, 1, 17, 999}) {
    int group = layout.GroupOf(e);
    for (SectorAddr off = 0; off < 2048; off += 128) {
      StripeTarget t = layout.Map(e, off);
      EXPECT_GE(t.data_disk, group * 4);
      EXPECT_LT(t.data_disk, (group + 1) * 4);
      EXPECT_GE(t.parity_disk, group * 4);
      EXPECT_LT(t.parity_disk, (group + 1) * 4);
      EXPECT_NE(t.data_disk, t.parity_disk);
      EXPECT_GE(t.data_sector, 0);
      EXPECT_LT(t.data_sector, 10'000'000);
    }
  }
}

TEST(Layout, ParityRotatesAcrossRows) {
  LayoutManager layout(SmallLayout());
  std::set<int> parity_disks;
  // Rows are (width-1) units of 128 sectors; walk several rows.
  for (SectorAddr off = 0; off < 2048; off += 128 * 3) {
    parity_disks.insert(layout.Map(0, off).parity_disk);
  }
  EXPECT_GT(parity_disks.size(), 1u);
}

TEST(Layout, DataUnitsSpreadAcrossGroupDisks) {
  LayoutManager layout(SmallLayout());
  std::set<int> data_disks;
  for (SectorAddr off = 0; off < 2048; off += 128) {
    data_disks.insert(layout.Map(0, off).data_disk);
  }
  EXPECT_EQ(data_disks.size(), 4u);  // all four disks carry data units
}

TEST(Layout, WidthOneHasNoParity) {
  LayoutManager layout(SmallLayout(1));
  EXPECT_EQ(layout.num_groups(), 8);
  StripeTarget t = layout.Map(5, 256);
  EXPECT_EQ(t.parity_disk, -1);
  EXPECT_EQ(t.data_disk, layout.GroupOf(5));
}

TEST(Layout, WidthTwoMirrors) {
  LayoutManager layout(SmallLayout(2));
  StripeTarget t = layout.Map(3, 0);
  EXPECT_GE(t.parity_disk, 0);
  EXPECT_NE(t.data_disk, t.parity_disk);
  EXPECT_EQ(t.data_sector, t.parity_sector);
}

TEST(Layout, DifferentExtentsDifferentPhysicalBases) {
  LayoutManager layout(SmallLayout());
  EXPECT_NE(layout.Map(0, 0).data_sector, layout.Map(2, 0).data_sector);
}

TEST(Layout, ResetRoundRobinRestores) {
  LayoutManager layout(SmallLayout());
  layout.SetGroup(0, 1);
  layout.SetGroup(2, 1);
  layout.ResetRoundRobin();
  EXPECT_EQ(layout.GroupOf(0), 0);
  EXPECT_EQ(layout.extents_per_group()[0], 500);
}

// ------------------------------------------------- TemperatureTracker ------

TEST(Temperature, TouchAccumulates) {
  TemperatureTracker temps(10, 0.5);
  temps.Touch(3);
  temps.Touch(3);
  temps.Touch(5, 2.5);
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(3), 2.0);
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(5), 2.5);
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(0), 0.0);
}

TEST(Temperature, EpochDecay) {
  TemperatureTracker temps(4, 0.5);
  temps.Touch(1);
  temps.Touch(1);
  temps.EndEpoch();
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(1), 2.0);
  temps.EndEpoch();
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(1), 1.0);
  temps.Touch(1);
  EXPECT_DOUBLE_EQ(temps.TemperatureOf(1), 2.0);  // decayed 1.0 + window 1.0
}

TEST(Temperature, SortedHottestFirst) {
  TemperatureTracker temps(5, 0.5);
  temps.Touch(2, 10.0);
  temps.Touch(4, 5.0);
  temps.Touch(0, 1.0);
  std::vector<std::int64_t> order = temps.SortedHottestFirst();
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 4);
  EXPECT_EQ(order[2], 0);
}

TEST(Temperature, TotalTemperature) {
  TemperatureTracker temps(3, 0.5);
  temps.Touch(0, 1.0);
  temps.Touch(1, 2.0);
  EXPECT_DOUBLE_EQ(temps.TotalTemperature(), 3.0);
  temps.EndEpoch();
  EXPECT_DOUBLE_EQ(temps.TotalTemperature(), 3.0);
  temps.EndEpoch();
  EXPECT_DOUBLE_EQ(temps.TotalTemperature(), 1.5);
}

// ------------------------------------------------------------ LruCache -----

TEST(Cache, MissThenHit) {
  LruCache cache(8, 128);
  EXPECT_FALSE(cache.Lookup(0, 8));
  cache.Insert(0, 8);
  EXPECT_TRUE(cache.Lookup(0, 8));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(Cache, PartialCoverageIsMiss) {
  LruCache cache(8, 128);
  cache.Insert(0, 128);  // line 0 only
  EXPECT_FALSE(cache.Lookup(0, 256));  // needs lines 0 and 1
  cache.Insert(128, 128);
  EXPECT_TRUE(cache.Lookup(0, 256));
}

TEST(Cache, InvalidateRemoves) {
  LruCache cache(8, 128);
  cache.Insert(0, 128);
  cache.Invalidate(0, 1);  // overlaps line 0
  EXPECT_FALSE(cache.Lookup(0, 8));
}

TEST(Cache, EvictsLru) {
  LruCache cache(2, 128);
  cache.Insert(0, 1);      // line 0
  cache.Insert(128, 1);    // line 1
  EXPECT_TRUE(cache.Lookup(0, 1));   // touch line 0 (now MRU)
  cache.Insert(256, 1);    // line 2 evicts line 1
  EXPECT_TRUE(cache.Lookup(0, 1));
  EXPECT_FALSE(cache.Lookup(128, 1));
  EXPECT_TRUE(cache.Lookup(256, 1));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, ZeroCapacityAlwaysMisses) {
  LruCache cache(0, 128);
  cache.Insert(0, 8);
  EXPECT_FALSE(cache.Lookup(0, 8));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, HitRate) {
  LruCache cache(8, 128);
  cache.Insert(0, 8);
  cache.Lookup(0, 8);
  cache.Lookup(4096, 8);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(Cache, SteadyStateHoldsFullCapacity) {
  // Once warmed, the cache sits at size() == capacity() forever: every
  // insert of a new line recycles the LRU tail instead of shrinking or
  // growing the table (the flat table is fully allocated up front).
  LruCache cache(16, 128);
  for (int i = 0; i < 64; ++i) {
    cache.Insert(static_cast<SectorAddr>(i) * 128, 1);
    if (i >= 15) {
      ASSERT_EQ(cache.size(), cache.capacity()) << "insert " << i;
    }
  }
  // Steady-state churn: lookups, re-inserts and fresh inserts never move it.
  for (int i = 0; i < 256; ++i) {
    cache.Lookup(static_cast<SectorAddr>(48 + i % 16) * 128, 1);
    cache.Insert(static_cast<SectorAddr>(64 + i) * 128, 1);
    ASSERT_EQ(cache.size(), cache.capacity()) << "churn " << i;
  }
}

// ------------------------------------------------------ ArrayController ----

class ArrayTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TraceRecord MakeRecord(SectorAddr lba, SectorCount count, bool write) {
  TraceRecord rec;
  rec.time = SimTime{};
  rec.lba = lba;
  rec.count = count;
  rec.is_write = write;
  return rec;
}

TEST_F(ArrayTest, ReadIssuesOneSubop) {
  ArrayController array(&sim_, SmallArray());
  array.Submit(MakeRecord(0, 8, false));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 1);
  EXPECT_EQ(array.stats().reads, 1);
  EXPECT_EQ(array.stats().total_responses, 1);
}

TEST_F(ArrayTest, Raid5WriteIssuesFourSubops) {
  ArrayController array(&sim_, SmallArray());
  array.Submit(MakeRecord(0, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 4);  // read old data+parity, write both
  EXPECT_EQ(array.stats().writes, 1);
}

TEST_F(ArrayTest, WidthOneWriteIsSingleSubop) {
  ArrayController array(&sim_, SmallArray(1));
  array.Submit(MakeRecord(0, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 1);
}

TEST_F(ArrayTest, WidthTwoWriteMirrors) {
  ArrayController array(&sim_, SmallArray(2));
  array.Submit(MakeRecord(0, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 2);
}

TEST_F(ArrayTest, WriteSlowerThanReadUnderRaid5) {
  ArrayParams params = SmallArray();
  Duration read_resp;
  Duration write_resp;
  {
    Simulator sim;
    ArrayController array(&sim, params);
    array.Submit(MakeRecord(0, 8, false), [&](Duration r) { read_resp = r; });
    sim.RunUntil(Seconds(5.0));
  }
  {
    Simulator sim;
    ArrayController array(&sim, params);
    array.Submit(MakeRecord(0, 8, true), [&](Duration r) { write_resp = r; });
    sim.RunUntil(Seconds(5.0));
  }
  EXPECT_GT(write_resp, read_resp);
}

TEST_F(ArrayTest, LargeRequestSpansMultipleUnits) {
  ArrayController array(&sim_, SmallArray());
  array.Submit(MakeRecord(0, 512, false));  // 4 stripe units
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 4);
  EXPECT_EQ(array.stats().total_responses, 1);
}

TEST_F(ArrayTest, CacheHitServedFast) {
  ArrayParams params = SmallArray();
  params.cache_lines = 64;
  ArrayController array(&sim_, params);
  Duration first = Ms(-1.0);
  Duration second = Ms(-1.0);
  array.Submit(MakeRecord(0, 8, false), [&](Duration r) { first = r; });
  sim_.RunUntil(Seconds(5.0));
  array.Submit(MakeRecord(0, 8, false), [&](Duration r) { second = r; });
  sim_.RunUntil(Seconds(10.0));
  EXPECT_GT(first, 2.0 * params.cache_hit_ms);
  EXPECT_NEAR(second.value(), params.cache_hit_ms.value(), 1e-9);
  EXPECT_EQ(array.stats().cache_hits, 1);
}

TEST_F(ArrayTest, WriteInvalidatesCache) {
  ArrayParams params = SmallArray();
  params.cache_lines = 64;
  ArrayController array(&sim_, params);
  array.Submit(MakeRecord(0, 8, false));
  sim_.RunUntil(Seconds(5.0));
  array.Submit(MakeRecord(0, 8, true));
  sim_.RunUntil(Seconds(10.0));
  Duration third = Ms(-1.0);
  array.Submit(MakeRecord(0, 8, false), [&](Duration r) { third = r; });
  sim_.RunUntil(Seconds(15.0));
  EXPECT_GT(third, Ms(1.0));  // not a cache hit
}

TEST_F(ArrayTest, TemperatureTouchedPerAccess) {
  ArrayController array(&sim_, SmallArray());
  array.Submit(MakeRecord(0, 8, false));
  array.Submit(MakeRecord(0, 8, false));
  array.Submit(MakeRecord(array.params().extent_sectors * 5, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_DOUBLE_EQ(array.temperatures().TemperatureOf(0), 2.0);
  EXPECT_DOUBLE_EQ(array.temperatures().TemperatureOf(5), 1.0);
}

TEST_F(ArrayTest, CompletionHookFires) {
  ArrayController array(&sim_, SmallArray());
  int hook_calls = 0;
  array.set_completion_hook([&](const TraceRecord&, Duration) { ++hook_calls; });
  array.Submit(MakeRecord(0, 8, false));
  array.Submit(MakeRecord(4096, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(hook_calls, 2);
}

TEST_F(ArrayTest, ReadRouterRedirects) {
  ArrayParams params = SmallArray(1);
  params.num_cache_disks = 1;
  ArrayController array(&sim_, params);
  int cache_disk = array.cache_disk_id(0);
  array.set_read_router([&](std::int64_t, int) { return cache_disk; });
  array.Submit(MakeRecord(0, 8, false));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.disk(cache_disk).stats().requests_completed, 1);
}

TEST_F(ArrayTest, MigrationMovesExtent) {
  ArrayController array(&sim_, SmallArray());
  std::int64_t extent = 0;
  ASSERT_EQ(array.layout().GroupOf(extent), 0);
  array.RequestMigration(extent, 1);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(array.layout().GroupOf(extent), 1);
  EXPECT_EQ(array.stats().migrations_completed, 1);
  EXPECT_EQ(array.stats().migrated_sectors, array.params().extent_sectors);
}

TEST_F(ArrayTest, MigrationToSameGroupSkipped) {
  ArrayController array(&sim_, SmallArray());
  array.RequestMigration(0, 0);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(array.stats().migrations_completed, 0);
}

TEST_F(ArrayTest, MigrationPauseDefersWork) {
  ArrayController array(&sim_, SmallArray());
  array.PauseMigration(true);
  array.RequestMigration(0, 1);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(array.layout().GroupOf(0), 0);
  EXPECT_EQ(array.MigrationBacklog(), 1u);
  array.PauseMigration(false);
  sim_.RunUntil(Seconds(60.0));
  EXPECT_EQ(array.layout().GroupOf(0), 1);
}

TEST_F(ArrayTest, CancelQueuedMigrations) {
  ArrayController array(&sim_, SmallArray());
  array.PauseMigration(true);
  array.RequestMigration(0, 1);
  array.RequestMigration(2, 1);
  array.CancelQueuedMigrations();
  array.PauseMigration(false);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(array.stats().migrations_completed, 0);
}

TEST_F(ArrayTest, ConcurrentMigrationCapRespected) {
  ArrayParams params = SmallArray();
  params.max_concurrent_migrations = 1;
  ArrayController array(&sim_, params);
  for (std::int64_t e = 0; e < 10; e += 2) {
    array.RequestMigration(e, 1);  // even extents start in group 0
  }
  // Backlog drains one at a time but all eventually complete.
  sim_.RunUntil(Seconds(120.0));
  EXPECT_EQ(array.stats().migrations_completed, 5);
}

TEST_F(ArrayTest, MigrationUsesBackgroundPriority) {
  ArrayController array(&sim_, SmallArray());
  array.RequestMigration(0, 1);
  sim_.RunUntil(Seconds(30.0));
  std::int64_t bg = 0;
  for (int i = 0; i < array.num_data_disks(); ++i) {
    bg += array.disk(i).stats().background_completed;
  }
  EXPECT_GT(bg, 0);
}

TEST_F(ArrayTest, TotalEnergySumsDisks) {
  ArrayParams params = SmallArray();
  ArrayController array(&sim_, params);
  sim_.RunUntil(Seconds(10.0));
  DiskEnergy total = array.TotalEnergy();
  EXPECT_NEAR(total.idle.value(),
              (8.0 * EnergyOf(params.disk.speeds.back().idle_power, Seconds(10.0))).value(), 1e-6);
  EXPECT_NEAR(total.TotalMs().value(), (8.0 * Seconds(10.0)).value(), 1e-6);
}

TEST_F(ArrayTest, WindowStatsTrackAndReset) {
  ArrayController array(&sim_, SmallArray());
  array.Submit(MakeRecord(0, 8, false));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().window_responses, 1);
  EXPECT_GT(array.stats().WindowMeanResponse(), Duration{});
  array.stats().ResetWindow();
  EXPECT_EQ(array.stats().window_responses, 0);
  EXPECT_EQ(array.stats().total_responses, 1);  // cumulative survives
}

TEST_F(ArrayTest, DataSectorsWholeExtents) {
  ArrayParams params = SmallArray();
  EXPECT_EQ(params.DataSectors() % params.extent_sectors, 0);
  EXPECT_GT(params.NumExtents(), 0);
}

}  // namespace
}  // namespace hib
