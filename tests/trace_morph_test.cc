// Property tests for the trace morphers (src/trace/morph.h) and the workload
// zoo extensions (src/trace/zoo.h).  Every morpher must preserve the
// WorkloadSource contract — nondecreasing timestamps, LBAs inside
// AddressSpaceSectors(), deterministic replay after Reset() — and each has
// its own headline property: rate-x-N multiplies the record count by exactly
// N, LBA remap never leaves the target space (checked over a million random
// records), phase splice is a permutation, sampling is seed-deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/trace/morph.h"
#include "src/trace/synthetic.h"
#include "src/trace/zoo.h"
#include "src/util/random.h"

namespace hib {
namespace {

constexpr SectorAddr kSpace = 1 << 20;  // 512 MB logical space

std::vector<TraceRecord> Drain(WorkloadSource& source) {
  std::vector<TraceRecord> records;
  TraceRecord r;
  while (source.Next(&r)) {
    records.push_back(r);
  }
  return records;
}

void ExpectContract(const std::vector<TraceRecord>& records, SectorAddr space) {
  SimTime last;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    ASSERT_GE(r.time, last) << "timestamps regressed at record " << i;
    ASSERT_GE(r.lba, 0) << "record " << i;
    ASSERT_GE(r.count, 1) << "record " << i;
    ASSERT_LE(r.lba + r.count, space) << "record " << i;
    last = r.time;
  }
}

std::unique_ptr<WorkloadSource> SmallOltp(std::uint64_t seed = 4242) {
  OltpWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Minutes(30.0);
  p.peak_iops = 40.0;
  p.trough_iops = 10.0;
  p.seed = seed;
  return std::make_unique<OltpWorkload>(p);
}

// In-memory source for targeted inputs (WorkloadSource contract: the caller
// provides records in nondecreasing time order).
class VectorSource : public WorkloadSource {
 public:
  VectorSource(std::vector<TraceRecord> records, SectorAddr space)
      : records_(std::move(records)), space_(space) {}

  bool Next(TraceRecord* out) override {
    if (pos_ >= records_.size()) {
      return false;
    }
    *out = records_[pos_++];
    return true;
  }
  void Reset() override { pos_ = 0; }
  SectorAddr AddressSpaceSectors() const override { return space_; }

 private:
  std::vector<TraceRecord> records_;
  SectorAddr space_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- rate scale ---

TEST(RateScaleMorph, MultipliesCountExactlyAndKeepsOrdering) {
  const std::size_t base_count = Drain(*SmallOltp()).size();
  ASSERT_GT(base_count, 100u);

  for (int factor : {1, 2, 3, 7}) {
    RateScaleMorph morph(SmallOltp(), factor);
    std::vector<TraceRecord> scaled = Drain(morph);
    // The headline property: count x N with no slack at all.
    EXPECT_EQ(scaled.size(), base_count * static_cast<std::size_t>(factor))
        << "factor " << factor;
    ExpectContract(scaled, morph.AddressSpaceSectors());
  }
}

TEST(RateScaleMorph, ScalesPeakIopsHintAndIsDeterministic) {
  RateScaleMorph morph(SmallOltp(), 4);
  EXPECT_DOUBLE_EQ(morph.PeakIopsHint(), SmallOltp()->PeakIopsHint() * 4.0);

  std::vector<TraceRecord> first = Drain(morph);
  morph.Reset();
  std::vector<TraceRecord> second = Drain(morph);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].lba, second[i].lba) << "record " << i;
    ASSERT_EQ(first[i].time, second[i].time) << "record " << i;
  }
}

TEST(RateScaleMorph, ReplicasArriveWithinTheSourceGap) {
  // Two inner records 10 ms apart: the factor-4 replicas of the first must
  // land inside [t, t + 10ms), not bunch up or spill past the next arrival.
  std::vector<TraceRecord> inner(2);
  inner[0].time = Ms(100.0);
  inner[1].time = Ms(110.0);
  inner[0].lba = inner[1].lba = 0;
  inner[0].count = inner[1].count = 8;
  RateScaleMorph morph(std::make_unique<VectorSource>(inner, kSpace), 4);
  std::vector<TraceRecord> out = Drain(morph);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(out[static_cast<std::size_t>(i)].time, Ms(100.0));
    EXPECT_LT(out[static_cast<std::size_t>(i)].time, Ms(110.0));
  }
  EXPECT_EQ(out[0].time, Ms(100.0));  // replica 0 is the verbatim record
}

// --------------------------------------------------------------- lba remap ---

TEST(LbaRemapMorph, MillionRandomRecordsStayInsideTheTargetSpace) {
  // 1M records with adversarial LBAs (boundary-hugging, max-count, random),
  // remapped both UP to a larger array and DOWN to a smaller one: every
  // output must satisfy 0 <= lba && lba + count <= target.
  Pcg32 rng(555);
  std::vector<TraceRecord> records;
  records.reserve(1000000);
  SimTime t;
  for (int i = 0; i < 1000000; ++i) {
    TraceRecord r;
    t = t + Ms(0.01);
    r.time = t;
    r.count = 1 + static_cast<SectorCount>(rng.NextBounded(4096));
    switch (rng.NextBounded(4)) {
      case 0:  // hug the top boundary
        r.lba = kSpace - r.count;
        break;
      case 1:  // hug the bottom
        r.lba = 0;
        break;
      default:
        r.lba = rng.NextInRange(0, kSpace - r.count);
        break;
    }
    records.push_back(r);
  }

  for (SectorAddr target : {kSpace * 8, kSpace, kSpace / 4 + 123}) {
    LbaRemapMorph morph(std::make_unique<VectorSource>(records, kSpace), target);
    EXPECT_EQ(morph.AddressSpaceSectors(), target);
    TraceRecord r;
    std::int64_t n = 0;
    while (morph.Next(&r)) {
      ++n;
      ASSERT_GE(r.lba, 0) << "target " << target << " record " << n;
      ASSERT_GE(r.count, 1) << "target " << target << " record " << n;
      ASSERT_LE(r.lba + r.count, target) << "target " << target << " record " << n;
    }
    EXPECT_EQ(n, 1000000) << "remap must not drop records";
  }
}

TEST(LbaRemapMorph, PreservesWithinChunkSequentiality) {
  // Two 4 KB requests 8 sectors apart inside one 1 MB chunk must stay exactly
  // 8 sectors apart after the chunk is relocated.
  std::vector<TraceRecord> inner(2);
  inner[0].time = Ms(1.0);
  inner[1].time = Ms(2.0);
  inner[0].lba = 4096;
  inner[1].lba = 4104;
  inner[0].count = inner[1].count = 8;
  LbaRemapMorph morph(std::make_unique<VectorSource>(inner, kSpace), kSpace * 4);
  std::vector<TraceRecord> out = Drain(morph);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].lba - out[0].lba, 8);
}

// ------------------------------------------------------------ phase splice ---

TEST(PhaseSpliceMorph, IsAPermutationWithTheExpectedShift) {
  const Duration period = Minutes(30.0);
  const Duration shift = Minutes(10.0);
  std::vector<TraceRecord> inner_records = Drain(*SmallOltp());
  ASSERT_GT(inner_records.size(), 100u);

  PhaseSpliceMorph morph(SmallOltp(), shift, period);
  std::vector<TraceRecord> out = Drain(morph);
  ExpectContract(out, morph.AddressSpaceSectors());
  EXPECT_EQ(morph.DurationHint(), period);

  // The generator never emits at t >= its duration (== period here), so the
  // splice drops nothing: same multiset of requests, times shifted mod period.
  ASSERT_EQ(out.size(), inner_records.size());
  std::vector<std::tuple<std::int64_t, std::int64_t, bool>> a, b;
  a.reserve(out.size());
  b.reserve(out.size());
  for (const TraceRecord& r : inner_records) {
    a.emplace_back(r.lba, static_cast<std::int64_t>(r.count), r.is_write);
  }
  for (const TraceRecord& r : out) {
    b.emplace_back(r.lba, static_cast<std::int64_t>(r.count), r.is_write);
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  for (const TraceRecord& r : out) {
    EXPECT_LT(r.time, period);
  }
}

TEST(PhaseSpliceMorph, ShiftsTailRecordsToTheFront) {
  // Records at 5, 15, 25 minutes, shifted by 10: splice point at 20 min, so
  // the 25-minute record leads (at 5 min) and the rest follow shifted +10.
  std::vector<TraceRecord> inner(3);
  inner[0].time = Minutes(5.0);
  inner[1].time = Minutes(15.0);
  inner[2].time = Minutes(25.0);
  for (std::size_t i = 0; i < inner.size(); ++i) {
    inner[i].lba = static_cast<SectorAddr>(100 * (i + 1));
    inner[i].count = 8;
  }
  PhaseSpliceMorph morph(std::make_unique<VectorSource>(inner, kSpace), Minutes(10.0),
                         Minutes(30.0));
  std::vector<TraceRecord> out = Drain(morph);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lba, 300);
  EXPECT_EQ(out[0].time, Minutes(5.0));
  EXPECT_EQ(out[1].lba, 100);
  EXPECT_EQ(out[1].time, Minutes(15.0));
  EXPECT_EQ(out[2].lba, 200);
  EXPECT_EQ(out[2].time, Minutes(25.0));
}

TEST(PhaseSpliceMorph, ResetReplaysIdentically) {
  PhaseSpliceMorph morph(SmallOltp(), Hours(0.2));
  std::vector<TraceRecord> first = Drain(morph);
  morph.Reset();
  std::vector<TraceRecord> second = Drain(morph);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].time, second[i].time) << "record " << i;
    ASSERT_EQ(first[i].lba, second[i].lba) << "record " << i;
  }
}

// ----------------------------------------------------------------- sample ---

TEST(SampleMorph, EdgeFractionsAndDeterminism) {
  const std::size_t base_count = Drain(*SmallOltp()).size();

  SampleMorph none(SmallOltp(), 0.0, 9);
  EXPECT_EQ(Drain(none).size(), 0u);

  SampleMorph all(SmallOltp(), 1.0, 9);
  EXPECT_EQ(Drain(all).size(), base_count);

  SampleMorph half(SmallOltp(), 0.5, 9);
  std::vector<TraceRecord> first = Drain(half);
  // Loose binomial bounds: the point is "roughly half", not the exact count.
  EXPECT_GT(first.size(), base_count / 3);
  EXPECT_LT(first.size(), base_count * 2 / 3);
  ExpectContract(first, half.AddressSpaceSectors());

  half.Reset();
  std::vector<TraceRecord> second = Drain(half);
  ASSERT_EQ(first.size(), second.size()) << "Reset must re-seed the sampler";
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].lba, second[i].lba) << "record " << i;
    ASSERT_EQ(first[i].time, second[i].time) << "record " << i;
  }
}

// -------------------------------------------------------------------- zoo ---

TEST(MlTrainingWorkload, ContractAndCheckpointBursts) {
  MlTrainingWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Hours(1.0);
  p.read_iops = 50.0;
  p.epoch_ms = Minutes(10.0);
  MlTrainingWorkload workload(p);
  std::vector<TraceRecord> records = Drain(workload);
  ASSERT_GT(records.size(), 1000u);
  ExpectContract(records, kSpace);

  std::int64_t reads = 0, writes = 0;
  for (const TraceRecord& r : records) {
    (r.is_write ? writes : reads) += 1;
    if (r.is_write) {
      // Checkpoints write into the reserved top 1/16th of the space.
      EXPECT_GE(r.lba, kSpace - kSpace / 16);
    }
    EXPECT_LT(r.time, p.duration_ms);
  }
  // Read storm with checkpoint punctuation: ~6 epochs x 64 writes each.
  EXPECT_GT(reads, writes * 4);
  EXPECT_GE(writes, 5 * 64);

  workload.Reset();
  std::vector<TraceRecord> again = Drain(workload);
  ASSERT_EQ(records.size(), again.size());
  EXPECT_EQ(records.front().lba, again.front().lba);
  EXPECT_EQ(records.back().lba, again.back().lba);
}

TEST(BackupScanWorkload, WindowedScanDominatesAndContractHolds) {
  BackupScanWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Hours(8.0);
  p.day_ms = Hours(8.0);
  p.window_start_ms = Hours(1.0);
  p.window_ms = Hours(2.0);
  p.scan_iops = 40.0;
  p.background_iops = 1.0;
  BackupScanWorkload workload(p);
  std::vector<TraceRecord> records = Drain(workload);
  ASSERT_GT(records.size(), 1000u);
  ExpectContract(records, kSpace);

  std::int64_t in_window = 0, outside = 0;
  for (const TraceRecord& r : records) {
    EXPECT_FALSE(r.is_write);  // scrubs and verifies only read
    (workload.InWindow(r.time) ? in_window : outside) += 1;
  }
  // 2 of 8 hours at 40x the rate: the window must dominate the record count.
  EXPECT_GT(in_window, outside * 5);
  EXPECT_GT(outside, 0);
}

}  // namespace
}  // namespace hib
