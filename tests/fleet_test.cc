// FleetSimulator: deterministic sharding.  The fleet result must be a pure
// function of the FleetSpec — bit-identical across thread counts — and the
// per-array variation (seeds, rates, phases) must be deterministic and
// actually varied.
#include <set>

#include <gtest/gtest.h>

#include "src/harness/fleet.h"

namespace hib {
namespace {

// Small fleet that still exercises real policy machinery: a few hours of a
// low-rate stream over modest arrays keeps the test under a few seconds.
FleetSpec SmallSpec() {
  FleetSpec spec;
  spec.num_arrays = 6;
  spec.base_array.num_disks = 8;
  spec.base_array.group_width = 4;
  spec.base_array.cache_lines = 256;
  spec.scheme.scheme = Scheme::kHibernator;
  spec.scheme.goal_ms = Ms(25.0);
  spec.scheme.epoch_ms = Hours(1.0);
  spec.workload = FleetSpec::Workload::kOltp;
  spec.peak_iops = 40.0;
  spec.trough_iops = 10.0;
  spec.duration_ms = Hours(3.0);
  spec.rate_spread = 0.5;
  spec.phase_spread_ms = Hours(24.0);
  spec.seed = 1234;
  return spec;
}

TEST(FleetTest, SpecsAreDeterministicAndVaried) {
  FleetSimulator a(SmallSpec());
  FleetSimulator b(SmallSpec());
  ASSERT_EQ(a.specs().size(), 6u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].name, b.specs()[i].name);
    // Same FleetSpec -> identical per-array seeds...
    EXPECT_EQ(a.specs()[i].array.seed, b.specs()[i].array.seed);
    // ...and every array gets its own disk RNG stream.
    seeds.insert(a.specs()[i].array.seed);
    // Shards pre-size their event queues (satellite: no mid-run growth).
    EXPECT_GE(a.specs()[i].options.event_capacity_hint, 4096u);
  }
  EXPECT_EQ(seeds.size(), a.specs().size());
}

TEST(FleetTest, BitIdenticalAcrossThreadCounts) {
  FleetSimulator fleet(SmallSpec());
  FleetResult serial = fleet.Run(/*max_threads=*/1);
  FleetResult parallel = fleet.Run(/*max_threads=*/4);

  ASSERT_EQ(serial.per_array.size(), parallel.per_array.size());
  for (std::size_t i = 0; i < serial.per_array.size(); ++i) {
    const ExperimentResult& s = serial.per_array[i];
    const ExperimentResult& p = parallel.per_array[i];
    // Bit-identical, not approximately equal: every shard is a sealed
    // deterministic universe and the merge is in spec order.
    EXPECT_EQ(s.energy_total.value(), p.energy_total.value()) << "array " << i;
    EXPECT_EQ(s.mean_response_ms.value(), p.mean_response_ms.value()) << "array " << i;
    EXPECT_EQ(s.events, p.events) << "array " << i;
    EXPECT_EQ(s.requests, p.requests) << "array " << i;
  }
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.energy_total.value(), parallel.energy_total.value());
  EXPECT_EQ(serial.mean_response_ms.value(), parallel.mean_response_ms.value());
}

TEST(FleetTest, AggregatesSumShards) {
  FleetSpec spec = SmallSpec();
  spec.num_arrays = 3;
  FleetSimulator fleet(spec);
  FleetResult r = fleet.Run(2);

  EXPECT_EQ(r.arrays, 3);
  EXPECT_EQ(r.disks, 3 * 8);
  std::uint64_t events = 0;
  std::int64_t requests = 0;
  double energy = 0.0;
  for (const ExperimentResult& shard : r.per_array) {
    events += shard.events;
    requests += shard.requests;
    energy += shard.energy_total.value();
    EXPECT_GT(shard.requests, 0) << "every shard should see traffic";
  }
  EXPECT_EQ(r.events, events);
  EXPECT_EQ(r.requests, requests);
  EXPECT_DOUBLE_EQ(r.energy_total.value(), energy);
  EXPECT_GT(r.mean_response_ms.value(), 0.0);
}

TEST(FleetTest, RateSpreadAndPhaseVaryTheShards) {
  // With rate spread and phase stagger, shards must not be clones: their
  // request counts should differ (different rates, different valleys).
  FleetSpec spec = SmallSpec();
  spec.duration_ms = Hours(2.0);
  FleetSimulator fleet(spec);
  FleetResult r = fleet.Run(0);
  std::set<std::int64_t> request_counts;
  for (const ExperimentResult& shard : r.per_array) {
    request_counts.insert(shard.requests);
  }
  EXPECT_GT(request_counts.size(), 1u);

  // A homogeneous in-phase fleet, by contrast, produces identical shards
  // except for their distinct seeds.
  FleetSpec flat = SmallSpec();
  flat.duration_ms = Hours(2.0);
  flat.rate_spread = 0.0;
  flat.phase_spread_ms = Ms(0.0);
  FleetResult rf = FleetSimulator(flat).Run(0);
  for (const ExperimentResult& shard : rf.per_array) {
    EXPECT_GT(shard.requests, 0);
  }
}

}  // namespace
}  // namespace hib
