#include <gtest/gtest.h>

#include "src/array/array.h"
#include "src/policy/drpm.h"
#include "src/policy/full_power.h"
#include "src/policy/maid.h"
#include "src/policy/pdc.h"
#include "src/policy/tpm.h"
#include "src/policy/tpm_adaptive.h"
#include "src/sim/simulator.h"

namespace hib {
namespace {

ArrayParams TestArray(int width = 4, int cache_disks = 0) {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = width;
  p.num_cache_disks = cache_disks;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.1;
  p.cache_lines = 0;
  return p;
}

TraceRecord MakeRecord(SectorAddr lba, bool write = false) {
  TraceRecord rec;
  rec.lba = lba;
  rec.count = 8;
  rec.is_write = write;
  return rec;
}

// ---------------------------------------------------------------- TPM ------

TEST(TpmBreakEven, MatchesClosedForm) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  // (13 + 135) J / (10.2 - 1.5) W = ~17.0 s, plus transition times.
  Duration expected = Seconds((13.0 + 135.0) / (10.2 - 1.5)) + Ms(1500.0) + Ms(10900.0);
  EXPECT_NEAR(TpmBreakEvenMs(disk).value(), expected.value(), 1e-6);
}

TEST(TpmBreakEven, InfiniteWhenStandbySavesNothing) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  disk.standby_power = disk.speeds.back().idle_power;
  EXPECT_GT(TpmBreakEvenMs(disk), Ms(1e12));
}

TEST(Tpm, SpinsDownIdleDisksAfterThreshold) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  TpmParams params;
  params.idle_threshold_ms = Seconds(10.0);
  TpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.disk(0).state(), DiskPowerState::kIdle);  // not yet
  sim.RunUntil(Seconds(30.0));
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).state(), DiskPowerState::kStandby) << "disk " << i;
  }
}

TEST(Tpm, ActivityResetsIdleClock) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  TpmParams params;
  params.idle_threshold_ms = Seconds(20.0);
  TpmPolicy policy(params);
  policy.Attach(&sim, &array);
  // Keep one extent (group 0) warm with periodic I/O.
  sim.SchedulePeriodic(Seconds(5.0), Seconds(5.0),
                       [&] { array.Submit(MakeRecord(0)); });
  sim.RunUntil(Seconds(60.0));
  bool group0_up = false;
  for (int i = 0; i < 4; ++i) {
    group0_up |= array.disk(i).state() != DiskPowerState::kStandby;
  }
  EXPECT_TRUE(group0_up);
  // Group 1 received nothing and must be asleep.
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(array.disk(i).state(), DiskPowerState::kStandby);
  }
}

TEST(Tpm, SpinUpOnDemandServesRequest) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  TpmParams params;
  params.idle_threshold_ms = Seconds(5.0);
  TpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(20.0));
  ASSERT_EQ(array.disk(0).state(), DiskPowerState::kStandby);
  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(0), [&](Duration r) { response = r; });
  sim.RunUntil(Seconds(60.0));
  EXPECT_GT(response, Seconds(10.0));  // paid the spin-up
}

TEST(Tpm, DiskRangeRestriction) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  TpmParams params;
  params.idle_threshold_ms = Seconds(5.0);
  params.first_disk = 4;
  params.last_disk = 8;
  TpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(30.0));
  EXPECT_EQ(array.disk(0).state(), DiskPowerState::kIdle);
  EXPECT_EQ(array.disk(5).state(), DiskPowerState::kStandby);
}

TEST(Tpm, DefaultThresholdIsBreakEven) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  TpmPolicy policy;
  policy.Attach(&sim, &array);
  EXPECT_NE(policy.Describe().find("TPM"), std::string::npos);
}

// --------------------------------------------------------------- DRPM ------

TEST(Drpm, StepsDownWhenIdle) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  DrpmParams params;
  params.control_period_ms = Seconds(2.0);
  DrpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(120.0));
  // With zero load every disk should have walked down to the lowest level.
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).target_rpm(), 3000) << "disk " << i;
  }
}

TEST(Drpm, StepDownIsGradual) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  DrpmParams params;
  params.control_period_ms = Seconds(2.0);
  DrpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(2.5));  // one control tick
  EXPECT_EQ(array.disk(0).target_rpm(), 12000);  // one step, not a plunge
}

TEST(Drpm, QueueBuildupJumpsToFullSpeed) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  DrpmParams params;
  params.control_period_ms = Seconds(2.0);
  params.queue_up_watermark = 3;
  DrpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(60.0));  // everyone slow now
  ASSERT_EQ(array.disk(0).target_rpm(), 3000);
  // Flood group 0's first disk with reads of one extent.
  sim.SchedulePeriodic(Seconds(60.0), Ms(2.0), [&] { array.Submit(MakeRecord(0)); });
  sim.RunUntil(Seconds(70.0));
  bool any_full = false;
  for (int i = 0; i < 4; ++i) {
    any_full |= array.disk(i).target_rpm() == 15000;
  }
  EXPECT_TRUE(any_full);
}

TEST(Drpm, ManyTransitionsUnderOscillatingLoad) {
  // DRPM's defining weakness: frequent speed changes.
  Simulator sim;
  ArrayController array(&sim, TestArray());
  DrpmParams params;
  params.control_period_ms = Seconds(2.0);
  DrpmPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(300.0));
  std::int64_t changes = 0;
  for (int i = 0; i < array.num_data_disks(); ++i) {
    changes += array.disk(i).stats().rpm_changes;
  }
  EXPECT_GE(changes, 8 * 4);  // at least the full walk-down for each disk
}

// ---------------------------------------------------------------- PDC ------

TEST(Pdc, MigratesHotExtentsToFirstDisks) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1));
  PdcParams params;
  params.reorg_period_ms = Seconds(60.0);
  params.idle_threshold_ms = Hours(10.0);  // disable spin-down for this test
  PdcPolicy policy(params);
  policy.Attach(&sim, &array);

  // Heat up one extent that starts on a later disk.
  std::int64_t hot_extent = 5;  // round-robin start: group 5
  ASSERT_EQ(array.layout().GroupOf(hot_extent), 5);
  SectorAddr hot_lba = hot_extent * array.params().extent_sectors;
  sim.SchedulePeriodic(Ms(100.0), Ms(100.0), [&] { array.Submit(MakeRecord(hot_lba)); });
  sim.RunUntil(Seconds(180.0));
  EXPECT_EQ(array.layout().GroupOf(hot_extent), 0);
  EXPECT_GT(array.stats().migrations_completed, 0);
}

TEST(Pdc, ColdDisksSpinDown) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1));
  PdcParams params;
  params.reorg_period_ms = Seconds(60.0);
  params.idle_threshold_ms = Seconds(10.0);
  PdcPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(40.0));
  int asleep = 0;
  for (int i = 0; i < array.num_data_disks(); ++i) {
    asleep += array.disk(i).state() == DiskPowerState::kStandby ? 1 : 0;
  }
  EXPECT_EQ(asleep, 8);  // no load at all: everything sleeps
}

TEST(Pdc, RespectsMigrationBudget) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1));
  PdcParams params;
  params.reorg_period_ms = Seconds(30.0);
  params.migration_budget_extents = 3;
  params.idle_threshold_ms = Hours(10.0);
  PdcPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(59.0));  // one reorg pass, time to drain 3 moves
  EXPECT_LE(array.stats().migrations_completed, 3);
}

// --------------------------------------------------------------- MAID ------

TEST(Maid, CopiesReadExtentToCacheDisk) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1, /*cache_disks=*/1));
  MaidParams params;
  params.idle_threshold_ms = Hours(10.0);
  MaidPolicy policy(params);
  policy.Attach(&sim, &array);
  array.Submit(MakeRecord(0));
  sim.RunUntil(Seconds(30.0));
  EXPECT_EQ(policy.copies_started(), 1);
  EXPECT_GT(array.disk(array.cache_disk_id(0)).stats().sectors_written, 0);
}

TEST(Maid, SecondReadHitsCacheDisk) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1, 1));
  MaidParams params;
  params.idle_threshold_ms = Hours(10.0);
  MaidPolicy policy(params);
  policy.Attach(&sim, &array);
  array.Submit(MakeRecord(0));
  sim.RunUntil(Seconds(30.0));
  std::int64_t data_reads_before = array.disk(0).stats().foreground_completed;
  array.Submit(MakeRecord(0));
  sim.RunUntil(Seconds(60.0));
  EXPECT_EQ(policy.cache_hits(), 1);
  // The second read went to the cache disk, not back to data disk 0.
  EXPECT_EQ(array.disk(0).stats().foreground_completed, data_reads_before);
}

TEST(Maid, WriteInvalidatesCachedExtent) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1, 1));
  MaidParams params;
  params.idle_threshold_ms = Hours(10.0);
  MaidPolicy policy(params);
  policy.Attach(&sim, &array);
  array.Submit(MakeRecord(0));
  sim.RunUntil(Seconds(30.0));
  array.Submit(MakeRecord(0, /*write=*/true));
  sim.RunUntil(Seconds(60.0));
  array.Submit(MakeRecord(0));
  sim.RunUntil(Seconds(90.0));
  EXPECT_EQ(policy.cache_hits(), 0);
  EXPECT_EQ(policy.copies_started(), 2);  // re-cached after invalidation
}

TEST(Maid, LruEvictionWhenCacheFull) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1, 1));
  MaidParams params;
  params.cache_extents = 2;
  params.idle_threshold_ms = Hours(10.0);
  MaidPolicy policy(params);
  policy.Attach(&sim, &array);
  SectorCount ext = array.params().extent_sectors;
  for (std::int64_t e : {0, 1, 2}) {  // third insert evicts extent 0
    array.Submit(MakeRecord(e * ext));
    sim.RunUntil(sim.Now() + Seconds(20.0));
  }
  array.Submit(MakeRecord(0));
  sim.RunUntil(sim.Now() + Seconds(20.0));
  EXPECT_EQ(policy.cache_hits(), 0);
  EXPECT_EQ(policy.copies_started(), 4);
}

TEST(Maid, DataDisksSleepCacheDisksStayOn) {
  Simulator sim;
  ArrayController array(&sim, TestArray(1, 1));
  MaidParams params;
  params.idle_threshold_ms = Seconds(10.0);
  MaidPolicy policy(params);
  policy.Attach(&sim, &array);
  sim.RunUntil(Seconds(60.0));
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).state(), DiskPowerState::kStandby);
  }
  EXPECT_EQ(array.disk(array.cache_disk_id(0)).state(), DiskPowerState::kIdle);
}

// ------------------------------------------------------- AdaptiveTpm -------

TEST(AdaptiveTpm, StartsAtWeightedMeanOfExperts) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  AdaptiveTpmPolicy policy;
  policy.Attach(&sim, &array);
  // Uniform weights: threshold = break-even * mean(multipliers).
  DiskParams dp = array.params().disk;
  double mean_mult = (0.25 + 0.5 + 1.0 + 2.0 + 4.0) / 5.0;
  EXPECT_NEAR(policy.ThresholdOf(0).value(), (TpmBreakEvenMs(dp) * mean_mult).value(), 1.0);
}

TEST(AdaptiveTpm, SpinsDownAfterLearnedThreshold) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  AdaptiveTpmPolicy policy;
  policy.Attach(&sim, &array);
  sim.RunUntil(Hours(1.0));  // totally idle
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).state(), DiskPowerState::kStandby) << "disk " << i;
  }
}

TEST(AdaptiveTpm, LongGapsLowerTheThreshold) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  AdaptiveTpmPolicy policy;
  policy.Attach(&sim, &array);
  Duration initial = policy.ThresholdOf(0);
  // A request every 30 minutes leaves gaps far beyond every expert: the
  // aggressive (small) experts have the least regret and gain weight.
  sim.SchedulePeriodic(Hours(0.5), Hours(0.5), [&] {
    TraceRecord rec;
    rec.lba = 0;
    rec.count = 8;
    array.Submit(rec);
  });
  sim.RunUntil(Hours(8.0));
  EXPECT_LT(policy.ThresholdOf(0), initial);
}

TEST(AdaptiveTpm, ShortGapsRaiseTheThreshold) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  AdaptiveTpmPolicy policy;
  policy.Attach(&sim, &array);
  Duration initial = policy.ThresholdOf(0);
  // Gaps just over the smallest expert but far under break-even: spinning
  // down on them wastes energy, so small experts lose weight.
  Duration gap = 0.4 * TpmBreakEvenMs(array.params().disk);
  sim.SchedulePeriodic(gap, gap, [&] {
    TraceRecord rec;
    rec.lba = 0;
    rec.count = 8;
    array.Submit(rec);
  });
  sim.RunUntil(Hours(8.0));
  EXPECT_GT(policy.ThresholdOf(0), initial);
}

TEST(AdaptiveTpm, DescribeListsExperts) {
  AdaptiveTpmPolicy policy;
  Simulator sim;
  ArrayController array(&sim, TestArray());
  policy.Attach(&sim, &array);
  EXPECT_NE(policy.Describe().find("experts"), std::string::npos);
}

// ---------------------------------------------------------- FullPower ------

TEST(FullPower, NeverChangesAnything) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  FullPowerPolicy policy;
  policy.Attach(&sim, &array);
  sim.RunUntil(Hours(1.0));
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).current_rpm(), 15000);
    EXPECT_EQ(array.disk(i).stats().rpm_changes, 0);
    EXPECT_EQ(array.disk(i).stats().spin_downs, 0);
  }
}

}  // namespace
}  // namespace hib
