#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/hibernator/cr_algorithm.h"
#include "src/util/random.h"

namespace hib {
namespace {

struct CrFixture {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel service = SpeedServiceModel::FromDisk(disk, 12.0, 0.3);

  CrInput MakeInput(const std::vector<double>& lambdas_per_ms, double goal) const {
    CrInput input;
    input.service = service;
    input.group_lambda.reserve(lambdas_per_ms.size());
    for (double l : lambdas_per_ms) {
      input.group_lambda.push_back(PerMs(l));
    }
    input.group_width = 4;
    input.goal_ms = Ms(goal);
    input.epoch_ms = Hours(2.0);
    input.disk = &disk;
    return input;
  }
};

TEST(Cr, ZeroLoadChoosesSlowestEverywhere) {
  CrFixture f;
  CrResult r = SolveCr(f.MakeInput({0.0, 0.0, 0.0, 0.0}, 20.0));
  ASSERT_TRUE(r.feasible);
  for (int level : r.levels) {
    EXPECT_EQ(level, 0);
  }
}

TEST(Cr, TightGoalForcesFullSpeed) {
  CrFixture f;
  // Goal barely above the full-speed service time: nothing slower works.
  double s_full = f.service.Level(4).mean_ms.value();
  CrResult r = SolveCr(f.MakeInput({0.001, 0.001, 0.001, 0.001}, s_full * 1.05));
  ASSERT_TRUE(r.feasible);
  // The constraint is on the *average* response, so CR may let one group lag
  // a single level behind while the rest run flat out — but nothing slower.
  int at_full = 0;
  for (int level : r.levels) {
    EXPECT_GE(level, 3);
    at_full += level == 4 ? 1 : 0;
  }
  EXPECT_GE(at_full, 3);
  EXPECT_LE(r.predicted_response_ms, Ms(s_full * 1.05 + 1e-9));
}

TEST(Cr, ImpossibleGoalFallsBackToFullSpeed) {
  CrFixture f;
  CrResult r = SolveCr(f.MakeInput({0.05, 0.05}, 0.1));  // 0.1 ms: impossible
  EXPECT_FALSE(r.feasible);
  for (int level : r.levels) {
    EXPECT_EQ(level, 4);
  }
}

TEST(Cr, LooseGoalSlowsEverything) {
  CrFixture f;
  CrResult r = SolveCr(f.MakeInput({0.005, 0.005, 0.005, 0.005}, 1000.0));
  ASSERT_TRUE(r.feasible);
  for (int level : r.levels) {
    EXPECT_EQ(level, 0);
  }
}

TEST(Cr, HotterGroupsGetFasterSpeeds) {
  CrFixture f;
  // Loads chosen so a mix of speeds is optimal at this goal.
  CrResult r = SolveCr(f.MakeInput({0.08, 0.04, 0.01, 0.001}, 12.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.levels[0], r.levels[1]);
  EXPECT_GE(r.levels[1], r.levels[2]);
  EXPECT_GE(r.levels[2], r.levels[3]);
  EXPECT_GT(r.levels[0], r.levels[3]);  // actual spread, not all equal
}

TEST(Cr, PredictedResponseRespectsGoal) {
  CrFixture f;
  for (double goal : {8.0, 10.0, 15.0, 25.0, 50.0}) {
    CrResult r = SolveCr(f.MakeInput({0.06, 0.03, 0.01, 0.002}, goal));
    if (r.feasible) {
      EXPECT_LE(r.predicted_response_ms, Ms(goal + 1e-6)) << "goal=" << goal;
    }
  }
}

TEST(Cr, LooserGoalNeverCostsMorePower) {
  CrFixture f;
  Watts prev_power = Watts(1e18);
  for (double goal : {7.0, 9.0, 12.0, 16.0, 24.0, 40.0, 100.0}) {
    CrResult r = SolveCr(f.MakeInput({0.05, 0.03, 0.015, 0.005}, goal));
    ASSERT_TRUE(r.feasible || goal == 7.0) << "goal=" << goal;
    if (r.feasible) {
      EXPECT_LE(r.predicted_power, prev_power + Watts(1e-9)) << "goal=" << goal;
      prev_power = r.predicted_power;
    }
  }
}

TEST(Cr, OverloadedSlowLevelsExcluded) {
  CrFixture f;
  // Lambda high enough to saturate the slowest speed entirely.
  double s_slow = f.service.Level(0).mean_ms.value();
  double lambda = 1.2 / s_slow;
  CrResult r = SolveCr(f.MakeInput({lambda}, 1000.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.levels[0], 0);  // cannot sit at the saturated level
}

TEST(Cr, TransitionCostKeepsCurrentLevelsOnShortEpochs) {
  CrFixture f;
  // Marginal difference between levels 0 and 1; with a tiny epoch the
  // amortized transition cost should pin the assignment at the current one.
  CrInput input = f.MakeInput({0.001, 0.001}, 1000.0);
  input.current_levels = {1, 1};
  input.epoch_ms = Ms(50.0);  // 50 ms epoch: transitions cost more than they save
  CrResult r = SolveCr(input);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.levels, (std::vector<int>{1, 1}));
}

TEST(Cr, LongEpochAmortizesTransition) {
  CrFixture f;
  CrInput input = f.MakeInput({0.001, 0.001}, 1000.0);
  input.current_levels = {1, 1};
  input.epoch_ms = Hours(4.0);
  CrResult r = SolveCr(input);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.levels, (std::vector<int>{0, 0}));
}

TEST(Cr, SingleGroup) {
  CrFixture f;
  CrResult r = SolveCr(f.MakeInput({0.02}, 18.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.levels.size(), 1u);
  EXPECT_LE(r.predicted_response_ms, Ms(18.0));
}

TEST(Cr, DiskPowerBlendsIdleAndActive) {
  CrFixture f;
  Watts idle = DiskPowerAt(f.disk, f.service, 4, Frequency{});
  EXPECT_NEAR(idle.value(), 10.2, 1e-9);
  Duration s = f.service.Level(4).mean_ms;
  Watts half = DiskPowerAt(f.disk, f.service, 4, 0.5 / s);
  EXPECT_NEAR(half.value(), 10.2 + 0.5 * (13.5 - 10.2), 1e-9);
  Watts sat = DiskPowerAt(f.disk, f.service, 4, PerMs(100.0));
  EXPECT_NEAR(sat.value(), 13.5, 1e-9);
}

TEST(Cr, ResponseBiasMakesCrConservative) {
  CrFixture f;
  // Moderate load, goal with a little headroom: unbiased CR slows down.
  CrInput plain = f.MakeInput({0.02, 0.02}, 25.0);
  CrResult unbiased = SolveCr(plain);
  ASSERT_TRUE(unbiased.feasible);
  int unbiased_sum = unbiased.levels[0] + unbiased.levels[1];

  // A learned bias of 3x (bursty reality) must push levels up (faster).
  CrInput biased = plain;
  biased.group_response_bias = {3.0, 3.0};
  CrResult careful = SolveCr(biased);
  ASSERT_TRUE(careful.feasible);
  int careful_sum = careful.levels[0] + careful.levels[1];
  EXPECT_GT(careful_sum, unbiased_sum);
  EXPECT_GE(careful.predicted_response_ms, unbiased.predicted_response_ms - Ms(1e9));
}

TEST(Cr, ArrivalScvMakesCrConservative) {
  CrFixture f;
  CrInput plain = f.MakeInput({0.01, 0.01}, 18.0);
  CrResult poisson = SolveCr(plain);
  CrInput bursty = plain;
  bursty.group_arrival_scv = {30.0, 30.0};
  CrResult careful = SolveCr(bursty);
  ASSERT_TRUE(poisson.feasible);
  ASSERT_TRUE(careful.feasible);
  EXPECT_GE(careful.levels[0] + careful.levels[1], poisson.levels[0] + poisson.levels[1]);
}

TEST(Cr, ReportsCandidateCount) {
  CrFixture f;
  CrResult r = SolveCr(f.MakeInput({0.02, 0.01, 0.005}, 20.0));
  EXPECT_GT(r.candidates_evaluated, 0);
  // Monotone assignments for G=3, K=5: C(7,4) = 35 at most.
  EXPECT_LE(r.candidates_evaluated, 35);
}

// Property test: on random small instances, the monotone search must find a
// solution exactly as good as brute-force over all K^G assignments.
class CrVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(CrVsExhaustive, MonotoneMatchesExhaustive) {
  CrFixture f;
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> lambdas(4);
  for (double& l : lambdas) {
    l = rng.NextDouble() * 0.08;  // up to ~64% utilization at full speed
  }
  double goal = 8.0 + rng.NextDouble() * 30.0;

  CrInput fast = f.MakeInput(lambdas, goal);
  CrInput brute = f.MakeInput(lambdas, goal);
  brute.exhaustive = true;

  CrResult a = SolveCr(fast);
  CrResult b = SolveCr(brute);
  EXPECT_EQ(a.feasible, b.feasible) << "seed=" << GetParam();
  if (a.feasible) {
    EXPECT_NEAR(a.predicted_power.value(), b.predicted_power.value(), 1e-6)
        << "seed=" << GetParam() << " goal=" << goal;
    EXPECT_LE(a.predicted_response_ms, Ms(goal + 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CrVsExhaustive, ::testing::Range(1, 33));

// Property test: feasible solutions always respect the goal across a sweep of
// group counts and loads.
class CrFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(CrFeasibility, GoalRespectedAcrossShapes) {
  CrFixture f;
  int num_groups = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(num_groups) * 977);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> lambdas(static_cast<std::size_t>(num_groups));
    for (double& l : lambdas) {
      l = rng.NextDouble() * 0.1;
    }
    double goal = 7.0 + rng.NextDouble() * 40.0;
    CrResult r = SolveCr(f.MakeInput(lambdas, goal));
    if (r.feasible) {
      EXPECT_LE(r.predicted_response_ms, Ms(goal + 1e-6))
          << "groups=" << num_groups << " trial=" << trial;
    }
    // Either way the assignment is complete and in range.
    ASSERT_EQ(r.levels.size(), lambdas.size());
    for (int level : r.levels) {
      EXPECT_GE(level, 0);
      EXPECT_LT(level, 5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, CrFeasibility, ::testing::Values(1, 2, 3, 5, 8, 12, 20));

}  // namespace
}  // namespace hib
