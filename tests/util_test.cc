#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/util/inplace_function.h"
#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace hib {
namespace {

// ------------------------------------------------------------- units -------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Ms(1500.0)), 1.5);
  EXPECT_DOUBLE_EQ(Seconds(2.0).value(), 2000.0);
  EXPECT_DOUBLE_EQ(Hours(1.0).value(), 3600000.0);
  EXPECT_DOUBLE_EQ(Hours(0.5).value(), 1800000.0);
  EXPECT_DOUBLE_EQ(Minutes(2.0).value(), 120000.0);
  EXPECT_DOUBLE_EQ(PerSecond(500.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(ToPerSecond(PerMs(0.5)), 500.0);
}

TEST(Units, EnergyOfIsPowerTimesSeconds) {
  EXPECT_DOUBLE_EQ(EnergyOf(Watts(10.0), Seconds(1.0)).value(), 10.0);
  EXPECT_DOUBLE_EQ(EnergyOf(Watts(0.0), Ms(123456.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(EnergyOf(Watts(13.5), Hours(1.0)).value(), 13.5 * 3600.0);
}

TEST(Units, DimensionalArithmetic) {
  // Energy / time and energy / power round-trip.
  EXPECT_DOUBLE_EQ((Joules(20.0) / Seconds(2.0)).value(), 10.0);
  EXPECT_DOUBLE_EQ((Joules(20.0) / Watts(10.0)).value(), Seconds(2.0).value());
  // Rho = lambda * service time is a plain double.
  double rho = PerSecond(100.0) * Ms(5.0);
  EXPECT_DOUBLE_EQ(rho, 0.5);
  // One revolution at 6000 RPM takes 10 ms.
  EXPECT_DOUBLE_EQ((Rev(1.0) / Rpm(6000.0)).value(), 10.0);
  // count / Duration -> Frequency.
  Frequency f = 10.0 / Ms(20.0);
  EXPECT_DOUBLE_EQ(ToPerSecond(f), 500.0);
  // Same-dimension comparisons and accumulation.
  Duration d = Ms(1.0);
  d += Seconds(1.0);
  EXPECT_EQ(d, Ms(1001.0));
  EXPECT_LT(Ms(999.0), Seconds(1.0));
}

TEST(Units, ZeroOverheadRepresentation) {
  static_assert(sizeof(Duration) == sizeof(double));
  static_assert(sizeof(Joules) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<Watts>);
  EXPECT_EQ(std::numeric_limits<SimTime>::infinity().value(),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(IsFinite(Ms(1.0)));
  EXPECT_FALSE(IsFinite(std::numeric_limits<Duration>::infinity()));
  EXPECT_EQ(Abs(Ms(-3.0)), Ms(3.0));
}

// -------------------------------------------------------------- Pcg32 ------

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg32, NextBoundedRespectsBound) {
  Pcg32 rng(9);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Pcg32, NextBoundedZeroIsZero) {
  Pcg32 rng(9);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Pcg32, NextBoundedCoversRange) {
  Pcg32 rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.NextBounded(10)];
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // roughly uniform
    EXPECT_LT(count, 1300);
  }
}

TEST(Pcg32, NextInRangeInclusive) {
  Pcg32 rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, NextInRangeDegenerate) {
  Pcg32 rng(13);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
  EXPECT_EQ(rng.NextInRange(5, 4), 5);
}

TEST(Pcg32, ExponentialHasRequestedMean) {
  Pcg32 rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.NextExponential(10.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.2);
}

TEST(Pcg32, ParetoRespectsMinimumAndMean) {
  Pcg32 rng(19);
  double alpha = 3.0;
  double x_min = 2.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.NextPareto(alpha, x_min);
    EXPECT_GE(x, x_min);
    sum += x;
  }
  // E[X] = alpha x_min / (alpha - 1) = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Pcg32, GaussianMoments) {
  Pcg32 rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextGaussian(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

// ------------------------------------------------------------- Zipf --------

TEST(Zipf, RankZeroMostPopular) {
  ZipfGenerator zipf(100, 0.9);
  Pcg32 rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, AllRanksInRange) {
  ZipfGenerator zipf(17, 1.0);
  Pcg32 rng(2);
  for (int i = 0; i < 10000; ++i) {
    std::int64_t r = zipf.Next(rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 17);
  }
}

TEST(Zipf, MassOfTopMonotoneAndBounded) {
  ZipfGenerator zipf(1000, 0.86);
  double prev = 0.0;
  for (std::int64_t k : {1, 10, 100, 500, 1000}) {
    double mass = zipf.MassOfTop(k);
    EXPECT_GT(mass, prev);
    EXPECT_LE(mass, 1.0);
    prev = mass;
  }
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(1000), 1.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(0), 0.0);
}

TEST(Zipf, HighThetaIsMoreSkewed) {
  ZipfGenerator mild(1000, 0.5);
  ZipfGenerator sharp(1000, 1.1);
  EXPECT_LT(mild.MassOfTop(10), sharp.MassOfTop(10));
}

TEST(Zipf, EmpiricalMassMatchesAnalytic) {
  ZipfGenerator zipf(200, 0.86);
  Pcg32 rng(3);
  constexpr int kN = 200000;
  int top20 = 0;
  for (int i = 0; i < kN; ++i) {
    if (zipf.Next(rng) < 20) {
      ++top20;
    }
  }
  EXPECT_NEAR(static_cast<double>(top20) / kN, zipf.MassOfTop(20), 0.01);
}

TEST(Zipf, SingleItemDegenerates) {
  ZipfGenerator zipf(1, 0.9);
  Pcg32 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(rng), 0);
  }
}

// ------------------------------------------------------- RunningStats ------

TEST(RunningStats, MatchesDirectComputation) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (double x : xs) {
    stats.Add(x);
  }
  double mean = 0.0;
  for (double x : xs) {
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_NEAR(stats.sum(), 31.0, 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Pcg32 rng(5);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble() * 100.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats stats;
  stats.Add(10.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

// -------------------------------------------------- PercentileReservoir ----

TEST(PercentileReservoir, ExactOnSmallSamples) {
  PercentileReservoir res(100);
  for (int i = 1; i <= 99; ++i) {
    res.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(res.Percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(res.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(res.Percentile(100.0), 99.0, 1e-9);
  EXPECT_NEAR(res.Percentile(95.0), 95.0, 1.5);
}

TEST(PercentileReservoir, EmptyReturnsZero) {
  PercentileReservoir res(10);
  EXPECT_DOUBLE_EQ(res.Percentile(50.0), 0.0);
}

TEST(PercentileReservoir, SamplesLargeStream) {
  PercentileReservoir res(4096, 99);
  Pcg32 rng(6);
  for (int i = 0; i < 200000; ++i) {
    res.Add(rng.NextDouble());  // uniform [0,1)
  }
  EXPECT_EQ(res.count(), 200000);
  EXPECT_NEAR(res.Percentile(50.0), 0.5, 0.05);
  EXPECT_NEAR(res.Percentile(90.0), 0.9, 0.05);
}

TEST(PercentileReservoir, AddAfterPercentileStillWorks) {
  PercentileReservoir res(16);
  res.Add(1.0);
  EXPECT_DOUBLE_EQ(res.Percentile(50.0), 1.0);
  res.Add(3.0);
  EXPECT_NEAR(res.Percentile(100.0), 3.0, 1e-9);
}

// Pin: the O(n) nth_element fast path (first queries after a mutation) and
// the sorted path (later queries) must return bit-identical percentiles, and
// both must match a plain sorted-vector interpolation.
TEST(PercentileReservoir, SelectAndSortPathsAgreeExactly) {
  for (double p : {50.0, 95.0, 99.0}) {
    PercentileReservoir res(512);
    Pcg32 rng(77);
    std::vector<double> values;
    for (int i = 0; i < 500; ++i) {
      double v = rng.NextDouble() * 100.0;
      values.push_back(v);
      res.Add(v);
    }
    std::sort(values.begin(), values.end());
    double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    double expected = values[lo] * (1.0 - frac) + values[hi] * frac;
    double first = res.Percentile(p);   // nth_element path
    double second = res.Percentile(p);  // nth_element path
    double third = res.Percentile(p);   // sorted path from here on
    double fourth = res.Percentile(p);
    EXPECT_DOUBLE_EQ(first, expected) << "p" << p;
    EXPECT_DOUBLE_EQ(second, first) << "p" << p;
    EXPECT_DOUBLE_EQ(third, first) << "p" << p;
    EXPECT_DOUBLE_EQ(fourth, first) << "p" << p;
  }
}

// --------------------------------------------------- InplaceFunction -------

TEST(InplaceFunction, InvokesCapturedLambda) {
  int x = 0;
  InplaceFunction<void(), 32> f([&x] { x = 42; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(x, 42);
}

TEST(InplaceFunction, ReturnsValuesAndTakesArguments) {
  InplaceFunction<int(int, int), 16> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InplaceFunction, MoveTransfersOwnership) {
  int calls = 0;
  InplaceFunction<void(), 32> a([&calls] { ++calls; });
  InplaceFunction<void(), 32> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InplaceFunction<void(), 32> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFunction, EmplaceReplacesExistingCallable) {
  int which = 0;
  InplaceFunction<void(), 32> f([&which] { which = 1; });
  f.Emplace([&which] { which = 2; });
  f();
  EXPECT_EQ(which, 2);
}

TEST(InplaceFunction, NonTrivialCaptureIsDestroyed) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    InplaceFunction<int(), 32> f([token] { return *token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // alive inside the function
    EXPECT_EQ(f(), 7);
    // Moving must hand the capture over, not duplicate or leak it.
    InplaceFunction<int(), 32> g(std::move(f));
    EXPECT_EQ(g(), 7);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // destroyed with the function
}

TEST(InplaceFunction, NullptrClearsAndBoolReflectsIt) {
  InplaceFunction<void(), 16> f([] {});
  EXPECT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
  InplaceFunction<void(), 16> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

// --------------------------------------------------------------- Ewma ------

TEST(Ewma, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.current(), 10.0);
  EXPECT_FALSE(e.empty());
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) {
    e.Add(7.0);
  }
  EXPECT_NEAR(e.current(), 7.0, 1e-9);
}

TEST(Ewma, SmoothingFactorApplied) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.current(), 5.0);
}

// ----------------------------------------------------------- Histogram -----

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(-1.0);   // clamps to first
  h.Add(100.0);  // clamps to last
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(5), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, BucketBounds) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 75.0);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.5);
  h.Reset();
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.bucket_count(1), 0);
}

// -------------------------------------------------------------- Table ------

TEST(Table, RendersAlignedHeadersAndRows) {
  Table t({"name", "value"});
  t.NewRow().Add("alpha").Add(1.5, 1);
  t.NewRow().Add("b").Add(std::int64_t{42});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.NewRow().Add("x").Add(2);
  EXPECT_EQ(t.ToCsv(), "a,b\nx,2\n");
}

TEST(Table, PercentCell) {
  Table t({"p"});
  t.NewRow().AddPercent(0.423, 1);
  EXPECT_NE(t.ToString().find("42.3%"), std::string::npos);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace hib
