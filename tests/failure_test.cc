// Failure injection, degraded RAID5 operation, and rebuild.
#include <gtest/gtest.h>

#include "src/array/array.h"
#include "src/sim/simulator.h"

namespace hib {
namespace {

ArrayParams SmallArray(int width = 4) {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = width;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.02;  // small extent table keeps rebuilds fast
  p.cache_lines = 0;
  return p;
}

TraceRecord MakeRecord(SectorAddr lba, SectorCount count, bool write) {
  TraceRecord rec;
  rec.lba = lba;
  rec.count = count;
  rec.is_write = write;
  return rec;
}

// Finds an lba within extent 0 whose data unit maps to `disk`; -1 if none.
SectorAddr LbaOnDisk(const ArrayController& array, int disk) {
  const LayoutManager& layout = array.layout();
  for (SectorAddr off = 0; off < array.params().extent_sectors;
       off += array.params().stripe_unit_sectors) {
    if (layout.Map(0, off).data_disk == disk) {
      return off;  // extent 0 starts at logical 0
    }
  }
  return -1;
}

class FailureTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(FailureTest, DegradedReadFansOutToSurvivors) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  array.FailDisk(0);
  EXPECT_TRUE(array.IsDiskFailed(0));

  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(lba, 8, false), [&](Duration r) { response = r; });
  sim_.RunUntil(Seconds(5.0));
  EXPECT_GT(response, Duration{});
  EXPECT_EQ(array.stats().degraded_reads, 1);
  // width - 1 = 3 peer reads instead of 1.
  EXPECT_EQ(array.stats().subops, 3);
  EXPECT_EQ(array.disk(0).stats().requests_completed, 0);
}

TEST_F(FailureTest, HealthyUnitsUnaffectedByFailureElsewhere) {
  ArrayController array(&sim_, SmallArray());
  array.FailDisk(0);
  SectorAddr lba = LbaOnDisk(array, 1);
  ASSERT_GE(lba, 0);
  array.Submit(MakeRecord(lba, 8, false));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().degraded_reads, 0);
  EXPECT_EQ(array.stats().subops, 1);
}

TEST_F(FailureTest, DegradedWriteUpdatesParityOnly) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  array.FailDisk(0);
  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(lba, 8, true), [&](Duration r) { response = r; });
  sim_.RunUntil(Seconds(5.0));
  EXPECT_GT(response, Duration{});
  EXPECT_EQ(array.stats().parity_only_writes, 1);
  // Reconstruct-write: width-2 = 2 peer reads + 1 parity write.
  EXPECT_EQ(array.stats().subops, 3);
  EXPECT_EQ(array.disk(0).stats().requests_completed, 0);
}

TEST_F(FailureTest, ParityFailureWritesDataWithoutParity) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  int parity_disk = array.layout().Map(0, lba).parity_disk;
  array.FailDisk(parity_disk);
  array.Submit(MakeRecord(lba, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().subops, 1);  // plain data write
  EXPECT_EQ(array.stats().lost_accesses, 0);
}

TEST_F(FailureTest, DoubleFailureLosesData) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  array.FailDisk(0);
  array.FailDisk(1);  // same group
  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(lba, 8, false), [&](Duration r) { response = r; });
  sim_.RunUntil(Seconds(5.0));
  EXPECT_GE(response, Duration{});  // request still completes (reports the loss)
  EXPECT_GE(array.stats().lost_accesses, 1);
}

TEST_F(FailureTest, UnprotectedWidthOneLosesAccesses) {
  ArrayController array(&sim_, SmallArray(1));
  std::int64_t extent = 0;
  int disk = array.layout().GroupOf(extent);
  array.FailDisk(disk);
  array.Submit(MakeRecord(0, 8, false));
  array.Submit(MakeRecord(0, 8, true));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(array.stats().lost_accesses, 2);
  EXPECT_EQ(array.stats().subops, 0);
}

TEST_F(FailureTest, MirrorReadsSurvivingCopy) {
  ArrayController array(&sim_, SmallArray(2));
  StripeTarget t = array.layout().Map(0, 0);
  array.FailDisk(t.data_disk);
  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(0, 8, false), [&](Duration r) { response = r; });
  sim_.RunUntil(Seconds(5.0));
  EXPECT_GT(response, Duration{});
  EXPECT_EQ(array.stats().degraded_reads, 1);
  EXPECT_EQ(array.disk(t.parity_disk).stats().requests_completed, 1);
}

TEST_F(FailureTest, RebuildRestoresHealthAndCountsExtents) {
  ArrayParams params = SmallArray();
  ArrayController array(&sim_, params);
  array.FailDisk(0);
  bool rebuilt = false;
  array.ReplaceDisk(0, [&] { rebuilt = true; });
  EXPECT_TRUE(array.IsRebuilding(0));
  sim_.RunUntil(Hours(12.0));
  EXPECT_TRUE(rebuilt);
  EXPECT_FALSE(array.IsDiskFailed(0));
  EXPECT_FALSE(array.IsRebuilding(0));
  // Every extent of group 0 was rebuilt.
  EXPECT_EQ(array.stats().rebuilt_extents, array.layout().extents_per_group()[0]);
  EXPECT_GT(array.disk(0).stats().sectors_written, 0);
}

TEST_F(FailureTest, ReadsHealthyAgainAfterRebuild) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  array.FailDisk(0);
  array.ReplaceDisk(0);
  sim_.RunUntil(Hours(12.0));
  ASSERT_FALSE(array.IsDiskFailed(0));
  std::int64_t degraded_before = array.stats().degraded_reads;
  array.Submit(MakeRecord(lba, 8, false));
  sim_.RunUntil(sim_.Now() + Seconds(5.0));
  EXPECT_EQ(array.stats().degraded_reads, degraded_before);
  EXPECT_GT(array.disk(0).stats().foreground_completed, 0);
}

TEST_F(FailureTest, ReplaceHealthyDiskIsNoOp) {
  ArrayController array(&sim_, SmallArray());
  bool called = false;
  array.ReplaceDisk(3, [&] { called = true; });
  sim_.RunUntil(Seconds(5.0));
  EXPECT_FALSE(called);
  EXPECT_FALSE(array.IsRebuilding(3));
}

TEST_F(FailureTest, DemandTrafficServedDuringRebuild) {
  ArrayController array(&sim_, SmallArray());
  SectorAddr lba = LbaOnDisk(array, 0);
  ASSERT_GE(lba, 0);
  array.FailDisk(0);
  array.ReplaceDisk(0);
  // While rebuilding, reads of the lost disk's units stay degraded but
  // complete; the rebuild's background I/O must not starve them.
  Duration response = Ms(-1.0);
  array.Submit(MakeRecord(lba, 8, false), [&](Duration r) { response = r; });
  sim_.RunUntil(sim_.Now() + Seconds(30.0));
  EXPECT_GT(response, Duration{});
  EXPECT_GE(array.stats().degraded_reads, 1);
}

TEST_F(FailureTest, MigrationAvoidsFailedDisks) {
  ArrayController array(&sim_, SmallArray());
  array.FailDisk(4);  // in group 1, the migration destination
  array.RequestMigration(0, 1);
  sim_.RunUntil(Seconds(60.0));
  EXPECT_EQ(array.layout().GroupOf(0), 1);
  EXPECT_EQ(array.disk(4).stats().requests_completed, 0);
}

TEST_F(FailureTest, FailDiskIsIdempotent) {
  ArrayController array(&sim_, SmallArray());
  array.FailDisk(2);
  array.FailDisk(2);
  EXPECT_TRUE(array.IsDiskFailed(2));
}

}  // namespace
}  // namespace hib
