// SlotPool: generation-stamped handles (ABA protection), chunked growth
// under burst, reference stability across growth, and fan-in-counter reuse —
// the properties the array controller's allocation-free dispatch rests on.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/array/request_pool.h"

namespace hib {
namespace {

struct Payload {
  int value = 0;
  std::vector<int> buffer;  // non-trivial member: reuse must keep capacity
};

TEST(SlotPoolTest, AcquireReleaseRoundTrip) {
  SlotPool<Payload> pool;
  PoolHandle h = pool.Acquire();
  EXPECT_EQ(pool.live(), 1u);
  pool.Get(h).value = 42;
  EXPECT_EQ(pool.Get(h).value, 42);
  EXPECT_TRUE(pool.IsLive(h));
  pool.Release(h);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_FALSE(pool.IsLive(h));
}

TEST(SlotPoolTest, StaleHandleDetectedAfterReuse) {
  SlotPool<Payload> pool;
  PoolHandle first = pool.Acquire();
  std::uint32_t index = first.index;
  pool.Release(first);

  // LIFO free list: the next Acquire reuses the same slot...
  PoolHandle second = pool.Acquire();
  EXPECT_EQ(second.index, index);
  // ...but with a bumped generation, so the stale handle can't alias it.
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(pool.IsLive(first));
  EXPECT_TRUE(pool.IsLive(second));
  EXPECT_NE(first, second);
  pool.Release(second);
}

TEST(SlotPoolTest, GenerationSurvivesManyReuses) {
  // The classic ABA scenario repeated: a handle released N tenants ago must
  // never validate again, no matter how many times the slot turned over.
  SlotPool<Payload> pool;
  PoolHandle ancient = pool.Acquire();
  pool.Release(ancient);
  for (int i = 0; i < 1000; ++i) {
    PoolHandle h = pool.Acquire();
    ASSERT_EQ(h.index, ancient.index);  // same slot every time (LIFO)
    ASSERT_FALSE(pool.IsLive(ancient));
    pool.Release(h);
  }
}

TEST(SlotPoolTest, GrowthUnderBurstKeepsReferencesStable) {
  // Acquire far more than one chunk while holding references into early
  // chunks: chunked storage must never move an object.
  SlotPool<Payload, 64> pool;
  std::vector<PoolHandle> handles;
  Payload* first = nullptr;
  for (int i = 0; i < 1000; ++i) {
    PoolHandle h = pool.Acquire();
    pool.Get(h).value = i;
    if (i == 0) {
      first = &pool.Get(h);
    }
    handles.push_back(h);
  }
  EXPECT_EQ(pool.live(), 1000u);
  EXPECT_GE(pool.capacity(), 1000u);
  // The reference taken before 15 further chunks were added still works.
  EXPECT_EQ(first, &pool.Get(handles[0]));
  EXPECT_EQ(first->value, 0);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(pool.Get(handles[i]).value, static_cast<int>(i));
    pool.Release(handles[i]);
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlotPoolTest, ReuseKeepsGrownBuffers) {
  // A pooled object's internal buffer survives Release/Acquire: that is the
  // whole point of reuse-without-destroy (phase2 spill amortization).
  SlotPool<Payload> pool;
  PoolHandle h = pool.Acquire();
  pool.Get(h).buffer.reserve(128);
  int* data = pool.Get(h).buffer.data();
  pool.Release(h);
  PoolHandle again = pool.Acquire();
  ASSERT_EQ(again.index, h.index);
  EXPECT_GE(pool.Get(again).buffer.capacity(), 128u);
  EXPECT_EQ(pool.Get(again).buffer.data(), data);
  pool.Release(again);
}

TEST(SlotPoolTest, FanInCounterExhaustion) {
  // Model the migration fan-in: one counter object drained by N callbacks.
  // The slot must stay valid until the last decrement, then be reusable.
  struct FanIn {
    int remaining = 0;
  };
  SlotPool<FanIn> pool;
  for (int round = 0; round < 100; ++round) {
    PoolHandle h = pool.Acquire();
    pool.Get(h).remaining = 7;
    int fired = 0;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(pool.IsLive(h));
      if (--pool.Get(h).remaining == 0) {
        ++fired;
        pool.Release(h);
      }
    }
    ASSERT_EQ(fired, 1);
    ASSERT_EQ(pool.live(), 0u);
  }
  // 100 rounds reused one slot; no growth past the first chunk.
  EXPECT_EQ(pool.capacity(), 256u);
}

TEST(SlotPoolTest, ReservePreGrows) {
  SlotPool<Payload, 64> pool;
  EXPECT_EQ(pool.capacity(), 0u);
  pool.Reserve(200);
  EXPECT_GE(pool.capacity(), 200u);
  std::size_t reserved = pool.capacity();
  // Acquiring up to the reserved count allocates no new chunks.
  std::vector<PoolHandle> handles;
  for (std::size_t i = 0; i < reserved; ++i) {
    handles.push_back(pool.Acquire());
  }
  EXPECT_EQ(pool.capacity(), reserved);
  for (PoolHandle h : handles) {
    pool.Release(h);
  }
}

TEST(SlotPoolDeathTest, DoubleReleaseIsFatal) {
  // Release uses HIB_CHECK (on in every build type): a stale or doubled
  // release is simulation-corrupting and must die loudly.
  SlotPool<Payload> pool;
  PoolHandle h = pool.Acquire();
  pool.Release(h);
  EXPECT_DEATH(pool.Release(h), "stale or double-released");
}

}  // namespace
}  // namespace hib
