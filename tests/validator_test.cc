// Tier-3 validator tests: the legal-transition table, the energy-ledger
// audit, and death tests proving that injected violations (e.g. a disk
// jumping kStandby -> kBusy without spinning up) abort with a diagnostic.
//
// In builds with HIB_VALIDATE off (Release/MinSizeRel or -DHIB_VALIDATE=OFF)
// the validator does not exist; this file compiles to a single skip.
#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"

#if HIB_VALIDATE

#include <vector>

#include "src/sim/validator.h"

namespace hib {
namespace {

constexpr ValidatorDiskState kAllStates[] = {
    ValidatorDiskState::kIdle,         ValidatorDiskState::kBusy,
    ValidatorDiskState::kChangingRpm,  ValidatorDiskState::kSpinningDown,
    ValidatorDiskState::kStandby,      ValidatorDiskState::kSpinningUp,
};

TEST(SimValidatorTest, LegalTransitionTableIsExactlyTheDocumentedGraph) {
  using S = ValidatorDiskState;
  const std::vector<std::pair<S, S>> legal = {
      {S::kIdle, S::kBusy},         {S::kIdle, S::kChangingRpm},
      {S::kIdle, S::kSpinningDown}, {S::kBusy, S::kIdle},
      {S::kChangingRpm, S::kIdle},  {S::kSpinningDown, S::kStandby},
      {S::kStandby, S::kSpinningUp}, {S::kSpinningUp, S::kIdle},
  };
  for (S from : kAllStates) {
    for (S to : kAllStates) {
      bool want = false;
      for (const auto& edge : legal) {
        want = want || (edge.first == from && edge.second == to);
      }
      EXPECT_EQ(SimValidator::IsLegalTransition(from, to), want)
          << ValidatorDiskStateName(from) << " -> " << ValidatorDiskStateName(to);
    }
  }
}

TEST(SimValidatorTest, CleanDiskLifecyclePassesEveryAudit) {
  Simulator sim;
  DiskParams params = MakeUltrastar36Z15MultiSpeed(3);
  Disk disk(&sim, params, 0, 42);

  // Exercise every legal edge: serve I/O, change RPM, spin down, spin up.
  for (int i = 0; i < 8; ++i) {
    DiskRequest req;
    req.sector = 1000 * (i + 1);
    req.count = 64;
    req.is_write = (i % 2) == 0;
    disk.Submit(req);
  }
  sim.RunUntil(Seconds(10.0));
  disk.SetTargetRpm(params.speeds[0].rpm);
  sim.RunUntil(Seconds(60.0));
  ASSERT_TRUE(disk.SpinDown());
  sim.RunUntil(Seconds(120.0));
  EXPECT_EQ(disk.state(), DiskPowerState::kStandby);
  disk.SpinUp();
  sim.RunUntil(Seconds(600.0));
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);

  ASSERT_NE(sim.validator(), nullptr);
  EXPECT_EQ(sim.validator()->disks_tracked(), 1);
  EXPECT_GE(sim.validator()->transitions_checked(), 8);
  EXPECT_GT(sim.validator()->dispatches_checked(), 0);
}

TEST(SimValidatorTest, MatchingLedgerWithinToleranceIsAccepted) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 7, ValidatorDiskState::kIdle, /*power=*/Watts(10.0),
                           /*now=*/SimTime{});
  // 10 W for 1 s = 10 J; a ledger within 1e-6 relative drift must pass.
  validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                             ValidatorDiskState::kBusy, /*now=*/Ms(1000.0),
                             /*new_power=*/Watts(13.5),
                             /*metered_total=*/Joules(10.0 + 5e-6),
                             /*queue_depth=*/1);
  EXPECT_EQ(validator.transitions_checked(), 1);
}

TEST(SimValidatorDeathTest, StandbyDirectlyToBusyAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 3, ValidatorDiskState::kStandby, Watts(0.9), SimTime{});
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kStandby,
                                 ValidatorDiskState::kBusy, Ms(10.0), Watts(13.5),
                                 EnergyOf(Watts(0.9), Ms(10.0)), 1),
      "illegal transition STANDBY -> BUSY");
}

TEST(SimValidatorDeathTest, EnergyLedgerDriftAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 4, ValidatorDiskState::kIdle, Watts(10.0), SimTime{});
  // The disk claims 11 J where integrating 10 W over 1 s gives 10 J.
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, Ms(1000.0), Watts(13.5),
                                 /*metered_total=*/Joules(11.0), 0),
      "energy ledger drift");
}

TEST(SimValidatorDeathTest, MisScaledTransitionEnergyAborts) {
  // Unit-mixup injection: a ledger integrated as "watts times milliseconds"
  // (1000x the true joules) must trip the 1e-6 relative energy audit.  This
  // is exactly the bug class the Quantity types exclude at compile time; the
  // validator is the runtime backstop at the .value() boundaries.
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 9, ValidatorDiskState::kIdle, Watts(10.0), SimTime{});
  Joules true_energy = EnergyOf(Watts(10.0), Seconds(1.0));
  Joules mis_scaled = Joules(true_energy.value() * kMsPerSecond);
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, Seconds(1.0), Watts(13.5),
                                 /*metered_total=*/mis_scaled, 0),
      "energy ledger drift");
}

TEST(SimValidatorDeathTest, NegativeQueueDepthAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 5, ValidatorDiskState::kIdle, Watts(10.0), SimTime{});
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, Ms(1000.0), Watts(13.5),
                                 EnergyOf(Watts(10.0), Ms(1000.0)), /*queue_depth=*/-1),
      "negative queue depth");
}

TEST(SimValidatorDeathTest, SpinningDownWithQueuedRequestsAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 6, ValidatorDiskState::kIdle, Watts(10.0), SimTime{});
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kSpinningDown, Ms(1000.0), Watts(2.0),
                                 EnergyOf(Watts(10.0), Ms(1000.0)), /*queue_depth=*/3),
      "spinning down with queued requests");
}

TEST(SimValidatorDeathTest, NonMonotonicDispatchAborts) {
  SimValidator validator;
  validator.OnDispatch(Ms(10.0));
  EXPECT_DEATH(validator.OnDispatch(Ms(5.0)), "dispatch went backwards");
}

TEST(SimValidatorDeathTest, TransitionOnUnknownDiskAborts) {
  SimValidator validator;
  int key = 0;
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, SimTime{}, Watts(1.0), Joules{}, 0),
      "never attached");
}

}  // namespace
}  // namespace hib

#else  // !HIB_VALIDATE

TEST(SimValidatorTest, DisabledInThisBuildType) {
  GTEST_SKIP() << "HIB_VALIDATE is off (Release build); SimValidator is compiled out";
}

#endif  // HIB_VALIDATE
