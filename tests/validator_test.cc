// Tier-3 validator tests: the legal-transition table, the energy-ledger
// audit, and death tests proving that injected violations (e.g. a disk
// jumping kStandby -> kBusy without spinning up) abort with a diagnostic.
//
// In builds with HIB_VALIDATE off (Release/MinSizeRel or -DHIB_VALIDATE=OFF)
// the validator does not exist; this file compiles to a single skip.
#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"

#if HIB_VALIDATE

#include <vector>

#include "src/sim/validator.h"

namespace hib {
namespace {

constexpr ValidatorDiskState kAllStates[] = {
    ValidatorDiskState::kIdle,         ValidatorDiskState::kBusy,
    ValidatorDiskState::kChangingRpm,  ValidatorDiskState::kSpinningDown,
    ValidatorDiskState::kStandby,      ValidatorDiskState::kSpinningUp,
};

TEST(SimValidatorTest, LegalTransitionTableIsExactlyTheDocumentedGraph) {
  using S = ValidatorDiskState;
  const std::vector<std::pair<S, S>> legal = {
      {S::kIdle, S::kBusy},         {S::kIdle, S::kChangingRpm},
      {S::kIdle, S::kSpinningDown}, {S::kBusy, S::kIdle},
      {S::kChangingRpm, S::kIdle},  {S::kSpinningDown, S::kStandby},
      {S::kStandby, S::kSpinningUp}, {S::kSpinningUp, S::kIdle},
  };
  for (S from : kAllStates) {
    for (S to : kAllStates) {
      bool want = false;
      for (const auto& edge : legal) {
        want = want || (edge.first == from && edge.second == to);
      }
      EXPECT_EQ(SimValidator::IsLegalTransition(from, to), want)
          << ValidatorDiskStateName(from) << " -> " << ValidatorDiskStateName(to);
    }
  }
}

TEST(SimValidatorTest, CleanDiskLifecyclePassesEveryAudit) {
  Simulator sim;
  DiskParams params = MakeUltrastar36Z15MultiSpeed(3);
  Disk disk(&sim, params, 0, 42);

  // Exercise every legal edge: serve I/O, change RPM, spin down, spin up.
  for (int i = 0; i < 8; ++i) {
    DiskRequest req;
    req.sector = 1000 * (i + 1);
    req.count = 64;
    req.is_write = (i % 2) == 0;
    disk.Submit(req);
  }
  sim.RunUntil(SecondsToMs(10.0));
  disk.SetTargetRpm(params.speeds[0].rpm);
  sim.RunUntil(SecondsToMs(60.0));
  ASSERT_TRUE(disk.SpinDown());
  sim.RunUntil(SecondsToMs(120.0));
  EXPECT_EQ(disk.state(), DiskPowerState::kStandby);
  disk.SpinUp();
  sim.RunUntil(SecondsToMs(600.0));
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);

  ASSERT_NE(sim.validator(), nullptr);
  EXPECT_EQ(sim.validator()->disks_tracked(), 1);
  EXPECT_GE(sim.validator()->transitions_checked(), 8);
  EXPECT_GT(sim.validator()->dispatches_checked(), 0);
}

TEST(SimValidatorTest, MatchingLedgerWithinToleranceIsAccepted) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 7, ValidatorDiskState::kIdle, /*power=*/10.0,
                           /*now=*/0.0);
  // 10 W for 1 s = 10 J; a ledger within 1e-6 relative drift must pass.
  validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                             ValidatorDiskState::kBusy, /*now=*/1000.0,
                             /*new_power=*/13.5,
                             /*metered_total=*/10.0 + 5e-6,
                             /*queue_depth=*/1);
  EXPECT_EQ(validator.transitions_checked(), 1);
}

TEST(SimValidatorDeathTest, StandbyDirectlyToBusyAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 3, ValidatorDiskState::kStandby, 0.9, 0.0);
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kStandby,
                                 ValidatorDiskState::kBusy, 10.0, 13.5,
                                 EnergyOf(0.9, 10.0), 1),
      "illegal transition STANDBY -> BUSY");
}

TEST(SimValidatorDeathTest, EnergyLedgerDriftAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 4, ValidatorDiskState::kIdle, 10.0, 0.0);
  // The disk claims 11 J where integrating 10 W over 1 s gives 10 J.
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, 1000.0, 13.5,
                                 /*metered_total=*/11.0, 0),
      "energy ledger drift");
}

TEST(SimValidatorDeathTest, NegativeQueueDepthAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 5, ValidatorDiskState::kIdle, 10.0, 0.0);
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, 1000.0, 13.5,
                                 EnergyOf(10.0, 1000.0), /*queue_depth=*/-1),
      "negative queue depth");
}

TEST(SimValidatorDeathTest, SpinningDownWithQueuedRequestsAborts) {
  SimValidator validator;
  int key = 0;
  validator.OnDiskAttached(&key, 6, ValidatorDiskState::kIdle, 10.0, 0.0);
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kSpinningDown, 1000.0, 2.0,
                                 EnergyOf(10.0, 1000.0), /*queue_depth=*/3),
      "spinning down with queued requests");
}

TEST(SimValidatorDeathTest, NonMonotonicDispatchAborts) {
  SimValidator validator;
  validator.OnDispatch(10.0);
  EXPECT_DEATH(validator.OnDispatch(5.0), "dispatch went backwards");
}

TEST(SimValidatorDeathTest, TransitionOnUnknownDiskAborts) {
  SimValidator validator;
  int key = 0;
  EXPECT_DEATH(
      validator.OnDiskTransition(&key, ValidatorDiskState::kIdle,
                                 ValidatorDiskState::kBusy, 0.0, 1.0, 0.0, 0),
      "never attached");
}

}  // namespace
}  // namespace hib

#else  // !HIB_VALIDATE

TEST(SimValidatorTest, DisabledInThisBuildType) {
  GTEST_SKIP() << "HIB_VALIDATE is off (Release build); SimValidator is compiled out";
}

#endif  // HIB_VALIDATE
