// Tests for the compiled binary trace format (src/trace/format.h): the
// randomized round-trip property (ASCII -> binary -> records, bit-equal),
// the corrupt-input robustness suite (every documented failure mode, each
// asserting the reader fails CLOSED with a latched diagnostic), and a seeded
// fuzz-lite loop that mutates/truncates well-formed files 10k times and
// asserts the reader never silently diverges.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/trace/format.h"
#include "src/trace/spc_reader.h"
#include "src/trace/trace.h"
#include "src/util/random.h"

namespace hib {
namespace {

constexpr SectorAddr kSpace = 1 << 20;  // 512 MB logical space

std::uint64_t Bits(SimTime t) { return std::bit_cast<std::uint64_t>(t); }

bool SameRecord(const TraceRecord& a, const TraceRecord& b) {
  return Bits(a.time) == Bits(b.time) && a.lba == b.lba && a.count == b.count &&
         a.is_write == b.is_write && a.stream == b.stream;
}

std::vector<TraceRecord> Drain(WorkloadSource& source) {
  std::vector<TraceRecord> records;
  TraceRecord r;
  while (source.Next(&r)) {
    records.push_back(r);
  }
  return records;
}

std::vector<TraceRecord> RandomRecords(Pcg32& rng, std::int64_t n) {
  std::vector<TraceRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  SimTime t;
  for (std::int64_t i = 0; i < n; ++i) {
    TraceRecord r;
    // Uneven gaps, occasionally zero (equal timestamps must round-trip in
    // arrival order thanks to the compiler's stable sort).
    if (rng.NextDouble() > 0.1) {
      t = t + Ms(rng.NextDouble() * 50.0);
    }
    r.time = t;
    r.count = 1 + static_cast<SectorCount>(rng.NextBounded(256));
    r.lba = rng.NextInRange(0, kSpace - r.count);
    r.is_write = rng.NextDouble() < 0.4;
    r.stream = static_cast<int>(rng.NextBounded(8));
    records.push_back(r);
  }
  return records;
}

// A well-formed compiled trace with several blocks, used as surgery material
// by the corruption suite and the fuzz loop.
std::string SealedTrace(std::int64_t n = 300, std::int64_t records_per_block = 64) {
  Pcg32 rng(991);
  std::string bytes;
  TraceCompileOptions options;
  options.records_per_block = records_per_block;
  options.address_space_sectors = kSpace;
  TraceCompileResult result = CompileRecords(RandomRecords(rng, n), &bytes, options);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, n);
  return bytes;
}

template <typename T>
T Peek(const std::string& bytes, std::int64_t offset) {
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

template <typename T>
void Poke(std::string* bytes, std::int64_t offset, T v) {
  std::memcpy(bytes->data() + offset, &v, sizeof v);
}

// Recomputes a block's checksum after deliberate damage, so the damage under
// test (and not the checksum) is what the reader trips over.
void ResealBlock(std::string* bytes, std::int64_t block_offset) {
  const auto nrec = Peek<std::uint32_t>(*bytes, block_offset + 16);
  const auto tbytes = Peek<std::uint32_t>(*bytes, block_offset + 20);
  const std::int64_t rec_start =
      (block_offset + kTraceBlockHeaderBytes + tbytes + 7) & ~std::int64_t{7};
  const std::int64_t block_end = rec_start + kTraceRecordBytes * nrec;
  std::uint64_t sum = Fnv1a64(bytes->data() + block_offset, 8);
  sum = Fnv1a64(bytes->data() + block_offset + 16,
                static_cast<std::size_t>(block_end - block_offset - 16), sum);
  Poke<std::uint64_t>(bytes, block_offset + kTraceBlockChecksumOffset, sum);
}

// Recomputes the header checksum (needed when a header-field test wants the
// reader to reach the field check rather than stop at the checksum).
void ResealHeader(std::string* bytes) {
  Poke<std::uint64_t>(bytes, 64, Fnv1a64(bytes->data(), 64));
}

void ResealFooter(std::string* bytes) {
  const std::int64_t footer = static_cast<std::int64_t>(bytes->size()) - kTraceFooterBytes;
  Poke<std::uint64_t>(bytes, footer + kTraceFooterBytes - 8,
                      Fnv1a64(bytes->data() + footer, static_cast<std::size_t>(kTraceFooterBytes - 8)));
}

std::int64_t BlockOffset(const std::string& bytes, std::int64_t b) {
  return static_cast<std::int64_t>(Peek<std::uint64_t>(bytes, kTraceHeaderBytes + 8 * b));
}

// Fully replays `bytes`; returns the records and whether the reader ended in
// an error state (distinguishing clean end-of-trace from fail-closed stop).
struct ReplayOutcome {
  std::vector<TraceRecord> records;
  bool failed = false;
  std::string error;
};

ReplayOutcome Replay(std::string bytes) {
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ReplayOutcome outcome;
  outcome.records = Drain(*reader);
  outcome.failed = !reader->ok();
  outcome.error = reader->error();
  return outcome;
}

// ------------------------------------------------------------ round trip ---

TEST(TraceCompile, RandomRecordsRoundTripBitExactly) {
  Pcg32 rng(7);
  for (std::int64_t n : {1, 2, 63, 64, 65, 1000}) {
    std::vector<TraceRecord> original = RandomRecords(rng, n);
    std::string bytes;
    TraceCompileOptions options;
    options.records_per_block = 64;
    options.address_space_sectors = kSpace;
    TraceCompileResult result = CompileRecords(original, &bytes, options);
    ASSERT_TRUE(result.ok) << result.error;

    auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
    ASSERT_TRUE(reader->ok()) << reader->error();
    EXPECT_EQ(reader->num_records(), n);
    std::vector<TraceRecord> replayed = Drain(*reader);
    EXPECT_TRUE(reader->ok()) << reader->error();

    std::stable_sort(original.begin(), original.end(),
                     [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
    ASSERT_EQ(replayed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      ASSERT_TRUE(SameRecord(original[i], replayed[i]))
          << "record " << i << " diverged (n=" << n << ")";
    }
  }
}

TEST(TraceCompile, MessyAsciiRoundTripsBitExactly) {
  // CRLF line endings, blank and comment lines, and out-of-order timestamps:
  // everything the ASCII ingest path tolerates must survive compilation with
  // the parsed records bit-equal after the compiler's sort.
  Pcg32 rng(13);
  std::ostringstream ascii;
  ascii << "# SPC-style header comment\r\n\r\n";
  for (int i = 0; i < 500; ++i) {
    const double ts = rng.NextDouble() * 100.0;  // deliberately unsorted
    const std::int64_t lba = static_cast<std::int64_t>(rng.NextBounded(1 << 16));
    const std::int64_t size_bytes = 512 * (1 + static_cast<std::int64_t>(rng.NextBounded(64)));
    const char* op = rng.NextDouble() < 0.3 ? "w" : "r";
    ascii << i % 4 << "," << lba << "," << size_bytes << "," << op << "," << ts
          << (i % 7 == 0 ? "\r\n" : "\n");
    if (i % 50 == 0) {
      ascii << "\n   \n";
    }
  }

  // What the ASCII reader yields (unordered, kAccept) is the ground truth.
  auto reader = SpcTraceReader::FromString(ascii.str(), kSpace, 4, TimeOrderPolicy::kAccept);
  std::vector<TraceRecord> parsed = Drain(*reader);
  ASSERT_EQ(parsed.size(), 500u);
  EXPECT_EQ(reader->parse_errors(), 0);

  reader->Reset();
  std::string bytes;
  TraceCompileOptions options;
  options.address_space_sectors = kSpace;
  TraceCompileResult result = CompileTrace(*reader, &bytes, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.records, 500);

  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  auto compiled = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(compiled->ok()) << compiled->error();
  std::vector<TraceRecord> replayed = Drain(*compiled);
  ASSERT_EQ(replayed.size(), parsed.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    ASSERT_TRUE(SameRecord(parsed[i], replayed[i])) << "record " << i << " diverged";
  }
}

TEST(TraceCompile, EmptyTraceRoundTrips) {
  std::string bytes;
  TraceCompileOptions options;
  options.address_space_sectors = kSpace;
  TraceCompileResult result = CompileRecords({}, &bytes, options);
  ASSERT_TRUE(result.ok) << result.error;
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  EXPECT_EQ(reader->num_records(), 0);
  TraceRecord r;
  EXPECT_FALSE(reader->Next(&r));
  EXPECT_TRUE(reader->ok());
}

TEST(TraceCompile, StatsSummarizeTheRecords) {
  std::string bytes = SealedTrace(300, 64);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  const TraceStats& stats = reader->stats();
  EXPECT_EQ(stats.records, 300);
  EXPECT_EQ(stats.reads + stats.writes, 300);
  EXPECT_GT(stats.total_sectors, 0);
  EXPECT_GE(stats.min_lba, 0);
  EXPECT_LE(stats.max_lba_end, kSpace);
  EXPECT_GE(stats.last_time, stats.first_time);
  EXPECT_GT(stats.peak_iops, 0.0);
  EXPECT_EQ(reader->DurationHint(), stats.last_time);
  EXPECT_EQ(reader->PeakIopsHint(), stats.peak_iops);
}

TEST(TraceCompile, RejectsInvalidRecordsWithDiagnostics) {
  std::string bytes;
  TraceCompileOptions options;
  options.address_space_sectors = kSpace;

  std::vector<TraceRecord> bad(1);
  bad[0].time = Ms(-1.0);
  EXPECT_FALSE(CompileRecords(bad, &bytes, options).ok);

  bad[0].time = Ms(1.0);
  bad[0].lba = kSpace;  // lba + count off the end
  EXPECT_FALSE(CompileRecords(bad, &bytes, options).ok);

  bad[0].lba = 0;
  bad[0].stream = 1 << 17;
  EXPECT_FALSE(CompileRecords(bad, &bytes, options).ok);
}

// ------------------------------------------------------- corruption suite ---

TEST(TraceCorruption, TruncatedHeaderFailsClosed) {
  std::string bytes = SealedTrace();
  auto reader = CompiledTraceReader::FromBuffer(bytes.substr(0, 40));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("too small"), std::string::npos) << reader->error();
  TraceRecord r;
  EXPECT_FALSE(reader->Next(&r));
}

TEST(TraceCorruption, BadMagicFailsClosed) {
  std::string bytes = SealedTrace();
  bytes[0] = 'X';
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("bad magic"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, UnsupportedVersionFailsClosed) {
  std::string bytes = SealedTrace();
  Poke<std::uint32_t>(&bytes, 4, kTraceVersion + 1);
  ResealHeader(&bytes);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("unsupported version"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, HeaderFieldFlipTripsTheHeaderChecksum) {
  std::string bytes = SealedTrace();
  bytes[24] = static_cast<char>(bytes[24] ^ 0x20);  // num_records
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("header checksum"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, MidBlockTruncationFailsClosed) {
  std::string bytes = SealedTrace();
  // Chop the file in the middle of block 1: the footer lands at the wrong
  // offset, which is exactly what a torn download / partial write looks like.
  const std::int64_t cut = BlockOffset(bytes, 1) + 32;
  auto reader = CompiledTraceReader::FromBuffer(bytes.substr(0, static_cast<std::size_t>(cut)));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("footer"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, BlockPayloadFlipStopsTheStreamMidReplay) {
  std::string bytes = SealedTrace();
  // Flip one record byte in block 2: validation passes (block checksums are
  // lazy), replay stops exactly at that block, and the error latches.
  const std::int64_t target = BlockOffset(bytes, 2) + kTraceBlockHeaderBytes + 40;
  bytes[static_cast<std::size_t>(target)] =
      static_cast<char>(bytes[static_cast<std::size_t>(target)] ^ 0x01);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();

  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("block checksum"), std::string::npos) << reader->error();
  EXPECT_EQ(replayed.size(), 128u);  // blocks 0 and 1 only
  // The error latches: Reset() must not reopen the damaged trace.
  reader->Reset();
  TraceRecord r;
  EXPECT_FALSE(reader->Next(&r));
}

TEST(TraceCorruption, IndexFlipFailsClosed) {
  std::string bytes = SealedTrace();
  const std::int64_t entry = kTraceHeaderBytes + 8;  // block 1's offset
  bytes[static_cast<std::size_t>(entry)] =
      static_cast<char>(bytes[static_cast<std::size_t>(entry)] ^ 0x04);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("index checksum"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, FooterFlipFailsClosed) {
  std::string bytes = SealedTrace();
  const std::int64_t footer = static_cast<std::int64_t>(bytes.size()) - kTraceFooterBytes;
  bytes[static_cast<std::size_t>(footer + 8)] =
      static_cast<char>(bytes[static_cast<std::size_t>(footer + 8)] ^ 0x80);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("footer checksum"), std::string::npos) << reader->error();
}

TEST(TraceCorruption, NonMonotonicBlockBaseIsRejectedEvenWithValidChecksum) {
  std::string bytes = SealedTrace();
  // Rewind block 1's base timestamp below block 0's range and RE-SEAL the
  // block checksum: this is what a block-level splice of two traces would
  // produce, and only the cross-block monotonicity check can catch it.
  const std::int64_t block1 = BlockOffset(bytes, 1);
  Poke<std::uint64_t>(&bytes, block1, 0);  // bit image of 0.0 ms
  ResealBlock(&bytes, block1);
  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("non-monotonic block base"), std::string::npos)
      << reader->error();
  EXPECT_EQ(replayed.size(), 64u);  // block 0 only
}

TEST(TraceCorruption, OverflowingVarintIsRejectedEvenWithValidChecksum) {
  // Craft a block whose delta stream is wide enough to hold a 10-byte varint,
  // then overwrite it with 0xFF bytes (a delta >= 2^70) and re-seal.  No
  // compiler output ever contains one — deltas are bounded by the bit image
  // of infinity — so this can only be hit via deliberate damage.
  std::vector<TraceRecord> records(3);
  records[0].time = Ms(0.0);
  records[1].time = Ms(1e300);    // ~9-byte delta
  records[2].time = Ms(1.5e300);  // ~8-byte delta
  for (TraceRecord& r : records) {
    r.lba = 0;
    r.count = 8;
  }
  std::string bytes;
  TraceCompileOptions options;
  options.address_space_sectors = kSpace;
  TraceCompileResult result = CompileRecords(records, &bytes, options);
  ASSERT_TRUE(result.ok) << result.error;

  const std::int64_t block0 = BlockOffset(bytes, 0);
  const auto tbytes = Peek<std::uint32_t>(bytes, block0 + 20);
  ASSERT_GE(tbytes, 10u);
  for (std::int64_t i = 0; i < 10; ++i) {
    bytes[static_cast<std::size_t>(block0 + kTraceBlockHeaderBytes + i)] = '\xff';
  }
  ResealBlock(&bytes, block0);

  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("overflowing varint"), std::string::npos) << reader->error();
  EXPECT_EQ(replayed.size(), 1u);  // the block base record precedes the deltas
}

TEST(TraceCorruption, TruncatedVarintIsRejectedEvenWithValidChecksum) {
  // A continuation bit on the last delta byte sends the decoder past the
  // block's declared delta region.
  std::vector<TraceRecord> records(2);
  records[0].time = Ms(1.0);
  // Adjacent bit images: the delta (100) varint-encodes in a single byte.
  records[1].time = std::bit_cast<SimTime>(Bits(records[0].time) + 100);
  for (TraceRecord& r : records) {
    r.lba = 0;
    r.count = 8;
  }
  std::string bytes;
  TraceCompileOptions options;
  options.address_space_sectors = kSpace;
  ASSERT_TRUE(CompileRecords(records, &bytes, options).ok);

  const std::int64_t block0 = BlockOffset(bytes, 0);
  ASSERT_EQ(Peek<std::uint32_t>(bytes, block0 + 20), 1u);
  bytes[static_cast<std::size_t>(block0 + kTraceBlockHeaderBytes)] = '\xff';
  ResealBlock(&bytes, block0);

  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("truncated varint"), std::string::npos) << reader->error();
  EXPECT_EQ(replayed.size(), 1u);
}

TEST(TraceCorruption, RecordCountShortfallIsReported) {
  std::string bytes = SealedTrace(300, 64);
  // Promise one more record than the blocks deliver (header + footer agree
  // with each other, so only the end-of-replay accounting can catch it).
  Poke<std::int64_t>(&bytes, 24, 301);
  ResealHeader(&bytes);
  const std::int64_t footer = static_cast<std::int64_t>(bytes.size()) - kTraceFooterBytes;
  Poke<std::int64_t>(&bytes, footer, 301);  // TraceStats.records
  ResealFooter(&bytes);

  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("fewer records"), std::string::npos) << reader->error();
  EXPECT_EQ(replayed.size(), 300u);
}

TEST(TraceCorruption, RecordCountOverrunIsReported) {
  std::string bytes = SealedTrace(300, 64);
  // Promise fewer records than the blocks hold: the fifth block would push
  // emitted past the header's count.
  Poke<std::int64_t>(&bytes, 24, 299);
  ResealHeader(&bytes);
  const std::int64_t footer = static_cast<std::int64_t>(bytes.size()) - kTraceFooterBytes;
  Poke<std::int64_t>(&bytes, footer, 299);
  ResealFooter(&bytes);

  auto reader = CompiledTraceReader::FromBuffer(std::move(bytes));
  ASSERT_TRUE(reader->ok()) << reader->error();
  std::vector<TraceRecord> replayed = Drain(*reader);
  EXPECT_FALSE(reader->ok());
  EXPECT_NE(reader->error().find("overruns the trace record count"), std::string::npos)
      << reader->error();
  EXPECT_EQ(replayed.size(), 256u);  // four full blocks
}

TEST(TraceCorruption, MissingFileFailsClosed) {
  auto reader = CompiledTraceReader::Open("/nonexistent/path/trace.hibt");
  EXPECT_FALSE(reader->ok());
  TraceRecord r;
  EXPECT_FALSE(reader->Next(&r));
}

TEST(TraceCorruptionDeathTest, OpenOrDieAbortsOnDamage) {
  std::string bytes = SealedTrace();
  bytes[0] = 'X';
  const std::string path = testing::TempDir() + "/corrupt_trace.hibt";
  std::ofstream(path, std::ios::binary).write(bytes.data(),
                                              static_cast<std::streamsize>(bytes.size()));
  EXPECT_DEATH(CompiledTraceReader::OpenOrDie(path), "bad magic");
}

// ---------------------------------------------------------------- fuzzing ---

TEST(TraceFuzz, TenThousandMutationsNeverSilentlyDiverge) {
  const std::string sealed = SealedTrace(300, 64);
  const ReplayOutcome original = Replay(sealed);
  ASSERT_FALSE(original.failed) << original.error;
  ASSERT_EQ(original.records.size(), 300u);

  Pcg32 rng(20260808);
  int rejected = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::string mutated = sealed;
    if (iter % 4 == 0) {
      // Truncate to a random shorter length (possibly zero).
      mutated.resize(rng.NextBounded(static_cast<std::uint32_t>(sealed.size())));
    } else {
      // Flip 1-3 random bits (never a no-op write).
      const int flips = 1 + static_cast<int>(rng.NextBounded(3));
      for (int f = 0; f < flips; ++f) {
        const auto pos = rng.NextBounded(static_cast<std::uint32_t>(mutated.size()));
        const auto bit = 1u << rng.NextBounded(8);
        mutated[pos] = static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^ bit);
      }
    }

    ReplayOutcome outcome = Replay(std::move(mutated));
    if (outcome.failed) {
      ++rejected;
      continue;
    }
    // The reader accepted the mutation: it must have replayed the byte-exact
    // original stream (e.g. the flip cancelled out) — never a divergent one.
    ASSERT_EQ(outcome.records.size(), original.records.size()) << "iteration " << iter;
    for (std::size_t i = 0; i < outcome.records.size(); ++i) {
      ASSERT_TRUE(SameRecord(outcome.records[i], original.records[i]))
          << "iteration " << iter << " record " << i << " silently diverged";
    }
  }
  // Every byte is under one of the four checksums, so essentially every
  // mutation must be rejected (only an even number of flips landing on the
  // same byte can cancel out).
  EXPECT_GT(rejected, 9900);
}

}  // namespace
}  // namespace hib
