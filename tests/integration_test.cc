// End-to-end tests: whole schemes against whole workloads through the same
// harness the benchmarks use.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

ArrayParams SmallArray() {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = 4;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.1;
  p.cache_lines = 256;
  return p;
}

OltpWorkloadParams ShortOltp(SectorAddr space, double hours = 2.0) {
  OltpWorkloadParams p;
  p.address_space_sectors = space;
  p.duration_ms = Hours(hours);
  p.peak_iops = 80.0;
  p.trough_iops = 25.0;
  return p;
}

ExperimentResult RunScheme(Scheme scheme, const ArrayParams& base_array,
                           Duration goal_ms = Duration{}) {
  SchemeConfig cfg;
  cfg.scheme = scheme;
  cfg.goal_ms = goal_ms > Duration{} ? goal_ms : Ms(25.0);
  cfg.epoch_ms = Hours(0.25);
  ArrayParams array = ArrayFor(cfg, base_array);
  auto policy = MakePolicy(cfg);
  OltpWorkload workload(ShortOltp(array.DataSectors()));
  return RunExperiment(workload, *policy, array);
}

TEST(Integration, AllSchemesCompleteAllRequests) {
  ArrayParams array = SmallArray();
  std::int64_t expected = -1;
  for (Scheme scheme : MainComparisonSchemes()) {
    ExperimentResult r = RunScheme(scheme, array);
    EXPECT_GT(r.requests, 1000) << SchemeName(scheme);
    if (scheme == Scheme::kBase) {
      expected = r.requests;
    } else {
      // Same workload, same request count (PDC/MAID reshape the array but
      // the logical space is sized identically by data_fraction).
      EXPECT_EQ(r.requests, expected) << SchemeName(scheme);
    }
  }
}

TEST(Integration, RunsAreDeterministic) {
  ArrayParams array = SmallArray();
  ExperimentResult a = RunScheme(Scheme::kHibernator, array);
  ExperimentResult b = RunScheme(Scheme::kHibernator, array);
  EXPECT_EQ(a.energy_total, b.energy_total);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.rpm_changes, b.rpm_changes);
}

TEST(Integration, HibernatorSavesEnergyAndMeetsGoal) {
  ArrayParams array = SmallArray();
  ExperimentResult base = RunScheme(Scheme::kBase, array);
  Duration goal = 2.5 * base.mean_response_ms;
  ExperimentResult hib = RunScheme(Scheme::kHibernator, array, goal);
  EXPECT_LT(hib.energy_total, base.energy_total);
  EXPECT_GT(hib.SavingsVs(base), 0.10);
  EXPECT_LE(hib.mean_response_ms, goal * 1.05);  // 5% measurement slack
}

TEST(Integration, BaseNeverTransitions) {
  ExperimentResult base = RunScheme(Scheme::kBase, SmallArray());
  EXPECT_EQ(base.rpm_changes, 0);
  EXPECT_EQ(base.spin_downs, 0);
  EXPECT_EQ(base.migrations, 0);
}

TEST(Integration, EnergyBreakdownConsistent) {
  ExperimentResult r = RunScheme(Scheme::kHibernator, SmallArray());
  EXPECT_NEAR(r.energy_total.value(),
              (r.energy.active + r.energy.idle + r.energy.standby + r.energy.transition).value(),
              1e-6);
  // Total metered time = disks * duration.
  EXPECT_NEAR(r.energy.TotalMs().value(), (8.0 * r.sim_duration_ms).value(), 1.0);
}

TEST(Integration, TpmSavesOnMostlyIdleWorkload) {
  ArrayParams array = SmallArray();
  SchemeConfig base_cfg;
  base_cfg.scheme = Scheme::kBase;
  SchemeConfig tpm_cfg;
  tpm_cfg.scheme = Scheme::kTpm;

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = Hours(3.0);
  wp.iops = 0.002;  // a request every ~8 minutes: deep idle gaps

  auto base_policy = MakePolicy(base_cfg);
  ConstantWorkload w1(wp);
  ExperimentResult base = RunExperiment(w1, *base_policy, ArrayFor(base_cfg, array));

  auto tpm_policy = MakePolicy(tpm_cfg);
  ConstantWorkload w2(wp);
  ExperimentResult tpm = RunExperiment(w2, *tpm_policy, ArrayFor(tpm_cfg, array));

  EXPECT_GT(tpm.spin_downs, 0);
  EXPECT_GT(tpm.SavingsVs(base), 0.3);
}

TEST(Integration, TpmSavesNothingOnBusyWorkload) {
  // The paper's core observation about TPM in data centers.
  ArrayParams array = SmallArray();
  ExperimentResult base = RunScheme(Scheme::kBase, array);
  ExperimentResult tpm = RunScheme(Scheme::kTpm, array);
  EXPECT_LT(tpm.SavingsVs(base), 0.05);
}

TEST(Integration, DrpmMakesFineGrainedTransitions) {
  // DRPM walks every disk up and down individually; at minimum each of the 8
  // disks steps down the full ladder during the quiet stretches.
  ExperimentResult drpm = RunScheme(Scheme::kDrpm, SmallArray());
  EXPECT_GE(drpm.rpm_changes, 8 * 4);
  // Hibernator changes speed at most once per group per epoch.
  ExperimentResult hib = RunScheme(Scheme::kHibernator, SmallArray());
  EXPECT_LE(hib.rpm_changes, 8 * 8);  // 8 epochs x 8 disks
}

TEST(Integration, HibernatorAblationsRun) {
  ArrayParams array = SmallArray();
  ExperimentResult base = RunScheme(Scheme::kBase, array);
  Duration goal = 2.5 * base.mean_response_ms;
  for (Scheme scheme : {Scheme::kHibernatorNoMigration, Scheme::kHibernatorNoBoost,
                        Scheme::kHibernatorUtilThreshold}) {
    ExperimentResult r = RunScheme(scheme, array, goal);
    EXPECT_EQ(r.requests, base.requests) << SchemeName(scheme);
    EXPECT_GT(r.energy_total, Joules{});
  }
}

TEST(Integration, SeriesCollectionWorks) {
  SchemeConfig cfg;
  cfg.scheme = Scheme::kHibernator;
  cfg.goal_ms = Ms(25.0);
  cfg.epoch_ms = Hours(0.25);
  ArrayParams array = ArrayFor(cfg, SmallArray());
  auto policy = MakePolicy(cfg);
  OltpWorkload workload(ShortOltp(array.DataSectors()));
  ExperimentOptions options;
  options.collect_series = true;
  options.sample_period_ms = Hours(0.25);
  ExperimentResult r = RunExperiment(workload, *policy, array, options);
  ASSERT_GE(r.series.size(), 7u);
  for (const SeriesPoint& p : r.series) {
    int disks = p.disks_standby;
    for (int n : p.disks_at_level) {
      disks += n;
    }
    EXPECT_EQ(disks, 8);  // every disk accounted for at every sample
    EXPECT_GE(p.energy_so_far, Joules{});
  }
  // Energy is monotone over time.
  for (std::size_t i = 1; i < r.series.size(); ++i) {
    EXPECT_GE(r.series[i].energy_so_far, r.series[i - 1].energy_so_far);
  }
}

TEST(Integration, MeasureBaseResponseProbe) {
  ArrayParams array = SmallArray();
  OltpWorkload workload(ShortOltp(array.DataSectors()));
  Duration base_ms = MeasureBaseResponseMs(workload, array, Hours(0.5));
  EXPECT_GT(base_ms, Ms(2.0));
  EXPECT_LT(base_ms, Ms(30.0));
  // The probe must leave the workload rewound.
  TraceRecord rec;
  ASSERT_TRUE(workload.Next(&rec));
  EXPECT_LT(rec.time, Seconds(60.0));
}

TEST(Integration, StandardSetupsAreValid) {
  OltpSetup oltp = MakeOltpSetup();
  EXPECT_EQ(oltp.array.num_disks % oltp.array.group_width, 0);
  EXPECT_EQ(oltp.array.disk.Validate(), "");
  CelloSetup cello = MakeCelloSetup();
  EXPECT_EQ(cello.array.num_disks % cello.array.group_width, 0);
  EXPECT_EQ(cello.array.disk.Validate(), "");
}

}  // namespace
}  // namespace hib
