// Pins the core guarantee of src/harness/parallel.h: RunAll is nothing but a
// thread-pooled RunExperiment, so its results are *bit identical* to running
// the same specs sequentially, in spec order, for any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/parallel.h"
#include "src/harness/schemes.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

ArrayParams TinyArray() {
  ArrayParams p;
  p.num_disks = 4;
  p.group_width = 4;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.05;
  p.cache_lines = 0;
  return p;
}

ConstantWorkloadParams TinyWorkload(SectorAddr space) {
  ConstantWorkloadParams p;
  p.address_space_sectors = space;
  p.duration_ms = Hours(0.25);
  p.iops = 25.0;
  return p;
}

std::vector<ExperimentSpec> MakeSpecs() {
  std::vector<ExperimentSpec> specs;
  ExperimentOptions options;
  options.collect_series = true;
  options.sample_period_ms = Hours(0.05);
  for (Scheme s : {Scheme::kBase, Scheme::kTpm, Scheme::kDrpm, Scheme::kHibernator,
                   Scheme::kBase, Scheme::kTpm}) {
    SchemeConfig cfg;
    cfg.scheme = s;
    ExperimentSpec spec = SpecForScheme(
        cfg, TinyArray(),
        [](const ArrayParams& array) {
          return std::make_unique<ConstantWorkload>(TinyWorkload(array.DataSectors()));
        },
        options);
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.policy_desc, b.policy_desc);
  EXPECT_EQ(a.sim_duration_ms, b.sim_duration_ms);
  EXPECT_EQ(a.energy_total, b.energy_total);  // exact, not NEAR: bit identical
  EXPECT_EQ(a.energy.active, b.energy.active);
  EXPECT_EQ(a.energy.idle, b.energy.idle);
  EXPECT_EQ(a.energy.standby, b.energy.standby);
  EXPECT_EQ(a.energy.transition, b.energy.transition);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p95_response_ms, b.p95_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.max_response_ms, b.max_response_ms);
  EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.spin_ups, b.spin_ups);
  EXPECT_EQ(a.spin_downs, b.spin_downs);
  EXPECT_EQ(a.rpm_changes, b.rpm_changes);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrated_sectors, b.migrated_sectors);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].t, b.series[i].t);
    EXPECT_EQ(a.series[i].window_mean_response_ms, b.series[i].window_mean_response_ms);
    EXPECT_EQ(a.series[i].energy_so_far, b.series[i].energy_so_far);
    EXPECT_EQ(a.series[i].disks_at_level, b.series[i].disks_at_level);
    EXPECT_EQ(a.series[i].disks_standby, b.series[i].disks_standby);
  }
}

TEST(RunAll, BitIdenticalToSequentialRuns) {
  std::vector<ExperimentSpec> specs = MakeSpecs();

  std::vector<ExperimentResult> sequential;
  for (const ExperimentSpec& spec : specs) {
    auto policy = spec.make_policy();
    auto workload = spec.make_workload(spec.array);
    sequential.push_back(RunExperiment(*workload, *policy, spec.array, spec.options));
  }

  std::vector<ExperimentResult> parallel = RunAll(specs, 4);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    ExpectBitIdentical(parallel[i], sequential[i]);
  }
}

TEST(RunAll, ThreadCountDoesNotChangeResults) {
  std::vector<ExperimentSpec> specs = MakeSpecs();
  std::vector<ExperimentResult> one = RunAll(specs, 1);
  std::vector<ExperimentResult> many = RunAll(specs, 3);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    ExpectBitIdentical(one[i], many[i]);
  }
}

TEST(RunAll, ResultsComeBackInSpecOrder) {
  std::vector<ExperimentSpec> specs = MakeSpecs();
  std::vector<ExperimentResult> results = RunAll(specs, 4);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Slot i must hold the run of spec i's policy, whichever thread ran it.
    EXPECT_EQ(results[i].policy_name, specs[i].make_policy()->Name());
  }
}

TEST(RunAll, PostRunHookSeesEachSpecsPolicy) {
  std::vector<ExperimentSpec> specs = MakeSpecs();
  std::vector<std::string> hook_names(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].post_run = [&hook_names, i](const PowerPolicy& policy,
                                         const ExperimentResult& result) {
      hook_names[i] = result.policy_name;
      (void)policy;
    };
  }
  std::vector<ExperimentResult> results = RunAll(specs, 4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(hook_names[i], results[i].policy_name);
  }
}

TEST(RunAll, EmptySpecListReturnsEmpty) {
  EXPECT_TRUE(RunAll({}, 4).empty());
}

}  // namespace
}  // namespace hib
