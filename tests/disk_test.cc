#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/disk/disk.h"
#include "src/disk/disk_params.h"
#include "src/sim/simulator.h"

namespace hib {
namespace {

DiskParams TestDisk(int levels = 5) { return MakeUltrastar36Z15MultiSpeed(levels); }

// ---------------------------------------------------------- SeekModel ------

TEST(SeekModel, ZeroDistanceIsFree) {
  SeekModel seek{Ms(0.6), Ms(3.4), Ms(6.5)};
  EXPECT_DOUBLE_EQ(seek.SeekTime(0, 10000).value(), 0.0);
}

TEST(SeekModel, SingleCylinderCost) {
  SeekModel seek{Ms(0.6), Ms(3.4), Ms(6.5)};
  EXPECT_NEAR(seek.SeekTime(1, 10000).value(), 0.6, 0.2);
}

TEST(SeekModel, AverageAtThirdStroke) {
  SeekModel seek{Ms(0.6), Ms(3.4), Ms(6.5)};
  std::int64_t cyls = 15000;
  EXPECT_NEAR(seek.SeekTime(cyls / 3, cyls).value(), 3.4, 0.01);
}

TEST(SeekModel, FullStrokeAtMaxDistance) {
  SeekModel seek{Ms(0.6), Ms(3.4), Ms(6.5)};
  std::int64_t cyls = 15000;
  EXPECT_NEAR(seek.SeekTime(cyls - 1, cyls).value(), 6.5, 0.01);
}

TEST(SeekModel, MonotoneInDistance) {
  SeekModel seek{Ms(0.6), Ms(3.4), Ms(6.5)};
  std::int64_t cyls = 15110;
  Duration prev;
  for (std::int64_t d = 1; d < cyls; d += 97) {
    Duration t = seek.SeekTime(d, cyls);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// ---------------------------------------------------------- DiskParams -----

TEST(DiskParams, UltrastarValidates) {
  for (int levels : {1, 2, 3, 5, 13}) {
    DiskParams p = MakeUltrastar36Z15MultiSpeed(levels);
    EXPECT_EQ(p.Validate(), "") << "levels=" << levels;
    EXPECT_EQ(p.num_speeds(), levels);
  }
}

TEST(DiskParams, FiveLevelRpmLadder) {
  DiskParams p = TestDisk(5);
  std::vector<int> rpms;
  for (const auto& s : p.speeds) {
    rpms.push_back(s.rpm);
  }
  EXPECT_EQ(rpms, (std::vector<int>{3000, 6000, 9000, 12000, 15000}));
}

TEST(DiskParams, PowerIncreasesWithRpm) {
  DiskParams p = TestDisk(5);
  for (std::size_t i = 1; i < p.speeds.size(); ++i) {
    EXPECT_GT(p.speeds[i].idle_power, p.speeds[i - 1].idle_power);
    EXPECT_GT(p.speeds[i].active_power, p.speeds[i - 1].active_power);
  }
}

TEST(DiskParams, TopLevelMatchesUltrastarSpec) {
  DiskParams p = TestDisk(5);
  EXPECT_EQ(p.max_rpm(), 15000);
  EXPECT_NEAR(p.speeds.back().idle_power.value(), 10.2, 1e-9);
  EXPECT_NEAR(p.speeds.back().active_power.value(), 13.5, 1e-9);
}

TEST(DiskParams, PowerLawExponent) {
  // Spindle (above electronics floor) scales as (rpm/max)^2.8.
  Watts p12k = IdlePowerAtRpm(12000, 15000, Watts(10.2));
  double expected = 2.5 + (10.2 - 2.5) * std::pow(12000.0 / 15000.0, 2.8);
  EXPECT_NEAR(p12k.value(), expected, 1e-9);
}

TEST(DiskParams, LevelOf) {
  DiskParams p = TestDisk(5);
  EXPECT_EQ(p.LevelOf(3000), 0);
  EXPECT_EQ(p.LevelOf(15000), 4);
  EXPECT_EQ(p.LevelOf(4000), -1);
}

TEST(DiskParams, TransferScalesInverselyWithRpm) {
  DiskParams p = TestDisk(5);
  Duration slow = p.TransferTime(128, 3000);
  Duration fast = p.TransferTime(128, 15000);
  EXPECT_NEAR(slow / fast, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.TransferTime(0, 15000).value(), 0.0);
}

TEST(DiskParams, TransferProportionalToSize) {
  DiskParams p = TestDisk(5);
  EXPECT_NEAR(p.TransferTime(256, 15000).value(), 2.0 * p.TransferTime(128, 15000).value(), 1e-12);
}

TEST(DiskParams, RevolutionTimes) {
  DiskParams p = TestDisk(5);
  EXPECT_DOUBLE_EQ(p.speeds.back().RevolutionMs().value(), 4.0);   // 15k rpm
  EXPECT_DOUBLE_EQ(p.speeds.front().RevolutionMs().value(), 20.0); // 3k rpm
}

TEST(DiskParams, TransitionTimeLinearInDelta) {
  DiskParams p = TestDisk(5);
  Duration one_step = p.RpmTransitionTime(3000, 6000);
  Duration four_steps = p.RpmTransitionTime(3000, 15000);
  EXPECT_NEAR(four_steps.value(), (4.0 * one_step).value(), 1e-9);
  EXPECT_DOUBLE_EQ(p.RpmTransitionTime(9000, 9000).value(), 0.0);
  EXPECT_EQ(p.RpmTransitionTime(3000, 9000), p.RpmTransitionTime(9000, 3000));
}

TEST(DiskParams, TransitionEnergyPositiveAndScales) {
  DiskParams p = TestDisk(5);
  EXPECT_GT(p.RpmTransitionEnergy(3000, 6000), Joules{});
  EXPECT_GT(p.RpmTransitionEnergy(3000, 15000), p.RpmTransitionEnergy(3000, 6000));
  EXPECT_DOUBLE_EQ(p.RpmTransitionEnergy(6000, 6000).value(), 0.0);
}

TEST(DiskParams, SpinUpScalesWithTarget) {
  DiskParams p = TestDisk(5);
  EXPECT_EQ(p.SpinUpTime(15000), p.spin_up_full_ms);
  EXPECT_NEAR(p.SpinUpTime(3000).value(), (p.spin_up_full_ms * 0.2).value(), 1e-9);
  EXPECT_EQ(p.SpinUpEnergy(15000), p.spin_up_full_energy);
  EXPECT_NEAR(p.SpinUpEnergy(3000).value(), (p.spin_up_full_energy * 0.04).value(), 1e-9);
}

TEST(DiskParams, ValidateCatchesBadGeometry) {
  DiskParams p = TestDisk(5);
  p.num_cylinders = 0;
  EXPECT_NE(p.Validate(), "");
}

TEST(DiskParams, ValidateCatchesUnsortedSpeeds) {
  DiskParams p = TestDisk(5);
  std::swap(p.speeds[0], p.speeds[4]);
  EXPECT_NE(p.Validate(), "");
}

TEST(DiskParams, ValidateCatchesNonMonotoneSeek) {
  DiskParams p = TestDisk(5);
  p.seek.full_stroke_ms = Ms(1.0);
  EXPECT_NE(p.Validate(), "");
}

// ---------------------------------------------------------------- Disk -----

class DiskTest : public ::testing::Test {
 protected:
  Simulator sim_;
  DiskParams params_ = TestDisk(5);
};

TEST_F(DiskTest, StartsIdleAtFullSpeed) {
  Disk disk(&sim_, params_, 0, 1);
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);
  EXPECT_EQ(disk.current_rpm(), 15000);
  EXPECT_TRUE(disk.FullyIdle());
}

TEST_F(DiskTest, ServesARequest) {
  Disk disk(&sim_, params_, 0, 1);
  bool completed = false;
  SimTime done_at;
  DiskRequest req;
  req.sector = 1000000;
  req.count = 8;
  req.on_complete = [&](SimTime t) {
    completed = true;
    done_at = t;
  };
  disk.Submit(std::move(req));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_TRUE(completed);
  EXPECT_GT(done_at, SimTime{});
  EXPECT_EQ(disk.stats().requests_completed, 1);
  EXPECT_EQ(disk.stats().sectors_read, 8);
  EXPECT_TRUE(disk.FullyIdle());
}

TEST_F(DiskTest, ResponseAtLeastTransferTime) {
  Disk disk(&sim_, params_, 0, 1);
  SimTime done_at;
  DiskRequest req;
  req.sector = 0;
  req.count = 600;  // one full track
  req.on_complete = [&](SimTime t) { done_at = t; };
  disk.Submit(std::move(req));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_GE(done_at, params_.TransferTime(600, 15000));
}

TEST_F(DiskTest, FcfsOrderWithinForeground) {
  Disk disk(&sim_, params_, 0, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    DiskRequest req;
    req.sector = i * 100000;
    req.count = 8;
    req.on_complete = [&order, i](SimTime) { order.push_back(i); };
    disk.Submit(std::move(req));
  }
  sim_.RunUntil(Seconds(10.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(DiskTest, BackgroundWaitsForForeground) {
  Disk disk(&sim_, params_, 0, 1);
  std::vector<char> order;
  DiskRequest bg;
  bg.sector = 0;
  bg.count = 8;
  bg.background = true;
  bg.on_complete = [&](SimTime) { order.push_back('b'); };
  disk.Submit(std::move(bg));  // starts service immediately (disk idle)
  for (int i = 0; i < 3; ++i) {
    DiskRequest fg;
    fg.sector = 0;
    fg.count = 8;
    fg.on_complete = [&](SimTime) { order.push_back('f'); };
    disk.Submit(std::move(fg));
  }
  DiskRequest bg2;
  bg2.sector = 0;
  bg2.count = 8;
  bg2.background = true;
  bg2.on_complete = [&](SimTime) { order.push_back('B'); };
  disk.Submit(std::move(bg2));
  sim_.RunUntil(Seconds(10.0));
  // First bg was already in service; the queued bg2 must trail all fg.
  EXPECT_EQ(std::string(order.begin(), order.end()), "bfffB");
}

TEST_F(DiskTest, EnergyEqualsIdlePowerWhenIdle) {
  Disk disk(&sim_, params_, 0, 1);
  sim_.RunUntil(Seconds(100.0));
  DiskEnergy e = disk.MeteredEnergy();
  EXPECT_NEAR(e.idle.value(),
              EnergyOf(params_.speeds.back().idle_power, Seconds(100.0)).value(), 1e-6);
  EXPECT_DOUBLE_EQ(e.active.value(), 0.0);
  EXPECT_NEAR(e.TotalMs().value(), Seconds(100.0).value(), 1e-6);
}

TEST_F(DiskTest, EnergyLedgerMatchesStateTimes) {
  Disk disk(&sim_, params_, 0, 1);
  // Mixed activity: requests, a speed change, a spin-down/up cycle.
  for (int i = 0; i < 20; ++i) {
    DiskRequest req;
    req.sector = i * 1000000 % params_.TotalSectors();
    req.count = 64;
    disk.Submit(std::move(req));
  }
  sim_.RunUntil(Seconds(5.0));
  disk.SetTargetRpm(6000);
  sim_.RunUntil(Seconds(20.0));
  disk.SpinDown();
  sim_.RunUntil(Seconds(40.0));
  disk.SpinUp();
  sim_.RunUntil(Seconds(60.0));

  DiskEnergy e = disk.MeteredEnergy();
  EXPECT_NEAR(e.TotalMs().value(), Seconds(60.0).value(), 1e-6);
  EXPECT_GT(e.active, Joules{});
  EXPECT_GT(e.idle, Joules{});
  EXPECT_GT(e.standby, Joules{});
  EXPECT_GT(e.transition, Joules{});
  // Idle accrues at several distinct speeds; just verify the ledger is
  // internally consistent: total == sum of components.
  EXPECT_NEAR(e.Total().value(), (e.active + e.idle + e.standby + e.transition).value(), 1e-9);
}

TEST_F(DiskTest, SetTargetRpmChangesSpeedWhenIdle) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SetTargetRpm(3000);
  EXPECT_EQ(disk.state(), DiskPowerState::kChangingRpm);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(disk.current_rpm(), 3000);
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);
  EXPECT_EQ(disk.stats().rpm_changes, 1);
}

TEST_F(DiskTest, SetTargetRpmDeferredWhileBusy) {
  Disk disk(&sim_, params_, 0, 1);
  DiskRequest req;
  req.sector = 5000000;
  req.count = 8;
  disk.Submit(std::move(req));
  EXPECT_EQ(disk.state(), DiskPowerState::kBusy);
  disk.SetTargetRpm(6000);
  EXPECT_EQ(disk.state(), DiskPowerState::kBusy);  // not interrupted
  sim_.RunUntil(Seconds(30.0));
  EXPECT_EQ(disk.current_rpm(), 6000);
}

TEST_F(DiskTest, RequestsQueueDuringRpmChange) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SetTargetRpm(3000);
  bool completed = false;
  DiskRequest req;
  req.sector = 0;
  req.count = 8;
  req.on_complete = [&](SimTime) { completed = true; };
  disk.Submit(std::move(req));
  EXPECT_FALSE(completed);
  sim_.RunUntil(Seconds(30.0));
  EXPECT_TRUE(completed);
  EXPECT_EQ(disk.current_rpm(), 3000);
}

TEST_F(DiskTest, RetargetDuringTransitionChains) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SetTargetRpm(3000);
  sim_.RunUntil(Ms(100.0));  // mid-transition
  disk.SetTargetRpm(12000);
  sim_.RunUntil(Seconds(60.0));
  EXPECT_EQ(disk.current_rpm(), 12000);
  EXPECT_EQ(disk.stats().rpm_changes, 2);
}

TEST_F(DiskTest, SetSameRpmIsNoOp) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SetTargetRpm(15000);
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);
  EXPECT_EQ(disk.stats().rpm_changes, 0);
}

TEST_F(DiskTest, SpinDownOnlyWhenIdle) {
  Disk disk(&sim_, params_, 0, 1);
  DiskRequest req;
  req.sector = 0;
  req.count = 8;
  disk.Submit(std::move(req));
  EXPECT_FALSE(disk.SpinDown());  // busy
  sim_.RunUntil(Seconds(5.0));
  EXPECT_TRUE(disk.SpinDown());
  sim_.RunUntil(Seconds(10.0));
  EXPECT_EQ(disk.state(), DiskPowerState::kStandby);
  EXPECT_EQ(disk.stats().spin_downs, 1);
}

TEST_F(DiskTest, StandbyDrawsStandbyPower) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SpinDown();
  sim_.RunUntil(params_.spin_down_ms);  // exactly at standby entry
  DiskEnergy before = disk.MeteredEnergy();
  sim_.RunUntil(params_.spin_down_ms + Seconds(100.0));
  DiskEnergy after = disk.MeteredEnergy();
  EXPECT_NEAR((after.standby - before.standby).value(),
              EnergyOf(params_.standby_power, Seconds(100.0)).value(), 1e-6);
}

TEST_F(DiskTest, DemandSpinUpFromStandby) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SpinDown();
  sim_.RunUntil(Seconds(10.0));
  ASSERT_EQ(disk.state(), DiskPowerState::kStandby);
  SimTime submitted_at = sim_.Now();
  SimTime done_at;
  DiskRequest req;
  req.sector = 0;
  req.count = 8;
  req.on_complete = [&](SimTime t) { done_at = t; };
  disk.Submit(std::move(req));
  sim_.RunUntil(Seconds(60.0));
  EXPECT_GT(done_at, SimTime{});
  // Must have paid the full-speed spin-up latency.
  EXPECT_GE(done_at - submitted_at, params_.SpinUpTime(15000));
  EXPECT_EQ(disk.stats().spin_ups, 1);
}

TEST_F(DiskTest, ArrivalDuringSpinDownWaitsThenSpinsUp) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SpinDown();
  sim_.RunUntil(Ms(500.0));  // mid spin-down
  ASSERT_EQ(disk.state(), DiskPowerState::kSpinningDown);
  bool completed = false;
  DiskRequest req;
  req.sector = 0;
  req.count = 8;
  req.on_complete = [&](SimTime) { completed = true; };
  disk.Submit(std::move(req));
  sim_.RunUntil(Seconds(60.0));
  EXPECT_TRUE(completed);
  EXPECT_EQ(disk.stats().spin_ups, 1);
  EXPECT_EQ(disk.stats().spin_downs, 1);
}

TEST_F(DiskTest, SpinUpTargetsPendingRpm) {
  Disk disk(&sim_, params_, 0, 1);
  disk.SpinDown();
  sim_.RunUntil(Seconds(10.0));
  disk.SetTargetRpm(6000);  // while in standby
  disk.SpinUp();
  sim_.RunUntil(Seconds(60.0));
  EXPECT_EQ(disk.current_rpm(), 6000);
  EXPECT_EQ(disk.state(), DiskPowerState::kIdle);
}

TEST_F(DiskTest, WindowCountersAccumulateAndReset) {
  Disk disk(&sim_, params_, 0, 1);
  for (int i = 0; i < 4; ++i) {
    DiskRequest req;
    req.sector = 0;
    req.count = 8;
    disk.Submit(std::move(req));
  }
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(disk.stats().window_arrivals, 4);
  EXPECT_EQ(disk.stats().window_completions, 4);
  EXPECT_GT(disk.stats().window_busy_ms, Duration{});
  EXPECT_GT(disk.stats().window_response_sum_ms, Duration{});
  disk.stats().ResetWindow();
  EXPECT_EQ(disk.stats().window_arrivals, 0);
  EXPECT_DOUBLE_EQ(disk.stats().window_busy_ms.value(), 0.0);
}

TEST_F(DiskTest, WritesTrackSectorsWritten) {
  Disk disk(&sim_, params_, 0, 1);
  DiskRequest req;
  req.sector = 0;
  req.count = 16;
  req.is_write = true;
  disk.Submit(std::move(req));
  sim_.RunUntil(Seconds(5.0));
  EXPECT_EQ(disk.stats().sectors_written, 16);
  EXPECT_EQ(disk.stats().sectors_read, 0);
}

TEST_F(DiskTest, ExpectedServiceTimeFasterAtHigherLevel) {
  Disk disk(&sim_, params_, 0, 1);
  EXPECT_GT(disk.ExpectedServiceTime(8, 0), disk.ExpectedServiceTime(8, 4));
}

TEST_F(DiskTest, SlowSpeedSlowsService) {
  // The same request stream takes longer (per request) at 3k than at 15k.
  auto run_at = [&](int rpm) {
    Simulator sim;
    Disk disk(&sim, params_, 0, 7);
    disk.SetTargetRpm(rpm);
    sim.RunUntil(Seconds(30.0));
    for (int i = 0; i < 50; ++i) {
      DiskRequest req;
      req.sector = (i * 7919) * 1000 % params_.TotalSectors();
      req.count = 8;
      disk.Submit(std::move(req));
    }
    sim.RunUntil(Seconds(300.0));
    return disk.stats().service_time_ms.mean();
  };
  EXPECT_GT(run_at(3000), run_at(15000) * 1.8);
}

TEST(DiskPowerStateName, AllNamed) {
  EXPECT_STREQ(DiskPowerStateName(DiskPowerState::kIdle), "IDLE");
  EXPECT_STREQ(DiskPowerStateName(DiskPowerState::kBusy), "BUSY");
  EXPECT_STREQ(DiskPowerStateName(DiskPowerState::kStandby), "STANDBY");
  EXPECT_STREQ(DiskPowerStateName(DiskPowerState::kChangingRpm), "CHANGING_RPM");
}

}  // namespace
}  // namespace hib
