#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/disk/disk_params.h"
#include "src/queueing/mg1.h"

namespace hib {
namespace {

// ------------------------------------------------------------ Mg1Model -----

TEST(Mg1, UtilizationIsLambdaTimesService) {
  EXPECT_DOUBLE_EQ(Mg1Model::Utilization(PerMs(0.05), Ms(10.0)), 0.5);
  EXPECT_DOUBLE_EQ(Mg1Model::Utilization(Frequency{}, Ms(10.0)), 0.0);
}

TEST(Mg1, ZeroLoadResponseIsServiceTime) {
  EXPECT_DOUBLE_EQ(Mg1Model::ResponseTime(Frequency{}, Ms(8.0), 0.5).value(), 8.0);
  EXPECT_DOUBLE_EQ(Mg1Model::WaitTime(Frequency{}, Ms(8.0), 0.5).value(), 0.0);
}

TEST(Mg1, MatchesMm1WhenScvIsOne) {
  // M/M/1: R = S / (1 - rho).
  Duration s = Ms(10.0);
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    Frequency lambda = rho / s;
    EXPECT_NEAR(Mg1Model::ResponseTime(lambda, s, 1.0).value(), (s / (1.0 - rho)).value(), 1e-9)
        << "rho=" << rho;
  }
}

TEST(Mg1, MatchesMd1WhenScvIsZero) {
  // M/D/1: W = rho S / (2 (1 - rho)).
  Duration s = Ms(10.0);
  double rho = 0.6;
  Frequency lambda = rho / s;
  EXPECT_NEAR(Mg1Model::WaitTime(lambda, s, 0.0).value(),
              (s * (rho / (2.0 * (1.0 - rho)))).value(), 1e-9);
}

TEST(Mg1, DivergesAtSaturation) {
  EXPECT_TRUE(std::isinf(Mg1Model::ResponseTime(PerMs(0.1), Ms(10.0), 1.0).value()));  // rho = 1
  EXPECT_TRUE(std::isinf(Mg1Model::ResponseTime(PerMs(0.2), Ms(10.0), 1.0).value()));  // rho = 2
}

TEST(Mg1, MonotoneInLambda) {
  Duration prev;
  for (double lambda = 0.0; lambda < 0.099; lambda += 0.01) {
    Duration r = Mg1Model::ResponseTime(PerMs(lambda), Ms(10.0), 0.8);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(Mg1, MonotoneInScv) {
  EXPECT_LT(Mg1Model::ResponseTime(PerMs(0.05), Ms(10.0), 0.2),
            Mg1Model::ResponseTime(PerMs(0.05), Ms(10.0), 2.0));
}

TEST(Mg1, MaxArrivalRateInvertsResponse) {
  Duration s = Ms(8.0);
  double scv = 0.7;
  for (double target : {9.0, 12.0, 20.0, 50.0}) {
    Frequency lambda = Mg1Model::MaxArrivalRate(Ms(target), s, scv);
    ASSERT_GT(lambda, Frequency{});
    EXPECT_NEAR(Mg1Model::ResponseTime(lambda, s, scv).value(), target, 1e-6)
        << "target=" << target;
  }
}

TEST(Mg1, MaxArrivalRateZeroWhenUnreachable) {
  EXPECT_DOUBLE_EQ(Mg1Model::MaxArrivalRate(Ms(5.0), Ms(8.0), 1.0).value(), 0.0);   // target < S
  EXPECT_DOUBLE_EQ(Mg1Model::MaxArrivalRate(Ms(8.0), Ms(8.0), 1.0).value(), 0.0);   // target == S
}

TEST(Mg1, MaxArrivalRateBelowSaturation) {
  Duration s = Ms(8.0);
  Frequency lambda = Mg1Model::MaxArrivalRate(Ms(1000.0), s, 1.0);
  EXPECT_LT(lambda * s, 1.0);
}

// ---------------------------------------------------- SpeedServiceModel ----

TEST(SpeedServiceModel, OneEntryPerLevel) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel m = SpeedServiceModel::FromDisk(disk, 12.0, 0.3);
  EXPECT_EQ(m.num_levels(), 5);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(m.Level(k).rpm, disk.speeds[static_cast<std::size_t>(k)].rpm);
  }
}

TEST(SpeedServiceModel, ServiceTimeDecreasesWithRpm) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel m = SpeedServiceModel::FromDisk(disk, 12.0, 0.3);
  for (int k = 1; k < m.num_levels(); ++k) {
    EXPECT_LT(m.Level(k).mean_ms, m.Level(k - 1).mean_ms);
  }
}

TEST(SpeedServiceModel, FullSpeedServiceIsPlausible) {
  // 3.4 ms seek + 2 ms rotation + small transfer => ~5.5-6 ms.
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel m = SpeedServiceModel::FromDisk(disk, 8.0, 0.0);
  EXPECT_GT(m.Level(4).mean_ms, Ms(5.0));
  EXPECT_LT(m.Level(4).mean_ms, Ms(7.0));
  // 3k rpm: 3.4 + 10 + transfer => ~14 ms.
  EXPECT_GT(m.Level(0).mean_ms, Ms(13.0));
  EXPECT_LT(m.Level(0).mean_ms, Ms(16.0));
}

TEST(SpeedServiceModel, ScvPositiveAndBounded) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel m = SpeedServiceModel::FromDisk(disk, 12.0, 0.3);
  for (int k = 0; k < m.num_levels(); ++k) {
    EXPECT_GT(m.Level(k).scv, 0.0);
    EXPECT_LT(m.Level(k).scv, 1.0);  // disk service is less variable than exp
  }
}

TEST(SpeedServiceModel, WriteFractionAddsSettle) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel reads = SpeedServiceModel::FromDisk(disk, 8.0, 0.0);
  SpeedServiceModel writes = SpeedServiceModel::FromDisk(disk, 8.0, 1.0);
  EXPECT_NEAR((writes.Level(4).mean_ms - reads.Level(4).mean_ms).value(),
              disk.write_settle_ms.value(), 1e-9);
}

TEST(SpeedServiceModel, LargerRequestsSlower) {
  DiskParams disk = MakeUltrastar36Z15MultiSpeed(5);
  SpeedServiceModel small = SpeedServiceModel::FromDisk(disk, 8.0, 0.3);
  SpeedServiceModel large = SpeedServiceModel::FromDisk(disk, 256.0, 0.3);
  EXPECT_GT(large.Level(4).mean_ms, small.Level(4).mean_ms);
}

}  // namespace
}  // namespace hib
