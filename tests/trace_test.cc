#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/trace/spc_reader.h"
#include "src/trace/spc_writer.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace hib {
namespace {

constexpr SectorAddr kSpace = 1 << 24;  // 8 GB logical space

OltpWorkloadParams SmallOltp() {
  OltpWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Hours(1.0);
  p.peak_iops = 100.0;
  p.trough_iops = 40.0;
  return p;
}

CelloWorkloadParams SmallCello() {
  CelloWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Hours(1.0);
  p.peak_iops = 60.0;
  p.trough_iops = 4.0;
  return p;
}

// ------------------------------------------------------- ScrambleRank ------

TEST(ScrambleRank, BijectiveOverSmallSpaces) {
  for (std::int64_t n : {1, 2, 7, 100, 4096, 10007}) {
    std::set<std::int64_t> seen;
    for (std::int64_t r = 0; r < n; ++r) {
      std::int64_t s = ScrambleRank(r, n);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, n);
      seen.insert(s);
    }
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), n) << "n=" << n;
  }
}

TEST(ScrambleRank, SpreadsNeighbors) {
  // Adjacent ranks should not map to adjacent chunks.
  std::int64_t n = 100000;
  std::int64_t a = ScrambleRank(0, n);
  std::int64_t b = ScrambleRank(1, n);
  EXPECT_GT(std::abs(a - b), 100);
}

// --------------------------------------------------------------- OLTP ------

TEST(OltpWorkload, TimesNondecreasingAndBounded) {
  OltpWorkload w(SmallOltp());
  TraceRecord rec;
  SimTime prev;
  int count = 0;
  while (w.Next(&rec)) {
    EXPECT_GE(rec.time, prev);
    EXPECT_LT(rec.time, Hours(1.0));
    EXPECT_GE(rec.lba, 0);
    EXPECT_LE(rec.lba + rec.count, kSpace);
    prev = rec.time;
    ++count;
  }
  EXPECT_GT(count, 1000);
}

TEST(OltpWorkload, ResetReproducesIdenticalStream) {
  OltpWorkload w(SmallOltp());
  std::vector<TraceRecord> first;
  TraceRecord rec;
  for (int i = 0; i < 500 && w.Next(&rec); ++i) {
    first.push_back(rec);
  }
  w.Reset();
  for (const TraceRecord& expected : first) {
    ASSERT_TRUE(w.Next(&rec));
    EXPECT_EQ(rec.time, expected.time);
    EXPECT_EQ(rec.lba, expected.lba);
    EXPECT_EQ(rec.count, expected.count);
    EXPECT_EQ(rec.is_write, expected.is_write);
  }
}

TEST(OltpWorkload, ReadFractionNearConfigured) {
  OltpWorkloadParams p = SmallOltp();
  p.duration_ms = Hours(4.0);
  OltpWorkload w(p);
  TraceSummary s = Summarize(w);
  EXPECT_NEAR(s.read_fraction, p.read_fraction, 0.02);
}

TEST(OltpWorkload, RequestSizeMix) {
  OltpWorkloadParams p = SmallOltp();
  OltpWorkload w(p);
  TraceRecord rec;
  std::int64_t small = 0;
  std::int64_t large = 0;
  while (w.Next(&rec)) {
    if (rec.count == p.small_sectors) {
      ++small;
    } else if (rec.count == p.large_sectors) {
      ++large;
    } else {
      FAIL() << "unexpected size " << rec.count;
    }
  }
  double large_frac = static_cast<double>(large) / static_cast<double>(small + large);
  EXPECT_NEAR(large_frac, p.large_fraction, 0.02);
}

TEST(OltpWorkload, RateFollowsDiurnalModel) {
  OltpWorkloadParams p = SmallOltp();
  p.duration_ms = Hours(24.0);
  p.peak_iops = 100.0;
  p.trough_iops = 20.0;
  OltpWorkload w(p);
  EXPECT_NEAR(w.RateAt(SimTime{}), 20.0, 1e-9);
  EXPECT_NEAR(w.RateAt(Hours(12.0)), 100.0, 1e-9);
  // Count arrivals in the midnight hour vs the noon hour.
  TraceRecord rec;
  int night = 0;
  int noon = 0;
  while (w.Next(&rec)) {
    if (rec.time < Hours(1.0)) {
      ++night;
    } else if (rec.time >= Hours(11.5) && rec.time < Hours(12.5)) {
      ++noon;
    }
  }
  EXPECT_GT(noon, night * 3);
}

TEST(OltpWorkload, SurgeMultipliesRate) {
  OltpWorkloadParams p = SmallOltp();
  p.duration_ms = Hours(2.0);
  p.peak_iops = 50.0;
  p.trough_iops = 50.0;  // flat base
  p.surge_start_ms = Hours(1.0);
  p.surge_end_ms = Hours(1.5);
  p.surge_factor = 4.0;
  OltpWorkload w(p);
  EXPECT_NEAR(w.RateAt(Hours(1.2)), 200.0, 1e-9);
  EXPECT_NEAR(w.RateAt(Hours(0.5)), 50.0, 1e-9);
  TraceRecord rec;
  int in_surge = 0;
  int before = 0;
  while (w.Next(&rec)) {
    if (rec.time >= p.surge_start_ms && rec.time < p.surge_end_ms) {
      ++in_surge;
    } else if (rec.time >= Hours(0.5) && rec.time < p.surge_start_ms) {
      ++before;
    }
  }
  EXPECT_GT(in_surge, before * 3);
}

TEST(OltpWorkload, SpatialSkewPresent) {
  OltpWorkloadParams p = SmallOltp();
  p.duration_ms = Hours(8.0);
  OltpWorkload w(p);
  std::int64_t num_chunks = kSpace / p.chunk_sectors;
  std::vector<int> hits(static_cast<std::size_t>(num_chunks), 0);
  TraceRecord rec;
  std::int64_t total = 0;
  while (w.Next(&rec)) {
    ++hits[static_cast<std::size_t>(rec.lba / p.chunk_sectors)];
    ++total;
  }
  std::sort(hits.begin(), hits.end(), std::greater<int>());
  std::int64_t top10pct = 0;
  for (std::size_t i = 0; i < hits.size() / 10; ++i) {
    top10pct += hits[i];
  }
  // Zipf(0.86): the top 10% of chunks should carry well over 30% of accesses.
  EXPECT_GT(static_cast<double>(top10pct) / static_cast<double>(total), 0.3);
}

// -------------------------------------------------------------- Cello ------

TEST(CelloWorkload, BasicInvariants) {
  CelloWorkload w(SmallCello());
  TraceRecord rec;
  SimTime prev;
  int count = 0;
  while (w.Next(&rec)) {
    EXPECT_GE(rec.time, prev);
    EXPECT_GE(rec.lba, 0);
    EXPECT_LE(rec.lba + rec.count, kSpace);
    prev = rec.time;
    ++count;
  }
  EXPECT_GT(count, 100);
}

TEST(CelloWorkload, ResetReproduces) {
  CelloWorkload w(SmallCello());
  TraceRecord a;
  std::vector<TraceRecord> first;
  for (int i = 0; i < 200 && w.Next(&a); ++i) {
    first.push_back(a);
  }
  w.Reset();
  for (const TraceRecord& expected : first) {
    ASSERT_TRUE(w.Next(&a));
    EXPECT_EQ(a.time, expected.time);
    EXPECT_EQ(a.lba, expected.lba);
  }
}

TEST(CelloWorkload, DeepNightValleys) {
  CelloWorkloadParams p = SmallCello();
  p.duration_ms = Hours(24.0);
  CelloWorkload w(p);
  // The cubed diurnal shape keeps 6 am rates well below the linear blend.
  EXPECT_LT(w.RateAt(Hours(3.0)), 0.15 * p.peak_iops);
  EXPECT_NEAR(w.RateAt(Hours(12.0)), p.peak_iops, 1e-9);
}

TEST(CelloWorkload, IsBursty) {
  CelloWorkloadParams p = SmallCello();
  p.duration_ms = Hours(2.0);
  CelloWorkload w(p);
  TraceRecord rec;
  std::vector<SimTime> times;
  while (w.Next(&rec)) {
    times.push_back(rec.time);
  }
  ASSERT_GT(times.size(), 200u);
  // Squared coefficient of variation of inter-arrivals should exceed a
  // Poisson process's (== 1) noticeably.
  RunningStats gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.Add(times[i] - times[i - 1]);
  }
  double scv = gaps.variance() / (gaps.mean() * gaps.mean());
  EXPECT_GT(scv, 1.5);
}

TEST(CelloWorkload, SequentialRunsExist) {
  CelloWorkloadParams p = SmallCello();
  p.sequential_fraction = 1.0;  // all bursts sequential
  p.mean_burst_size = 16.0;
  CelloWorkload w(p);
  TraceRecord prev;
  ASSERT_TRUE(w.Next(&prev));
  TraceRecord rec;
  int sequential_pairs = 0;
  int pairs = 0;
  while (w.Next(&rec) && pairs < 2000) {
    if (rec.lba == prev.lba + prev.count) {
      ++sequential_pairs;
    }
    ++pairs;
    prev = rec;
  }
  EXPECT_GT(sequential_pairs, pairs / 2);
}

// ----------------------------------------------------------- Constant ------

TEST(ConstantWorkload, RateAndBounds) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Hours(2.0);
  p.iops = 25.0;
  ConstantWorkload w(p);
  TraceSummary s = Summarize(w);
  EXPECT_NEAR(s.Iops(), 25.0, 2.0);
  EXPECT_NEAR(s.MeanSizeKb(), 4.0, 0.01);
}

// ----------------------------------------------------------- Summarize -----

TEST(Summarize, CountsAndDuration) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Seconds(100.0);
  p.iops = 10.0;
  p.read_fraction = 1.0;
  ConstantWorkload w(p);
  TraceSummary s = Summarize(w);
  EXPECT_GT(s.records, 800);
  EXPECT_LT(s.records, 1200);
  EXPECT_DOUBLE_EQ(s.read_fraction, 1.0);
  EXPECT_LE(s.duration_ms, Seconds(100.0));
}

TEST(Summarize, MaxRecordsCap) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  ConstantWorkload w(p);
  TraceSummary s = Summarize(w, 50);
  EXPECT_EQ(s.records, 50);
}

// ---------------------------------------------------------- SpcReader ------

TEST(SpcReader, ParsesWellFormedLines) {
  std::string trace =
      "# comment line\n"
      "0,1000,4096,r,0.5\n"
      "1,2000,8192,W,1.0\n"
      "\n"
      "0,3000,512,R,2.25\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.count, 8);  // 4096 bytes
  EXPECT_FALSE(rec.is_write);
  EXPECT_DOUBLE_EQ(rec.time.value(), 500.0);
  EXPECT_EQ(rec.stream, 0);
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_TRUE(rec.is_write);
  EXPECT_EQ(rec.count, 16);
  EXPECT_EQ(rec.stream, 1);
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.count, 1);
  EXPECT_DOUBLE_EQ(rec.time.value(), 2250.0);
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_EQ(reader->parse_errors(), 0);
}

TEST(SpcReader, CountsMalformedLines) {
  std::string trace =
      "garbage\n"
      "0,abc,4096,r,0.5\n"
      "0,100,4096,x,0.5\n"
      "0,100,4096,r,0.5\n"
      "0,100,-5,r,0.5\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_EQ(reader->parse_errors(), 4);
}

TEST(SpcReader, AsuSlicesSeparateAddressRanges) {
  std::string trace =
      "0,0,4096,r,0.0\n"
      "1,0,4096,r,1.0\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord a, b;
  ASSERT_TRUE(reader->Next(&a));
  ASSERT_TRUE(reader->Next(&b));
  EXPECT_NE(a.lba, b.lba);
  EXPECT_EQ(b.lba - a.lba, kSpace / 4);
}

TEST(SpcReader, RejectsBackwardsTime) {
  std::string trace =
      "0,0,4096,r,5.0\n"
      "0,0,4096,r,1.0\n";  // goes back in time: rejected, not emitted
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord a, b;
  ASSERT_TRUE(reader->Next(&a));
  EXPECT_DOUBLE_EQ(a.time.value(), 5000.0);
  EXPECT_FALSE(reader->Next(&b));
  EXPECT_EQ(reader->time_order_errors(), 1);
  EXPECT_EQ(reader->parse_errors(), 0);  // well-formed line, wrong order
}

TEST(SpcReaderDeathTest, AbortPolicyDiesOnBackwardsTime) {
  std::string trace =
      "0,0,4096,r,5.0\n"
      "0,0,4096,r,1.0\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4, TimeOrderPolicy::kAbort);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_DEATH(reader->Next(&rec), "non-monotonic SPC timestamp at line 2");
}

TEST(SpcReader, AcceptPolicyPassesBackwardsTimeThrough) {
  // kAccept is for consumers that sort anyway (the trace compiler): the raw
  // timestamps come through untouched and nothing is counted as an error.
  std::string trace =
      "0,0,4096,r,5.0\n"
      "0,0,4096,r,1.0\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4, TimeOrderPolicy::kAccept);
  TraceRecord a, b;
  ASSERT_TRUE(reader->Next(&a));
  ASSERT_TRUE(reader->Next(&b));
  EXPECT_DOUBLE_EQ(a.time.value(), 5000.0);
  EXPECT_DOUBLE_EQ(b.time.value(), 1000.0);
  EXPECT_EQ(reader->time_order_errors(), 0);
}

TEST(SpcReader, ResetRestarts) {
  std::string trace = "0,10,4096,r,0.5\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_FALSE(reader->Next(&rec));
  reader->Reset();
  EXPECT_TRUE(reader->Next(&rec));
}

TEST(SpcReader, MissingFileYieldsNothing) {
  SpcTraceReader reader("/nonexistent/path/to/trace.spc", kSpace, 4);
  TraceRecord rec;
  EXPECT_FALSE(reader.Next(&rec));
}

TEST(SpcReader, CrlfLineEndingsParseCleanly) {
  // Windows-tooling exports: every line (including the blank one) ends \r\n.
  // The \r must neither corrupt the trailing timestamp field nor turn blank
  // lines into parse errors.
  std::string trace =
      "# comment\r\n"
      "0,1000,4096,r,0.5\r\n"
      "\r\n"
      "1,2000,8192,w,1.25\r\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_DOUBLE_EQ(rec.time.value(), 500.0);
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_TRUE(rec.is_write);
  EXPECT_DOUBLE_EQ(rec.time.value(), 1250.0);
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_EQ(reader->parse_errors(), 0);
}

TEST(SpcReader, TrailingBlankLinesAreNotErrors) {
  std::string trace =
      "0,1000,4096,r,0.5\n"
      "\n"
      "   \n"
      "\t\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_EQ(reader->parse_errors(), 0);
}

TEST(SpcReader, MissingFieldCountsAsErrorAndSkips) {
  std::string trace =
      "0,1000,4096,r\n"     // no timestamp
      "0,1000,4096\n"       // no opcode either
      "0,1000,4096,r,0.5\n";
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));  // skips the two bad lines
  EXPECT_DOUBLE_EQ(rec.time.value(), 500.0);
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_EQ(reader->parse_errors(), 2);
}

TEST(SpcReader, OutOfOrderRecordIsDroppedAndResetClearsTheCount) {
  std::string trace =
      "0,0,4096,r,5.0\n"
      "0,0,4096,r,1.0\n"   // back in time: dropped and counted
      "0,0,4096,r,6.0\n";  // forward again: taken as-is
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord a, b;
  ASSERT_TRUE(reader->Next(&a));
  ASSERT_TRUE(reader->Next(&b));
  EXPECT_DOUBLE_EQ(a.time.value(), 5000.0);
  EXPECT_DOUBLE_EQ(b.time.value(), 6000.0);
  EXPECT_FALSE(reader->Next(&b));
  EXPECT_EQ(reader->time_order_errors(), 1);
  // Reset clears the high-water mark and the error count; the same record is
  // rejected again on the second pass.
  reader->Reset();
  EXPECT_EQ(reader->time_order_errors(), 0);
  ASSERT_TRUE(reader->Next(&a));
  EXPECT_DOUBLE_EQ(a.time.value(), 5000.0);
  ASSERT_TRUE(reader->Next(&b));
  EXPECT_DOUBLE_EQ(b.time.value(), 6000.0);
  EXPECT_EQ(reader->time_order_errors(), 1);
}

TEST(SpcReader, LbaStaysInsideSpace) {
  std::string trace = "3,99999999999,1048576,w,0.1\n";  // huge lba, 1 MB write
  auto reader = SpcTraceReader::FromString(trace, kSpace, 4);
  TraceRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_GE(rec.lba, 0);
  EXPECT_LE(rec.lba + rec.count, kSpace);
}

// ---------------------------------------------------------- SpcWriter ------

TEST(SpcWriter, RoundTripsThroughReader) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Seconds(60.0);
  p.iops = 20.0;
  ConstantWorkload source(p);

  std::ostringstream out;
  std::int64_t written = ExportSpcTrace(source, out);
  ASSERT_GT(written, 500);

  source.Reset();
  // max_asus = 1 keeps the reader's ASU slicing an identity mapping.
  auto reader = SpcTraceReader::FromString(out.str(), kSpace, /*max_asus=*/1);
  TraceRecord expected;
  TraceRecord actual;
  std::int64_t compared = 0;
  while (source.Next(&expected)) {
    ASSERT_TRUE(reader->Next(&actual)) << "record " << compared;
    EXPECT_EQ(actual.lba, expected.lba);
    EXPECT_EQ(actual.count, expected.count);
    EXPECT_EQ(actual.is_write, expected.is_write);
    EXPECT_NEAR(actual.time.value(), expected.time.value(), 0.01);  // 6-decimal seconds
    ++compared;
  }
  EXPECT_FALSE(reader->Next(&actual));
  EXPECT_EQ(compared, written);
  EXPECT_EQ(reader->parse_errors(), 0);
}

TEST(SpcWriter, RejectsMalformedRecords) {
  std::ostringstream out;
  SpcTraceWriter writer(&out);
  TraceRecord bad;
  bad.lba = -1;
  EXPECT_FALSE(writer.Write(bad));
  bad.lba = 0;
  bad.count = 0;
  EXPECT_FALSE(writer.Write(bad));
  bad.count = 8;
  bad.time = Ms(10.0);
  EXPECT_TRUE(writer.Write(bad));
  bad.time = Ms(5.0);  // time went backwards
  EXPECT_FALSE(writer.Write(bad));
  EXPECT_EQ(writer.records_written(), 1);
}

TEST(SpcWriter, FileExportAndReadBack) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  p.duration_ms = Seconds(10.0);
  p.iops = 10.0;
  ConstantWorkload source(p);
  std::string path = ::testing::TempDir() + "/hibernator_trace_test.spc";
  std::int64_t written = ExportSpcTraceToFile(source, path);
  ASSERT_GT(written, 0);
  SpcTraceReader reader(path, kSpace, 1);
  TraceRecord rec;
  std::int64_t read_back = 0;
  while (reader.Next(&rec)) {
    ++read_back;
  }
  EXPECT_EQ(read_back, written);
  std::remove(path.c_str());
}

TEST(SpcWriter, MaxRecordsCap) {
  ConstantWorkloadParams p;
  p.address_space_sectors = kSpace;
  ConstantWorkload source(p);
  std::ostringstream out;
  EXPECT_EQ(ExportSpcTrace(source, out, 25), 25);
}

}  // namespace
}  // namespace hib
