#include <gtest/gtest.h>

#include <memory>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/policy/full_power.h"
#include "src/trace/spc_reader.h"
#include "src/trace/synthetic.h"
#include "src/util/table.h"

namespace hib {
namespace {

ArrayParams TinyArray() {
  ArrayParams p;
  p.num_disks = 4;
  p.group_width = 4;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.05;
  p.cache_lines = 0;
  return p;
}

ConstantWorkloadParams TinyWorkload(SectorAddr space) {
  ConstantWorkloadParams p;
  p.address_space_sectors = space;
  p.duration_ms = Hours(0.5);
  p.iops = 20.0;
  return p;
}

// ------------------------------------------------------- scheme registry ---

TEST(Schemes, AllSchemesHaveNames) {
  for (Scheme s : {Scheme::kBase, Scheme::kTpm, Scheme::kDrpm, Scheme::kPdc, Scheme::kMaid,
                   Scheme::kHibernator, Scheme::kHibernatorNoMigration,
                   Scheme::kHibernatorNoBoost, Scheme::kHibernatorUtilThreshold}) {
    EXPECT_STRNE(SchemeName(s), "?");
  }
}

TEST(Schemes, MainComparisonOrderMatchesPaper) {
  std::vector<Scheme> schemes = MainComparisonSchemes();
  ASSERT_EQ(schemes.size(), 6u);
  EXPECT_EQ(schemes.front(), Scheme::kBase);
  EXPECT_EQ(schemes.back(), Scheme::kHibernator);
}

TEST(Schemes, ArrayForReshapesPdc) {
  SchemeConfig cfg;
  cfg.scheme = Scheme::kPdc;
  ArrayParams adjusted = ArrayFor(cfg, TinyArray());
  EXPECT_EQ(adjusted.group_width, 1);
  EXPECT_EQ(adjusted.num_cache_disks, 0);
}

TEST(Schemes, ArrayForAddsMaidCacheDisks) {
  SchemeConfig cfg;
  cfg.scheme = Scheme::kMaid;
  cfg.maid_cache_disks = 3;
  ArrayParams adjusted = ArrayFor(cfg, TinyArray());
  EXPECT_EQ(adjusted.group_width, 1);
  EXPECT_EQ(adjusted.num_cache_disks, 3);
}

TEST(Schemes, ArrayForLeavesStripedSchemesAlone) {
  for (Scheme s : {Scheme::kBase, Scheme::kTpm, Scheme::kDrpm, Scheme::kHibernator}) {
    SchemeConfig cfg;
    cfg.scheme = s;
    ArrayParams adjusted = ArrayFor(cfg, TinyArray());
    EXPECT_EQ(adjusted.group_width, 4) << SchemeName(s);
    EXPECT_EQ(adjusted.num_cache_disks, 0) << SchemeName(s);
  }
}

TEST(Schemes, MakePolicyProducesMatchingNames) {
  for (Scheme s : MainComparisonSchemes()) {
    SchemeConfig cfg;
    cfg.scheme = s;
    auto policy = MakePolicy(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->Name(), SchemeName(s));
  }
}

TEST(Schemes, HibernatorVariantsCarryConfig) {
  SchemeConfig cfg;
  cfg.scheme = Scheme::kHibernator;
  cfg.goal_ms = Ms(42.5);
  auto policy = MakePolicy(cfg);
  EXPECT_NE(policy->Describe().find("42.5"), std::string::npos);
}

// ---------------------------------------------------------- experiment -----

TEST(Experiment, DurationMatchesTracePlusDrain) {
  ArrayParams array = TinyArray();
  ConstantWorkload workload(TinyWorkload(array.DataSectors()));
  FullPowerPolicy dummy_check_not_needed;  // compile check for header export
  SchemeConfig cfg;
  cfg.scheme = Scheme::kBase;
  auto policy = MakePolicy(cfg);
  ExperimentOptions options;
  options.drain_ms = Seconds(10.0);
  ExperimentResult r = RunExperiment(workload, *policy, array, options);
  EXPECT_NEAR(r.sim_duration_ms.value(), (Hours(0.5) + Seconds(10.0)).value(), 1.0);
}

TEST(Experiment, MeanPowerConsistentWithEnergy) {
  ArrayParams array = TinyArray();
  ConstantWorkload workload(TinyWorkload(array.DataSectors()));
  SchemeConfig cfg;
  cfg.scheme = Scheme::kBase;
  auto policy = MakePolicy(cfg);
  ExperimentResult r = RunExperiment(workload, *policy, array);
  EXPECT_NEAR(r.MeanPower().value(), (r.energy_total / r.sim_duration_ms).value(), 1e-9);
  // 4 idle-ish disks at 10.2-13.5 W.
  EXPECT_GT(r.MeanPower(), Watts(4 * 10.0));
  EXPECT_LT(r.MeanPower(), Watts(4 * 14.0));
}

TEST(Experiment, SavingsVsIsSymmetricallySane) {
  ExperimentResult a;
  a.energy_total = Joules(50.0);
  ExperimentResult b;
  b.energy_total = Joules(100.0);
  EXPECT_DOUBLE_EQ(a.SavingsVs(b), 0.5);
  EXPECT_DOUBLE_EQ(b.SavingsVs(b), 0.0);
  EXPECT_DOUBLE_EQ(b.SavingsVs(a), -1.0);
}

TEST(Experiment, SeriesDisabledByDefault) {
  ArrayParams array = TinyArray();
  ConstantWorkload workload(TinyWorkload(array.DataSectors()));
  SchemeConfig cfg;
  cfg.scheme = Scheme::kBase;
  auto policy = MakePolicy(cfg);
  ExperimentResult r = RunExperiment(workload, *policy, array);
  EXPECT_TRUE(r.series.empty());
}

TEST(Experiment, RequestsMatchTrace) {
  ArrayParams array = TinyArray();
  ConstantWorkload count_source(TinyWorkload(array.DataSectors()));
  TraceSummary summary = Summarize(count_source);

  ConstantWorkload workload(TinyWorkload(array.DataSectors()));
  SchemeConfig cfg;
  cfg.scheme = Scheme::kBase;
  auto policy = MakePolicy(cfg);
  ExperimentResult r = RunExperiment(workload, *policy, array);
  EXPECT_EQ(r.requests, summary.records);
}

TEST(Experiment, UnknownDurationSourceStillTerminates) {
  // SPC readers report no duration hint; the slice-discovery path must end.
  ArrayParams array = TinyArray();
  std::string trace =
      "0,100,4096,r,1.0\n"
      "0,200,4096,w,2.0\n"
      "0,300,4096,r,3600.0\n";  // spans an hour
  auto reader = SpcTraceReader::FromString(trace, array.DataSectors());
  SchemeConfig cfg;
  cfg.scheme = Scheme::kBase;
  auto policy = MakePolicy(cfg);
  ExperimentResult r = RunExperiment(*reader, *policy, array);
  EXPECT_EQ(r.requests, 3);
  EXPECT_GE(r.sim_duration_ms, Hours(1.0));
  EXPECT_LE(r.sim_duration_ms, Hours(3.5));  // 1h trace + <=2h discovery + drain
}

TEST(Experiment, OltpSetupSpeedLevelsPropagate) {
  for (int levels : {1, 2, 5}) {
    OltpSetup setup = MakeOltpSetup(levels);
    EXPECT_EQ(setup.array.disk.num_speeds(), levels);
  }
}

}  // namespace
}  // namespace hib
