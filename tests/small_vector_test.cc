// SmallVector: the inline→heap spill boundary at the declared capacity,
// move semantics across both storage modes, reference stability of inline
// storage, and the clear()-keeps-spilled-capacity contract the pooled
// request contexts rely on.
#include <cstddef>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "src/util/small_vector.h"

namespace hib {
namespace {

using Vec4 = SmallVector<int, 4>;

// The container's whole design leans on these: trivially copyable elements
// (growth is one memcpy, teardown is free) and no accidental deep copies of
// the container itself.
static_assert(!std::is_copy_constructible_v<Vec4>);
static_assert(!std::is_copy_assignable_v<Vec4>);
static_assert(std::is_nothrow_move_constructible_v<Vec4>);
static_assert(std::is_nothrow_move_assignable_v<Vec4>);

TEST(SmallVectorTest, StartsEmptyAndInline) {
  Vec4 v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_FALSE(v.spilled());
}

TEST(SmallVectorTest, FillsInlineCapacityWithoutSpilling) {
  Vec4 v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_FALSE(v.spilled());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(SmallVectorTest, FifthElementSpillsToHeapAndPreservesContents) {
  Vec4 v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  v.push_back(4);  // exactly the boundary: element N+1 triggers the spill
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.capacity(), 8u);  // doubling growth
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(SmallVectorTest, InlineReferencesStableAcrossInlinePushes) {
  // While the container stays inline, data() never moves: a pointer taken at
  // size 1 must still be valid (and correct) at size N.
  Vec4 v;
  v.push_back(10);
  int* first = &v[0];
  v.push_back(11);
  v.push_back(12);
  v.push_back(13);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(first, &v[0]);
  EXPECT_EQ(*first, 10);
}

TEST(SmallVectorTest, EmplaceBackReturnsStableSlotReference) {
  Vec4 v;
  int& slot = v.emplace_back(7);
  EXPECT_EQ(slot, 7);
  slot = 9;
  EXPECT_EQ(v[0], 9);
}

TEST(SmallVectorTest, ClearKeepsSpilledCapacity) {
  Vec4 v;
  for (int i = 0; i < 9; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.spilled());
  std::size_t grown = v.capacity();
  EXPECT_EQ(grown, 16u);

  // clear() is the pooled-reuse path: size drops, the heap buffer stays, so
  // refilling to the same depth performs zero allocations (same data()).
  int* heap = v.data();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.capacity(), grown);
  for (int i = 0; i < 9; ++i) {
    v.push_back(100 + i);
  }
  EXPECT_EQ(v.data(), heap);
  EXPECT_EQ(v[8], 108);
}

TEST(SmallVectorTest, MoveConstructFromInlineCopiesElements) {
  Vec4 a;
  a.push_back(1);
  a.push_back(2);
  Vec4 b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_FALSE(b.spilled());
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  // The source is reset to a usable empty inline state.
  EXPECT_TRUE(a.empty());       // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.capacity(), 4u);  // NOLINT(bugprone-use-after-move)
  a.push_back(5);
  EXPECT_EQ(a[0], 5);
}

TEST(SmallVectorTest, MoveConstructFromSpilledStealsHeapBuffer) {
  Vec4 a;
  for (int i = 0; i < 6; ++i) {
    a.push_back(i);
  }
  int* heap = a.data();
  Vec4 b(std::move(a));
  EXPECT_TRUE(b.spilled());
  EXPECT_EQ(b.data(), heap);  // no copy: the heap buffer moved wholesale
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b[5], 5);
  EXPECT_TRUE(a.empty());       // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.capacity(), 4u);  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVectorTest, MoveAssignReplacesExistingContents) {
  Vec4 a;
  for (int i = 0; i < 5; ++i) {
    a.push_back(i);
  }
  Vec4 b;
  b.push_back(99);
  b = std::move(a);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_TRUE(b.spilled());
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[4], 4);
}

TEST(SmallVectorTest, IterationCoversBothStorageModes) {
  Vec4 v;
  int inline_sum = 0;
  for (int i = 1; i <= 4; ++i) {
    v.push_back(i);
  }
  for (int x : v) {
    inline_sum += x;
  }
  EXPECT_EQ(inline_sum, 10);

  v.push_back(5);  // spill, then iterate the heap buffer
  int heap_sum = 0;
  for (int x : v) {
    heap_sum += x;
  }
  EXPECT_EQ(heap_sum, 15);
}

}  // namespace
}  // namespace hib
