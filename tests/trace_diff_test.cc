// Differential replay: the SAME ASCII trace driven through RunExperiment via
// (a) the SpcTraceReader ASCII path and (b) the compile-to-HIBT-then-replay
// path must produce identical results.  Timestamps are stored as bit images
// in the binary format, so nothing is rounded in between — the acceptance
// bound is 1e-12 relative, and in practice the match is 0 ulp.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "src/harness/experiment.h"
#include "src/harness/schemes.h"
#include "src/trace/format.h"
#include "src/trace/spc_reader.h"
#include "src/trace/spc_writer.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

// Small but policy-active: 8 disks, 40 simulated minutes of OLTP.
ArrayParams DiffArray() {
  ArrayParams array;
  array.num_disks = 8;
  array.group_width = 4;
  array.disk = MakeUltrastar36Z15MultiSpeed(5);
  array.cache_lines = 512;
  array.seed = 777;
  return array;
}

// The shared ASCII ground truth, exported once from a fixed-seed generator.
const std::string& DiffAscii() {
  static const std::string ascii = [] {
    OltpWorkloadParams wp;
    wp.address_space_sectors = DiffArray().DataSectors();
    wp.duration_ms = Minutes(40.0);
    wp.peak_iops = 80.0;
    wp.trough_iops = 30.0;
    wp.seed = 20260808;
    OltpWorkload source(wp);
    std::ostringstream out;
    ExportSpcTrace(source, out);
    return out.str();
  }();
  return ascii;
}

// Pins DurationHint so both paths get the same replay horizon: a file reader
// cannot know its duration without a scan, so the harness would otherwise
// discover the ASCII path's end in one-hour slices while the compiled path
// runs exactly stats().last_time + drain.  The request streams are what this
// test compares; the horizon must be held equal.
class WithDurationHint : public WorkloadSource {
 public:
  WithDurationHint(std::unique_ptr<WorkloadSource> inner, Duration hint)
      : inner_(std::move(inner)), hint_(hint) {}

  bool Next(TraceRecord* out) override { return inner_->Next(out); }
  void Reset() override { inner_->Reset(); }
  SectorAddr AddressSpaceSectors() const override { return inner_->AddressSpaceSectors(); }
  Duration DurationHint() const override { return hint_; }

 private:
  std::unique_ptr<WorkloadSource> inner_;
  Duration hint_;
};

void ExpectSame(const char* what, double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  EXPECT_LE(std::abs(a - b) / scale, 1e-12)
      << what << ": ascii " << a << " vs compiled " << b;
}

void RunDifferential(Scheme scheme) {
  const SectorAddr space = DiffArray().DataSectors();
  const Duration horizon = Minutes(40.0);

  SchemeConfig cfg;
  cfg.scheme = scheme;
  cfg.goal_ms = Ms(25.0);
  cfg.epoch_ms = Minutes(10.0);
  const ArrayParams array = ArrayFor(cfg, DiffArray());

  // Path A: parse the ASCII on the fly (max_asus=1 keeps the ASU map an
  // identity, so both paths see the very same request stream).
  auto ascii_reader = SpcTraceReader::FromString(DiffAscii(), space, 1);
  SpcTraceReader* ascii_raw = ascii_reader.get();
  WithDurationHint ascii_source(std::move(ascii_reader), horizon);
  auto policy_a = MakePolicy(cfg);
  ExperimentResult ascii_result = RunExperiment(ascii_source, *policy_a, array);
  EXPECT_EQ(ascii_raw->time_order_errors(), 0) << "exported trace must be sorted";
  EXPECT_EQ(ascii_raw->parse_errors(), 0);

  // Path B: compile to the binary format, replay through the O(1) cursor.
  auto compile_reader = SpcTraceReader::FromString(DiffAscii(), space, 1, TimeOrderPolicy::kAccept);
  std::string binary;
  TraceCompileOptions options;
  options.address_space_sectors = space;
  TraceCompileResult compiled = CompileTrace(*compile_reader, &binary, options);
  ASSERT_TRUE(compiled.ok) << compiled.error;
  ASSERT_GT(compiled.records, 1000);
  auto binary_reader = CompiledTraceReader::FromBuffer(std::move(binary));
  ASSERT_TRUE(binary_reader->ok()) << binary_reader->error();
  CompiledTraceReader* binary_raw = binary_reader.get();
  WithDurationHint binary_source(std::move(binary_reader), horizon);
  auto policy_b = MakePolicy(cfg);
  ExperimentResult binary_result = RunExperiment(binary_source, *policy_b, array);
  EXPECT_TRUE(binary_raw->ok()) << binary_raw->error();

  EXPECT_EQ(ascii_result.requests, binary_result.requests);
  ExpectSame("energy_j", ascii_result.energy_total.value(), binary_result.energy_total.value());
  ExpectSame("mean_response_ms", ascii_result.mean_response_ms.value(),
             binary_result.mean_response_ms.value());
  ExpectSame("p95_response_ms", ascii_result.p95_response_ms.value(),
             binary_result.p95_response_ms.value());
  ExpectSame("p99_response_ms", ascii_result.p99_response_ms.value(),
             binary_result.p99_response_ms.value());
  EXPECT_EQ(ascii_result.spin_ups, binary_result.spin_ups);
  EXPECT_EQ(ascii_result.spin_downs, binary_result.spin_downs);
  EXPECT_EQ(ascii_result.rpm_changes, binary_result.rpm_changes);
  EXPECT_EQ(ascii_result.migrations, binary_result.migrations);
}

TEST(TraceDifferential, BaselineMatchesAtFullPrecision) { RunDifferential(Scheme::kBase); }

TEST(TraceDifferential, HibernatorMatchesAtFullPrecision) {
  RunDifferential(Scheme::kHibernator);
}

TEST(TraceDifferential, MaidMatchesAtFullPrecision) { RunDifferential(Scheme::kMaid); }

}  // namespace
}  // namespace hib
