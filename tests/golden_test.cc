// Golden-regression suite: pins per-scheme total energy and mean/95p response
// on fixed-seed synthetic OLTP and Cello-like workloads against the numbers
// checked in under tests/golden/*.json.
//
// Any change to the disk model, queueing, layout, policies or the CR
// algorithm that shifts a result by more than 1 part in 1e9 fails here — on
// purpose.  If the shift is intended (a model fix, a new default), regenerate
// the goldens and commit them together with the change:
//
//   ./golden_test --update-golden          # rewrites tests/golden/*.json
//
// The golden directory is baked in at compile time (HIB_GOLDEN_DIR points at
// the source tree), so regeneration works from any build directory.
//
// Determinism notes: every case runs through RunAll (bit-identical to a
// sequential run regardless of thread count), the workloads are fixed-seed,
// and the goal is an absolute constant (no measured-base calibration step
// that could wobble).  The build uses strict ISO FP (no -ffast-math, no
// -march=native), so Debug / RelWithDebInfo / sanitizer builds all produce
// the same doubles and this suite runs under `ctest -j` and the tsan preset
// without per-configuration goldens.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/parallel.h"
#include "src/harness/schemes.h"
#include "src/trace/format.h"
#include "src/trace/morph.h"
#include "src/trace/synthetic.h"
#include "src/util/check.h"

namespace hib {
namespace {

bool g_update_golden = false;

std::string GoldenPath(const std::string& workload) {
  return std::string(HIB_GOLDEN_DIR) + "/" + workload + ".json";
}

// The six headline schemes of the paper's comparison figures.
const std::vector<Scheme>& GoldenSchemes() {
  static const std::vector<Scheme> kSchemes = {Scheme::kBase, Scheme::kTpm,  Scheme::kDrpm,
                                               Scheme::kPdc,  Scheme::kMaid, Scheme::kHibernator};
  return kSchemes;
}

// Small but non-trivial: 8 data disks, one simulated hour.  Big enough for
// every policy to make real decisions (epochs, spin-downs, migrations),
// small enough that the whole suite stays fast under TSan.
ArrayParams GoldenArray() {
  ArrayParams array;
  array.num_disks = 8;
  array.group_width = 4;
  array.disk = MakeUltrastar36Z15MultiSpeed(5);
  array.cache_lines = 512;
  array.seed = 12345;
  return array;
}

std::unique_ptr<WorkloadSource> MakeGoldenOltp(const ArrayParams& array) {
  OltpWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.peak_iops = 120.0;
  wp.trough_iops = 40.0;
  wp.seed = 424242;
  return std::make_unique<OltpWorkload>(wp);
}

std::unique_ptr<WorkloadSource> MakeGoldenCello(const ArrayParams& array) {
  CelloWorkloadParams wp;
  wp.address_space_sectors = array.DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.peak_iops = 60.0;
  wp.trough_iops = 4.0;
  wp.seed = 373737;
  return std::make_unique<CelloWorkload>(wp);
}

// The compiled-trace golden: a small OLTP slice compiled to the binary
// format ONCE (function-local static, shared by all six scheme runs), then
// remapped onto each scheme's data space.  Pins the whole trace pipeline —
// compiler, checksummed replay cursor, LBA remap morph — to the same 1e-9
// bar as the generator-driven cases.
std::unique_ptr<WorkloadSource> MakeGoldenTrace(const ArrayParams& array) {
  static const std::string compiled = [] {
    OltpWorkloadParams wp;
    wp.address_space_sectors = 1 << 22;  // 2 GB source space, remapped below
    wp.duration_ms = Hours(1.0);
    wp.peak_iops = 90.0;
    wp.trough_iops = 25.0;
    wp.seed = 616161;
    OltpWorkload source(wp);
    std::string bytes;
    TraceCompileResult result = CompileTrace(source, &bytes);
    HIB_CHECK(result.ok) << result.error;
    return bytes;
  }();
  auto reader = CompiledTraceReader::FromBuffer(compiled);
  HIB_CHECK(reader->ok()) << reader->error();
  return std::make_unique<LbaRemapMorph>(std::move(reader), array.DataSectors());
}

// Runs the comparison and flattens it to "<scheme>.<metric>" -> value.
std::map<std::string, double> RunGoldenCase(
    std::unique_ptr<WorkloadSource> (*make_workload)(const ArrayParams&)) {
  std::vector<ExperimentSpec> specs;
  for (Scheme scheme : GoldenSchemes()) {
    SchemeConfig cfg;
    cfg.scheme = scheme;
    cfg.goal_ms = Ms(25.0);  // absolute: no measured-base calibration
    cfg.epoch_ms = Minutes(15.0);
    cfg.migration_budget_extents = 1024;
    specs.push_back(SpecForScheme(cfg, GoldenArray(), make_workload));
  }
  std::vector<ExperimentResult> results = RunAll(specs);

  std::map<std::string, double> values;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string prefix = SchemeName(GoldenSchemes()[i]);
    const ExperimentResult& r = results[i];
    values[prefix + ".energy_j"] = r.energy_total.value();
    values[prefix + ".mean_response_ms"] = r.mean_response_ms.value();
    values[prefix + ".p95_response_ms"] = r.p95_response_ms.value();
  }
  return values;
}

void WriteGolden(const std::string& workload, const std::map<std::string, double>& values) {
  std::string path = GoldenPath(workload);
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "  \"" << key << "\": " << buf << (++i < values.size() ? "," : "") << "\n";
  }
  out << "}\n";
  std::printf("golden: wrote %zu keys to %s\n",  // simlint: allow(HIB003)
              values.size(), path.c_str());
}

// Flat one-key-per-line parser for the golden files (no JSON dependency).
std::map<std::string, double> ReadGolden(const std::string& workload) {
  std::map<std::string, double> values;
  std::ifstream in(GoldenPath(workload));
  std::string line;
  while (std::getline(in, line)) {
    std::size_t key_start = line.find('"');
    if (key_start == std::string::npos) {
      continue;
    }
    std::size_t key_end = line.find('"', key_start + 1);
    std::size_t colon = line.find(':', key_end);
    if (key_end == std::string::npos || colon == std::string::npos) {
      continue;
    }
    std::string key = line.substr(key_start + 1, key_end - key_start - 1);
    values[key] = std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return values;
}

void CheckAgainstGolden(const std::string& workload,
                        std::unique_ptr<WorkloadSource> (*make_workload)(const ArrayParams&)) {
  std::map<std::string, double> actual = RunGoldenCase(make_workload);
  if (g_update_golden) {
    WriteGolden(workload, actual);
    return;
  }
  std::map<std::string, double> golden = ReadGolden(workload);
  ASSERT_FALSE(golden.empty()) << "missing or empty golden file " << GoldenPath(workload)
                               << " — regenerate with: golden_test --update-golden";
  for (const auto& [key, value] : actual) {
    auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "no golden value for " << key
                                << " — regenerate with --update-golden";
    double expected = it->second;
    double scale = std::max(std::abs(expected), 1e-300);
    EXPECT_LE(std::abs(value - expected) / scale, 1e-9)
        << workload << " " << key << ": got " << value << ", golden " << expected;
  }
  EXPECT_EQ(golden.size(), actual.size())
      << "golden file " << GoldenPath(workload) << " has stale keys — regenerate";
}

TEST(Golden, OltpSchemeComparison) { CheckAgainstGolden("oltp", MakeGoldenOltp); }

TEST(Golden, CelloSchemeComparison) { CheckAgainstGolden("cello", MakeGoldenCello); }

TEST(Golden, CompiledTraceSchemeComparison) { CheckAgainstGolden("trace", MakeGoldenTrace); }

}  // namespace
}  // namespace hib

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      hib::g_update_golden = true;
      // Hide the flag from gtest's parser.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
