#include <gtest/gtest.h>

#include "src/hibernator/perf_guarantee.h"

namespace hib {
namespace {

PerfGuaranteeParams Params(Duration goal = Ms(20.0), double cap_requests = 1000.0) {
  PerfGuaranteeParams p;
  p.goal_ms = goal;
  p.credit_cap_requests = cap_requests;
  p.boost_margin_requests = 0.0;  // classic deficit-triggered boost for tests
  return p;
}

TEST(Guarantee, StartsAtZeroNotBoosting) {
  PerfGuarantee g(Params());
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), 0.0);
  EXPECT_FALSE(g.ShouldBoost());
}

TEST(Guarantee, FastRequestsEarnCredit) {
  PerfGuarantee g(Params(Ms(20.0)));
  g.Observe(Ms(10.0 * 100), 100);  // 100 requests at 10 ms each
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), (20.0 - 10.0) * 100);
  EXPECT_FALSE(g.ShouldBoost());
}

TEST(Guarantee, SlowRequestsSpendCredit) {
  PerfGuarantee g(Params(Ms(20.0)));
  g.Observe(Ms(10.0 * 100), 100);   // +1000
  g.Observe(Ms(30.0 * 50), 50);     // -500
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), 500.0);
}

TEST(Guarantee, DeficitTriggersBoost) {
  PerfGuarantee g(Params(Ms(20.0)));
  g.Observe(Ms(25.0 * 10), 10);  // immediately in the red
  EXPECT_TRUE(g.ShouldBoost());
}

TEST(Guarantee, CreditIsCapped) {
  PerfGuarantee g(Params(Ms(20.0), 100.0));  // cap = 2000 ms
  g.Observe(Ms(0.0), 1'000'000);             // would earn 20M ms uncapped
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), 2000.0);
  EXPECT_DOUBLE_EQ(g.cap_ms().value(), 2000.0);
}

TEST(Guarantee, CapBoundsDamage) {
  // After an arbitrarily long good period, one bad stretch bounded by the cap
  // still forces a boost.
  PerfGuarantee g(Params(Ms(20.0), 100.0));
  g.Observe(Ms(0.0), 1'000'000);
  g.Observe(Ms(40.0 * 101), 101);  // spends 2020 > cap
  EXPECT_TRUE(g.ShouldBoost());
}

TEST(Guarantee, ResumeRequiresHysteresis) {
  PerfGuaranteeParams p = Params(Ms(20.0), 100.0);
  p.resume_credit_requests = 50.0;  // resume at credit >= 1000 ms
  PerfGuarantee g(p);
  g.Observe(Ms(30.0 * 10), 10);  // -100: boost
  EXPECT_TRUE(g.ShouldBoost());
  g.Observe(Ms(10.0 * 20), 20);  // +200 => credit 100, below resume threshold
  EXPECT_FALSE(g.ShouldBoost());
  EXPECT_FALSE(g.CanResume());
  g.Observe(Ms(10.0 * 100), 100);  // well past 1000
  EXPECT_TRUE(g.CanResume());
}

TEST(Guarantee, ZeroCountObservationIgnored) {
  PerfGuarantee g(Params());
  g.Observe(Ms(123.0), 0);
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), 0.0);
}

TEST(Guarantee, SetGoalRescalesCap) {
  PerfGuarantee g(Params(Ms(20.0), 100.0));
  g.Observe(Ms(0.0), 1000);  // hit the 2000 ms cap
  g.set_goal_ms(Ms(10.0));   // cap drops to 1000 ms
  EXPECT_DOUBLE_EQ(g.cap_ms().value(), 1000.0);
  EXPECT_LE(g.credit_ms().value(), 1000.0);
  EXPECT_DOUBLE_EQ(g.goal_ms().value(), 10.0);
}

TEST(Guarantee, BoostMarginTriggersEarly) {
  PerfGuaranteeParams p = Params(Ms(20.0), 1000.0);
  p.boost_margin_requests = 10.0;  // boost below 200 ms of credit
  PerfGuarantee g(p);
  g.Observe(Ms(10.0 * 30), 30);  // +300 ms: above the margin
  EXPECT_FALSE(g.ShouldBoost());
  g.Observe(Ms(25.0 * 30), 30);  // -150 => credit 150, below the 200 ms margin
  EXPECT_TRUE(g.ShouldBoost());
  EXPECT_GT(g.credit_ms().value(), 0.0);  // at risk, not yet in deficit
}

TEST(Guarantee, ExactlyAtGoalIsNeutral) {
  PerfGuarantee g(Params(Ms(20.0)));
  g.Observe(Ms(20.0 * 500), 500);
  EXPECT_DOUBLE_EQ(g.credit_ms().value(), 0.0);
  EXPECT_FALSE(g.ShouldBoost());
}

}  // namespace
}  // namespace hib
