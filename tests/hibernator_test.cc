#include <gtest/gtest.h>

#include "src/array/array.h"
#include "src/hibernator/hibernator_policy.h"
#include "src/sim/simulator.h"
#include "src/trace/synthetic.h"

namespace hib {
namespace {

ArrayParams TestArray() {
  ArrayParams p;
  p.num_disks = 8;
  p.group_width = 4;
  p.disk = MakeUltrastar36Z15MultiSpeed(5);
  p.data_fraction = 0.1;
  p.cache_lines = 0;
  return p;
}

HibernatorParams TestParams(Duration goal_ms = Ms(25.0)) {
  HibernatorParams p;
  p.goal_ms = goal_ms;
  p.epoch_ms = Hours(0.25);  // 15-minute epochs keep the tests short
  return p;
}

// Replays a workload inline (pull-driven) against an array + policy.
void Replay(Simulator& sim, ArrayController& array, WorkloadSource& workload, SimTime until) {
  struct Pump : std::enable_shared_from_this<Pump> {
    Simulator* sim;
    ArrayController* array;
    WorkloadSource* workload;
    void Next() {
      TraceRecord rec;
      if (!workload->Next(&rec)) {
        return;
      }
      sim->ScheduleAt(rec.time, [self = shared_from_this(), rec] {
        self->array->Submit(rec);
        self->Next();
      });
    }
  };
  auto pump = std::make_shared<Pump>();
  pump->sim = &sim;
  pump->array = &array;
  pump->workload = &workload;
  pump->Next();
  sim.RunUntil(until);
}

TEST(Hibernator, SlowsDownUnderLightLoad) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorPolicy policy(TestParams(Ms(40.0)));
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.iops = 10.0;  // trivially light
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  EXPECT_GE(policy.epochs_completed(), 3);
  int slow_disks = 0;
  for (int i = 0; i < array.num_data_disks(); ++i) {
    if (array.disk(i).target_rpm() < 15000) {
      ++slow_disks;
    }
  }
  EXPECT_EQ(slow_disks, 8);  // light + loose goal: everything slows
}

TEST(Hibernator, StaysFastWhenGoalIsTight) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorPolicy policy(TestParams(Ms(7.0)));  // barely above service time
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.iops = 40.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).target_rpm(), 15000) << "disk " << i;
  }
}

TEST(Hibernator, EpochsTick) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorPolicy policy(TestParams());
  policy.Attach(&sim, &array);
  sim.RunUntil(Hours(1.0));
  EXPECT_EQ(policy.epochs_completed(), 4);  // 15-min epochs
}

TEST(Hibernator, MigrationMovesHotDataUnderSkew) {
  Simulator sim;
  ArrayParams ap = TestArray();
  ArrayController array(&sim, ap);
  HibernatorParams hp = TestParams(Ms(40.0));
  hp.migration_budget_extents = 64;
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  OltpWorkloadParams wp;
  wp.address_space_sectors = ap.DataSectors();
  wp.duration_ms = Hours(2.0);
  wp.peak_iops = 60.0;
  wp.trough_iops = 60.0;
  wp.zipf_theta = 1.1;  // strong skew
  OltpWorkload workload(wp);
  Replay(sim, array, workload, Hours(2.0));

  EXPECT_GT(policy.migrations_requested(), 0);
  EXPECT_GT(array.stats().migrations_completed, 0);
}

TEST(Hibernator, NoMigrationFlagHonored) {
  Simulator sim;
  ArrayParams ap = TestArray();
  ArrayController array(&sim, ap);
  HibernatorParams hp = TestParams(Ms(40.0));
  hp.enable_migration = false;
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  OltpWorkloadParams wp;
  wp.address_space_sectors = ap.DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.peak_iops = 60.0;
  wp.trough_iops = 60.0;
  OltpWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  EXPECT_EQ(policy.migrations_requested(), 0);
  EXPECT_EQ(array.stats().migrations_completed, 0);
}

TEST(Hibernator, BoostTriggersWhenGoalViolated) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  // Impossible goal (below service time) with nonzero load: the credit
  // account must go negative and trigger a boost almost immediately.
  HibernatorParams hp = TestParams(Ms(1.0));
  hp.credit_cap_requests = 100.0;
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(0.5);
  wp.iops = 30.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(0.5));

  EXPECT_GE(policy.boosts(), 1);
  EXPECT_TRUE(policy.boosted());  // goal unreachable: stays boosted
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).target_rpm(), 15000);
  }
}

TEST(Hibernator, NoBoostWhenDisabled) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorParams hp = TestParams(Ms(1.0));  // impossible goal
  hp.enable_boost = false;
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(0.5);
  wp.iops = 30.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(0.5));

  EXPECT_EQ(policy.boosts(), 0);
}

TEST(Hibernator, UtilizationThresholdVariantRuns) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorParams hp = TestParams(Ms(40.0));
  hp.use_cr = false;
  hp.enable_boost = false;  // isolate the speed-setting path
  HibernatorPolicy policy(hp);
  EXPECT_EQ(policy.Name(), "Hibernator-UT");
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.iops = 10.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  // The naive variant also slows down under light load.
  int slow = 0;
  for (int i = 0; i < array.num_data_disks(); ++i) {
    slow += array.disk(i).target_rpm() < 15000 ? 1 : 0;
  }
  EXPECT_GT(slow, 0);
}

TEST(Hibernator, GroupLevelsMatchDiskSpeeds) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorPolicy policy(TestParams(Ms(40.0)));
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.iops = 10.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  const DiskParams& dp = array.params().disk;
  const LayoutManager& layout = array.layout();
  for (int g = 0; g < layout.num_groups(); ++g) {
    int expected_rpm =
        dp.speeds[static_cast<std::size_t>(policy.group_levels()[static_cast<std::size_t>(g)])]
            .rpm;
    for (int slot = 0; slot < layout.group_width(); ++slot) {
      EXPECT_EQ(array.disk(layout.GroupDisk(g, slot)).target_rpm(), expected_rpm);
    }
  }
}

TEST(MaxElementwise, BasicAndEmpty) {
  using FreqVec = std::vector<Frequency>;
  EXPECT_EQ(MaxElementwise(FreqVec{PerMs(1.0), PerMs(5.0)}, FreqVec{PerMs(3.0), PerMs(2.0)}),
            (FreqVec{PerMs(3.0), PerMs(5.0)}));
  EXPECT_EQ(MaxElementwise(FreqVec{PerMs(1.0), PerMs(5.0)}, FreqVec{}),
            (FreqVec{PerMs(1.0), PerMs(5.0)}));
  EXPECT_EQ(MaxElementwise(FreqVec{PerMs(1.0)}, FreqVec{PerMs(3.0), PerMs(9.0)}),
            (FreqVec{PerMs(3.0)}));
}

TEST(Hibernator, HistoryPredictionRemembersYesterday) {
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorParams hp = TestParams(Ms(40.0));
  hp.use_history_prediction = true;
  hp.history_period_ms = Hours(0.5);  // "a day" = 2 epochs for the test
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  // Busy first epoch, silent afterwards: with history prediction the policy
  // keeps planning for the remembered load at the same phase, so the epoch
  // exactly one period after the busy one must not drop to the floor speed.
  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(0.25);  // only the first epoch sees traffic
  wp.iops = 80.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));
  EXPECT_GE(policy.epochs_completed(), 3);
  // The run completes; behavioural details are covered by the CR tests.  The
  // key check: prediction never makes the policy unstable (no crash, epochs
  // advance, disks hold a valid level).
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_GE(array.disk(i).target_rpm(), 3000);
    EXPECT_LE(array.disk(i).target_rpm(), 15000);
  }
}

TEST(Hibernator, BoostOverridesPendingStaggeredChanges) {
  // Regression: a boost arriving while an epoch's staggered slow-down is
  // still in flight must leave every disk targeting full speed.  (The old
  // code compared against the intended assignment and skipped groups whose
  // staggered change had not fired yet, stranding them slow.)
  Simulator sim;
  ArrayController array(&sim, TestArray());
  HibernatorParams hp = TestParams(Ms(1.0));  // impossible goal: boost will fire
  hp.stagger_ms = Seconds(300.0);     // changes 5 minutes apart
  HibernatorPolicy policy(hp);
  policy.Attach(&sim, &array);

  ConstantWorkloadParams wp;
  wp.address_space_sectors = array.params().DataSectors();
  wp.duration_ms = Hours(1.0);
  wp.iops = 30.0;
  ConstantWorkload workload(wp);
  Replay(sim, array, workload, Hours(1.0));

  ASSERT_TRUE(policy.boosted());
  for (int i = 0; i < array.num_data_disks(); ++i) {
    EXPECT_EQ(array.disk(i).target_rpm(), 15000) << "disk " << i;
  }
}

TEST(Hibernator, DescribeMentionsConfiguration) {
  HibernatorParams hp = TestParams(Ms(33.0));
  hp.enable_migration = false;
  HibernatorPolicy policy(hp);
  std::string desc = policy.Describe();
  EXPECT_NE(desc.find("33"), std::string::npos);
  EXPECT_NE(desc.find("no-migration"), std::string::npos);
}

}  // namespace
}  // namespace hib
