// Parameterized property tests: invariants swept across configuration axes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/array/array.h"
#include "src/array/layout.h"
#include "src/disk/disk.h"
#include "src/hibernator/cr_algorithm.h"
#include "src/hibernator/hibernator_policy.h"
#include "src/queueing/mg1.h"
#include "src/sim/simulator.h"
#include "src/trace/synthetic.h"
#include "src/util/random.h"

namespace hib {
namespace {

// ---------------------- energy conservation across every speed level -------

class DiskEnergyAtLevel : public ::testing::TestWithParam<int> {};

TEST_P(DiskEnergyAtLevel, LedgerBalancesAtEveryLevel) {
  int level = GetParam();
  Simulator sim;
  DiskParams params = MakeUltrastar36Z15MultiSpeed(5);
  Disk disk(&sim, params, 0, 11);
  disk.SetTargetRpm(params.speeds[static_cast<std::size_t>(level)].rpm);
  sim.RunUntil(Seconds(30.0));
  ASSERT_EQ(disk.current_level(), level);

  for (int i = 0; i < 40; ++i) {
    DiskRequest req;
    req.sector = (i * 977 * 4096) % params.TotalSectors();
    req.count = 16;
    req.is_write = (i % 3 == 0);
    disk.Submit(std::move(req));
  }
  sim.RunUntil(Seconds(600.0));

  DiskEnergy e = disk.MeteredEnergy();
  // Ledger closes: total time fully attributed.
  EXPECT_NEAR(e.TotalMs().value(), Seconds(600.0).value(), 1e-6);
  // Idle segments drew exactly the level's idle power.
  const SpeedLevel& lvl = params.speeds[static_cast<std::size_t>(level)];
  Joules idle_expected = EnergyOf(lvl.idle_power, e.idle_ms);
  // Idle before the transition was at 15k; allow that prefix.
  EXPECT_GE(e.idle + Joules(1e-9), idle_expected * 0.99);
  // Busy time drew active power of some level in range.
  EXPECT_LE(e.active, EnergyOf(params.speeds.back().active_power, e.active_ms) + Joules(1e-6));
  EXPECT_GE(e.active, EnergyOf(params.speeds.front().active_power, e.active_ms) - Joules(1e-6));
  EXPECT_EQ(disk.stats().requests_completed, 40);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, DiskEnergyAtLevel, ::testing::Range(0, 5));

// ------------------------- layout mapping invariants across widths ---------

class LayoutWidth : public ::testing::TestWithParam<int> {};

TEST_P(LayoutWidth, MappingInvariants) {
  int width = GetParam();
  LayoutParams lp;
  lp.num_disks = 8;
  lp.group_width = width;
  lp.num_extents = 512;
  lp.extent_sectors = 2048;
  lp.stripe_unit_sectors = 128;
  lp.disk_capacity_sectors = 5'000'000;
  LayoutManager layout(lp);

  for (std::int64_t e = 0; e < lp.num_extents; e += 37) {
    int group = layout.GroupOf(e);
    for (SectorAddr off = 0; off < lp.extent_sectors; off += lp.stripe_unit_sectors) {
      StripeTarget t = layout.Map(e, off);
      // Data disk always inside the owning group.
      EXPECT_GE(t.data_disk, group * width);
      EXPECT_LT(t.data_disk, (group + 1) * width);
      if (width == 1) {
        EXPECT_EQ(t.parity_disk, -1);
      } else {
        EXPECT_NE(t.parity_disk, t.data_disk);
        EXPECT_GE(t.parity_disk, group * width);
        EXPECT_LT(t.parity_disk, (group + 1) * width);
      }
      // Physical sectors inside the disk.
      EXPECT_GE(t.data_sector, 0);
      EXPECT_LT(t.data_sector, lp.disk_capacity_sectors);
    }
  }
}

TEST_P(LayoutWidth, MigrationRoundTripRestoresMapping) {
  int width = GetParam();
  LayoutParams lp;
  lp.num_disks = 8;
  lp.group_width = width;
  lp.num_extents = 64;
  lp.extent_sectors = 2048;
  lp.stripe_unit_sectors = 128;
  lp.disk_capacity_sectors = 5'000'000;
  LayoutManager layout(lp);
  int groups = layout.num_groups();
  if (groups < 2) {
    GTEST_SKIP() << "needs two groups";
  }
  StripeTarget before = layout.Map(0, 256);
  layout.SetGroup(0, 1);
  StripeTarget moved = layout.Map(0, 256);
  EXPECT_NE(moved.data_disk, before.data_disk);
  layout.SetGroup(0, 0);
  StripeTarget restored = layout.Map(0, 256);
  EXPECT_EQ(restored.data_disk, before.data_disk);
  EXPECT_EQ(restored.data_sector, before.data_sector);
}

INSTANTIATE_TEST_SUITE_P(Widths, LayoutWidth, ::testing::Values(1, 2, 4, 8));

// ---------------------------- queueing model orderings ---------------------

class Gg1Burstiness : public ::testing::TestWithParam<double> {};

TEST_P(Gg1Burstiness, BurstierNeverFaster) {
  double ca2 = GetParam();
  Duration s = Ms(10.0);
  double cs2 = 0.3;
  for (double rho : {0.1, 0.4, 0.8}) {
    Frequency lambda = rho / s;
    Duration bursty = Mg1Model::Gg1ResponseTime(lambda, s, cs2, ca2);
    Duration poisson = Mg1Model::Gg1ResponseTime(lambda, s, cs2, 1.0);
    if (ca2 >= 1.0) {
      EXPECT_GE(bursty, poisson - Ms(1e-12)) << "rho=" << rho;
    } else {
      EXPECT_LE(bursty, poisson + Ms(1e-12)) << "rho=" << rho;
    }
    // Poisson case collapses to M/G/1 exactly.
    EXPECT_NEAR(Mg1Model::Gg1ResponseTime(lambda, s, cs2, 1.0).value(),
                Mg1Model::ResponseTime(lambda, s, cs2).value(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(ArrivalScv, Gg1Burstiness,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 8.0, 40.0));

// --------------------------- scramble bijectivity sweep --------------------

class ScrambleSpace : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScrambleSpace, Bijective) {
  std::int64_t n = GetParam();
  std::set<std::int64_t> seen;
  for (std::int64_t r = 0; r < n; ++r) {
    seen.insert(ScrambleRank(r, n));
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScrambleSpace,
                         ::testing::Values(1, 3, 64, 1000, 65536, 99991));

// ----------------- CR: goal multiplier sweep on a live simulation ----------

class HibernatorGoalSweep : public ::testing::TestWithParam<double> {};

TEST_P(HibernatorGoalSweep, CumulativeMeanStaysNearGoal) {
  double multiplier = GetParam();
  Simulator sim;
  ArrayParams ap;
  ap.num_disks = 8;
  ap.group_width = 4;
  ap.disk = MakeUltrastar36Z15MultiSpeed(5);
  ap.data_fraction = 0.05;
  ap.cache_lines = 0;
  ArrayController array(&sim, ap);

  Duration base_response = Ms(7.0);  // approximate; the goal just scales with it
  HibernatorParams hp;
  hp.goal_ms = multiplier * base_response;
  hp.epoch_ms = Hours(0.5);
  HibernatorPolicy* policy = new HibernatorPolicy(hp);  // owned below
  std::unique_ptr<PowerPolicy> owner(policy);
  policy->Attach(&sim, &array);

  OltpWorkloadParams wp;
  wp.address_space_sectors = ap.DataSectors();
  wp.duration_ms = Hours(3.0);
  wp.peak_iops = 60.0;
  wp.trough_iops = 30.0;
  OltpWorkload workload(wp);
  TraceRecord rec;
  std::function<void()> next = [&] {
    TraceRecord r;
    if (workload.Next(&r)) {
      sim.ScheduleAt(r.time, [&, r] {
        array.Submit(r);
        next();
      });
    }
  };
  next();
  sim.RunUntil(Hours(3.0) + Seconds(30.0));

  // The credit account bounds the cumulative mean near the goal (the bank
  // starts empty, so overspending is impossible; small overshoot can persist
  // only inside a not-yet-repaid boost window).
  EXPECT_LE(array.stats().CumulativeMeanResponse(), hp.goal_ms * 1.10)
      << "multiplier=" << multiplier;
}

INSTANTIATE_TEST_SUITE_P(Multipliers, HibernatorGoalSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 4.0));

}  // namespace
}  // namespace hib
