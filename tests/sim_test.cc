#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

namespace hib {
namespace {

// --------------------------------------------------------- EventQueue ------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(Ms(30.0), [&] { fired.push_back(3); });
  q.Schedule(Ms(10.0), [&] { fired.push_back(1); });
  q.Schedule(Ms(20.0), [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(Ms(5.0), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().callback();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(Ms(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(Ms(1.0), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  EventId id = q.Schedule(Ms(1.0), [] {});
  q.PopNext().callback();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(Ms(1.0), [&] { fired.push_back(1); });
  EventId mid = q.Schedule(Ms(2.0), [&] { fired.push_back(2); });
  q.Schedule(Ms(3.0), [&] { fired.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  EventId head = q.Schedule(Ms(1.0), [] {});
  q.Schedule(Ms(2.0), [] {});
  q.Cancel(head);
  EXPECT_DOUBLE_EQ(q.NextTime().value(), 2.0);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  EventId a = q.Schedule(Ms(1.0), [] {});
  q.Schedule(Ms(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.PopNext();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdCannotCancelSlotReuse) {
  EventQueue q;
  EventId a = q.Schedule(Ms(5.0), [] {});
  ASSERT_TRUE(q.Cancel(a));
  // b reuses a's arena slot but carries a fresh generation; a's id is dead.
  bool b_fired = false;
  EventId b = q.Schedule(Ms(6.0), [&] { b_fired = true; });
  EXPECT_FALSE(q.Cancel(a));
  ASSERT_EQ(q.size(), 1u);
  auto fired = q.PopNext();
  EXPECT_EQ(fired.id, b);
  fired.callback();
  EXPECT_TRUE(b_fired);
}

TEST(EventQueue, ManyEqualTimestampsFireInInsertionOrder) {
  // Large batch with only a handful of distinct timestamps: drives the whole
  // backlog through the two-tier refill/sort machinery and checks that ties
  // still resolve by insertion order end to end.
  EventQueue q;
  const int kEvents = 6000;
  std::vector<int> fired;
  fired.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    q.Schedule(Ms(i % 5), [i, &fired] { fired.push_back(i); });
  }
  SimTime now;
  while (!q.empty()) {
    q.FireNext(&now);
  }
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    int prev_time = fired[i - 1] % 5;
    int cur_time = fired[i] % 5;
    ASSERT_LE(prev_time, cur_time) << "timestamp order broken at pop " << i;
    if (prev_time == cur_time) {
      ASSERT_LT(fired[i - 1], fired[i]) << "FIFO tie-break broken at pop " << i;
    }
  }
}

// Differential test: the queue against a naive reference model (an unsorted
// vector popped by linear min-scan), over ~100k randomized Schedule / Cancel /
// PopNext ops.  Every pop must agree on time and payload; every cancel must
// agree on its return value.  Batched phases push traffic through refills,
// spills, the radix sort, and the stale-entry purge.
TEST(EventQueue, DifferentialAgainstNaiveReference) {
  struct RefEvent {
    SimTime time;
    std::uint64_t seq;
    int value;
    EventId id;
  };
  EventQueue q;
  std::vector<RefEvent> ref;
  std::vector<int> got;
  std::uint64_t next_seq = 1;
  Pcg32 rng(20260806);

  auto schedule = [&](SimTime t) {
    int value = static_cast<int>(next_seq);
    EventId id = q.Schedule(t, [value, &got] { got.push_back(value); });
    ref.push_back(RefEvent{t, next_seq++, value, id});
  };
  auto ref_min = [&]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < ref.size(); ++i) {
      if (ref[i].time < ref[best].time ||
          (ref[i].time == ref[best].time && ref[i].seq < ref[best].seq)) {
        best = i;
      }
    }
    return best;
  };
  auto pop_both = [&]() {
    ASSERT_FALSE(q.empty());
    std::size_t best = ref_min();
    got.clear();
    auto fired = q.PopNext();
    fired.callback();
    ASSERT_EQ(fired.time, ref[best].time);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0], ref[best].value);
    ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(best));
  };

  // Phase 1: random interleaving at a modest live depth.
  for (int op = 0; op < 60000; ++op) {
    double r = rng.NextDouble();
    if (ref.empty() || r < 0.42) {
      // Quantized times produce frequent exact ties.
      schedule(Ms(std::floor(rng.NextDouble() * 512.0)));
    } else if (r < 0.55) {
      std::size_t pick =
          static_cast<std::size_t>(rng.NextDouble() * static_cast<double>(ref.size()));
      pick = std::min(pick, ref.size() - 1);
      ASSERT_TRUE(q.Cancel(ref[pick].id));
      ASSERT_FALSE(q.Cancel(ref[pick].id));  // second cancel must fail
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      pop_both();
    }
    ASSERT_EQ(q.size(), ref.size());
  }

  // Phase 2: a burst larger than any internal batch cap, a third cancelled,
  // then a full drain.
  for (int i = 0; i < 6000; ++i) {
    schedule(Ms(std::floor(rng.NextDouble() * 64.0)));
  }
  for (int i = 0; i < 2000; ++i) {
    std::size_t pick =
        static_cast<std::size_t>(rng.NextDouble() * static_cast<double>(ref.size()));
    pick = std::min(pick, ref.size() - 1);
    ASSERT_TRUE(q.Cancel(ref[pick].id));
    ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  while (!ref.empty()) {
    pop_both();
  }
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------- Simulator ------

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleIn(Ms(10.0), [&] { seen.push_back(sim.Now()); });
  sim.ScheduleIn(Ms(5.0), [&] { seen.push_back(sim.Now()); });
  sim.RunUntil();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0].value(), 5.0);
  EXPECT_DOUBLE_EQ(seen[1].value(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(Ms(10.0), [&] { ++fired; });
  sim.ScheduleIn(Ms(20.0), [&] { ++fired; });
  sim.RunUntil(Ms(15.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now().value(), 15.0);
  sim.RunUntil(Ms(25.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleIn(Ms(1.0), recurse);
    }
  };
  sim.ScheduleIn(Ms(1.0), recurse);
  sim.RunUntil(Ms(100.0));
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.ScheduleIn(Ms(10.0), [] {});
  sim.RunUntil(Ms(10.0));
  bool fired = false;
  sim.ScheduleIn(Ms(-5.0), [&] { fired = true; });
  sim.RunUntil(Ms(10.0));
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.Now().value(), 10.0);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.ScheduleIn(Ms(10.0), [] {});
  sim.RunUntil();
  SimTime fired_at = Ms(-1.0);
  sim.ScheduleAt(Ms(3.0), [&] { fired_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(fired_at.value(), 10.0);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleIn(Ms(5.0), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil(Ms(10.0));
  EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.SchedulePeriodic(Ms(10.0), Ms(10.0), [&] { times.push_back(sim.Now()); });
  sim.RunUntil(Ms(45.0));
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0].value(), 10.0);
  EXPECT_DOUBLE_EQ(times[3].value(), 40.0);
}

TEST(Simulator, StopPeriodicHalts) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle = sim.SchedulePeriodic(Ms(1.0), Ms(1.0), [&] { ++count; });
  sim.ScheduleAt(Ms(5.5), [&] { sim.StopPeriodic(handle); });
  sim.RunUntil(Ms(100.0));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicCanStopItself) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle{};
  handle = sim.SchedulePeriodic(Ms(1.0), Ms(1.0), [&] {
    if (++count == 3) {
      sim.StopPeriodic(handle);
    }
  });
  sim.RunUntil(Ms(100.0));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, MultiplePeriodicsIndependent) {
  Simulator sim;
  int fast = 0;
  int slow = 0;
  sim.SchedulePeriodic(Ms(1.0), Ms(1.0), [&] { ++fast; });
  sim.SchedulePeriodic(Ms(5.0), Ms(5.0), [&] { ++slow; });
  sim.RunUntil(Ms(20.5));
  EXPECT_EQ(fast, 20);
  EXPECT_EQ(slow, 4);
}

TEST(Simulator, StepFiresOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(Ms(1.0), [&] { ++fired; });
  sim.ScheduleIn(Ms(2.0), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockToBoundEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(Ms(1234.0));
  EXPECT_DOUBLE_EQ(sim.Now().value(), 1234.0);
}

TEST(Simulator, ReturnsEventsFiredCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleIn(Ms(i), [] {});
  }
  EXPECT_EQ(sim.RunUntil(Ms(100.0)), 7u);
}

}  // namespace
}  // namespace hib
