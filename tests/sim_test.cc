#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace hib {
namespace {

// --------------------------------------------------------- EventQueue ------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30.0, [&] { fired.push_back(3); });
  q.Schedule(10.0, [&] { fired.push_back(1); });
  q.Schedule(20.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().callback();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [] {});
  q.PopNext().callback();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(1.0, [&] { fired.push_back(1); });
  EventId mid = q.Schedule(2.0, [&] { fired.push_back(2); });
  q.Schedule(3.0, [&] { fired.push_back(3); });
  q.Cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  EventId head = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  q.Cancel(head);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  EventId a = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.PopNext();
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------- Simulator ------

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleIn(10.0, [&] { seen.push_back(sim.Now()); });
  sim.ScheduleIn(5.0, [&] { seen.push_back(sim.Now()); });
  sim.RunUntil();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 5.0);
  EXPECT_DOUBLE_EQ(seen[1], 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(10.0, [&] { ++fired; });
  sim.ScheduleIn(20.0, [&] { ++fired; });
  sim.RunUntil(15.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 15.0);
  sim.RunUntil(25.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleIn(1.0, recurse);
    }
  };
  sim.ScheduleIn(1.0, recurse);
  sim.RunUntil(100.0);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.ScheduleIn(10.0, [] {});
  sim.RunUntil(10.0);
  bool fired = false;
  sim.ScheduleIn(-5.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.ScheduleIn(10.0, [] {});
  sim.RunUntil();
  SimTime fired_at = -1.0;
  sim.ScheduleAt(3.0, [&] { fired_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleIn(5.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil(10.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.SchedulePeriodic(10.0, 10.0, [&] { times.push_back(sim.Now()); });
  sim.RunUntil(45.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_DOUBLE_EQ(times[3], 40.0);
}

TEST(Simulator, StopPeriodicHalts) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle = sim.SchedulePeriodic(1.0, 1.0, [&] { ++count; });
  sim.ScheduleAt(5.5, [&] { sim.StopPeriodic(handle); });
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicCanStopItself) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle{};
  handle = sim.SchedulePeriodic(1.0, 1.0, [&] {
    if (++count == 3) {
      sim.StopPeriodic(handle);
    }
  });
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, MultiplePeriodicsIndependent) {
  Simulator sim;
  int fast = 0;
  int slow = 0;
  sim.SchedulePeriodic(1.0, 1.0, [&] { ++fast; });
  sim.SchedulePeriodic(5.0, 5.0, [&] { ++slow; });
  sim.RunUntil(20.5);
  EXPECT_EQ(fast, 20);
  EXPECT_EQ(slow, 4);
}

TEST(Simulator, StepFiresOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(1.0, [&] { ++fired; });
  sim.ScheduleIn(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockToBoundEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(1234.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 1234.0);
}

TEST(Simulator, ReturnsEventsFiredCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleIn(static_cast<double>(i), [] {});
  }
  EXPECT_EQ(sim.RunUntil(100.0), 7u);
}

}  // namespace
}  // namespace hib
