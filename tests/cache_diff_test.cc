// Differential test: the flat open-addressing LruCache against a naive
// list+map reference (the pre-refactor implementation, kept here verbatim in
// spirit).  Randomized interleavings of Lookup/Insert/Invalidate must agree
// on every return value, every hit/miss counter, and the full LRU order at
// every step — that is what "same semantics" means for the rewrite.
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/array/cache.h"
#include "src/util/random.h"

namespace hib {
namespace {

// The old implementation: std::list recency order + unordered_map index.
class ReferenceLruCache {
 public:
  ReferenceLruCache(std::size_t lines, SectorCount line_sectors)
      : capacity_(lines), line_sectors_(line_sectors > 0 ? line_sectors : 1) {}

  bool Lookup(SectorAddr lba, SectorCount count) {
    if (capacity_ == 0 || count <= 0) {
      ++misses_;
      return false;
    }
    std::int64_t first = lba / line_sectors_;
    std::int64_t last = (lba + count - 1) / line_sectors_;
    for (std::int64_t line = first; line <= last; ++line) {
      if (map_.find(line) == map_.end()) {
        ++misses_;
        return false;
      }
    }
    for (std::int64_t line = first; line <= last; ++line) {
      auto it = map_.find(line);
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    ++hits_;
    return true;
  }

  void Insert(SectorAddr lba, SectorCount count) {
    if (capacity_ == 0 || count <= 0) {
      return;
    }
    std::int64_t first = lba / line_sectors_;
    std::int64_t last = (lba + count - 1) / line_sectors_;
    for (std::int64_t line = first; line <= last; ++line) {
      auto it = map_.find(line);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        continue;
      }
      while (lru_.size() >= capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(line);
      map_[line] = lru_.begin();
    }
  }

  void Invalidate(SectorAddr lba, SectorCount count) {
    if (capacity_ == 0 || count <= 0) {
      return;
    }
    std::int64_t first = lba / line_sectors_;
    std::int64_t last = (lba + count - 1) / line_sectors_;
    for (std::int64_t line = first; line <= last; ++line) {
      auto it = map_.find(line);
      if (it != map_.end()) {
        lru_.erase(it->second);
        map_.erase(it);
      }
    }
  }

  std::size_t size() const { return lru_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

  // MRU-first recency order.
  std::vector<std::int64_t> Order() const {
    return std::vector<std::int64_t>(lru_.begin(), lru_.end());
  }

 private:
  std::size_t capacity_;
  SectorCount line_sectors_;
  std::list<std::int64_t> lru_;
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

// Replays one random op stream against both implementations, checking
// observable state after every operation.  The LRU *order* itself is not
// part of LruCache's public API, but size/hits/misses after arbitrary
// interleavings can only stay equal forever if eviction picks the same
// victims — so the counters are a complete probe given enough ops.
void RunDifferential(std::size_t capacity, SectorCount line_sectors, SectorAddr space,
                     int ops, std::uint64_t seed) {
  LruCache flat(capacity, line_sectors);
  ReferenceLruCache ref(capacity, line_sectors);
  Pcg32 rng(seed);
  for (int i = 0; i < ops; ++i) {
    SectorAddr lba = rng.NextInRange(0, space - 1);
    SectorCount count = static_cast<SectorCount>(rng.NextInRange(1, 3 * line_sectors));
    if (lba + count > space) {
      count = static_cast<SectorCount>(space - lba);
    }
    switch (rng.NextInRange(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3:  // 40% lookups
        ASSERT_EQ(flat.Lookup(lba, count), ref.Lookup(lba, count)) << "op " << i;
        break;
      case 4:
      case 5:
      case 6:
      case 7:  // 40% inserts
        flat.Insert(lba, count);
        ref.Insert(lba, count);
        break;
      default:  // 20% invalidates
        flat.Invalidate(lba, count);
        ref.Invalidate(lba, count);
        break;
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << i;
    ASSERT_EQ(flat.hits(), ref.hits()) << "op " << i;
    ASSERT_EQ(flat.misses(), ref.misses()) << "op " << i;
  }
}

TEST(CacheDiffTest, SmallCacheHeavyEviction) {
  RunDifferential(/*capacity=*/8, /*line_sectors=*/64, /*space=*/64 * 64, /*ops=*/20000,
                  /*seed=*/1);
}

TEST(CacheDiffTest, MediumCacheMixedOps) {
  RunDifferential(/*capacity=*/128, /*line_sectors=*/128, /*space=*/128 * 512, /*ops=*/20000,
                  /*seed=*/2);
}

TEST(CacheDiffTest, CapacityOne) {
  RunDifferential(/*capacity=*/1, /*line_sectors=*/8, /*space=*/8 * 32, /*ops=*/5000,
                  /*seed=*/3);
}

TEST(CacheDiffTest, TombstoneChurn) {
  // Invalidate-heavy stream on a small space: forces many tombstones and
  // repeated Compact() cycles.
  LruCache flat(32, 16);
  ReferenceLruCache ref(32, 16);
  Pcg32 rng(4);
  for (int i = 0; i < 50000; ++i) {
    SectorAddr lba = rng.NextInRange(0, 63) * 16;
    if (rng.NextDouble() < 0.5) {
      flat.Insert(lba, 16);
      ref.Insert(lba, 16);
    } else {
      flat.Invalidate(lba, 16);
      ref.Invalidate(lba, 16);
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << i;
  }
  // Exhaustive final probe: every line's residency must agree.
  for (SectorAddr lba = 0; lba < 64 * 16; lba += 16) {
    ASSERT_EQ(flat.Lookup(lba, 16), ref.Lookup(lba, 16)) << "lba " << lba;
  }
  ASSERT_EQ(flat.hits(), ref.hits());
  ASSERT_EQ(flat.misses(), ref.misses());
}

TEST(CacheDiffTest, MultiLineSpansExactOrder) {
  // Multi-line lookups/inserts touch lines first->last; the final MRU must be
  // the *last* line of the span in both implementations.  Probed by filling
  // to capacity and checking eviction victims via counters.
  RunDifferential(/*capacity=*/16, /*line_sectors=*/32, /*space=*/32 * 64, /*ops=*/30000,
                  /*seed=*/5);
}

TEST(CacheDiffTest, CompactionMidMultiLineInsert) {
  // Forces Compact() to run *between* the lines of one multi-line Insert:
  // fill to capacity, tombstone every line, then insert a 3-line span.  The
  // first line's InsertFresh sees tombstones over the 1/4-table threshold and
  // rebuilds the table (walking the recency list, which at that moment holds
  // only that first line); lines two and three of the same call must land
  // correctly in the rebuilt table.  capacity 8 / 16-sector lines -> 16
  // slots, so the threshold is 4 and 7+ graves trigger deterministically,
  // whether or not the probe path happened to recycle one.
  LruCache flat(8, 16);
  ReferenceLruCache ref(8, 16);
  for (std::int64_t line = 0; line < 8; ++line) {
    flat.Insert(line * 16, 16);
    ref.Insert(line * 16, 16);
  }
  flat.Invalidate(0, 8 * 16);
  ref.Invalidate(0, 8 * 16);
  ASSERT_EQ(flat.size(), 0u);

  flat.Insert(8 * 16, 3 * 16);  // lines 8,9,10: compaction fires after line 8
  ref.Insert(8 * 16, 3 * 16);
  ASSERT_EQ(flat.size(), ref.size());
  for (std::int64_t line = 0; line < 12; ++line) {
    ASSERT_EQ(flat.Lookup(line * 16, 16), ref.Lookup(line * 16, 16)) << "line " << line;
  }
  ASSERT_EQ(flat.hits(), ref.hits());
  ASSERT_EQ(flat.misses(), ref.misses());
}

TEST(CacheDiffTest, EraseReinsertSameKeyRecyclesTombstone) {
  // Invalidate-then-reinsert of the *same* line must recycle the grave the
  // erase left on that line's own probe path.  If it did not, this loop
  // would fill the never-growing table with tombstones and FindSlot's probe
  // would stop terminating — so surviving 10k churns with exact reference
  // agreement is the behavioral pin on grave reuse.  A bystander line rides
  // along to prove churn does not perturb its residency or the LRU order.
  LruCache flat(8, 16);
  ReferenceLruCache ref(8, 16);
  flat.Insert(7 * 16, 16);  // bystander
  ref.Insert(7 * 16, 16);
  for (int i = 0; i < 10000; ++i) {
    flat.Invalidate(0, 16);
    ref.Invalidate(0, 16);
    flat.Insert(0, 16);
    ref.Insert(0, 16);
    ASSERT_EQ(flat.size(), ref.size()) << "op " << i;
  }
  ASSERT_TRUE(flat.Lookup(0, 16));
  ASSERT_TRUE(ref.Lookup(0, 16));
  ASSERT_TRUE(flat.Lookup(7 * 16, 16));
  ASSERT_TRUE(ref.Lookup(7 * 16, 16));
  // The bystander was just touched: filling the remaining capacity must
  // evict line 0 first in both implementations (recency order survived).
  for (std::int64_t line = 1; line < 8; ++line) {
    flat.Insert(line * 16, 16);
    ref.Insert(line * 16, 16);
  }
  for (std::int64_t line = 0; line < 8; ++line) {
    ASSERT_EQ(flat.Lookup(line * 16, 16), ref.Lookup(line * 16, 16)) << "line " << line;
  }
  ASSERT_EQ(flat.hits(), ref.hits());
  ASSERT_EQ(flat.misses(), ref.misses());
}

TEST(CacheDiffTest, ZeroCapacityAgrees) {
  LruCache flat(0, 64);
  ReferenceLruCache ref(0, 64);
  EXPECT_EQ(flat.Lookup(0, 8), ref.Lookup(0, 8));
  flat.Insert(0, 8);
  ref.Insert(0, 8);
  flat.Invalidate(0, 8);
  ref.Invalidate(0, 8);
  EXPECT_EQ(flat.size(), ref.size());
  EXPECT_EQ(flat.misses(), ref.misses());
}

}  // namespace
}  // namespace hib
