#!/usr/bin/env python3
"""simlint: repo-specific lint rules for the Hibernator simulator.

Enforces conventions that generic tools (clang-tidy, clang-format) cannot
express because they need repo-level knowledge:

  HIB001 include-guard   Headers must use the guard derived from their path:
                         src/disk/disk.h -> HIBERNATOR_SRC_DISK_DISK_H_.
  HIB002 iostream-header No `#include <iostream>` in headers; only the
                         diagnostics sinks src/util/log.h and src/util/check.h
                         may pull it in (headers are included everywhere, and
                         <iostream> injects a static initializer per TU).
  HIB003 raw-io          No std::cout / std::cerr / printf-family calls in
                         library or test code outside src/util/log.* and
                         src/util/table.* (and the fatal-check sink
                         src/util/check.h).  All simulator output must go
                         through the leveled logger or the table renderer so
                         runs stay machine-parseable.  CLI entry points under
                         bench/ and examples/ are exempt: their stdout is the
                         deliverable.
  HIB004 units-alias     No raw `double`/`float` declarations whose name says
                         they hold a unit (`*_ms`, `*_joules`, `*_watts`):
                         use the SimTime / Duration / Joules / Watts aliases
                         from src/util/units.h.  Rates like `lambda_per_ms`
                         are exempt.
  HIB005 bare-assert     No bare `assert()`: use HIB_CHECK / HIB_DCHECK from
                         src/util/check.h, which survive NDEBUG policy
                         decisions explicitly and print operand values.
  HIB006 static-mutable  No mutable static-duration variables in library code
                         (file-scope statics or function-local statics).
                         Hidden mutable globals break run-to-run determinism
                         and make parallel experiment runs (harness/parallel.h)
                         racy.  `const`/`constexpr`/`constinit`, and
                         synchronization primitives (std::atomic, std::mutex,
                         std::once_flag) are exempt, as are tests/bench/
                         examples, which own their process.
  HIB007 raw-unit-fn     Functions whose name says they deal in a physical
                         quantity (power/energy/latency/duration/response, or
                         ending in Time/Ms) must not take or return raw
                         `double`/`float`: use the Quantity aliases from
                         src/util/units.h (Watts, Joules, Duration, ...).
                         Library code only; tests/bench/examples are exempt.
  HIB008 value-escape    `.value()` unwraps a Quantity to a raw double and is
                         reserved for the I/O and statistics boundaries
                         (src/util/units.h, stats.h, table.*, log.*, and the
                         trace layer's parse/generate edges).  Anywhere else
                         in library code it defeats the dimensional checking.
  HIB009 hand-conversion Unit-suffixed identifiers combined with bare
                         conversion literals (`* 1000`, `/ 3600.0`, ...) are
                         hand-rolled unit conversions; go through the units.h
                         factories/accessors (Seconds, Hours, ToSeconds, ...)
                         so the ms<->s scale lives in exactly one place.
  HIB010 raw-output      The C output primitives HIB003's printf/cout patterns
                         miss (fputs, fputc, putchar, putc, fwrite, perror)
                         are raw output all the same; together the two rules
                         keep every byte of library output flowing through
                         util/log, util/table, or the src/obs/ exporters.

Usage:
  tools/simlint.py [paths...]      # files or directories; default: src tests bench examples
  tools/simlint.py --list-rules

Suppress a finding by appending `// simlint: allow(HIB00N)` to the line.
Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
SKIP_DIR_PATTERNS = re.compile(r"^(build.*|\.git|\.cache|__pycache__|Testing)$")

ALLOW_RE = re.compile(r"//\s*simlint:\s*allow\(([A-Z0-9, ]+)\)")

# Files allowed to include <iostream> from a header / write to stdio directly.
IOSTREAM_HEADER_ALLOWED = {"src/util/log.h", "src/util/check.h"}
RAW_IO_ALLOWED_PREFIXES = ("src/util/log.", "src/util/table.", "src/util/check.",
                           "bench/", "examples/")

RAW_IO_RE = re.compile(r"std::(cout|cerr|clog)\b|\b(?:f|s)?printf\s*\(|\bputs\s*\(")
UNITS_RE = re.compile(r"\b(double|float)\s+([A-Za-z_][A-Za-z0-9_]*_(?:ms|joules|watts)_?)\b")
UNITS_EXEMPT_RE = re.compile(r"per_ms")
ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
# A `static` declarator that ends in a variable (name then = ; { or [), never a
# function (name then `(`): the type part cannot cross parentheses.
STATIC_DECL_RE = re.compile(
    r"\bstatic\s+[A-Za-z_][\w:<>,\s\*&]*?[\s\*&]([A-Za-z_]\w*)\s*(?:=|;|\{|\[)")
STATIC_EXEMPT_RE = re.compile(
    r"\b(?:const|constexpr|constinit|thread_local)\b"
    r"|std::(?:atomic|mutex|shared_mutex|recursive_mutex|once_flag|condition_variable)\b")
# Processes that own their stdout also own their statics.
STATIC_MUT_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/")
# Physical-quantity naming for HIB007: the function name itself announces a
# dimensioned result/operand.
UNIT_FN_NAME_RE = re.compile(
    r"(?i:power|energy|latency|duration|response)|(?:Time|Ms)$")
# ...unless the name also says the result is a pure number (a scale, ratio,
# utilization, count) — those legitimately traffic in raw doubles.
DIMENSIONLESS_NAME_RE = re.compile(r"(?i:scale|ratio|fraction|factor|util|count|scv|rho)")
# `double Foo(` / `float Foo(` — a raw-double return on a declaration.
RAW_RETURN_RE = re.compile(r"\b(double|float)\s+([A-Za-z_]\w*)\s*\(")
# `Foo(... double bar ...)` — a raw-double parameter declaration (the
# `double <identifier>` shape cannot appear in a call's argument list).
FN_WITH_PARAMS_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(([^()]*)\)")
RAW_PARAM_RE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)")
# units.h itself hosts the double->Quantity factories (Ms, Watts, PerMs, ...).
UNIT_FN_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/", "src/util/units.h")

# HIB008: the sanctioned .value() boundaries.  units.h defines it; stats and
# table consume quantities into plain-double accumulators/cells; the logger
# prints; the trace layer parses raw files and feeds the PRNG.
VALUE_ESCAPE_RE = re.compile(r"\.\s*value\s*\(\s*\)")
# src/obs/ is a sanctioned boundary: the exporters serialize Quantity values
# into trace/metrics JSON, which is exactly where the dimension leaves C++.
VALUE_ALLOWED_PREFIXES = ("src/util/units.h", "src/util/stats.", "src/util/table.",
                          "src/util/log.", "src/trace/", "src/obs/",
                          "tests/", "bench/", "examples/")

# HIB009: a unit-suffixed identifier multiplied/divided by a bare conversion
# constant, in either order.
CONVERSION_LITERAL = r"(?:1000(?:\.0+)?|3600(?:\.0+)?|60(?:\.0+)?|1e-?3|3\.6e6|0\.001)"
UNIT_SUFFIX_NAME = r"[A-Za-z_]\w*_(?:ms|sec|seconds|hours|joules|watts|rpm)"
HAND_CONVERSION_RE = re.compile(
    r"\b" + UNIT_SUFFIX_NAME + r"\b\s*[*/]\s*" + CONVERSION_LITERAL + r"(?![\w.])"
    r"|\b" + CONVERSION_LITERAL + r"\s*[*/]\s*" + UNIT_SUFFIX_NAME + r"\b")
HAND_CONVERSION_EXEMPT_PREFIXES = ("src/util/units.h", "tests/", "bench/", "examples/")

# HIB010: output primitives HIB003's patterns do not reach.  `putchar` must
# precede `putc` in the alternation; `fputs` never matches HIB003's `\bputs`
# (no word boundary after the `f`).  src/obs/ exporters write the trace and
# metrics files, so they own their output stream.
RAW_OUTPUT_PRIM_RE = re.compile(
    r"\b(?:std::)?(?:fputs|fputc|putchar|putc|fwrite|perror)\s*\(")
RAW_OUTPUT_ALLOWED_PREFIXES = RAW_IO_ALLOWED_PREFIXES + ("src/obs/",)
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

RULES = {
    "HIB001": "include guard must be HIBERNATOR_<PATH>_H_",
    "HIB002": "#include <iostream> in a header (only src/util/log.h, src/util/check.h)",
    "HIB003": "raw stdio outside src/util/log.* / src/util/table.*",
    "HIB004": "raw double/float where a units.h alias (Duration/Joules/Watts) is meant",
    "HIB005": "bare assert(); use HIB_CHECK / HIB_DCHECK from src/util/check.h",
    "HIB006": "mutable static-duration variable in library code",
    "HIB007": "raw double param/return on a power/energy/latency/duration function",
    "HIB008": ".value() escape outside the sanctioned I/O and stats boundaries",
    "HIB009": "hand-rolled unit conversion; use the units.h factories/accessors",
    "HIB010": "raw output primitive (fputs/fwrite/perror/...) outside the output boundaries",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel_path(path):
    abspath = os.path.abspath(path)
    if abspath.startswith(REPO_ROOT + os.sep):
        return os.path.relpath(abspath, REPO_ROOT).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def expected_guard(rel):
    stem = rel[:-2] if rel.endswith(".h") else rel
    return "HIBERNATOR_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def allowed_rules(line):
    match = ALLOW_RE.search(line)
    if not match:
        return set()
    return {token.strip() for token in match.group(1).split(",")}


def strip_code_noise(line):
    """Drops string literals and trailing // comments so rule regexes don't
    fire on prose (e.g. a comment mentioning std::cout)."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def check_file(path, findings):
    rel = rel_path(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        findings.append(Finding(rel, 0, "HIB000", f"unreadable: {err}"))
        return

    is_header = rel.endswith(".h")

    if is_header:
        check_include_guard(rel, lines, findings)

    in_block_comment = False
    for number, raw in enumerate(lines, start=1):
        allowed = allowed_rules(raw)
        line = strip_code_noise(raw)

        # Cheap block-comment tracking: ignore lines fully inside /* ... */.
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.lstrip().startswith("/*") or (line.count("/*") > line.count("*/")):
            if "*/" not in line:
                in_block_comment = True
            continue

        if is_header and "#include <iostream>" in line and rel not in IOSTREAM_HEADER_ALLOWED:
            if "HIB002" not in allowed:
                findings.append(Finding(rel, number, "HIB002",
                                        "headers must not include <iostream>; "
                                        "stream through src/util/log.h instead"))

        if RAW_IO_RE.search(line) and not rel.startswith(RAW_IO_ALLOWED_PREFIXES):
            if "HIB003" not in allowed:
                findings.append(Finding(rel, number, "HIB003",
                                        "raw stdio; route output through HIB_LOG "
                                        "or util/table"))

        units = UNITS_RE.search(line)
        if units and not UNITS_EXEMPT_RE.search(units.group(2)):
            if "HIB004" not in allowed:
                alias = "Joules" if "joules" in units.group(2) else (
                    "Watts" if "watts" in units.group(2) else "Duration (or SimTime)")
                findings.append(Finding(rel, number, "HIB004",
                                        f"'{units.group(1)} {units.group(2)}' should use "
                                        f"the {alias} alias from src/util/units.h"))

        if ASSERT_RE.search(line) and "static_assert" not in line:
            if "HIB005" not in allowed:
                findings.append(Finding(rel, number, "HIB005",
                                        "bare assert(); use HIB_CHECK / HIB_DCHECK "
                                        "from src/util/check.h"))

        if not rel.startswith(STATIC_MUT_EXEMPT_PREFIXES):
            static_decl = STATIC_DECL_RE.search(line)
            if static_decl and not STATIC_EXEMPT_RE.search(line):
                if "HIB006" not in allowed:
                    findings.append(Finding(
                        rel, number, "HIB006",
                        f"mutable static-duration variable '{static_decl.group(1)}'; "
                        "make it const/constexpr, wrap it in std::atomic/std::mutex, "
                        "or pass the state explicitly"))

        if not rel.startswith(UNIT_FN_EXEMPT_PREFIXES) and "HIB007" not in allowed:
            ret = RAW_RETURN_RE.search(line)
            if (ret and UNIT_FN_NAME_RE.search(ret.group(2))
                    and not DIMENSIONLESS_NAME_RE.search(ret.group(2))):
                findings.append(Finding(
                    rel, number, "HIB007",
                    f"'{ret.group(2)}' returns raw {ret.group(1)}; its name says it is "
                    "a physical quantity — return a units.h type"))
            else:
                for fn in FN_WITH_PARAMS_RE.finditer(line):
                    if (not UNIT_FN_NAME_RE.search(fn.group(1))
                            or DIMENSIONLESS_NAME_RE.search(fn.group(1))):
                        continue
                    params = [param for param in RAW_PARAM_RE.findall(fn.group(2))
                              if not DIMENSIONLESS_NAME_RE.search(param)]
                    if params:
                        findings.append(Finding(
                            rel, number, "HIB007",
                            f"'{fn.group(1)}' takes raw double '{params[0]}'; its name "
                            "says it deals in a physical quantity — take a units.h type"))
                        break

        if (VALUE_ESCAPE_RE.search(line) and not rel.startswith(VALUE_ALLOWED_PREFIXES)
                and "HIB008" not in allowed):
            findings.append(Finding(
                rel, number, "HIB008",
                ".value() strips the dimension; stay in the typed world, or move the "
                "raw-double need to a sanctioned boundary (units/stats/table/log/trace)"))

        if (not rel.startswith(HAND_CONVERSION_EXEMPT_PREFIXES)
                and HAND_CONVERSION_RE.search(line) and "HIB009" not in allowed):
            findings.append(Finding(
                rel, number, "HIB009",
                "hand-rolled unit conversion; use Seconds()/Hours()/ToSeconds() etc. "
                "so the scale lives only in units.h"))

        if (RAW_OUTPUT_PRIM_RE.search(line)
                and not rel.startswith(RAW_OUTPUT_ALLOWED_PREFIXES)
                and "HIB010" not in allowed):
            findings.append(Finding(
                rel, number, "HIB010",
                "raw output primitive; route output through HIB_LOG, util/table, "
                "or an src/obs/ exporter"))


def check_include_guard(rel, lines, findings):
    want = expected_guard(rel)
    ifndef_line = 0
    got = None
    for number, line in enumerate(lines, start=1):
        match = re.match(r"\s*#ifndef\s+(\S+)", line)
        if match:
            ifndef_line = number
            got = match.group(1)
            break
    if got is None:
        findings.append(Finding(rel, 1, "HIB001", f"missing include guard {want}"))
        return
    if got != want:
        findings.append(Finding(rel, ifndef_line, "HIB001",
                                f"include guard is {got}, expected {want}"))
        return
    define_re = re.compile(r"\s*#define\s+" + re.escape(want) + r"\b")
    if not any(define_re.match(line) for line in lines):
        findings.append(Finding(rel, ifndef_line, "HIB001",
                                f"#ifndef {want} has no matching #define"))


def gather_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not SKIP_DIR_PATTERNS.match(d))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"simlint: no such path: {path}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    paths = [a for a in args if not a.startswith("-")]
    if any(a.startswith("-") for a in args):
        print(__doc__, file=sys.stderr)
        return 2
    if not paths:
        os.chdir(REPO_ROOT)
        paths = DEFAULT_PATHS

    findings = []
    files = gather_files(paths)
    for path in files:
        check_file(path, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"simlint: {len(findings)} finding(s) in {len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
