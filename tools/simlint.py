#!/usr/bin/env python3
"""simlint v4: shard-escape & contract analysis for the Hibernator simulator.

The v1 engine matched regexes against raw lines; v2 tokenizes the C++
(comment-, string-, raw-string- and preprocessor-aware), builds a per-file
declaration model plus a cross-file symbol index, and runs the rules on
tokens and declarations.  That removes the classic regex false positives
(rules firing inside comments, strings, `#if 0` regions) and enables checks
that need to know what a name *is* (HIB011/HIB014 resolve the container type
behind an identifier before flagging iteration over it).

v3 adds a cross-TU **call graph** on top of the v2 models: every function
and method body (lambdas attributed to their enclosing function, so a
callback registered inside `F` contributes edges from `F`), call sites
resolved through the symbol index (receiver type -> class -> method), virtual
calls fanned out to every overrider via the recorded base-class lists, and
function-like `#define` macros treated as call-graph nodes so `HIB_LOG(...)`
reaches `LogMessage`.  Four interprocedural rules run on the graph
(HIB018-HIB021 below); their findings carry the full witness chain — the
call path or taint path from root to violation — rendered as indented
`note:` lines in text output and as SARIF `codeFlows`.  Per-file models are
memoized in an on-disk cache keyed by content hash + engine version, so warm
runs skip tokenizing/parsing entirely (the call graph and the
interprocedural rules are recomputed every run: they are whole-program
facts and are cheap next to parsing).

v4 teaches the engine the annotation vocabulary from
src/util/thread_annotations.h (HIB_SHARD_LOCAL, HIB_THREAD_CONTEXT(...),
HIB_GUARDED_BY(...), HIB_REQUIRES_LIVE(handle)) — the same spellings clang's
-Wthread-safety enforces when the build sets -DHIB_THREAD_SAFETY=ON, so the
contracts are checked twice: structurally here on every compiler, and by the
compiler itself under clang.  On top of the annotations and the v3 call
graph, v4 runs a field-sensitive escape analysis (HIB022), generalises the
callback-lifetime check across function boundaries (HIB023), propagates
declared contracts caller-by-caller with root-first witness chains (HIB024),
and pins the layering DAG the include graph must respect (HIB025).

Style / hygiene rules (ported from v1):

  HIB001 include-guard   Headers must use the guard derived from their path:
                         src/disk/disk.h -> HIBERNATOR_SRC_DISK_DISK_H_.
  HIB002 iostream-header No `#include <iostream>` in headers; only the
                         diagnostics sinks src/util/log.h and src/util/check.h
                         may pull it in.
  HIB003 raw-io          No std::cout / std::cerr / printf-family calls in
                         library or test code outside src/util/log.* and
                         src/util/table.* (and src/util/check.h).  CLI entry
                         points under bench/ and examples/ are exempt.
  HIB004 units-alias     No raw `double`/`float` declarations whose name says
                         they hold a unit (`*_ms`, `*_joules`, `*_watts`):
                         use the aliases from src/util/units.h.
  HIB005 bare-assert     No bare `assert()`: use HIB_CHECK / HIB_DCHECK.
  HIB006 static-mutable  No mutable static-duration variables in library code.
  HIB007 raw-unit-fn     Quantity-named functions must not take or return raw
                         `double`/`float`; use the units.h types.
  HIB008 value-escape    `.value()` is reserved for the I/O and statistics
                         boundaries (units/stats/table/log/trace/obs).
  HIB009 hand-conversion Unit-suffixed identifiers combined with bare
                         conversion literals (`* 1000`, `/ 3600.0`, ...) are
                         hand-rolled unit conversions; use units.h factories.
  HIB010 raw-output      The C output primitives HIB003 misses (fputs, fputc,
                         putchar, putc, fwrite, perror).

Determinism-hazard rules (new in v2 — they guard the bit-identical-parallel
contract the sharded fleet simulator depends on; library code only):

  HIB011 unordered-iter  Iterating a std::unordered_map/unordered_set
                         (range-for or .begin()/.cbegin()) in library code:
                         iteration order depends on hashing/insertion history,
                         so downstream state diverges between runs.  Membership
                         lookups (find/count/contains/operator[]) are fine.
  HIB012 pointer-key     Pointer keys in *ordered* associative containers
                         (std::map<const T*, ...>, std::set<T*>): the order is
                         the allocation order of the heap, different every run.
  HIB013 wall-clock      Ambient time or randomness in library code: time(),
                         clock(), std::chrono::{system,steady,high_resolution}
                         _clock, std::random_device, rand()/srand().  All
                         simulator time is SimTime; all randomness flows from
                         the seeded SplitMix/Xoshiro PRNGs in src/util/random.h.
  HIB014 float-accum     `+=` into a floating/Quantity accumulator inside a
                         loop over an unordered container: float addition is
                         not associative, so a nondeterministic visit order
                         changes the sum bit-for-bit.  Iterate a sorted
                         container or merge in spec order (harness/parallel).
  HIB015 uninit-member   Scalar member (int/double/bool/pointer/alias of one)
                         without a default member initializer in a class with
                         no real user-provided constructor: the value is
                         whatever the allocator left there — the classic
                         run-to-run divergence seed.
  HIB016 exception-sink  `catch` of an exception by value (slices, copies at
                         an unpredictable point) or a catch with an empty
                         body (swallows the error, sim continues on corrupt
                         state).  Catch by reference and handle or rethrow.
  HIB017 hot-alloc       `std::make_shared` or a `new` expression in the
                         per-request layers (src/array, src/sim).  The
                         dispatch hot path is allocation-free by design
                         (SlotPool handles, SmallVector inline storage);
                         heap traffic there is a perf regression.  Setup-time
                         allocation belongs in constructors via make_unique /
                         containers; anything else needs a NOLINT(HIB017)
                         with a justification.

Interprocedural rules (new in v3 — they run on the cross-TU call graph and
report a full witness chain for every finding):

  HIB018 transitive-hot-alloc  Any allocation (new expression, make_shared /
                         make_unique, or container growth via push_back /
                         emplace_back on a std::vector member no reserve()
                         call ever touches) *reachable* from the dispatch
                         roots (ArrayController::Submit, Disk::Submit,
                         EventQueue::FireNext).  Subsumes the path-scoped
                         HIB017, which stays as the fast syntactic tier: a
                         helper in src/util that allocates is invisible to
                         HIB017 the moment the hot path calls it.
  HIB019 static-shard-race  Mutable static-duration or singleton state
                         referenced by any function reachable from the shard
                         entry points (RunAll, FleetSimulator::Run,
                         RunExperiment) without going through the
                         src/harness/parallel.* merge.  Synchronisation does
                         not rescue the bit-identical guarantee — an atomic
                         counter still makes shard results depend on
                         interleaving — so HIB006's atomic/mutex exemptions
                         do not apply here.
  HIB020 determinism-taint  A value derived from a HIB013 source (time(),
                         random_device, a pointer-to-integer cast) flowing
                         through returns and locals into an event timestamp
                         (Schedule/ScheduleAt/ScheduleIn argument), a seed
                         assignment, or any call made from src/sim.
  HIB021 handle-use-after-release  Intra-function def-use on SlotPool
                         handles: any use of a PoolHandle lvalue after
                         Release(handle) on the same lexical path (the
                         released state dies with the enclosing scope and on
                         reassignment).  Pins the reentrant-Submit ordering
                         contract: Release must be the last touch.

Shard-escape & contract rules (new in v4 — annotation-driven):

  HIB022 shard-escape    The address of shard-owned state (a HIB_SHARD_LOCAL
                         class, or one of the known shard-universe types)
                         stored into anything that outlives the shard run:
                         directly into a mutable static, or — field-
                         sensitively — into a member of a class that has a
                         static-duration instance anywhere in the program.
                         Only code reachable from the shard entry points is
                         in scope; the witness chain walks root -> store ->
                         escaping owner.
  HIB023 callback-lifetime  A closure handed to Schedule/ScheduleAt/
                         ScheduleIn that (a) captures a local or parameter by
                         reference — the frame dies before the event queue
                         drains — or (b) captures a PoolHandle by value whose
                         slot is released after the call returns but before
                         the event can fire (directly, or via a callee that
                         releases its handle parameter — the interprocedural
                         generalisation of HIB021).
  HIB024 contract-propagation  A call to a function annotated
                         HIB_THREAD_CONTEXT(ctx) from a caller that neither
                         carries the same annotation nor establishes the
                         context (ThreadContextScope / ctx.Acquire()), or a
                         call passing a PoolHandle to a HIB_REQUIRES_LIVE
                         callee when the caller did not acquire the handle,
                         IsLive-check it, or declare HIB_REQUIRES_LIVE on its
                         own signature.  Witness chains are root-first.
  HIB025 layering        An #include that violates the layer DAG
                         util <- obs/trace <- sim <- disk <- queueing <-
                         array <- policy <- hibernator <- harness.  Upward
                         (or sideways-undeclared) includes are how shard
                         state leaks across subsystem boundaries in the
                         first place.

Serialization rules (new in v4.1 — the trace pipeline's compiled binary
format is checksummed and validated in exactly one place):

  HIB026 raw-deser       `fread()` or `reinterpret_cast` in src/ outside the
                         trace format layer (src/trace/format.*).  Raw
                         pointer-cast deserialization bypasses the bounds,
                         checksum and monotonicity validation the
                         CompiledTraceReader does; parse bytes there, or use
                         std::bit_cast / std::memcpy for local type punning.

Meta:

  HIB099 unused-suppression  A suppression comment whose rule never fired on
                         its target line.  Stale suppressions hide future
                         regressions, so they are findings themselves.

Suppressions (inline, per line):
  ... code ...            // NOLINT(HIB011)
  ... code ...            // NOLINT(HIB011, HIB014)
  // NOLINTNEXTLINE(HIB012)
  ... code ...
The v1 spelling `// simlint: allow(HIB004)` remains supported as an alias.
Only NOLINT comments that explicitly name HIB rules belong to simlint; bare
`NOLINT` and clang-tidy rule lists are ignored (and never flagged as unused).

Usage:
  tools/simlint.py [paths...]         # files or dirs; default: src tests bench examples
  tools/simlint.py --list-rules
  tools/simlint.py --explain HIB018   # rule rationale + its fixture's minimal repro
  tools/simlint.py --sarif out.sarif  # also write SARIF 2.1.0 (code scanning)
  tools/simlint.py --fix              # apply mechanical fixes (HIB001, HIB009)
  tools/simlint.py --jobs N           # parallel file scanning (default: cpus)
  tools/simlint.py --cache FILE       # incremental cache (default: .simlint-cache.json)
  tools/simlint.py --no-cache         # disable the incremental cache

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import sys

SIMLINT_VERSION = "4.1.0"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
SKIP_DIR_PATTERNS = re.compile(r"^(build.*|\.git|\.cache|__pycache__|Testing)$")

RULES = {
    "HIB001": ("include-guard", "include guard must be HIBERNATOR_<PATH>_H_"),
    "HIB002": ("iostream-header",
               "#include <iostream> in a header (only src/util/log.h, src/util/check.h)"),
    "HIB003": ("raw-io", "raw stdio outside src/util/log.* / src/util/table.*"),
    "HIB004": ("units-alias",
               "raw double/float where a units.h alias (Duration/Joules/Watts) is meant"),
    "HIB005": ("bare-assert", "bare assert(); use HIB_CHECK / HIB_DCHECK from src/util/check.h"),
    "HIB006": ("static-mutable", "mutable static-duration variable in library code"),
    "HIB007": ("raw-unit-fn", "raw double param/return on a power/energy/latency/duration function"),
    "HIB008": ("value-escape", ".value() escape outside the sanctioned I/O and stats boundaries"),
    "HIB009": ("hand-conversion", "hand-rolled unit conversion; use the units.h factories/accessors"),
    "HIB010": ("raw-output",
               "raw output primitive (fputs/fwrite/perror/...) outside the output boundaries"),
    "HIB011": ("unordered-iter",
               "iteration over an unordered container in library code (nondeterministic order)"),
    "HIB012": ("pointer-key",
               "pointer key in an ordered associative container (address-dependent order)"),
    "HIB013": ("wall-clock",
               "wall-clock time or ambient randomness in library code (breaks replayability)"),
    "HIB014": ("float-accum",
               "float/Quantity accumulation inside an unordered-container loop (order-dependent sum)"),
    "HIB015": ("uninit-member",
               "scalar member without default initializer in a constructor-less class"),
    "HIB016": ("exception-sink", "exception caught by value or silently swallowed"),
    "HIB017": ("hot-alloc",
               "std::make_shared / new expression in the per-request layers "
               "(src/array, src/sim); the hot path is allocation-free"),
    "HIB018": ("transitive-hot-alloc",
               "allocation (new/make_shared/make_unique/unreserved vector growth) "
               "reachable from a dispatch root via the call graph"),
    "HIB019": ("static-shard-race",
               "mutable static/singleton state reachable from a shard entry point "
               "(breaks the bit-identical parallel guarantee)"),
    "HIB020": ("determinism-taint",
               "value derived from a wall-clock/randomness source flows into an "
               "event timestamp, seed, or src/sim call"),
    "HIB021": ("handle-use-after-release",
               "PoolHandle used on a path after Release(handle); Release must be "
               "the last touch of a handle"),
    "HIB022": ("shard-escape",
               "address of shard-owned state stored somewhere that outlives the "
               "shard run (static, or member of a statically-held class)"),
    "HIB023": ("callback-lifetime",
               "scheduled callback captures by reference, or captures a pool "
               "handle whose slot is released before the event queue drains"),
    "HIB024": ("contract-propagation",
               "call into a HIB_THREAD_CONTEXT / HIB_REQUIRES_LIVE contract the "
               "caller neither declares nor establishes"),
    "HIB025": ("layering",
               "#include that violates the layer DAG (util <- obs/trace <- sim "
               "<- disk <- queueing <- array <- policy <- hibernator <- harness)"),
    "HIB026": ("raw-deser",
               "fread / reinterpret_cast deserialization outside the trace "
               "format layer (src/trace/format.*)"),
    "HIB099": ("unused-suppression", "suppression comment that suppresses nothing"),
}

# --- per-rule path scoping (rel-path prefixes) ------------------------------
IOSTREAM_HEADER_ALLOWED = {"src/util/log.h", "src/util/check.h"}
RAW_IO_ALLOWED_PREFIXES = ("src/util/log.", "src/util/table.", "src/util/check.",
                           "bench/", "examples/")
STATIC_MUT_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/")
UNIT_FN_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/", "src/util/units.h")
VALUE_ALLOWED_PREFIXES = ("src/util/units.h", "src/util/stats.", "src/util/table.",
                          "src/util/log.", "src/trace/", "src/obs/",
                          "tests/", "bench/", "examples/")
HAND_CONVERSION_EXEMPT_PREFIXES = ("src/util/units.h", "tests/", "bench/", "examples/")
RAW_OUTPUT_ALLOWED_PREFIXES = RAW_IO_ALLOWED_PREFIXES + ("src/obs/",)
# The determinism family applies to library code; processes that own their
# run (tests, benches, examples) may use wall clocks and unordered iteration.
DETERMINISM_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/")
# The allocation-free hot path: per-request code in these layers must not
# reach for the general-purpose heap (SlotPool / SmallVector instead).  The
# fixtures dir is in scope so the rule's own fixture fires.
HOT_ALLOC_PREFIXES = ("src/array/", "src/sim/", "tools/simlint_fixtures/")
# The interprocedural fixtures exercise HIB018+ via the call graph; keep the
# syntactic HIB017 tier out of them so each fixture trips exactly its rule.
HIB017_EXEMPT_PREFIXES = ("tools/simlint_fixtures/interproc/",)
# Binary deserialization lives in exactly one place: the checksummed trace
# format layer.  Everywhere else in src/, fread-and-pointer-cast parsing
# bypasses the validation CompiledTraceReader does.  The fixtures dir is in
# scope so the rule's own fixture fires.
RAW_DESER_PREFIXES = ("src/", "tools/simlint_fixtures/")
RAW_DESER_EXEMPT_PREFIXES = ("src/trace/format", "tools/simlint_fixtures/interproc/")

# --- interprocedural rule configuration (v3) --------------------------------
# Dispatch roots for HIB018: per-request entry points whose transitive callees
# must stay off the general-purpose heap.
HOT_PATH_ROOTS = (("ArrayController", "Submit"), ("ArrayController", "SubmitRaw"),
                  ("Disk", "Submit"), ("EventQueue", "FireNext"),
                  ("EventQueue", "Pop"))
# Shard entry points for HIB019: everything these reach runs concurrently on
# worker threads and must not touch static state outside the harness merge.
SHARD_ROOTS = (("", "RunAll"), ("FleetSimulator", "Run"), ("", "RunExperiment"))
SHARD_MERGE_PREFIXES = ("src/harness/parallel.",)
# Interprocedural findings stay out of code that owns its process (mirrors the
# determinism family's scoping).
INTERPROC_EXEMPT_PREFIXES = ("tests/", "bench/", "examples/")
# HIB020 sinks: the event-timestamp entry points and seed-looking lvalues.
SCHEDULE_SINKS = {"Schedule", "ScheduleAt", "ScheduleIn"}
SEED_NAME_RE = re.compile(r"(?i)seed")
# Pointer-to-integer casts are a HIB013-class source for HIB020 (addresses
# differ run to run).
INT_CAST_TYPES = {"uintptr_t", "intptr_t", "size_t", "uint64_t", "int64_t",
                  "uint32_t", "int32_t", "long", "unsigned", "int"}

# --- annotation & layering configuration (v4) -------------------------------
# The annotation vocabulary from src/util/thread_annotations.h.  The parser
# strips these from declarations (recording them as function/class facts);
# the set also keeps them from being misread as declarator names.
ANNOTATION_MACROS = {
    "HIB_CAPABILITY", "HIB_THREAD_CONTEXT", "HIB_EXCLUDES_CONTEXT",
    "HIB_GUARDED_BY", "HIB_ACQUIRE_CONTEXT", "HIB_RELEASE_CONTEXT",
    "HIB_SCOPED_CONTEXT", "HIB_NO_THREAD_SAFETY_ANALYSIS",
    "HIB_SHARD_LOCAL", "HIB_REQUIRES_LIVE",
}
# Types that are one shard's universe even without a HIB_SHARD_LOCAL marker
# (the marker on the real classes is the source of truth; this set keeps the
# rule meaningful on files analysed in isolation, fixtures included).
SHARD_OWNED_TYPES = {"Simulator", "EventQueue", "ArrayController", "SlotPool",
                     "MetricsRegistry", "Tracer", "Observability", "Disk"}
# Container calls that store their &-argument with the container's lifetime.
CONTAINER_STORE_CALLS = {"push_back", "emplace_back", "insert", "emplace",
                         "push", "assign"}
# HIB025: allowed *direct* include targets per src/<layer>/ (transitive
# closure of util <- obs/trace <- sim <- disk <- queueing <- array <- policy
# <- hibernator <- harness; same-layer includes are always fine).
LAYER_DAG = {
    "util": (),
    "obs": ("util",),
    "trace": ("util",),
    "sim": ("util", "obs"),
    "disk": ("util", "obs", "trace", "sim"),
    "queueing": ("util", "obs", "trace", "sim", "disk"),
    "array": ("util", "obs", "trace", "sim", "disk", "queueing"),
    "policy": ("util", "obs", "trace", "sim", "disk", "queueing", "array"),
    "hibernator": ("util", "obs", "trace", "sim", "disk", "queueing", "array",
                   "policy"),
    "harness": ("util", "obs", "trace", "sim", "disk", "queueing", "array",
                "policy", "hibernator"),
}
# Layering fixtures mirror the src/<layer>/ shape one directory down.
LAYERING_FIXTURE_PREFIX = "tools/simlint_fixtures/layering/"

UNIT_FN_NAME_RE = re.compile(r"(?i:power|energy|latency|duration|response)|(?:Time|Ms)$")
DIMENSIONLESS_NAME_RE = re.compile(r"(?i:scale|ratio|fraction|factor|util|count|scv|rho)")
UNIT_SUFFIX_NAME_RE = re.compile(r"_(?:ms|sec|seconds|hours|joules|watts|rpm)_?$")
UNITS_DECL_NAME_RE = re.compile(r"_(?:ms|joules|watts)_?$")
CONVERSION_VALUES = {60.0, 1000.0, 3600.0, 1e-3, 3.6e6}

PRINTF_FAMILY = {"printf", "fprintf", "sprintf", "puts"}
RAW_OUTPUT_PRIMS = {"fputs", "fputc", "putchar", "putc", "fwrite", "perror"}
WALL_CLOCK_CALLS = {"time", "clock", "rand", "srand", "gettimeofday",
                    "clock_gettime", "timespec_get", "localtime", "gmtime"}
WALL_CLOCK_IDS = {"system_clock", "steady_clock", "high_resolution_clock",
                  "random_device"}
ORDERED_ASSOC = {"map", "set", "multimap", "multiset"}
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
FLOATY_TYPE_RE = re.compile(
    r"\b(?:double|float|Duration|SimTime|Joules|Watts|Frequency|AngularVelocity|"
    r"Revolutions|DiskEnergy|Quantity)\b")

SCALAR_TYPES = {
    "int", "bool", "double", "float", "char", "short", "long", "unsigned", "signed",
    "size_t", "ptrdiff_t", "uintptr_t", "intptr_t", "wchar_t", "char8_t", "char16_t",
    "char32_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
}
STATIC_EXEMPT_TYPE_RE = re.compile(
    r"\b(?:const|constexpr|constinit|thread_local)\b"
    r"|\b(?:atomic|mutex|shared_mutex|recursive_mutex|once_flag|condition_variable)\b")

CXX_KEYWORDS = frozenset("""
    alignas alignof and and_eq asm auto bitand bitor bool break case catch char
    char8_t char16_t char32_t class compl concept const consteval constexpr
    constinit const_cast continue co_await co_return co_yield decltype default
    delete do double dynamic_cast else enum explicit export extern false float
    for friend goto if inline int long mutable namespace new noexcept not
    not_eq nullptr operator or or_eq private protected public register
    reinterpret_cast requires return short signed sizeof static static_assert
    static_cast struct switch template this thread_local throw true try
    typedef typeid typename union unsigned using virtual void volatile wchar_t
    while xor xor_eq final override
""".split())

TYPE_INTRO_KEYWORDS = frozenset(
    ["const", "volatile", "constexpr", "constinit", "consteval", "inline", "static",
     "mutable", "extern", "register", "thread_local", "virtual", "explicit",
     "typename", "unsigned", "signed", "long", "short", "struct", "class", "enum"])


# ============================ tokenizer =====================================

# Order matters: raw strings before plain strings; numbers before identifiers
# so digit separators (1'000) never open a char literal.
MASTER_RE = re.compile(
    r"""
      (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<rawstr>(?:u8|u|U|L)?R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>(?:u8|u|U|L)?"(?:[^"\\\n]|\\.)*")
    | (?P<char>(?:u8|u|U|L)?'(?:[^'\\\n]|\\.)+?')
    | (?P<num>\.?[0-9](?:[eEpP][+-]|[0-9a-zA-Z_.'])*)
    | (?P<id>[A-Za-z_-\U0010FFFF][0-9A-Za-z_-\U0010FFFF]*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|==|!=|<=|>=|&&|\|\||<<|>>|\#\#|[^\sA-Za-z_0-9])
    """,
    re.VERBOSE | re.DOTALL,
)

PP_DISABLED_VALUES = {"0", "false", "(0)", "(false)"}


def tokenize(text):
    """Returns (tokens, comments, directives).

    tokens:     list of (kind, text, line, col) with kind in
                {'id', 'num', 'str', 'char', 'punct'}.
    comments:   dict line -> concatenated comment text on that line.
    directives: list of (name, rest, line) for active preprocessor lines;
                `#if 0` / `#if false` regions are skipped entirely (their
                contents produce no tokens, comments, or directives).
    """
    tokens = []
    comments = {}
    directives = []
    pos = 0
    line = 1
    line_start = 0  # offset of the current line's first char
    bol = True      # only whitespace seen since the line started
    n = len(text)

    def note_comment(ln, body):
        comments[ln] = comments.get(ln, "") + " " + body

    while pos < n:
        ch = text[pos]
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            bol = True
            continue
        if ch in " \t\r\f\v":
            pos += 1
            continue
        if ch == "\\" and pos + 1 < n and text[pos + 1] == "\n":
            pos += 2
            line += 1
            line_start = pos
            continue
        if ch == "#" and bol:
            # Preprocessor directive: consume the logical line (honouring
            # backslash continuations), strip any trailing // comment.
            start_line = line
            end = pos
            while end < n:
                nl = text.find("\n", end)
                if nl == -1:
                    nl = n
                if nl > end and text[nl - 1] == "\\":
                    line += 1
                    end = nl + 1
                    continue
                end = nl
                break
            raw = text[pos:end].replace("\\\n", " ")
            body = raw[1:].strip()
            comment_at = body.find("//")
            if comment_at != -1:
                note_comment(start_line, body[comment_at + 2:])
                body = body[:comment_at].rstrip()
            body = re.sub(r"/\*.*?\*/", " ", body)
            parts = body.split(None, 1)
            name = parts[0] if parts else ""
            rest = parts[1] if len(parts) > 1 else ""
            pos = end
            if name == "if" and rest.strip() in PP_DISABLED_VALUES:
                # Skip the disabled region line-by-line until the matching
                # #endif (or the #else branch, which is live).
                depth = 1
                while pos < n and depth > 0:
                    nl = text.find("\n", pos)
                    if nl == -1:
                        nl = n
                    else:
                        line += 1
                    stripped = text[pos:nl].lstrip()
                    pos = nl + 1 if nl < n else n
                    if stripped.startswith("#"):
                        word = stripped[1:].lstrip().split(None, 1)
                        word = word[0] if word else ""
                        if word in ("if", "ifdef", "ifndef"):
                            depth += 1
                        elif word == "endif":
                            depth -= 1
                        elif word in ("else", "elif") and depth == 1:
                            break
                line_start = pos
                bol = True
                continue
            directives.append((name, rest, start_line))
            continue

        m = MASTER_RE.match(text, pos)
        if not m:  # stray byte; skip it
            pos += 1
            bol = False
            continue
        kind = m.lastgroup
        tok = m.group()
        col = pos - line_start + 1
        if kind == "lcomment":
            note_comment(line, tok[2:])
        elif kind == "bcomment":
            note_comment(line, tok[2:-2])
            line += tok.count("\n")
            if "\n" in tok:
                line_start = m.end() - (len(tok) - tok.rfind("\n") - 1)
        elif kind == "rawstr":
            tokens.append(("str", tok, line, col))
            line += tok.count("\n")
            if "\n" in tok:
                line_start = m.end() - (len(tok) - tok.rfind("\n") - 1)
        elif kind == "delim":
            pass
        else:
            if kind == "str" or kind == "char":
                tokens.append((kind, tok, line, col))
            else:
                tokens.append((kind, tok, line, col))
        if kind not in ("lcomment", "bcomment"):
            bol = False
        pos = m.end()
    return tokens, comments, directives


# ============================ suppressions ==================================

SUPPRESS_RE = re.compile(
    r"(?P<nextline>NOLINTNEXTLINE)\s*\((?P<nl_rules>[^)]*)\)"
    r"|NOLINT\s*\((?P<rules>[^)]*)\)"
    r"|simlint:\s*allow\((?P<legacy>[^)]*)\)")


def parse_suppressions(comments):
    """Returns a list of suppression dicts:
    {decl_line, target_line, rules (sorted list), used (mutable)}.

    Only NOLINT comments that explicitly name HIBxxx rules belong to simlint;
    bare NOLINT and foreign rule lists (clang-tidy's
    `NOLINT(google-explicit-constructor)` etc.) are left alone.  Rules are a
    sorted list (not a set) so the whole structure round-trips through the
    JSON incremental cache.
    """
    sups = []
    for ln, body in comments.items():
        for m in SUPPRESS_RE.finditer(body):
            nextline = m.group("nextline") is not None
            ruletext = m.group("nl_rules") if nextline else (
                m.group("rules") if m.group("rules") is not None
                else m.group("legacy"))
            rules = sorted({r.strip() for r in (ruletext or "").split(",")
                            if r.strip().startswith("HIB")})
            if not rules:
                continue
            sups.append({"decl_line": ln,
                         "target_line": ln + 1 if nextline else ln,
                         "rules": rules, "used": False})
    return sups


# ============================ declaration model =============================

class FileModel:
    """Per-file declaration summary (pickleable via __dict__)."""

    def __init__(self, rel):
        self.rel = rel
        self.classes = []          # {name, line, has_real_ctor, members: [...]}
        self.functions = []        # {name, line, ret, params: [(type, name, line)]}
        self.locals = {}           # identifier -> type string (locals/file scope)
        self.aliases = {}          # using Alias = Type;
        self.context_classes = []  # classes declared here + X from X:: defs
        self.static_decls = []     # {name, line, type} mutable static candidates


def _match_forward(toks, i, opens, closes):
    """Index just past the bracket group starting at toks[i] (which is in
    `opens`).  Treats '>>' as two closes when matching angle brackets."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i][1]
        if t in opens:
            depth += 1
        elif t in closes:
            depth -= 1
            if depth <= 0:
                return i + 1
        i += 1
    return n


def _find_matching_close(toks, i):
    """toks[i] is '(' '[' or '{'; returns index of the matching closer."""
    open_t = toks[i][1]
    close_t = {"(": ")", "[": "]", "{": "}"}[open_t]
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i][1]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def _strip_annotation_tokens(toks):
    """Removes HIB_* annotation macros (and their argument lists) from a
    statement's tokens.  Returns (kept_tokens, annotations) where each
    annotation is [macro_name, [argument identifiers]] — `kShardContext` for
    HIB_THREAD_CONTEXT(kShardContext), the handle name for
    HIB_REQUIRES_LIVE(h)."""
    kept = []
    annotations = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i][0] == "id" and toks[i][1] in ANNOTATION_MACROS:
            macro = toks[i][1]
            args = []
            i += 1
            if i < n and toks[i][1] == "(":
                depth = 0
                while i < n:
                    t = toks[i][1]
                    if t == "(":
                        depth += 1
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    elif toks[i][0] == "id":
                        args.append(t)
                    i += 1
            annotations.append([macro, args])
            continue
        kept.append(toks[i])
        i += 1
    return kept, annotations


class Parser:
    """Heuristic single-pass structural parser: classes, members, functions,
    local declarations.  Not a C++ front end — just enough shape recovery for
    the HIB rules, tuned to this repo's idiom."""

    def __init__(self, toks, rel):
        self.toks = toks
        self.model = FileModel(rel)

    def parse(self):
        self._region(0, len(self.toks), class_name=None)
        return self.model

    # -- region = sequence of statements between braces ----------------------
    def _region(self, i, end, class_name):
        toks = self.toks
        current = None
        for c in self.model.classes:
            if c["name"] == class_name:
                current = c
        while i < end:
            kind, text, line, _ = toks[i]
            if text in (";", "}"):
                i += 1
                continue
            if kind == "id" and text in ("public", "private", "protected") \
                    and i + 1 < end and toks[i + 1][1] == ":":
                i += 2
                continue
            if kind == "id" and text == "namespace":
                j = i + 1
                while j < end and toks[j][1] not in ("{", ";", "="):
                    j += 1
                if j >= end or toks[j][1] != "{":
                    i = j + 1
                    continue
                close = _find_matching_close(toks, j)
                self._region(j + 1, close, None)
                i = close + 1
                continue
            if kind == "id" and text == "template":
                if i + 1 < end and toks[i + 1][1] == "<":
                    i = self._skip_angles(i + 1, end)
                else:
                    i += 1
                continue
            if kind == "id" and text in ("class", "struct") \
                    and self._is_class_def(i, end):
                i = self._parse_class(i, end)
                continue
            if kind == "id" and text in ("enum", "union"):
                j = i + 1
                while j < end and toks[j][1] not in ("{", ";"):
                    j += 1
                if j < end and toks[j][1] == "{":
                    j = _find_matching_close(toks, j)
                i = j + 1
                continue
            if kind == "id" and text in ("if", "for", "while", "switch", "catch"):
                j = i + 1
                if j < end and toks[j][1] == "(":
                    j = _find_matching_close(toks, j) + 1
                i = j
                continue
            if kind == "id" and text in ("return", "throw", "goto", "delete",
                                         "case", "break", "continue", "do", "else",
                                         "try", "default", "co_return", "co_yield"):
                while i < end and toks[i][1] not in (";", "{", "}"):
                    i += 1
                if i < end and toks[i][1] == ";":
                    i += 1
                continue
            i = self._statement(i, end, class_name, current)

    def _skip_angles(self, i, end):
        """toks[i] == '<'; returns index past the matching '>' ('>>' counts 2)."""
        depth = 0
        while i < end:
            t = self.toks[i][1]
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # lost: bail out
            i += 1
        return end

    def _is_class_def(self, i, end):
        """class/struct at i introduces a definition (not `struct X* p` etc.)."""
        j = i + 1
        while j < end and (self.toks[j][1] == "[" or self.toks[j][0] == "id"
                           or self.toks[j][1] == "::"):
            if self.toks[j][1] == "[":
                j = _find_matching_close(self.toks, j) + 1
                continue
            if self.toks[j][0] == "id" and self.toks[j][1] in ANNOTATION_MACROS:
                # `class HIB_SHARD_LOCAL Simulator {` / `class HIB_CAPABILITY(x) C {`
                j += 1
                if j < end and self.toks[j][1] == "(":
                    j = _find_matching_close(self.toks, j) + 1
                continue
            if self.toks[j][0] == "id" and self.toks[j][1] not in ("final", "alignas"):
                j += 1
                # after the name: {, : bases, or something else
                while j < end and self.toks[j][1] == "::":
                    j += 2
                if j < end and self.toks[j][0] == "id" and self.toks[j][1] == "final":
                    j += 1
                return j < end and self.toks[j][1] in ("{", ":")
            j += 1
        return False

    def _parse_class(self, i, end):
        toks = self.toks
        j = i + 1
        name = None
        bases = []
        in_bases = False
        adepth = 0
        shard_local = False
        while j < end and toks[j][1] not in ("{", ";"):
            if toks[j][0] == "id" and toks[j][1] in ANNOTATION_MACROS:
                if toks[j][1] == "HIB_SHARD_LOCAL":
                    shard_local = True
                j += 1
                if j < end and toks[j][1] == "(":
                    j = _find_matching_close(toks, j) + 1
                continue
            if toks[j][1] == ":" and toks[j + 1][1] != ":" and not in_bases:
                in_bases = True
                j += 1
                continue
            if toks[j][0] == "id" and toks[j][1] not in ("final", "alignas"):
                if not in_bases:
                    name = toks[j][1]
                elif adepth == 0 and toks[j][1] not in (
                        "public", "private", "protected", "virtual") \
                        and (j + 1 >= end or toks[j + 1][1] != "::"):
                    bases.append(toks[j][1])
            elif toks[j][1] == "<":
                adepth += 1
            elif toks[j][1] == ">":
                adepth = max(0, adepth - 1)
            elif toks[j][1] == ">>":
                adepth = max(0, adepth - 2)
            j += 1
        while j < end and toks[j][1] != "{":
            if toks[j][1] == ";":  # forward declaration
                return j + 1
            j += 1
        if j >= end:
            return end
        close = _find_matching_close(toks, j)
        cls = {"name": name, "line": toks[i][2], "has_real_ctor": False,
               "members": [], "bases": bases, "shard_local": shard_local}
        self.model.classes.append(cls)
        if name:
            self.model.context_classes.append(name)
        self._region(j + 1, close, class_name=name)
        return close + 1

    # -- one declaration/expression statement --------------------------------
    def _statement(self, i, end, class_name, current_class):
        toks = self.toks
        start = i
        head = toks[i][1]
        if head in ("using", "typedef"):
            j = i
            while j < end and toks[j][1] != ";":
                j += 1
            if head == "using" and j - i >= 4 and toks[i + 1][0] == "id" \
                    and toks[i + 2][1] == "=":
                alias = toks[i + 1][1]
                target = " ".join(t[1] for t in toks[i + 3:j])
                self.model.aliases[alias] = target
            return j + 1
        if head in ("friend", "static_assert", "extern"):
            j = i
            while j < end and toks[j][1] not in (";", "{"):
                if toks[j][1] == "(":
                    j = _find_matching_close(toks, j)
                j += 1
            if j < end and toks[j][1] == "{":
                j = _find_matching_close(toks, j)
            return j + 1

        # Scan to the statement end: ';' or a body '{' (an initializer '{'
        # after '=' or after the declarator name is consumed in place).
        j = i
        saw_eq = False
        body_open = -1
        while j < end:
            t = toks[j][1]
            if t == "(" or t == "[":
                j = _find_matching_close(toks, j) + 1
                continue
            if t == "=":
                saw_eq = True
                j += 1
                continue
            if t == "{":
                if saw_eq or (j > i and toks[j - 1][0] == "id" and j - 1 > i
                              and toks[j - 2][1] not in (")",)):
                    prev = toks[j - 1][1]
                    if not saw_eq and prev in (")", "const", "noexcept", "override",
                                               "final", "try"):
                        body_open = j
                        break
                    j = _find_matching_close(toks, j) + 1
                    continue
                body_open = j
                break
            if t == ";":
                break
            if t == "}":
                break
            j += 1
        stmt = toks[start:j]
        stmt_end = j

        if body_open != -1:
            close = _find_matching_close(toks, body_open)
            fn = self._classify(stmt, class_name, current_class, has_body=True)
            if isinstance(fn, dict):
                # Token range of the body (exclusive of the outer braces);
                # lambdas inside it attribute their call sites to this
                # function, which is exactly the registration-context edge
                # the callback rules need.  Constructors start at the
                # statement head so the member-initializer list's calls are
                # theirs too.
                fn["body_range"] = (start if fn.get("is_ctor") else body_open + 1,
                                    close)
            self._region(body_open + 1, close, class_name=None)
            return close + 1
        self._classify(stmt, class_name, current_class, has_body=False)
        return stmt_end + 1

    def _classify(self, stmt, class_name, current_class, has_body):
        if not stmt:
            return
        toks = stmt
        # Strip leading attributes [[...]] and label-ish noise.
        while len(toks) >= 2 and toks[0][1] == "[" and toks[1][1] == "[":
            k = 0
            depth = 0
            while k < len(toks):
                if toks[k][1] == "[":
                    depth += 1
                elif toks[k][1] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            toks = toks[k + 1:]
        if not toks:
            return

        # Strip thread-safety / shard annotations; they are recorded as facts
        # on the declaration, and leaving them in would make the declarator
        # scans below misname the function after its trailing macro.
        toks, annotations = _strip_annotation_tokens(toks)
        if not toks:
            return

        texts = [t[1] for t in toks]
        line = toks[0][2]

        # Constructor?  First id equal to the class name, directly followed by
        # '(' (allowing leading explicit/inline/constexpr), not preceded by '~'.
        if class_name:
            for k, t in enumerate(toks):
                if t[0] != "id":
                    if t[1] == "~":
                        break
                    if t[1] not in (":",):
                        continue
                if t[0] == "id" and t[1] in ("explicit", "inline", "constexpr",
                                             "consteval"):
                    continue
                if t[0] == "id":
                    if t[1] == class_name and k + 1 < len(toks) and toks[k + 1][1] == "(":
                        if current_class is not None:
                            is_real = not ("delete" in texts or "default" in texts)
                            if is_real:
                                current_class["has_real_ctor"] = True
                        # Constructors are call-graph nodes too (a call
                        # spelled `LogMessage(...)` resolves to this).
                        fn = {"name": class_name, "line": t[2], "ret": [],
                              "params": [], "method_class": class_name,
                              "has_body": has_body, "is_virtual": False,
                              "is_ctor": True, "annotations": annotations}
                        self.model.functions.append(fn)
                        return fn
                    break

        # Out-of-class constructor definition (`X::X(...) : inits... {`):
        # the trailing (...) belongs to the last member initializer, so the
        # generic declarator scan below would misname it.  Recognise the
        # `X :: X (` shape directly and record a ctor node.
        for k in range(len(toks) - 3):
            if toks[k][0] == "id" and toks[k + 1][1] == "::" \
                    and toks[k + 2][1] == toks[k][1] and toks[k + 3][1] == "(" \
                    and (k == 0 or toks[k - 1][1] != "~"):
                fn = {"name": toks[k][1], "line": toks[k][2], "ret": [],
                      "params": [], "method_class": toks[k][1],
                      "has_body": has_body, "is_virtual": False,
                      "is_ctor": True, "annotations": annotations}
                self.model.functions.append(fn)
                return fn

        # Function (decl or def): declarator ends with (...) [cv].
        fn = self._try_function(toks, has_body)
        if fn is not None:
            fn["annotations"] = annotations
            if fn["method_class"] is None and class_name:
                fn["method_class"] = class_name  # in-class method definition
            self.model.functions.append(fn)
            if fn.get("method_class"):
                if fn["method_class"] not in self.model.context_classes:
                    self.model.context_classes.append(fn["method_class"])
            return fn

        # Variable / member declaration.
        decl = self._try_var_decl(toks)
        if decl is None:
            return
        name, type_tokens, has_init = decl
        type_str = " ".join(type_tokens)
        is_static = "static" in type_tokens
        if current_class is not None:
            current_class["members"].append(
                {"name": name, "type": type_str, "has_init": has_init,
                 "line": line, "is_static": is_static})
        if type_tokens:
            self.model.locals.setdefault(name, type_str)
        if is_static:
            self.model.static_decls.append({"name": name, "line": line, "type": type_str})

    def _try_function(self, toks, has_body):
        texts = [t[1] for t in toks]
        # Trim trailing "= 0" / "= default" / "= delete" and cv-ish ids.
        endk = len(texts)
        cut = None
        depth = 0
        for k, t in enumerate(texts):
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == "=" and depth == 0:
                cut = k
                break
        if cut is not None:
            endk = cut
        while endk > 0 and texts[endk - 1] in ("const", "noexcept", "override",
                                               "final", "try", "&", "&&"):
            endk -= 1
        if endk == 0 or texts[endk - 1] != ")":
            return None
        # Find the matching '(' for that trailing ')'.
        depth = 0
        openk = None
        for k in range(endk - 1, -1, -1):
            t = texts[k]
            if t == ")":
                depth += 1
            elif t == "(":
                depth -= 1
                if depth == 0:
                    openk = k
                    break
        if openk is None or openk == 0:
            return None
        namek = openk - 1
        if toks[namek][0] != "id" or texts[namek] in CXX_KEYWORDS:
            return None
        if namek >= 1 and texts[namek - 1] == "~":
            return None  # destructor: not a call-graph node, never "called"
        name = texts[namek]
        method_class = None
        retk = namek
        if namek >= 2 and texts[namek - 1] == "::" and toks[namek - 2][0] == "id":
            method_class = texts[namek - 2]
            retk = namek - 2
        ret = [t for t in texts[:retk]
               if t not in ("inline", "static", "virtual", "explicit", "constexpr",
                            "consteval", "friend", "extern")]
        params = self._parse_params(toks[openk + 1:endk - 1])
        is_virtual = "virtual" in texts or "override" in texts or "final" in texts
        return {"name": name, "line": toks[namek][2], "ret": ret, "params": params,
                "method_class": method_class, "has_body": has_body,
                "is_virtual": is_virtual}

    def _parse_params(self, ptoks):
        params = []
        if not ptoks:
            return params
        # split on top-level commas (tracking (), [], {}, <>)
        groups = [[]]
        depth_round = depth_angle = 0
        for t in ptoks:
            x = t[1]
            if x in ("(", "[", "{"):
                depth_round += 1
            elif x in (")", "]", "}"):
                depth_round -= 1
            elif x == "<":
                depth_angle += 1
            elif x == ">":
                depth_angle = max(0, depth_angle - 1)
            elif x == ">>":
                depth_angle = max(0, depth_angle - 2)
            elif x == "," and depth_round == 0 and depth_angle == 0:
                groups.append([])
                continue
            groups[-1].append(t)
        for g in groups:
            if not g:
                continue
            # drop default argument
            for k, t in enumerate(g):
                if t[1] == "=":
                    g = g[:k]
                    break
            if not g:
                continue
            if g[-1][0] == "id" and g[-1][1] not in CXX_KEYWORDS and len(g) > 1:
                pname = g[-1][1]
                ptype = [t[1] for t in g[:-1]]
            else:
                pname = ""
                ptype = [t[1] for t in g]
            params.append((ptype, pname, g[0][2]))
        return params

    def _try_var_decl(self, toks):
        texts = [t[1] for t in toks]
        if any(t in ("new", "delete", "operator", "throw", "return") for t in texts):
            return None
        # locate top-level '=' (assignment/initializer)
        depth = 0
        eqk = None
        for k, t in enumerate(texts):
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == "=" and depth == 0:
                eqk = k
                break
        declarator = texts[:eqk] if eqk is not None else texts[:]
        decl_toks = toks[:eqk] if eqk is not None else toks[:]
        has_init = eqk is not None
        if not declarator:
            return None
        # strip a trailing brace-initializer {...}
        if declarator and declarator[-1] == "}":
            depth = 0
            for k in range(len(declarator) - 1, -1, -1):
                if declarator[k] == "}":
                    depth += 1
                elif declarator[k] == "{":
                    depth -= 1
                    if depth == 0:
                        declarator = declarator[:k]
                        decl_toks = decl_toks[:k]
                        has_init = True
                        break
        # strip trailing array extents [...]
        while declarator and declarator[-1] == "]":
            depth = 0
            for k in range(len(declarator) - 1, -1, -1):
                if declarator[k] == "]":
                    depth += 1
                elif declarator[k] == "[":
                    depth -= 1
                    if depth == 0:
                        declarator = declarator[:k]
                        decl_toks = decl_toks[:k]
                        break
            else:
                break
        if not declarator or declarator[-1] == ")":
            return None
        if decl_toks[-1][0] != "id" or declarator[-1] in CXX_KEYWORDS:
            return None
        name = declarator[-1]
        type_tokens = declarator[:-1]
        if not type_tokens:
            return None  # plain assignment `x = y;`
        # A declaration's type must start with an id/keyword, not an operator.
        first = type_tokens[0]
        if not (re.match(r"[A-Za-z_:~]", first) or first in ("const",)):
            return None
        if "::" == type_tokens[-1]:
            return None
        return name, type_tokens, has_init


# ============================ findings ======================================

class Finding:
    __slots__ = ("path", "line", "col", "rule", "message", "fix", "flow")

    def __init__(self, path, line, rule, message, col=1, fix=None, flow=None):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message
        self.fix = fix  # optional (kind, *args) tuple for --fix
        # Witness chain for the interprocedural rules: a list of
        # [path, line, col, message] steps ordered source/root -> finding.
        self.flow = flow or []

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def render(self):
        """Finding line plus its witness chain as indented note: lines."""
        out = [str(self)]
        for step in self.flow:
            out.append(f"    note: {step[0]}:{step[1]}: {step[3]}")
        return "\n".join(out)

    def key(self):
        return (self.path, self.line, self.rule, self.message)


def rel_path(path):
    abspath = os.path.abspath(path)
    if abspath.startswith(REPO_ROOT + os.sep):
        return os.path.relpath(abspath, REPO_ROOT).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def expected_guard(rel):
    stem = rel[:-2] if rel.endswith(".h") else rel
    return "HIBERNATOR_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


# ============================ per-file analysis =============================

def analyze_file(path):
    """Worker entry point: tokenize, model, run index-free checks.

    Returns a pickleable dict with findings plus everything the main process
    needs for the cross-file checks (HIB011/HIB014/HIB015) and suppressions.
    """
    rel = rel_path(path)
    out = {
        "rel": rel,
        "findings": [],       # (line, col, rule, message, fix, flow)
        "suppressions": [],
        "classes": [],
        "aliases": {},
        "locals": {},
        "context_classes": [],
        "rangefors": [],      # (line, col, ident, body_start, body_end)
        "begin_calls": [],    # (line, col, ident)
        "accums": [],         # (line, col, ident)
        "functions": [],      # call-graph nodes with per-body facts (v3)
        "reserved": [],       # member names some .reserve() call touches
        "static_decls": [],   # mutable static-duration declarations (v4)
        "error": None,
    }
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as err:
        out["error"] = f"unreadable: {err}"
        return out

    tokens, comments, directives = tokenize(text)
    out["suppressions"] = parse_suppressions(comments)

    findings = []

    def add(line, col, rule, message, fix=None, flow=None):
        findings.append((line, col, rule, message, fix, flow or []))

    is_header = rel.endswith(".h")
    if is_header:
        check_include_guard(rel, text, directives, add)

    check_directives(rel, is_header, directives, add)
    check_layering(rel, directives, add)

    model = Parser(tokens, rel).parse()
    out["classes"] = model.classes
    out["aliases"] = model.aliases
    out["locals"] = model.locals
    out["context_classes"] = model.context_classes

    check_static_mutable(rel, model, add)
    check_unit_functions(rel, model, add)
    token_checks(rel, tokens, add, out)
    extract_function_facts(rel, tokens, model, directives, out, add)

    out["findings"] = findings
    return out


# ----- v3: per-function fact extraction + HIB021 ----------------------------

MACRO_DEF_RE = re.compile(r"^([A-Za-z_]\w*)\((.*?)\)\s*(.*)$", re.S)
MACRO_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


def _skip_angle_tokens(tokens, i, end):
    """tokens[i] == '<'; index past the matching '>' ('>>' counts double),
    or i if this is not a balanced template argument list."""
    depth = 0
    j = i
    while j < end:
        t = tokens[j][1]
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}") or depth > 6:
            return i
        j += 1
    return i


def extract_function_facts(rel, tokens, model, directives, out, add):
    """Walks every function body once, recording the facts the
    interprocedural rules consume:

      calls        [name, recv, qual, line, col, arg_ids]
                                                  (recv: `x.F()`; qual: `X::F()`)
      allocs       ["new"|"make"|"growth", detail, line, col]
      det_sources  [desc, line, col]              (HIB013-class sources)
      static_refs  [name, line, col, decl_line]   (mutable statics only)
      sinks        ["schedule", callee, arg_ids, arg_calls, line, col]
      assigns      [lhs, rhs_calls, rhs_ids, line, col]  (in body order)
      addr_stores  [dest_chain, src, line, col]   (`a.b = &x` / `c.push_back(&x)`;
                                                   dest_chain is ["a","b"] / ["c"])
      sched_lambdas [sink, val_ids, ref_ids, ref_all, has_this, line, col,
                     end_line]                    (closures handed to Schedule*)
      releases     [handle, line, col]            (Release(h) sites)
      live_checks  [handle, line, col]            (IsLive(h) sites)
      ctx_establish bool                          (ThreadContextScope /
                                                   <ctx>.Acquire() in the body)

    Function-like #define macros become pseudo-nodes whose calls are the
    identifiers applied in the replacement text (so HIB_LOG(...) has edges to
    LogMessage and GlobalLogLevel).  Also runs HIB021 (handle use after
    release) and the by-reference-capture half of HIB023, which are purely
    intra-function.
    """
    n = len(tokens)

    def tk(i):
        return tokens[i] if 0 <= i < n else ("", "", 0, 0)

    # Mutable statics in this file: file-scope ones match by name anywhere;
    # function-local ones only inside the declaring body (identifiers like
    # `level` are too common for cross-function name matching).
    mutable_statics = []
    for d in model.static_decls:
        tl = d["type"]
        if re.search(r"\b(?:const|constexpr|constinit)\b", tl):
            continue
        mutable_statics.append(d)

    bodies = []
    for fn in model.functions:
        br = fn.get("body_range")
        if br:
            b0, b1 = br
            fn["body_lines"] = (tk(b0)[2] or fn["line"], tk(b1)[2] or fn["line"])
            bodies.append((fn, b0, b1))
        fn.setdefault("calls", [])
        fn.setdefault("allocs", [])
        fn.setdefault("det_sources", [])
        fn.setdefault("static_refs", [])
        fn.setdefault("sinks", [])
        fn.setdefault("assigns", [])
        fn.setdefault("addr_stores", [])
        fn.setdefault("sched_lambdas", [])
        fn.setdefault("releases", [])
        fn.setdefault("live_checks", [])
        fn.setdefault("ctx_establish", False)

    file_static_names = {d["name"]: d for d in mutable_statics
                         if not any(f["body_lines"][0] <= d["line"] <= f["body_lines"][1]
                                    for f, _, _ in bodies)}

    # Function-like macros as pseudo call-graph nodes.
    for name, rest, line in directives:
        if name != "define":
            continue
        m = MACRO_DEF_RE.match(rest)
        if not m or not m.group(3):
            continue
        callees = [c for c in MACRO_CALL_RE.findall(m.group(3))
                   if c not in CXX_KEYWORDS]
        if not callees:
            continue
        out["functions"].append({
            "name": m.group(1), "method_class": None, "line": line,
            "is_virtual": False, "is_macro": True, "has_body": True,
            "params": [], "calls": [[c, None, None, line, 1, []] for c in callees],
            "allocs": [], "det_sources": [], "static_refs": [], "sinks": [],
            "assigns": [], "addr_stores": [], "sched_lambdas": [],
            "releases": [], "live_checks": [], "ctx_establish": False,
            "annotations": []})

    lib = not rel.startswith(DETERMINISM_EXEMPT_PREFIXES)
    interproc_scoped = not rel.startswith(INTERPROC_EXEMPT_PREFIXES)

    for fn, b0, b1 in bodies:
        calls, allocs, det, statics, sinks, assigns = \
            fn["calls"], fn["allocs"], fn["det_sources"], fn["static_refs"], \
            fn["sinks"], fn["assigns"]
        addr_stores, sched_lambdas, releases_fact, live_checks = \
            fn["addr_stores"], fn["sched_lambdas"], fn["releases"], \
            fn["live_checks"]
        param_types = {}
        for p in fn.get("params", []):
            if len(p) >= 2 and p[1]:
                param_types[p[1]] = \
                    p[0] if isinstance(p[0], str) else " ".join(p[0])

        def is_handle_name(name, _pt=param_types):
            t = _pt.get(name) or model.locals.get(name) or ""
            return "PoolHandle" in t
        local_static_names = {d["name"]: d for d in mutable_statics
                              if fn["body_lines"][0] <= d["line"] <= fn["body_lines"][1]}
        depth = 0
        released = {}  # handle name -> [depth, line, col, arg_token_index]
        i = b0
        while i < b1:
            kind, text, line, col = tokens[i]
            if text == "{":
                depth += 1
            elif text == "}":
                depth -= 1
                for h in [h for h, e in released.items() if e[0] > depth]:
                    del released[h]  # the scope the release lived in ended
            elif kind == "id":
                nxt = tk(i + 1)[1]
                prv = tk(i - 1)[1]

                # Mutable static reference (reads, writes, and the local
                # declaration itself).  One record per static per function:
                # the first touch is the witness, more add only noise.
                sd = local_static_names.get(text) or file_static_names.get(text)
                if sd is not None and prv not in (".", "->") \
                        and not any(s[0] == text for s in statics):
                    statics.append([text, line, col, sd["line"]])

                # ThreadContextScope (or <ctx>.Acquire()) establishes the
                # shard context for this function's body (HIB024).
                if text == "ThreadContextScope":
                    fn["ctx_establish"] = True

                # Reassignment revives a released handle; record assigns for
                # the intra-function taint step.
                if nxt == "=" and text not in CXX_KEYWORDS:
                    released.pop(text, None)
                    # `lhs = &x` / `a.b = &x`: an address store (HIB022).  The
                    # destination chain walks back over member accesses.
                    if tk(i + 2)[1] == "&" and tk(i + 3)[0] == "id" \
                            and tk(i + 3)[1] not in CXX_KEYWORDS:
                        chain = [text]
                        k = i - 1
                        while tk(k)[1] in (".", "->") and tk(k - 1)[0] == "id":
                            chain.insert(0, tk(k - 1)[1])
                            k -= 2
                        addr_stores.append([chain, tk(i + 3)[1], line, col])
                    rhs_calls, rhs_ids = [], []
                    j = i + 2
                    d2 = 0
                    while j < b1:
                        t2 = tokens[j][1]
                        if t2 in ("(", "[", "{"):
                            d2 += 1
                        elif t2 in (")", "]", "}"):
                            d2 -= 1
                            if d2 < 0:
                                break
                        elif t2 in (";", ",") and d2 == 0:
                            break
                        elif tokens[j][0] == "id" and t2 not in CXX_KEYWORDS:
                            j2 = j + 1
                            if tk(j2)[1] == "<":
                                j2 = _skip_angle_tokens(tokens, j2, b1)
                            if tk(j2)[1] == "(":
                                rhs_calls.append(t2)
                            else:
                                rhs_ids.append(t2)
                        j += 1
                    assigns.append([text, rhs_calls, rhs_ids, line, col])
                    i += 1
                    continue

                # HIB021: a released handle touched again.
                if text in released and i != released[text][3]:
                    e = released[text]
                    if not rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                        add(line, col, "HIB021",
                            f"'{text}' is used after Release({text}); the pool "
                            "slot may already be reacquired (generation bump) — "
                            "Release must be the last touch of a handle",
                            flow=[[rel, e[1], e[2], f"'{text}' released here"],
                                  [rel, line, col, f"'{text}' used here"]])
                    del released[text]  # one finding per release site

                # Call site (including `F<T>(...)`).
                callpos = None
                if text not in CXX_KEYWORDS:
                    if nxt == "(":
                        callpos = i + 1
                    elif nxt == "<":
                        j2 = _skip_angle_tokens(tokens, i + 1, b1)
                        if j2 > i + 1 and tk(j2)[1] == "(":
                            callpos = j2
                if callpos is not None:
                    recv = qual = None
                    if prv in (".", "->") and tk(i - 2)[0] == "id":
                        recv = tk(i - 2)[1]
                    elif prv == "::" and tk(i - 2)[0] == "id":
                        qual = tk(i - 2)[1]

                    close = _find_matching_close(tokens, callpos)
                    arg_ids, arg_calls = [], []
                    d2 = 0
                    for j in range(callpos + 1, close):
                        t2 = tokens[j][1]
                        if t2 in ("(", "[", "{"):
                            d2 += 1
                        elif t2 in (")", "]", "}"):
                            d2 -= 1
                        elif tokens[j][0] == "id" and t2 not in CXX_KEYWORDS:
                            if tk(j + 1)[1] == "(":
                                arg_calls.append(t2)
                            elif d2 == 0:
                                arg_ids.append(t2)
                    calls.append([text, recv, qual, line, col, arg_ids])

                    # `container.push_back(&x)`: the address now lives as long
                    # as the container (HIB022's field-sensitive store).
                    if text in CONTAINER_STORE_CALLS and recv:
                        for j in range(callpos + 1, close):
                            if tokens[j][1] == "&" and tk(j + 1)[0] == "id" \
                                    and tk(j - 1)[1] in ("(", ","):
                                chain = [recv]
                                k = i - 2  # the receiver token
                                while tk(k - 1)[1] in (".", "->") \
                                        and tk(k - 2)[0] == "id":
                                    chain.insert(0, tk(k - 2)[1])
                                    k -= 2
                                addr_stores.append(
                                    [chain, tk(j + 1)[1], line, col])
                                break

                    # `<ctx>.Acquire()` establishes the context (HIB024).
                    if text == "Acquire" and recv and "Context" in recv:
                        fn["ctx_establish"] = True

                    if text == "reserve" and recv:
                        out["reserved"].append(recv)
                    elif text in ("push_back", "emplace_back") and recv:
                        allocs.append(["growth", recv, line, col])
                    elif text in ("make_shared", "make_unique"):
                        allocs.append(["make", text, line, col])
                    elif text in SCHEDULE_SINKS:
                        sinks.append(["schedule", text, arg_ids, arg_calls,
                                      line, col])
                        # Closure argument: record its captures (HIB023).
                        lb = next((j for j in range(callpos + 1, close)
                                   if tokens[j][1] == "["
                                   and tk(j - 1)[1] in ("(", ",")), None)
                        if lb is not None:
                            rb = _find_matching_close(tokens, lb)
                            val_ids, ref_ids = [], []
                            ref_all = has_this = False
                            k = lb + 1
                            while k < rb:
                                t2 = tokens[k][1]
                                if t2 == "&":
                                    if k + 1 < rb and tokens[k + 1][0] == "id" \
                                            and tokens[k + 1][1] != "this":
                                        ref_ids.append(tokens[k + 1][1])
                                        k += 2
                                        while k < rb and tokens[k][1] != ",":
                                            k += 1
                                        continue
                                    ref_all = True
                                elif t2 == "this":
                                    has_this = True
                                elif tokens[k][0] == "id":
                                    val_ids.append(t2)
                                    k += 1
                                    while k < rb and tokens[k][1] != ",":
                                        k += 1
                                    continue
                                k += 1
                            end_line = tokens[close][2]
                            sched_lambdas.append(
                                [text, val_ids, ref_ids, ref_all, has_this,
                                 line, col, end_line])
                            if (ref_all or ref_ids) and interproc_scoped:
                                what = (f"'&{ref_ids[0]}'" if ref_ids
                                        else "'[&]' (everything)")
                                add(line, col, "HIB023",
                                    f"callback handed to '{text}' captures "
                                    f"{what} by reference; the enclosing frame "
                                    "is gone before the event queue drains — "
                                    "capture by value (handles are 8 bytes) "
                                    "or move ownership into the closure")
                    elif text == "IsLive" and arg_ids:
                        for a in arg_ids:
                            if is_handle_name(a):
                                live_checks.append([a, line, col])
                    elif text == "Release" and len(arg_ids) == 1 \
                            and is_handle_name(arg_ids[0]):
                        h = arg_ids[0]
                        hidx = next((j for j in range(callpos + 1, close)
                                     if tokens[j][1] == h), -1)
                        if h in released:
                            if not rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                                e = released[h]
                                add(line, col, "HIB021",
                                    f"double Release({h}): the handle was "
                                    "already released on this path",
                                    flow=[[rel, e[1], e[2],
                                           f"'{h}' released here"],
                                          [rel, line, col,
                                           f"'{h}' released again here"]])
                        released[h] = [depth, line, col, hidx]
                        releases_fact.append([h, line, col])

                    # Seed-flavoured setter calls count as seed sinks too
                    # (SetSeed(t), Reseed(t), ...).
                    if SEED_NAME_RE.search(text) and (arg_ids or arg_calls):
                        sinks.append(["seedcall", text, arg_ids, arg_calls,
                                      line, col])

                # HIB013-class determinism sources (recorded everywhere;
                # gated by path at finding time).
                if text in WALL_CLOCK_IDS and (prv != "::" or tk(i - 2)[1]
                                               in ("std", "chrono")):
                    det.append([text, line, col])
                elif text in WALL_CLOCK_CALLS and nxt == "(" \
                        and prv not in (".", "->") \
                        and (prv != "::" or tk(i - 2)[1] == "std"):
                    det.append([text + "()", line, col])
                elif text == "new" and prv != "operator":
                    allocs.append(["new", None, line, col])
                elif text == "reinterpret_cast" and nxt == "<":
                    j2 = _skip_angle_tokens(tokens, i + 1, b1)
                    inner = {tokens[j][1] for j in range(i + 2, max(i + 2, j2 - 1))}
                    if inner & INT_CAST_TYPES:
                        det.append(["pointer-to-integer cast", line, col])

            i += 1

        # Seed member assignment is a HIB020 sink; fold assign-shaped sinks
        # out of the generic assign list.
        for lhs, rhs_calls, rhs_ids, line, col in assigns:
            if SEED_NAME_RE.search(lhs):
                sinks.append(["seedassign", lhs, rhs_ids, rhs_calls, line, col])

    # Publish pickle/JSON-clean nodes (drop parser-internal fields).
    for fn in model.functions:
        out["functions"].append({
            "name": fn["name"], "method_class": fn.get("method_class"),
            "line": fn["line"], "is_virtual": fn.get("is_virtual", False),
            "is_macro": False, "has_body": bool(fn.get("body_range")),
            "params": [[" ".join(pt) if not isinstance(pt, str) else pt, pn]
                       for pt, pn, *_ in fn.get("params", [])],
            "calls": fn.get("calls", []), "allocs": fn.get("allocs", []),
            "det_sources": fn.get("det_sources", []),
            "static_refs": fn.get("static_refs", []),
            "sinks": fn.get("sinks", []), "assigns": fn.get("assigns", []),
            "addr_stores": fn.get("addr_stores", []),
            "sched_lambdas": fn.get("sched_lambdas", []),
            "releases": fn.get("releases", []),
            "live_checks": fn.get("live_checks", []),
            "ctx_establish": bool(fn.get("ctx_establish")),
            "annotations": fn.get("annotations", [])})
    out["reserved"] = sorted(set(out["reserved"]))
    # Mutable static declarations, for HIB022's "does anything hold this class
    # statically" step (file-scope only; locals never outlive their frame...
    # except local statics, which do, so both are published).
    out["static_decls"] = [
        {"name": d["name"], "line": d["line"], "type": d["type"]}
        for d in mutable_statics]


def check_include_guard(rel, text, directives, add):
    want = expected_guard(rel)
    ifndef = None
    for name, rest, line in directives:
        if name == "ifndef":
            ifndef = (rest.split()[0] if rest.split() else "", line)
            break
    if ifndef is None:
        add(1, 1, "HIB001", f"missing include guard {want}", ("guard_insert", want))
        return
    got, line = ifndef
    if got != want:
        add(line, 1, "HIB001", f"include guard is {got}, expected {want}",
            ("guard_rename", got, want))
        return
    for name, rest, _ in directives:
        if name == "define" and rest.split() and rest.split()[0] == want:
            return
    add(line, 1, "HIB001", f"#ifndef {want} has no matching #define",
        ("guard_add_define", want, line))


def check_directives(rel, is_header, directives, add):
    if not is_header or rel in IOSTREAM_HEADER_ALLOWED:
        return
    for name, rest, line in directives:
        if name == "include" and rest.strip().startswith("<iostream>"):
            add(line, 1, "HIB002",
                "headers must not include <iostream>; stream through "
                "src/util/log.h instead")


def check_layering(rel, directives, add):
    """HIB025: #include edges between src/<layer>/ dirs must follow the DAG.
    Purely per-file (directive-shaped), so it caches with the file."""
    if rel.startswith("src/"):
        layer = rel.split("/")[1]
    elif rel.startswith(LAYERING_FIXTURE_PREFIX):
        layer = rel[len(LAYERING_FIXTURE_PREFIX):].split("/")[0]
    else:
        return
    allowed = LAYER_DAG.get(layer)
    if allowed is None:
        return  # unknown layer: no contract declared yet
    for name, rest, line in directives:
        if name != "include":
            continue
        m = re.match(r'"src/([A-Za-z0-9_]+)/', rest.strip())
        if not m:
            continue
        target = m.group(1)
        if target == layer or target in allowed or target not in LAYER_DAG:
            continue
        add(line, 1, "HIB025",
            f"src/{layer}/ must not include src/{target}/; the layer DAG is "
            "util <- obs/trace <- sim <- disk <- queueing <- array <- policy "
            "<- hibernator <- harness — pass the dependency down as data or "
            "an interface the lower layer owns")


def check_static_mutable(rel, model, add):
    if rel.startswith(STATIC_MUT_EXEMPT_PREFIXES):
        return
    for decl in model.static_decls:
        if STATIC_EXEMPT_TYPE_RE.search(decl["type"]):
            continue
        add(decl["line"], 1, "HIB006",
            f"mutable static-duration variable '{decl['name']}'; make it "
            "const/constexpr, wrap it in std::atomic/std::mutex, or pass the "
            "state explicitly")


def check_unit_functions(rel, model, add):
    if rel.startswith(UNIT_FN_EXEMPT_PREFIXES):
        return
    for fn in model.functions:
        name = fn["name"]
        if not UNIT_FN_NAME_RE.search(name) or DIMENSIONLESS_NAME_RE.search(name):
            continue
        ret = [t for t in fn["ret"] if t not in ("const", "&", "*", "constexpr")]
        if ret and ret[-1] in ("double", "float"):
            add(fn["line"], 1, "HIB007",
                f"'{name}' returns raw {ret[-1]}; its name says it is a "
                "physical quantity — return a units.h type")
            continue
        for ptype, pname, pline in fn["params"]:
            base = [t for t in ptype if t not in ("const", "&", "*")]
            if base and base[-1] in ("double", "float") \
                    and not DIMENSIONLESS_NAME_RE.search(pname or ""):
                add(pline, 1, "HIB007",
                    f"'{name}' takes raw double '{pname or '<param>'}'; its name "
                    "says it deals in a physical quantity — take a units.h type")
                break


def _num_value(text):
    try:
        return float(text.replace("'", "").rstrip("fFlLuUzZ"))
    except ValueError:
        return None


def token_checks(rel, tokens, add, out):
    """Single linear pass over the token stream for the token-shaped rules,
    plus extraction of the deferred (index-needing) sites."""
    n = len(tokens)
    lib = not rel.startswith(DETERMINISM_EXEMPT_PREFIXES)
    raw_io_ok = rel.startswith(RAW_IO_ALLOWED_PREFIXES)
    raw_out_ok = rel.startswith(RAW_OUTPUT_ALLOWED_PREFIXES)
    value_ok = rel.startswith(VALUE_ALLOWED_PREFIXES)
    conv_ok = rel.startswith(HAND_CONVERSION_EXEMPT_PREFIXES)
    hot_alloc = rel.startswith(HOT_ALLOC_PREFIXES) \
        and not rel.startswith(HIB017_EXEMPT_PREFIXES)
    raw_deser = rel.startswith(RAW_DESER_PREFIXES) \
        and not rel.startswith(RAW_DESER_EXEMPT_PREFIXES)

    def tk(i):
        return tokens[i] if 0 <= i < n else ("", "", 0, 0)

    unordered_loop_bodies = []  # (start_line, end_line) for HIB014

    i = 0
    while i < n:
        kind, text, line, col = tokens[i]

        if kind == "id":
            nxt = tk(i + 1)[1]
            prv = tk(i - 1)[1]
            prv2 = tk(i - 2)[1]

            # HIB003: std::cout/cerr/clog and printf-family calls.
            if not raw_io_ok:
                if text in ("cout", "cerr", "clog") and prv == "::" and prv2 == "std":
                    add(line, col, "HIB003",
                        "raw stdio; route output through HIB_LOG or util/table")
                elif text in PRINTF_FAMILY and nxt == "(" and prv not in (".", "->") \
                        and (prv != "::" or prv2 == "std"):
                    add(line, col, "HIB003",
                        "raw stdio; route output through HIB_LOG or util/table")

            # HIB010: the remaining C output primitives.
            if not raw_out_ok and text in RAW_OUTPUT_PRIMS and nxt == "(" \
                    and prv not in (".", "->") and (prv != "::" or prv2 == "std"):
                add(line, col, "HIB010",
                    "raw output primitive; route output through HIB_LOG, "
                    "util/table, or an src/obs/ exporter")

            # HIB005: bare assert().
            if text == "assert" and nxt == "(" and prv not in (".", "->", "::"):
                add(line, col, "HIB005",
                    "bare assert(); use HIB_CHECK / HIB_DCHECK from src/util/check.h")

            # HIB017: heap allocation in the per-request layers.  Dispatch is
            # allocation-free (SlotPool / SmallVector); make_shared and new
            # expressions there reintroduce per-request heap traffic.
            if hot_alloc:
                if text == "make_shared" \
                        and ((prv == "::" and prv2 == "std") or nxt == "<"):
                    add(line, col, "HIB017",
                        "std::make_shared in a per-request layer; use a "
                        "SlotPool handle (src/array/request_pool.h) or "
                        "setup-time make_unique in a constructor")
                elif text == "new" and prv != "operator":
                    add(line, col, "HIB017",
                        "new expression in a per-request layer; the hot path "
                        "is allocation-free — use SlotPool / SmallVector, or "
                        "NOLINT(HIB017) a justified setup-time allocation")

            # HIB026: raw binary deserialization outside the trace format
            # layer.  fread-into-struct and pointer-cast parsing skip the
            # bounds/checksum validation CompiledTraceReader centralises.
            if raw_deser:
                if text == "fread" and nxt == "(" and prv not in (".", "->") \
                        and (prv != "::" or prv2 == "std"):
                    add(line, col, "HIB026",
                        "raw fread deserialization; binary trace parsing "
                        "belongs in src/trace/format.* where bounds and "
                        "checksums are validated")
                elif text == "reinterpret_cast":
                    add(line, col, "HIB026",
                        "reinterpret_cast deserialization bypasses the "
                        "format layer's validation; use std::bit_cast / "
                        "std::memcpy for local type punning, or parse via "
                        "src/trace/format.*")

            # HIB004: double/float with a unit-suffixed name.
            if prv in ("double", "float") and UNITS_DECL_NAME_RE.search(text) \
                    and "per_ms" not in text:
                alias = "Joules" if "joules" in text else (
                    "Watts" if "watts" in text else "Duration (or SimTime)")
                add(line, col, "HIB004",
                    f"'{prv} {text}' should use the {alias} alias from src/util/units.h")

            # HIB008: .value() escape.
            if text == "value" and prv in (".", "->") and nxt == "(" \
                    and tk(i + 2)[1] == ")" and not value_ok:
                add(line, col, "HIB008",
                    ".value() strips the dimension; stay in the typed world, or "
                    "move the raw-double need to a sanctioned boundary "
                    "(units/stats/table/log/trace)")

            # HIB009: unit-suffixed identifier * / conversion literal.
            if not conv_ok and UNIT_SUFFIX_NAME_RE.search(text):
                if nxt in ("*", "/") and tk(i + 2)[0] == "num" \
                        and _num_value(tk(i + 2)[1]) in CONVERSION_VALUES:
                    add(line, col, "HIB009",
                        "hand-rolled unit conversion; use Seconds()/Hours()/"
                        "ToSeconds() etc. so the scale lives only in units.h",
                        ("conversion",))
                elif prv in ("*", "/") and tk(i - 2)[0] == "num" \
                        and _num_value(tk(i - 2)[1]) in CONVERSION_VALUES:
                    add(tk(i - 2)[2], tk(i - 2)[3], "HIB009",
                        "hand-rolled unit conversion; use Seconds()/Hours()/"
                        "ToSeconds() etc. so the scale lives only in units.h",
                        ("conversion",))

            # HIB013: wall-clock / ambient randomness (library code).
            if lib:
                if text in WALL_CLOCK_IDS and (prv != "::" or prv2 == "std" or prv2 == "chrono"):
                    add(line, col, "HIB013",
                        f"'{text}' is ambient nondeterminism; simulated time is "
                        "SimTime and randomness must flow from the seeded PRNGs "
                        "in src/util/random.h")
                elif text in WALL_CLOCK_CALLS and nxt == "(" \
                        and prv not in (".", "->") and (prv != "::" or prv2 == "std"):
                    add(line, col, "HIB013",
                        f"'{text}()' reads the wall clock / ambient randomness; "
                        "library code must use SimTime and the seeded PRNGs")

            # HIB012: pointer key in an ordered associative container.
            if lib and text in ORDERED_ASSOC and prv == "::" and prv2 == "std" \
                    and nxt == "<":
                j = i + 2
                depth = 1
                saw_ptr = False
                while j < n and depth > 0:
                    t = tokens[j][1]
                    if t == "<":
                        depth += 1
                    elif t == ">":
                        depth -= 1
                    elif t == ">>":
                        depth -= 2
                    elif t == "," and depth == 1:
                        break
                    elif t == "*" and depth == 1:
                        saw_ptr = True
                    j += 1
                if saw_ptr:
                    add(line, col, "HIB012",
                        f"std::{text} keyed by a pointer orders entries by heap "
                        "address (different every run); key by a stable id "
                        "(registration-order index) instead")

            # HIB016: catch-by-value / swallowed exception.
            if lib and text == "catch" and nxt == "(":
                close = _find_matching_close(tokens, i + 1)
                ptoks = tokens[i + 2:close]
                ptexts = [t[1] for t in ptoks]
                if ptexts and ptexts != ["..."] and "&" not in ptexts \
                        and "*" not in ptexts:
                    add(line, col, "HIB016",
                        "exception caught by value (slicing copy); catch by "
                        "const reference")
                bi = close + 1
                if tk(bi)[1] == "{":
                    bclose = _find_matching_close(tokens, bi)
                    if bclose == bi + 1:
                        add(line, col, "HIB016",
                            "swallowed exception: empty catch body lets the "
                            "simulation continue on corrupt state; handle, "
                            "log fatally, or rethrow")
                i = close + 1
                continue

            # Deferred HIB011 sites: range-for and .begin()/.cbegin().
            if lib and text == "for" and nxt == "(":
                close = _find_matching_close(tokens, i + 1)
                colon = None
                depth = 0
                for k in range(i + 2, close):
                    t = tokens[k][1]
                    if t in ("(", "[", "{"):
                        depth += 1
                    elif t in (")", "]", "}"):
                        depth -= 1
                    elif t == ":" and depth == 0 and tokens[k - 1][1] != ":" \
                            and tk(k + 1)[1] != ":":
                        colon = k
                        break
                if colon is not None:
                    expr = tokens[colon + 1:close]
                    ident = None
                    if not any(t[1] == "(" for t in expr):
                        ids = [t for t in expr if t[0] == "id" and t[1] != "this"]
                        if ids:
                            ident = ids[-1][1]
                    body_start_line = tokens[close][2]
                    bi = close + 1
                    if tk(bi)[1] == "{":
                        bclose = _find_matching_close(tokens, bi)
                        body_end_line = tokens[bclose][2]
                    else:
                        k = bi
                        while k < n and tokens[k][1] != ";":
                            k += 1
                        body_end_line = tk(k)[2] or body_start_line
                    if ident:
                        out["rangefors"].append(
                            (line, col, ident, body_start_line, body_end_line))
                i += 1
                continue

            if lib and text in ("begin", "cbegin") and nxt == "(" \
                    and prv in (".", "->") and tk(i - 2)[0] == "id":
                out["begin_calls"].append((line, col, tk(i - 2)[1]))

        elif kind == "punct" and text == "+=" and lib:
            k = i - 1
            # step back over a balanced [...] subscript
            if tk(k)[1] == "]":
                depth = 0
                while k >= 0:
                    t = tk(k)[1]
                    if t == "]":
                        depth += 1
                    elif t == "[":
                        depth -= 1
                        if depth == 0:
                            k -= 1
                            break
                    k -= 1
            if tk(k)[0] == "id":
                out["accums"].append((line, col, tk(k)[1]))

        i += 1

    out["_unused"] = unordered_loop_bodies  # kept for symmetry; unused


# ============================ cross-file resolution =========================

def build_index(results):
    class_members = {}
    aliases = {}
    member_types = {}
    class_bases = {}
    for r in results:
        for cls in r["classes"]:
            if not cls["name"]:
                continue
            m = class_members.setdefault(cls["name"], {})
            for mem in cls["members"]:
                m[mem["name"]] = mem["type"]
                member_types.setdefault(mem["name"], set()).add(mem["type"])
            for b in cls.get("bases", []):
                class_bases.setdefault(cls["name"], [])
                if b not in class_bases[cls["name"]]:
                    class_bases[cls["name"]].append(b)
        aliases.update(r["aliases"])
    return {"class_members": class_members, "aliases": aliases,
            "member_types": member_types, "class_bases": class_bases}


def resolve_type(name, fileres, index):
    t = fileres["locals"].get(name)
    if t:
        return t
    for cls in fileres["context_classes"]:
        t = index["class_members"].get(cls, {}).get(name)
        if t:
            return t
    types = index["member_types"].get(name)
    if types and len(types) == 1:
        return next(iter(types))
    return None


def resolve_alias(type_str, aliases, depth=0):
    if type_str is None or depth > 4:
        return type_str
    parts = type_str.split()
    base = parts[-1] if parts else type_str
    if base in aliases:
        resolved = resolve_alias(aliases[base], aliases, depth + 1)
        return " ".join(parts[:-1] + [resolved])
    return type_str


def is_scalar_type(type_str, aliases):
    resolved = resolve_alias(type_str, aliases)
    if resolved is None:
        return False
    toks = resolved.replace("std ::", "").replace("std::", "").split()
    toks = [t for t in toks if t not in ("const", "volatile", "mutable", "inline")]
    if not toks:
        return False
    if toks[-1] == "*":
        return True
    if any(t in ("constexpr", "constinit") for t in toks):
        return False
    return all(t in SCALAR_TYPES or t == "*" for t in toks)


def cross_file_checks(results, index):
    """HIB011 / HIB014 / HIB015 need the merged symbol index.

    Findings go into r["xfindings"], not r["findings"]: the per-file lists
    are what the incremental cache stores, and cross-file conclusions must
    not be frozen into them (another file changing can change the verdict).
    """
    aliases = index["aliases"]
    for r in results:
        rel = r["rel"]
        add = lambda line, col, rule, msg: r["xfindings"].append(
            (line, col, rule, msg, None, []))

        if not rel.startswith(DETERMINISM_EXEMPT_PREFIXES):
            unordered_bodies = []
            for line, col, ident, bstart, bend in r["rangefors"]:
                t = resolve_alias(resolve_type(ident, r, index), aliases)
                if t and UNORDERED_TYPE_RE.search(t):
                    add(line, col, "HIB011",
                        f"range-for over unordered container '{ident}' "
                        f"({t.replace(' ', '')}): iteration order is "
                        "nondeterministic — use a sorted/insertion-ordered "
                        "container or iterate sorted keys")
                    unordered_bodies.append((bstart, bend))
            for line, col, ident in r["begin_calls"]:
                t = resolve_alias(resolve_type(ident, r, index), aliases)
                if t and UNORDERED_TYPE_RE.search(t):
                    add(line, col, "HIB011",
                        f"'{ident}.begin()' walks an unordered container in "
                        "nondeterministic order — use a sorted/insertion-ordered "
                        "container or iterate sorted keys")
            for line, col, ident in r["accums"]:
                if not any(bs <= line <= be for bs, be in unordered_bodies):
                    continue
                t = resolve_alias(resolve_type(ident, r, index), aliases)
                if t and FLOATY_TYPE_RE.search(t):
                    add(line, col, "HIB014",
                        f"'{ident} +=' accumulates a floating/Quantity value "
                        "inside an unordered-container loop: float addition is "
                        "not associative, so the visit order changes the sum — "
                        "iterate in a deterministic order or merge in spec order")

            for cls in r["classes"]:
                if cls["has_real_ctor"]:
                    continue
                for mem in cls["members"]:
                    if mem["has_init"] or mem["is_static"]:
                        continue
                    if is_scalar_type(mem["type"], aliases):
                        cname = cls["name"] or "<anonymous>"
                        add(mem["line"], 1, "HIB015",
                            f"scalar member '{mem['name']}' of '{cname}' has no "
                            "default member initializer; an indeterminate value "
                            "is a run-to-run divergence seed")


# ============================ interprocedural (v3) ==========================

def _node_name(key):
    return f"{key[0]}::{key[1]}" if key[0] else key[1]


def _ancestors(cls, class_bases):
    seen = []
    stack = list(class_bases.get(cls, []))
    while stack:
        b = stack.pop(0)
        if b in seen:
            continue
        seen.append(b)
        stack.extend(class_bases.get(b, []))
    return seen


def build_call_graph(results, index):
    """Merges every file's function nodes into one graph.

    Returns {"nodes", "edges", "resolve"}:
      nodes:   (class, name) -> {"defs": [(fileres, fn)], "is_virtual": bool}
               class is "" for free functions and function-like macros.
      edges:   key -> [(target_key, (rel, line, col, callee_text)), ...]
      resolve: (fileres, fn, name, recv, qual) -> [target keys] — the same
               resolution the edges used, for on-demand queries (taint RHS).

    Resolution order for `recv.F(...)`: the receiver's declared type (params,
    then locals/members via the symbol index, aliases unwound), first known
    class named in it, then that class's bases.  Virtual calls fan out to
    every transitive overrider.  Unresolvable receivers fall back to the
    unique class defining a method of that name (safe: ambiguity means no
    edge, never a wrong-but-plausible one).
    """
    nodes = {}
    for r in results:
        for fn in r["functions"]:
            key = (fn.get("method_class") or "", fn["name"])
            node = nodes.setdefault(key, {"defs": [], "is_virtual": False})
            node["defs"].append((r, fn))
            node["is_virtual"] = node["is_virtual"] or fn.get("is_virtual", False)

    class_bases = index["class_bases"]
    class_set = {c for c, _ in nodes if c}
    descendants = {}
    for c in class_set | set(class_bases):
        for a in _ancestors(c, class_bases):
            descendants.setdefault(a, []).append(c)
    methods_of = {}
    for c, m in nodes:
        if c:
            methods_of.setdefault(m, []).append(c)

    def find_method(cls, name):
        for c in [cls] + _ancestors(cls, class_bases):
            if (c, name) in nodes:
                return (c, name)
        return None

    def unique_method(name):
        cand = methods_of.get(name, [])
        return (cand[0], name) if len(cand) == 1 else None

    def resolve(r, fn, name, recv, qual):
        base = None
        if qual:
            if qual in class_set or qual in class_bases:
                base = find_method(qual, name)
            if base is None and ("", name) in nodes:
                base = ("", name)
        elif recv is None or recv == "this":
            mc = fn.get("method_class") or ""
            if mc:
                base = find_method(mc, name)
            if base is None and ("", name) in nodes:
                base = ("", name)
            if base is None:
                base = unique_method(name)
        else:
            tstr = None
            for p in fn.get("params", []):
                if len(p) >= 2 and p[1] == recv:
                    tstr = p[0]
                    break
            if tstr is None:
                tstr = resolve_type(recv, r, index)
            tstr = resolve_alias(tstr, index["aliases"])
            cls = None
            if tstr:
                for tok in re.findall(r"[A-Za-z_]\w*", tstr):
                    if tok in class_set:
                        cls = tok
                        break
            if cls:
                base = find_method(cls, name)
            if base is None:
                base = unique_method(name)
        if base is None:
            return []
        targets = [base]
        if base[0] and nodes[base]["is_virtual"]:
            for d in sorted(descendants.get(base[0], [])):
                if (d, name) in nodes and (d, name) != base:
                    targets.append((d, name))
        return targets

    edges = {}
    for key in sorted(nodes):
        elist = []
        for r, fn in nodes[key]["defs"]:
            for call in fn.get("calls", []):
                name, recv, qual, line, col = call[:5]
                for tgt in resolve(r, fn, name, recv, qual):
                    elist.append((tgt, (r["rel"], line, col, name)))
        edges[key] = elist
    return {"nodes": nodes, "edges": edges, "resolve": resolve}


def _reach(roots, graph):
    """BFS; returns {key: None | (parent_key, callsite)} for every node
    reachable from the roots that exist in the graph."""
    nodes, edges = graph["nodes"], graph["edges"]
    parents = {}
    queue = []
    for root in roots:
        root = tuple(root)
        if root in nodes and root not in parents:
            parents[root] = None
            queue.append(root)
    qi = 0
    while qi < len(queue):
        cur = queue[qi]
        qi += 1
        for tgt, site in edges.get(cur, []):
            if tgt not in parents:
                parents[tgt] = (cur, site)
                queue.append(tgt)
    return parents


def _chain(key, parents, graph, root_label):
    """Witness steps (root first) from the entry point down to `key`.
    Returns (steps, root_key)."""
    steps = []
    cur = key
    while parents.get(cur) is not None:
        prev, site = parents[cur]
        steps.append([site[0], site[1], site[2],
                      f"'{_node_name(prev)}' calls '{_node_name(cur)}' here"])
        cur = prev
    r, fn = graph["nodes"][cur]["defs"][0]
    for rr, ff in graph["nodes"][cur]["defs"]:
        if ff.get("has_body"):
            r, fn = rr, ff
            break
    steps.append([r["rel"], fn["line"], 1,
                  f"{root_label} '{_node_name(cur)}' defined here"])
    steps.reverse()
    return steps, cur


def interprocedural_checks(results, index):
    """HIB018 / HIB019 / HIB020 on the merged call graph.  Findings land in
    the owning file's xfindings with a root->site witness chain."""
    graph = build_call_graph(results, index)
    nodes, resolve = graph["nodes"], graph["resolve"]
    by_rel = {r["rel"]: r for r in results}
    reserved = set()
    for r in results:
        reserved.update(r.get("reserved", []))

    def emit(rel, line, col, rule, msg, flow):
        r = by_rel.get(rel)
        if r is not None:
            r["xfindings"].append((line, col, rule, msg, None, flow))

    # ---- HIB018: transitive hot-path allocation ----
    parents = _reach(HOT_PATH_ROOTS, graph)
    seen = set()
    for key in sorted(parents):
        for r, fn in nodes[key]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                continue
            for akind, detail, line, col in fn.get("allocs", []):
                if (rel, line, col) in seen:
                    continue
                if akind == "growth":
                    t = resolve_alias(resolve_type(detail, r, index),
                                      index["aliases"]) or ""
                    if "vector" not in t or "SmallVector" in t:
                        continue  # SmallVector spill is the sanctioned path
                    if detail in reserved:
                        continue  # some reserve() call sizes this member
                    msg = (f"'{detail}.push_back' grows an unreserved "
                           "std::vector on the dispatch hot path; reserve() it "
                           "at setup or use SmallVector")
                elif akind == "make":
                    msg = (f"'{detail}' allocates on the dispatch hot path; "
                           "hoist to setup or route through SlotPool")
                else:
                    msg = ("new expression reachable from the dispatch hot "
                           "path; the per-request layers are allocation-free "
                           "by design — use SlotPool / SmallVector")
                seen.add((rel, line, col))
                steps, root = _chain(key, parents, graph, "dispatch root")
                steps.append([rel, line, col, "allocation here"])
                emit(rel, line, col, "HIB018",
                     msg + f" (reachable from '{_node_name(root)}')", steps)

    # ---- HIB019: mutable static state reachable from shard entry points ----
    parents = _reach(SHARD_ROOTS, graph)
    seen = set()
    for key in sorted(parents):
        for r, fn in nodes[key]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES) \
                    or rel.startswith(SHARD_MERGE_PREFIXES):
                continue
            for name, line, col, decl_line in fn.get("static_refs", []):
                if (rel, line, col) in seen:
                    continue
                seen.add((rel, line, col))
                steps, root = _chain(key, parents, graph, "shard entry point")
                steps.append([rel, line, col,
                              f"static '{name}' (declared at {rel}:{decl_line}) "
                              "touched here"])
                emit(rel, line, col, "HIB019",
                     f"mutable static '{name}' is reachable from shard entry "
                     f"point '{_node_name(root)}'; even synchronised static "
                     "state makes shard results depend on interleaving — "
                     "communicate through the harness merge "
                     "(src/harness/parallel.h) instead", steps)

    # ---- HIB020: determinism taint into timestamps / seeds / src/sim ----
    tainted = {}  # key -> witness steps, source first
    for key in sorted(nodes):
        for r, fn in nodes[key]["defs"]:
            if fn.get("det_sources"):
                d = fn["det_sources"][0]
                tainted[key] = [[r["rel"], d[1], d[2],
                                 f"nondeterministic source '{d[0]}' read here"]]
                break
    changed = True
    while changed:
        changed = False
        for key in sorted(nodes):
            if key in tainted:
                continue
            for tgt, site in graph["edges"].get(key, []):
                if tgt in tainted:
                    tainted[key] = tainted[tgt] + [
                        [site[0], site[1], site[2],
                         f"'{_node_name(key)}' takes a tainted value from "
                         f"'{_node_name(tgt)}' here"]]
                    changed = True
                    break

    def first_tainted(r, fn, names):
        for cname in names:
            for tgt in resolve(r, fn, cname, None, None):
                if tgt in tainted:
                    return cname, tgt
        return None, None

    seen = set()
    for key in sorted(nodes):
        for r, fn in nodes[key]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                continue
            events = [("assign",) + tuple(a) for a in fn.get("assigns", [])] \
                + [("sink",) + tuple(s) for s in fn.get("sinks", [])]
            events.sort(key=lambda e: (e[-2], e[-1], e[0]))
            local_taint = {}
            for ev in events:
                if ev[0] == "assign":
                    _, lhs, rhs_calls, rhs_ids, line, col = ev
                    cname, tgt = first_tainted(r, fn, rhs_calls)
                    if tgt is not None:
                        local_taint[lhs] = tainted[tgt] + [
                            [rel, line, col,
                             f"'{lhs}' derives from tainted call "
                             f"'{cname}(...)' here"]]
                        continue
                    for rid in rhs_ids:
                        if rid in local_taint:
                            local_taint[lhs] = local_taint[rid] + [
                                [rel, line, col,
                                 f"'{lhs}' derives from tainted '{rid}' here"]]
                            break
                else:
                    _, skind, sname, arg_ids, arg_calls, line, col = ev
                    if (rel, line, col, skind) in seen:
                        continue
                    witness = None
                    via = None
                    cname, tgt = first_tainted(r, fn, arg_calls)
                    if tgt is not None:
                        witness = tainted[tgt]
                        via = f"call '{cname}(...)'"
                    else:
                        for aid in arg_ids:
                            if aid in local_taint:
                                witness = local_taint[aid]
                                via = f"'{aid}'"
                                break
                    if witness is None:
                        continue
                    seen.add((rel, line, col, skind))
                    if skind == "schedule":
                        msg = (f"tainted value reaches event scheduling via "
                               f"{via} in '{sname}(...)'; event timestamps "
                               "must derive from SimTime only")
                    elif skind == "seedassign":
                        msg = (f"seed '{sname}' is assigned a tainted value "
                               f"via {via}; seeds must come from the "
                               "experiment spec")
                    else:
                        msg = (f"tainted value reaches '{sname}(...)' via "
                               f"{via}; seeds must come from the experiment "
                               "spec")
                    emit(rel, line, col, "HIB020", msg,
                         witness + [[rel, line, col, "sink here"]])

            # The src/sim blanket sink: any call to a tainted function from
            # the simulator core is a determinism leak even without a
            # recognised timestamp/seed shape.
            if rel.startswith("src/sim/"):
                for call in fn.get("calls", []):
                    cname, recv, qual, line, col = call[:5]
                    for tgt in resolve(r, fn, cname, recv, qual):
                        if tgt in tainted and (rel, line, col, "sim") not in seen:
                            seen.add((rel, line, col, "sim"))
                            emit(rel, line, col, "HIB020",
                                 f"'{cname}(...)' returns a wall-clock/"
                                 "randomness-derived value inside src/sim; "
                                 "the simulator core must be replayable",
                                 tainted[tgt] + [[rel, line, col, "sink here"]])
                            break

    # ================== v4: shard escape & declared contracts ==============
    aliases = index["aliases"]

    def words(tstr):
        return re.findall(r"[A-Za-z_]\w*", tstr or "")

    # Shard-owned types: the baked-in universe set plus every class that
    # carries HIB_SHARD_LOCAL.
    shard_types = set(SHARD_OWNED_TYPES)
    statics_types = []  # (rel, line, name, type_str) for every mutable static
    for r in results:
        for cls in r["classes"]:
            if cls.get("shard_local") and cls.get("name"):
                shard_types.add(cls["name"])
        for d in r.get("static_decls", []):
            statics_types.append((r["rel"], d["line"], d["name"], d["type"]))

    def value_type(r, fn, name):
        for p in fn.get("params", []):
            if len(p) >= 2 and p[1] == name:
                return resolve_alias(p[0], aliases)
        return resolve_alias(resolve_type(name, r, index), aliases)

    def shard_owned(tstr):
        return any(w in shard_types for w in words(tstr))

    def is_handle_in(r, fn, name):
        for p in fn.get("params", []):
            if len(p) >= 2 and p[1] == name:
                return "PoolHandle" in (p[0] or "")
        return "PoolHandle" in (r["locals"].get(name) or "")

    # Annotation union per node: the header declaration and the out-of-line
    # definition may carry different subsets; either one binds the contract.
    node_ann = {}
    for key in sorted(nodes):
        anns = []
        for r, fn in nodes[key]["defs"]:
            anns.extend(fn.get("annotations", []))
        if anns:
            node_ann[key] = anns

    def ann_of(key, macro):
        return [a for a in node_ann.get(key, []) if a[0] == macro]

    # ---- HIB022: shard-owned state escaping the shard run ----
    parents = _reach(SHARD_ROOTS, graph)
    member_stores = {}  # (owner_class, field) -> first store site
    seen = set()
    for key in sorted(parents):
        for r, fn in nodes[key]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                continue
            static_names = {s[0] for s in fn.get("static_refs", [])}
            mc = key[0]
            members = index["class_members"].get(mc, {}) if mc else {}
            for chain, src, line, col in fn.get("addr_stores", []):
                t = mc if src == "this" else value_type(r, fn, src)
                if not shard_owned(t):
                    continue
                base = chain[0]
                if base in static_names:
                    if (rel, line, col) in seen:
                        continue
                    seen.add((rel, line, col))
                    steps, root = _chain(key, parents, graph,
                                         "shard entry point")
                    steps.append([rel, line, col,
                                  f"address of shard-owned '{src}' stored "
                                  f"into static '{'.'.join(chain)}' here"])
                    emit(rel, line, col, "HIB022",
                         f"address of shard-owned '{src}' escapes into static "
                         f"'{'.'.join(chain)}' (reachable from shard entry "
                         f"point '{_node_name(root)}'); shard state must die "
                         "with the shard run — communicate through the "
                         "harness merge instead", steps)
                elif mc and (base == "this" or base in members):
                    member_stores.setdefault(
                        (mc, chain[-1]), (key, rel, chain, src, line, col))

    # Field-sensitive second step: a member store only escapes if some
    # static-duration object keeps the owning class alive across shard runs.
    for (owner, field), (key, rel, chain, src, line, col) \
            in sorted(member_stores.items()):
        if (rel, line, col) in seen:
            continue
        holder = next(((srel, sline, sname, stype)
                       for srel, sline, sname, stype in sorted(statics_types)
                       if owner in words(stype)), None)
        if holder is None:
            continue
        seen.add((rel, line, col))
        srel, sline, sname, _stype = holder
        steps, root = _chain(key, parents, graph, "shard entry point")
        steps.append([rel, line, col,
                      f"address of shard-owned '{src}' stored into member "
                      f"'{owner}::{field}' here"])
        steps.append([srel, sline, 1,
                      f"static '{sname}' keeps a '{owner}' alive across "
                      "shard runs"])
        emit(rel, line, col, "HIB022",
             f"address of shard-owned '{src}' escapes via member "
             f"'{owner}::{field}': static '{sname}' ({srel}:{sline}) holds a "
             f"'{owner}' that outlives the shard run — shard state must die "
             "with its shard", steps)

    # ---- HIB023(b): pool slot released before the scheduled event fires ----
    # Fixpoint: which functions release one of their own handle parameters
    # (directly, or by forwarding it to a releasing callee)?
    releases_params = set()
    changed = True
    while changed:
        changed = False
        for key in sorted(nodes):
            if key in releases_params:
                continue
            for r, fn in nodes[key]["defs"]:
                pnames = {p[1] for p in fn.get("params", [])
                          if len(p) >= 2 and p[1]}
                if any(h in pnames for h, _, _ in fn.get("releases", [])):
                    releases_params.add(key)
                    changed = True
                    break
                hit = False
                for call in fn.get("calls", []):
                    args = call[5] if len(call) > 5 else []
                    if not any(a in pnames for a in args):
                        continue
                    for tgt in resolve(r, fn, call[0], call[1], call[2]):
                        if tgt in releases_params and tgt != key:
                            releases_params.add(key)
                            changed = hit = True
                            break
                    if hit:
                        break
                if hit:
                    break

    def release_site(key):
        for r, fn in nodes[key]["defs"]:
            if fn.get("releases"):
                _h, line, col = fn["releases"][0]
                return (r["rel"], line, col)
        for r, fn in nodes[key]["defs"]:
            return (r["rel"], fn["line"], 1)
        return None

    for ckey in sorted(nodes):
        for r, fn in nodes[ckey]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                continue
            for sname, val_ids, _refs, _refall, _this, sline, scol, end_line \
                    in fn.get("sched_lambdas", []):
                for h in [v for v in val_ids if is_handle_in(r, fn, v)]:
                    fired = False
                    for rh, rline, rcol in fn.get("releases", []):
                        if rh == h and rline > end_line:
                            emit(rel, rline, rcol, "HIB023",
                                 f"pool handle '{h}' is captured by a "
                                 f"callback scheduled at {rel}:{sline}, but "
                                 "its slot is released here before the event "
                                 "can fire — the generation bump leaves the "
                                 "capture stale; release inside the callback, "
                                 "after its last use",
                                 [[rel, sline, scol,
                                   f"callback capturing '{h}' scheduled here"],
                                  [rel, rline, rcol,
                                   f"'{h}' released here, before the queue "
                                   "drains"]])
                            fired = True
                            break
                    if fired:
                        continue
                    for call in fn.get("calls", []):
                        cname, recv, qual, cline, ccol = call[:5]
                        args = call[5] if len(call) > 5 else []
                        if cline <= end_line or h not in args \
                                or cname == "Release":
                            continue
                        tgt = next((t for t
                                    in resolve(r, fn, cname, recv, qual)
                                    if t in releases_params), None)
                        if tgt is None:
                            continue
                        steps = [[rel, sline, scol,
                                  f"callback capturing '{h}' scheduled here"],
                                 [rel, cline, ccol,
                                  f"'{h}' passed to '{_node_name(tgt)}' here"]]
                        site = release_site(tgt)
                        if site:
                            steps.append([site[0], site[1], site[2],
                                          f"'{_node_name(tgt)}' releases its "
                                          "handle parameter here"])
                        emit(rel, cline, ccol, "HIB023",
                             f"pool handle '{h}' is captured by a callback "
                             f"scheduled at {rel}:{sline}, then passed to "
                             f"'{_node_name(tgt)}', which releases its handle "
                             "parameter — the slot dies before the event "
                             "fires; release inside the callback instead",
                             steps)
                        break

    # ---- HIB024: declared contracts must hold at every call site ----
    def establishes_ctx(key):
        if ann_of(key, "HIB_THREAD_CONTEXT"):
            return True  # annotated callers carry the contract outward
        return any(fn.get("ctx_establish")
                   for _r, fn in nodes[key]["defs"])

    seen = set()
    for ckey in sorted(nodes):
        if establishes_ctx(ckey):
            continue
        for tgt, site in graph["edges"].get(ckey, []):
            req = ann_of(tgt, "HIB_THREAD_CONTEXT")
            if not req:
                continue
            srel, sline, scol, _scallee = site
            if srel.startswith(INTERPROC_EXEMPT_PREFIXES) \
                    or (srel, sline, scol) in seen:
                continue
            seen.add((srel, sline, scol))
            ctx = req[0][1][0] if req[0][1] else "the shard context"
            if ckey in parents:
                steps, _root = _chain(ckey, parents, graph,
                                      "shard entry point")
            else:
                cr, cfn = nodes[ckey]["defs"][0]
                steps = [[cr["rel"], cfn["line"], 1,
                          f"caller '{_node_name(ckey)}' defined here (no "
                          "HIB_THREAD_CONTEXT, no ThreadContextScope)"]]
            dr, dfn = nodes[tgt]["defs"][0]
            steps.append([srel, sline, scol,
                          f"'{_node_name(ckey)}' calls '{_node_name(tgt)}' "
                          "here without establishing the context"])
            steps.append([dr["rel"], dfn["line"], 1,
                          f"'{_node_name(tgt)}' declares "
                          f"HIB_THREAD_CONTEXT({ctx}) here"])
            emit(srel, sline, scol, "HIB024",
                 f"'{_node_name(tgt)}' requires thread context '{ctx}', but "
                 f"caller '{_node_name(ckey)}' neither declares the same "
                 "contract nor establishes it (ThreadContextScope / "
                 ".Acquire()) before the call", steps)

    for ckey in sorted(nodes):
        own_live = {arg for a in ann_of(ckey, "HIB_REQUIRES_LIVE")
                    for arg in a[1]}
        for r, fn in nodes[ckey]["defs"]:
            rel = r["rel"]
            if rel.startswith(INTERPROC_EXEMPT_PREFIXES):
                continue
            acquired = set()
            for lhs, rhs_calls, _rhs_ids, _al, _ac in fn.get("assigns", []):
                if any(c.startswith("Acquire") for c in rhs_calls):
                    acquired.add(lhs)
            checked = {lc[0] for lc in fn.get("live_checks", [])}
            for call in fn.get("calls", []):
                cname, recv, qual, cline, ccol = call[:5]
                args = call[5] if len(call) > 5 else []
                if not args:
                    continue
                tgt = next((t for t in resolve(r, fn, cname, recv, qual)
                            if ann_of(t, "HIB_REQUIRES_LIVE")), None)
                if tgt is None:
                    continue
                for h in args:
                    if not is_handle_in(r, fn, h) or h in acquired \
                            or h in checked or h in own_live:
                        continue
                    if (rel, cline, ccol) in seen:
                        continue
                    seen.add((rel, cline, ccol))
                    dr, dfn = nodes[tgt]["defs"][0]
                    emit(rel, cline, ccol, "HIB024",
                         f"'{_node_name(tgt)}' declares HIB_REQUIRES_LIVE on "
                         f"its handle parameter, but caller "
                         f"'{_node_name(ckey)}' passes '{h}' without "
                         "acquiring it, IsLive-checking it, or declaring "
                         "HIB_REQUIRES_LIVE on its own signature",
                         [[rel, cline, ccol,
                           f"'{h}' passed to '{_node_name(tgt)}' here"],
                          [dr["rel"], dfn["line"], 1,
                           f"'{_node_name(tgt)}' declares HIB_REQUIRES_LIVE "
                           "here"]])
                    break


# ============================ suppression filtering =========================

# Rules whose findings need the whole call graph in scope.  A scan of a file
# subset (--partial, used by tools/precommit.sh) cannot prove that a NOLINT
# for one of these is stale: the root that makes it fire may simply not be in
# the scanned set.
INTERPROC_RULES = frozenset(
    {"HIB018", "HIB019", "HIB020", "HIB022", "HIB023", "HIB024"})


def apply_suppressions(results, partial=False):
    final = []
    for r in results:
        rel = r["rel"]
        if r["error"]:
            final.append(Finding(rel, 0, "HIB000", r["error"]))
            continue
        sups = r["suppressions"]
        by_line = {}
        for s in sups:
            s["used"] = False  # results may come from the cache, reset state
            by_line.setdefault(s["target_line"], []).append(s)
        # v4: when the interprocedural HIB018 confirms an allocation the
        # syntactic HIB017 also flagged, only the HIB018 finding survives —
        # it carries the witness chain, and two findings on one line are
        # noise.  (Suppressions are still matched first, so a NOLINT(HIB017)
        # on such a line stays "used" rather than going stale.)
        hib018_lines = {f[0] for f in r.get("xfindings", [])
                        if f[2] == "HIB018"}
        for line, col, rule, msg, fix, flow in \
                list(r["findings"]) + list(r.get("xfindings", [])):
            suppressed = False
            for s in by_line.get(line, []):
                if rule in s["rules"]:
                    s["used"] = True
                    suppressed = True
            if rule == "HIB017" and line in hib018_lines:
                continue  # subsumed by the interprocedural tier
            if not suppressed:
                final.append(Finding(rel, line, rule, msg, col, fix, flow))
        for s in sups:
            if not s["used"]:
                if partial and set(s["rules"]) & INTERPROC_RULES:
                    continue  # the proving root may be outside the scanned set
                rules = ", ".join(sorted(s["rules"]))
                final.append(Finding(
                    rel, s["decl_line"], "HIB099",
                    f"unused suppression ({rules}): nothing on the target line "
                    "triggers it — remove the stale comment"))
    return final


# ============================ SARIF output ==================================

def write_sarif(path, findings, files_scanned):
    rules = []
    for rule_id in sorted(RULES):
        name, desc = RULES[rule_id]
        rules.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": desc},
            "fullDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        })
    def location(path, line, col, message=None):
        loc = {
            "physicalLocation": {
                "artifactLocation": {"uri": path, "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": max(1, line),
                           "startColumn": max(1, col)},
            }
        }
        if message is not None:
            loc["message"] = {"text": message}
        return loc

    results = []
    for f in findings:
        res = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [location(f.path, f.line, f.col)],
        }
        if f.flow:
            res["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [
                        {"location": location(step[0], step[1], step[2], step[3])}
                        for step in f.flow
                    ]
                }]
            }]
        results.append(res)
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "version": SIMLINT_VERSION,
                    "informationUri":
                        "https://github.com/hibernator-sim/hibernator"
                        "#verification--static-analysis",
                    "rules": rules,
                }
            },
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"%SRCROOT%": {"uri": "file://" + REPO_ROOT + "/"}},
            "properties": {"filesScanned": files_scanned},
            "results": results,
        }],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ============================ --fix =========================================

CONVERSION_FIXES = [
    # to-seconds family only: the rewrites below keep the expression a raw
    # double (no .value() escapes) and route the scale through units.h.
    (re.compile(r"\b([A-Za-z_]\w*_ms)\s*/\s*1000(?:\.0+)?(?![\w.])"),
     r"ToSeconds(Ms(\1))"),
    (re.compile(r"\b([A-Za-z_]\w*_hours)\s*\*\s*3600(?:\.0+)?(?![\w.])"),
     r"ToSeconds(Hours(\1))"),
]


def apply_fixes(findings):
    """Applies the mechanical fixes (HIB001 guards, HIB009 to-seconds
    conversions).  Returns (num_fixed, set_of_fixed_finding_keys)."""
    by_file = {}
    for f in findings:
        if f.fix is not None:
            by_file.setdefault(f.path, []).append(f)
    fixed = set()
    for relp, flist in by_file.items():
        path = os.path.join(REPO_ROOT, relp) if not os.path.isabs(relp) else relp
        if not os.path.exists(path):
            path = relp
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.read().splitlines(keepends=True)
        except OSError:
            continue
        changed = False
        for f in sorted(flist, key=lambda x: -x.line):
            kind = f.fix[0]
            if kind == "guard_rename":
                old, want = f.fix[1], f.fix[2]
                pat = re.compile(r"\b" + re.escape(old) + r"\b")
                hits = 0
                for i, ln in enumerate(lines):
                    if pat.search(ln) and re.match(r"\s*#\s*(ifndef|define|endif)|.*//",
                                                   ln):
                        lines[i] = pat.sub(want, ln)
                        hits += 1
                if hits:
                    changed = True
                    fixed.add(f.key())
            elif kind == "guard_add_define":
                want, ifndef_line = f.fix[1], f.fix[2]
                idx = min(ifndef_line, len(lines))
                lines.insert(idx, f"#define {want}\n")
                changed = True
                fixed.add(f.key())
            elif kind == "guard_insert":
                want = f.fix[1]
                insert_at = 0
                for i, ln in enumerate(lines):
                    s = ln.strip()
                    if s.startswith("//") or not s:
                        insert_at = i + 1
                    else:
                        break
                lines.insert(insert_at, f"#ifndef {want}\n#define {want}\n\n")
                if lines and not lines[-1].endswith("\n"):
                    lines[-1] += "\n"
                lines.append(f"\n#endif  // {want}\n")
                changed = True
                fixed.add(f.key())
            elif kind == "conversion":
                i = f.line - 1
                if 0 <= i < len(lines):
                    new = lines[i]
                    for pat, repl in CONVERSION_FIXES:
                        new = pat.sub(repl, new)
                    if new != lines[i]:
                        lines[i] = new
                        changed = True
                        fixed.add(f.key())
        if changed:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("".join(lines))
    return len(fixed), fixed


# ============================ driver ========================================

def gather_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not SKIP_DIR_PATTERNS.match(d))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"simlint: no such path: {path}", file=sys.stderr)
            sys.exit(2)
    return files


# --- incremental cache ------------------------------------------------------
# Per-file analysis results keyed by content hash + engine version.  Only the
# pure per-file model is cached (findings, suppressions, declarations, facts);
# cross-file and interprocedural conclusions (xfindings) are recomputed every
# run, so a cached file still picks up verdict changes caused by *other*
# files changing.

DEFAULT_CACHE = os.path.join(REPO_ROOT, ".simlint-cache.json")


def load_cache(path):
    try:
        with open(path, encoding="utf-8") as fh:
            cache = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"version": SIMLINT_VERSION, "files": {}}
    if cache.get("version") != SIMLINT_VERSION:
        return {"version": SIMLINT_VERSION, "files": {}}
    cache.setdefault("files", {})
    return cache


def save_cache(path, cache):
    # Prune entries whose file no longer exists (tmp fixtures, renames).
    cache["files"] = {
        rel: entry for rel, entry in cache["files"].items()
        if os.path.exists(os.path.join(REPO_ROOT, rel)) or os.path.exists(rel)
    }
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(cache, fh, separators=(",", ":"))
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; never fail the lint over it


def run_analysis(files, jobs, cache_path=None, partial=False):
    cache = load_cache(cache_path) if cache_path else None
    hashes = {}
    todo = []
    results_by_path = {}
    for path in files:
        try:
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
        except OSError:
            digest = None
        hashes[path] = digest
        rel = rel_path(path)
        entry = cache["files"].get(rel) if (cache and digest) else None
        if entry and entry.get("hash") == digest:
            results_by_path[path] = entry["result"]
        else:
            todo.append(path)

    if jobs > 1 and len(todo) > 8:
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                fresh = list(pool.map(analyze_file, todo, chunksize=4))
        except (OSError, concurrent.futures.process.BrokenProcessPool):
            fresh = [analyze_file(p) for p in todo]
    else:
        fresh = [analyze_file(p) for p in todo]
    for path, res in zip(todo, fresh):
        results_by_path[path] = res

    results = [results_by_path[p] for p in files]
    if cache is not None:
        for path in todo:
            digest = hashes.get(path)
            res = results_by_path[path]
            if digest and not res.get("error"):
                cache["files"][res["rel"]] = {"hash": digest, "result": res}
        save_cache(cache_path, cache)

    for r in results:
        r["xfindings"] = []
    index = build_index(results)
    cross_file_checks(results, index)
    interprocedural_checks(results, index)
    return apply_suppressions(results, partial=partial)


# --- --explain ---------------------------------------------------------------

EXPLAIN = {
    "HIB017": (
        "The dispatch hot path (src/array, src/sim) is allocation-free by "
        "design: requests live in SlotPool slots, scratch state in SmallVector "
        "inline storage.  A make_shared or new expression there reintroduces "
        "per-request heap traffic — the exact regression the pooling work "
        "removed.  HIB017 is the fast syntactic tier: it only sees the "
        "allocation's own file.  Its interprocedural big sibling is HIB018.",
        "bad_hot_alloc.cc"),
    "HIB018": (
        "A hot-path function calling an allocating helper in another file is "
        "invisible to the syntactic HIB017.  HIB018 closes that gap: it walks "
        "the cross-TU call graph from the dispatch roots "
        "(ArrayController::Submit, Disk::Submit, EventQueue::FireNext) and "
        "flags every reachable allocation — new, make_shared/make_unique, and "
        "push_back growth of a std::vector member no reserve() ever sizes.  "
        "Each finding carries the full call chain as its witness.",
        "interproc/alloc_helper.cc"),
    "HIB019": (
        "RunAll / FleetSimulator shards must produce bit-identical results "
        "regardless of worker count or scheduling.  Any mutable static or "
        "singleton state reachable from a shard entry point breaks that: even "
        "an atomic counter makes results depend on thread interleaving.  "
        "Shards may only communicate through the deterministic merge in "
        "src/harness/parallel.h; HIB019 walks the call graph from the shard "
        "entry points and flags every touch of static state outside it.",
        "interproc/shard_static.cc"),
    "HIB020": (
        "HIB013 flags a wall-clock or randomness *source* in the file that "
        "reads it, but the damage happens where the value lands: an event "
        "timestamp, a PRNG seed, or anything inside src/sim.  HIB020 tracks "
        "taint through returns and locals across translation units and "
        "reports the source-to-sink path, so a time() hidden behind two "
        "helpers still cannot reach ScheduleAt.",
        "interproc/taint_sink.cc"),
    "HIB021": (
        "SlotPool generations mean a released handle may refer to a "
        "recycled slot: Get() after Release() is a use-after-free with extra "
        "steps.  The reentrant-Submit ordering contract requires Release to "
        "be the last touch — completion hooks run after the slot is given "
        "back.  HIB021 does intra-function def-use on PoolHandle lvalues and "
        "flags any use lexically after Release(handle) on the same path "
        "(reassignment or leaving the releasing scope clears the state).",
        "bad_handle_reuse.cc"),
    "HIB022": (
        "A Simulator (and everything inside it — EventQueue, SlotPool, "
        "MetricsRegistry, Tracer) is one shard's universe: it is built, run "
        "and destroyed inside one RunAll / FleetSimulator worker slot.  The "
        "moment its address is stored anywhere that outlives the run — a "
        "mutable static directly, or (field-sensitively) a member of a class "
        "some static keeps alive — the next shard, or the merge thread, can "
        "reach freed or foreign-shard state.  HIB022 tracks address-of "
        "stores in shard-reachable code; HIB_SHARD_LOCAL on a class opts it "
        "into the shard-owned set.",
        "bad_shard_escape.cc"),
    "HIB023": (
        "The event queue outlives every stack frame that schedules into it.  "
        "A closure that captures a local or parameter by reference therefore "
        "dangles by construction; and a closure that captures a PoolHandle "
        "by value is only safe while the slot stays live — releasing the "
        "slot after scheduling (directly, or through a callee that releases "
        "its handle parameter: the interprocedural step HIB021 cannot see) "
        "leaves the callback holding a stale generation.  The sanctioned "
        "shape is [this, h] by value with Release as the last statement "
        "*inside* the callback.",
        "bad_callback_lifetime.cc"),
    "HIB024": (
        "HIB_THREAD_CONTEXT(ctx) and HIB_REQUIRES_LIVE(handle) are contracts "
        "clang's -Wthread-safety enforces under -DHIB_THREAD_SAFETY=ON — but "
        "only under clang.  HIB024 makes them portable: every caller of a "
        "context-requiring function must declare the same context or "
        "establish it (ThreadContextScope / .Acquire()), and every caller of "
        "a HIB_REQUIRES_LIVE function must have acquired the handle, "
        "IsLive-checked it, or declared the same contract on its own "
        "signature.  Findings carry root-first witness chains: entry point "
        "-> call path -> unguarded call -> contract declaration.",
        "bad_contract.cc"),
    "HIB025": (
        "The repo's layer DAG — util <- obs/trace <- sim <- disk <- "
        "queueing <- array <- policy <- hibernator <- harness — is what "
        "keeps shard-owned state (HIB022) and contracts (HIB024) auditable: "
        "a lower layer reaching up can smuggle references across subsystem "
        "boundaries no local analysis will see.  HIB025 checks every "
        '#include "src/<layer>/..." edge against the DAG; it is per-file and '
        "cached, so it costs nothing warm.",
        "layering/disk/bad_layering.cc"),
    "HIB026": (
        "The compiled trace format (HIBT) is validated in exactly one place: "
        "src/trace/format.* checks magic, version, four FNV-1a checksums, "
        "block bounds and timestamp monotonicity before any byte becomes a "
        "record.  An fread-into-struct or reinterpret_cast parse anywhere "
        "else reads attacker-shaped bytes with none of those guarantees — "
        "and silently forks the format definition the differential tests "
        "pin.  std::bit_cast and std::memcpy stay legal for local type "
        "punning; whole-file parsing goes through CompiledTraceReader.",
        "bad_raw_deser.cc"),
}


def explain_rule(rule):
    rule = rule.upper()
    if rule not in RULES:
        print(f"simlint: unknown rule {rule}", file=sys.stderr)
        return 2
    name, desc = RULES[rule]
    print(f"{rule} ({name}): {desc}\n")
    rationale, fixture = EXPLAIN.get(rule, (None, None))
    if rationale:
        print(rationale + "\n")
    if fixture is None:
        # The v2 rules' fixtures are named after the rule slug.
        fixture = f"bad_{name.replace('-', '_')}.cc"
        fixtures_dir = os.path.join(REPO_ROOT, "tools", "simlint_fixtures")
        if not os.path.exists(os.path.join(fixtures_dir, fixture)):
            cands = [c for c in sorted(os.listdir(fixtures_dir))
                     if name.split("-")[-1] in c]
            if not cands:
                print("(no minimal repro registered for this rule)")
                return 0
            fixture = cands[0]
    path = os.path.join(REPO_ROOT, "tools", "simlint_fixtures", fixture)
    try:
        with open(path, encoding="utf-8") as fh:
            repro = fh.read()
    except OSError:
        print(f"(fixture {fixture} not found)")
        return 0
    print(f"Minimal repro (tools/simlint_fixtures/{fixture}):\n")
    for ln in repro.rstrip("\n").splitlines():
        print(f"    {ln}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="simlint", add_help=True,
                                     description="Hibernator repo lint "
                                                 "(interprocedural token engine)")
    parser.add_argument("paths", nargs="*", help="files or directories to scan")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--explain", metavar="HIBxxx",
                        help="print a rule's rationale and its fixture's "
                             "minimal repro, then exit")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write findings as SARIF 2.1.0 to FILE")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (HIB001 guards, HIB009 "
                             "to-seconds conversions), then report the rest")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="parallel worker processes (default: cpu count)")
    parser.add_argument("--cache", metavar="FILE", default=DEFAULT_CACHE,
                        help="incremental cache file "
                             "(default: <repo>/.simlint-cache.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--partial", action="store_true",
                        help="the paths are a subset of the tree (pre-commit "
                             "hook): skip HIB099 staleness for suppressions "
                             "of cross-file rules, whose proving root may be "
                             "out of scope")
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    if args.list_rules:
        for rule, (name, description) in sorted(RULES.items()):
            print(f"{rule}  {name:<20} {description}")
        return 0
    if args.explain:
        return explain_rule(args.explain)

    paths = args.paths
    if not paths:
        os.chdir(REPO_ROOT)
        paths = DEFAULT_PATHS
    files = gather_files(paths)
    cache_path = None if args.no_cache else args.cache
    findings = run_analysis(files, max(1, args.jobs), cache_path, args.partial)

    if args.fix:
        num_fixed, fixed_keys = apply_fixes(findings)
        if num_fixed:
            print(f"simlint: fixed {num_fixed} finding(s); re-checking", file=sys.stderr)
            findings = run_analysis(files, max(1, args.jobs), cache_path,
                                    args.partial)
        else:
            print("simlint: nothing fixable", file=sys.stderr)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for finding in findings:
        print(finding.render())
    if args.sarif:
        write_sarif(args.sarif, findings, len(files))
    if findings:
        print(f"simlint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
