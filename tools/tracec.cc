// tracec — the trace compiler CLI.  Compiles SPC-1-style ASCII traces into
// the HIBT binary format (src/trace/format.h), generates compiled traces
// straight from the workload zoo, morphs existing compiled traces, and dumps
// trace summaries.  See README "Trace pipeline" for a quickstart.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/format.h"
#include "src/trace/morph.h"
#include "src/trace/spc_reader.h"
#include "src/trace/synthetic.h"
#include "src/trace/zoo.h"
#include "src/util/units.h"

namespace {

using namespace hib;  // NOLINT(google-build-using-namespace) — single-file tool

int Usage() {
  std::cerr
      << "usage:\n"
      << "  tracec compile <in.spc> <out.hibt> --space SECTORS [--asus N] [--block RECORDS]\n"
      << "  tracec info <trace.hibt>\n"
      << "  tracec gen <oltp|cello|mltrain|backup|constant> <out.hibt>\n"
      << "             [--hours H] [--space SECTORS] [--iops X] [--seed N]\n"
      << "  tracec morph <in.hibt> <out.hibt> [--rate-x N] [--remap SECTORS]\n"
      << "             [--phase-hours H] [--sample FRACTION] [--seed N]\n";
  return 2;
}

// Minimal --flag VALUE parser over the arguments after the positional ones.
struct Flags {
  std::vector<std::pair<std::string, std::string>> values;

  bool Has(const std::string& name) const {
    for (const auto& kv : values) {
      if (kv.first == name) {
        return true;
      }
    }
    return false;
  }
  double Get(const std::string& name, double fallback) const {
    for (const auto& kv : values) {
      if (kv.first == name) {
        return std::strtod(kv.second.c_str(), nullptr);
      }
    }
    return fallback;
  }
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const {
    for (const auto& kv : values) {
      if (kv.first == name) {
        return std::strtoll(kv.second.c_str(), nullptr, 10);
      }
    }
    return fallback;
  }
};

bool ParseFlags(int argc, char** argv, int start, Flags* flags) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::cerr << "tracec: bad or valueless flag '" << arg << "'\n";
      return false;
    }
    flags->values.emplace_back(arg.substr(2), argv[++i]);
  }
  return true;
}

void PrintStats(const TraceStats& stats, SectorAddr space, std::int64_t bytes) {
  std::cout << "records:        " << stats.records << "\n"
            << "reads/writes:   " << stats.reads << " / " << stats.writes << "\n"
            << "duration:       " << ToSeconds(stats.last_time) / 3600.0 << " h\n"
            << "peak iops:      " << stats.peak_iops << "\n"
            << "mean iops:      " << stats.mean_iops << "\n"
            << "address space:  " << space << " sectors ("
            << static_cast<double>(space) * kSectorBytes / (1 << 30) << " GiB)\n";
  if (bytes > 0) {
    std::cout << "compiled size:  " << bytes << " bytes\n";
  }
}

int Compile(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 4, &flags)) {
    return 2;
  }
  const SectorAddr space = flags.GetInt("space", 0);
  if (space <= 0) {
    std::cerr << "tracec compile: --space SECTORS is required\n";
    return 2;
  }
  const int asus = static_cast<int>(flags.GetInt("asus", 8));
  // The compiler sorts, so out-of-order ASCII records are an input quirk
  // here, not an error.
  SpcTraceReader reader(argv[2], space, asus, TimeOrderPolicy::kAccept);
  TraceCompileOptions options;
  options.address_space_sectors = space;
  options.records_per_block = flags.GetInt("block", options.records_per_block);
  TraceCompileResult result = CompileTraceToFile(reader, argv[3], options);
  if (!result.ok) {
    std::cerr << "tracec compile: " << result.error << "\n";
    return 1;
  }
  if (result.records == 0 && reader.parse_errors() > 0) {
    std::cerr << "tracec compile: no parseable records in " << argv[2] << "\n";
    return 1;
  }
  if (reader.parse_errors() > 0) {
    std::cerr << "warning: skipped " << reader.parse_errors() << " malformed lines\n";
  }
  PrintStats(result.stats, space, result.bytes);
  return 0;
}

int Info(int argc, char** argv) {
  if (argc != 3) {
    return Usage();
  }
  auto reader = CompiledTraceReader::Open(argv[2]);
  if (!reader->ok()) {
    std::cerr << "tracec info: " << reader->error() << "\n";
    return 1;
  }
  PrintStats(reader->stats(), reader->AddressSpaceSectors(), 0);
  return 0;
}

int Gen(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 4, &flags)) {
    return 2;
  }
  const std::string kind = argv[2];
  const Duration hours = Hours(flags.Get("hours", 24.0));
  const SectorAddr space = flags.GetInt("space", std::int64_t{1} << 24);  // 8 GiB default
  const double iops = flags.Get("iops", 0.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::unique_ptr<WorkloadSource> source;
  if (kind == "oltp") {
    OltpWorkloadParams p;
    p.address_space_sectors = space;
    p.duration_ms = hours;
    if (iops > 0.0) {
      p.peak_iops = iops;
      p.trough_iops = iops * 0.3;
    }
    p.seed = seed;
    source = std::make_unique<OltpWorkload>(p);
  } else if (kind == "cello") {
    CelloWorkloadParams p;
    p.address_space_sectors = space;
    p.duration_ms = hours;
    if (iops > 0.0) {
      p.peak_iops = iops;
      p.trough_iops = iops * 0.05;
    }
    p.seed = seed;
    source = std::make_unique<CelloWorkload>(p);
  } else if (kind == "mltrain") {
    MlTrainingWorkloadParams p;
    p.address_space_sectors = space;
    p.duration_ms = hours;
    if (iops > 0.0) {
      p.read_iops = iops;
    }
    p.seed = seed;
    source = std::make_unique<MlTrainingWorkload>(p);
  } else if (kind == "backup") {
    BackupScanWorkloadParams p;
    p.address_space_sectors = space;
    p.duration_ms = hours;
    if (iops > 0.0) {
      p.scan_iops = iops;
    }
    p.seed = seed;
    source = std::make_unique<BackupScanWorkload>(p);
  } else if (kind == "constant") {
    ConstantWorkloadParams p;
    p.address_space_sectors = space;
    p.duration_ms = hours;
    if (iops > 0.0) {
      p.iops = iops;
    }
    p.seed = seed;
    source = std::make_unique<ConstantWorkload>(p);
  } else {
    std::cerr << "tracec gen: unknown workload '" << kind << "'\n";
    return 2;
  }

  TraceCompileResult result = CompileTraceToFile(*source, argv[3]);
  if (!result.ok) {
    std::cerr << "tracec gen: " << result.error << "\n";
    return 1;
  }
  PrintStats(result.stats, space, result.bytes);
  return 0;
}

int Morph(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 4, &flags)) {
    return 2;
  }
  auto compiled = CompiledTraceReader::Open(argv[2]);
  if (!compiled->ok()) {
    std::cerr << "tracec morph: " << compiled->error() << "\n";
    return 1;
  }
  // Block checksums verify lazily during replay, so a damaged block only
  // surfaces while draining; keep a handle to re-check after the compile.
  CompiledTraceReader* input = compiled.get();
  std::unique_ptr<WorkloadSource> source = std::move(compiled);
  // Stack order matters: remap first (into the target space), then scale
  // (replicas spread over that space), then phase, then sample.
  if (flags.Has("remap")) {
    const SectorAddr target = flags.GetInt("remap", 0);
    if (target <= 0) {
      std::cerr << "tracec morph: --remap needs a positive sector count\n";
      return 2;
    }
    source = std::make_unique<LbaRemapMorph>(std::move(source), target);
  }
  if (flags.Has("rate-x")) {
    const int factor = static_cast<int>(flags.GetInt("rate-x", 1));
    if (factor < 1) {
      std::cerr << "tracec morph: --rate-x needs a factor >= 1\n";
      return 2;
    }
    source = std::make_unique<RateScaleMorph>(std::move(source), factor);
  }
  if (flags.Has("phase-hours")) {
    source = std::make_unique<PhaseSpliceMorph>(std::move(source),
                                                Hours(flags.Get("phase-hours", 0.0)));
  }
  if (flags.Has("sample")) {
    const double fraction = flags.Get("sample", 1.0);
    if (fraction < 0.0 || fraction > 1.0) {
      std::cerr << "tracec morph: --sample needs a fraction in [0, 1]\n";
      return 2;
    }
    source = std::make_unique<SampleMorph>(std::move(source), fraction,
                                           static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
  }
  TraceCompileResult result = CompileTraceToFile(*source, argv[3]);
  if (!result.ok) {
    std::cerr << "tracec morph: " << result.error << "\n";
    return 1;
  }
  if (!input->ok()) {
    std::cerr << "tracec morph: input damaged mid-replay (" << input->error()
              << "); removing truncated " << argv[3] << "\n";
    std::remove(argv[3]);
    return 1;
  }
  PrintStats(result.stats, source->AddressSpaceSectors(), result.bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "compile") {
    return Compile(argc, argv);
  }
  if (command == "info") {
    return Info(argc, argv);
  }
  if (command == "gen") {
    return Gen(argc, argv);
  }
  if (command == "morph") {
    return Morph(argc, argv);
  }
  return Usage();
}
