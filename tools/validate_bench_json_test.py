#!/usr/bin/env python3
"""Self-test for tools/validate_bench_json.py against the checked-in schema.

The good fixture (a full metrics subtree: counters/gauges/histograms at both
the top level and per run) must validate; each bad fixture must be rejected
for the documented reason — a typoed subtree key, a mistyped counter value,
and a malformed histogram bucket.  Registered in ctest as
`validate_bench_json_selftest`.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
VALIDATOR = os.path.join(HERE, "validate_bench_json.py")
FIXTURES = os.path.join(HERE, "bench_json_fixtures")

# fixture -> fragment that must appear in the failure report (None = passes).
CASES = {
    "good_metrics.json": None,
    "bad_metrics_typo_key.json": "unexpected key 'guages'",
    "bad_metrics_counter_type.json": "expected integer, got str",
    "bad_metrics_histogram.json": "below the minimum",
}


def main():
    failures = []
    for name, want_error in sorted(CASES.items()):
        path = os.path.join(FIXTURES, name)
        proc = subprocess.run([sys.executable, VALIDATOR, path],
                              capture_output=True, text=True)
        out = proc.stdout + proc.stderr
        if want_error is None:
            if proc.returncode != 0:
                failures.append(f"{name}: expected pass, got exit "
                                f"{proc.returncode}: {out.strip()}")
        else:
            if proc.returncode == 0:
                failures.append(f"{name}: expected rejection, validated clean")
            elif want_error not in out:
                failures.append(f"{name}: expected error mentioning "
                                f"{want_error!r}, got: {out.strip()}")

    # The bad-bucket fixture must also be caught for its short bucket pair.
    proc = subprocess.run(
        [sys.executable, VALIDATOR,
         os.path.join(FIXTURES, "bad_metrics_histogram.json")],
        capture_output=True, text=True)
    if "fewer than 2 items" not in proc.stdout + proc.stderr:
        failures.append("bad_metrics_histogram.json: short bucket pair not caught")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"ok: {len(CASES)} bench-json fixtures validated as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
