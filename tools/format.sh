#!/usr/bin/env bash
# Formats (or checks) every tracked C++ source with clang-format using the
# checked-in .clang-format.
#
#   tools/format.sh           # rewrite files in place
#   tools/format.sh --check   # exit 1 if anything would change (CI mode)
#
# When a format-only commit lands, add its hash to .git-blame-ignore-revs so
# `git blame` keeps pointing at the real authors.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "tools/format.sh: clang-format not found on PATH" >&2
  echo "  install clang-format (>= 14) or run the CI lint job instead" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.h' '*.cc' '*.cpp' | grep -v '^tools/simlint_fixtures/')

if [[ "${1:-}" == "--check" ]]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
