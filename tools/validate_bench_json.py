#!/usr/bin/env python3
"""Validates BENCH_<name>.json artifacts against tools/bench_schema.json.

Dependency-free on purpose (CI containers carry no jsonschema package): this
implements exactly the JSON Schema subset the checked-in schema uses —
type, required, properties, additionalProperties, items, minItems, maxItems,
minimum, and $ref into #/definitions.  Unknown schema keywords are a hard
error, so the schema cannot silently grow past what is enforced.

Usage:
  tools/validate_bench_json.py [--schema tools/bench_schema.json] FILE...

Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_SCHEMA = os.path.join(HERE, "bench_schema.json")

HANDLED_KEYWORDS = {
    "$comment", "$ref", "type", "required", "properties", "additionalProperties",
    "items", "minItems", "maxItems", "minimum", "definitions",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from both numeric types.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def resolve_ref(ref, root):
    if not ref.startswith("#/definitions/"):
        raise ValueError(f"unsupported $ref '{ref}' (only #/definitions/* is implemented)")
    name = ref[len("#/definitions/"):]
    try:
        return root["definitions"][name]
    except KeyError:
        raise ValueError(f"$ref '{ref}' has no matching definition") from None


def validate(value, schema, root, path, errors):
    unknown = set(schema) - HANDLED_KEYWORDS
    if unknown:
        raise ValueError(f"schema at {path or '$'} uses unimplemented keywords: {sorted(unknown)}")

    if "$ref" in schema:
        validate(value, resolve_ref(schema["$ref"], root), root, path, errors)
        return

    where = path or "$"
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{where}: expected {expected}, got {type(value).__name__}")
        return

    if expected == "object":
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{where}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in props:
                validate(item, props[key], root, f"{where}.{key}", errors)
            elif isinstance(extra, dict):
                validate(item, extra, root, f"{where}.{key}", errors)
            elif extra is False:
                errors.append(f"{where}: unexpected key '{key}'")
    elif expected == "array":
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{where}: fewer than {schema['minItems']} items")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{where}: more than {schema['maxItems']} items")
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                validate(item, item_schema, root, f"{where}[{i}]", errors)
    elif expected in ("number", "integer"):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{where}: {value} is below the minimum {schema['minimum']}")


def main(argv):
    args = argv[1:]
    schema_path = DEFAULT_SCHEMA
    if args and args[0] == "--schema":
        if len(args) < 2:
            print("--schema requires a path", file=sys.stderr)
            return 2
        schema_path = args[1]
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2

    with open(schema_path, encoding="utf-8") as fh:
        schema = json.load(fh)

    failed = False
    for path in args:
        try:
            with open(path, encoding="utf-8") as fh:
                value = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {path}: {err}")
            failed = True
            continue
        errors = []
        validate(value, schema, schema, "", errors)
        if errors:
            failed = True
            print(f"FAIL {path}:")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"ok: {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
